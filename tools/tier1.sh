#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the thread-sanitized
# determinism/parallel tests (DRAMSTRESS_SANITIZE=thread instruments the
# whole tree, so it needs its own build directory).
#
# Usage: tools/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
[[ "${1:-}" == "--skip-tsan" ]] && skip_tsan=1

echo "=== tier-1: standard build + full ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDRAMSTRESS_WERROR=ON
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "=== tier-1: static netlist verification gate ==="
# The shipped column and every defect placeholder must lint clean, with
# warnings fatal (docs/LINT.md): a diagnostic here means the netlist
# builder and the defect taxonomy disagree.  This includes the numeric
# pre-flight (E4xx) under the flow's own SimSettings.  The determinism
# linter runs inside the full ctest above (Detlint.Src / Detlint.Corpus);
# Clang thread-safety analysis and clang-tidy run via tools/lint.sh in
# the CI lint job.
./build/tools/dramstress --verify=strict

echo "=== tier-1: adaptive-engine accuracy gate ==="
# The adaptive (LTE) engine must reproduce the fixed-step border
# resistance within the tolerance documented in docs/ENGINE.md.  Run the
# gate by name so an accuracy regression is called out as such even when
# someone filters the main suite.
ctest --test-dir build --output-on-failure -R 'AdaptiveAccuracy'

echo "=== tier-1: observability smoke (manifest emission + schema) ==="
# A real (small) sweep must emit a schema-valid manifest, and the binary's
# own validator is the schema oracle (docs/OBSERVABILITY.md).
manifest_dir=$(mktemp -d)
./build/tools/dramstress planes o3 --r-points 5 --threads 4 \
    --metrics "$manifest_dir/tier1.json" --trace "$manifest_dir/tier1.trace.json"
./build/tools/dramstress check-manifest "$manifest_dir/tier1.json"

echo "=== tier-1: DRAMSTRESS_OBS=OFF build compiles and passes ==="
# The kill switch must keep every instrumented call site compiling (inline
# no-op stubs) and the obs tests passing against the empty snapshots.
cmake -B build-obsoff -S . -DCMAKE_BUILD_TYPE=Release -DDRAMSTRESS_WERROR=ON \
      -DDRAMSTRESS_OBS=OFF
cmake --build build-obsoff -j --target obs_test dramstress_cli
ctest --test-dir build-obsoff --output-on-failure -R 'ObsTest'
./build-obsoff/tools/dramstress planes o3 --r-points 3 \
    --metrics "$manifest_dir/off.json"
./build-obsoff/tools/dramstress check-manifest "$manifest_dir/off.json"
rm -rf "$manifest_dir"

if [[ "$skip_tsan" == 1 ]]; then
  echo "=== tier-1: TSan stage skipped ==="
  exit 0
fi

echo "=== tier-1: TSan build + determinism/parallel tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDRAMSTRESS_SANITIZE=thread
cmake --build build-tsan -j --target determinism_test util_test
ctest --test-dir build-tsan --output-on-failure -R 'Determinism|Parallel'

echo "=== tier-1: OK ==="
