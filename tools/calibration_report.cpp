// Developer tool: prints the electrical behaviours that anchor the default
// TechnologyParams calibration.  Run after any technology change and check
// the shape criteria listed next to each block (they mirror the paper's
// figures; EXPERIMENTS.md documents the expected values).
#include <cstdio>

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "numeric/rootfind.hpp"
#include "util/strings.hpp"

using namespace dramstress;
using dram::Operation;
using dram::Side;

namespace {

double vsa_at(dram::DramColumn& col, const dram::OperatingConditions& c) {
  dram::ColumnSimulator sim(col, c);
  return analysis::extract_vsa(sim, Side::True).threshold;
}

}  // namespace

int main() {
  dram::DramColumn col;
  const dram::OperatingConditions nom{2.4, 27.0, 60e-9, 0.5};

  std::printf("== healthy column ==\n");
  {
    dram::ColumnSimulator sim(col, nom);
    const auto w1 = sim.run({Operation::w1(), Operation::r()}, 0.0, Side::True);
    std::printf("w1 reaches %.3f V, reads %d (want: > 1.8 V, 1)\n",
                w1.vc_after(0), w1.read_bit(1));
    std::printf("Vsa(pristine) = %.3f V (want: near Vdd/2)\n", vsa_at(col, nom));
  }

  const defect::Defect d{defect::DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 200e3);

  std::printf("\n== O3 = 200 kOhm, paper Fig. 3-5 anchors ==\n");
  {
    dram::ColumnSimulator sim(col, nom);
    const auto w0 = sim.run({Operation::w0()}, 2.4, Side::True);
    std::printf("Vc after w0 @60 ns: %.3f (paper ~1.0)\n", w0.vc_after(0));
  }
  {
    dram::ColumnSimulator sim(col, {2.4, 27.0, 55e-9, 0.5});
    const auto w0 = sim.run({Operation::w0()}, 2.4, Side::True);
    std::printf("Vc after w0 @55 ns: %.3f (paper ~1.19; must exceed @60 ns)\n",
                w0.vc_after(0));
  }
  for (double t : {-33.0, 27.0, 87.0}) {
    dram::ColumnSimulator sim(col, {2.4, t, 60e-9, 0.5});
    const auto w0 = sim.run({Operation::w0()}, 2.4, Side::True);
    std::printf("Vc after w0 @%+4.0f C: %.3f  Vsa: %.3f\n", t, w0.vc_after(0),
                vsa_at(col, {2.4, t, 60e-9, 0.5}));
  }
  for (double v : {2.1, 2.4, 2.7}) {
    dram::ColumnSimulator sim(col, {v, 27.0, 60e-9, 0.5});
    const auto w0 = sim.run({Operation::w0()}, v, Side::True);
    std::printf("Vc after w0 @%.1f V: %.3f  Vsa: %.3f (Vsa must rise with "
                "Vdd)\n", v, w0.vc_after(0), vsa_at(col, {v, 27.0, 60e-9, 0.5}));
  }

  std::printf("\n== Fig. 4 non-monotonic read probe ==\n");
  const double vsa_nom = vsa_at(col, nom);
  for (double t : {-33.0, 27.0, 87.0}) {
    dram::ColumnSimulator sim(col, {2.4, t, 60e-9, 0.5});
    const auto r = sim.run({Operation::del(1.5e-6), Operation::r()},
                           vsa_nom + 0.10, Side::True);
    std::printf("read(Vsa+0.1) @%+4.0f C -> %d (want 0/1/0)\n", t,
                r.last_read_bit());
  }

  std::printf("\n== Vsa(R) must bend toward GND ==\n");
  for (double r : {50e3, 200e3, 1e6}) {
    inj.set_value(r);
    std::printf("Vsa(%s) = %.3f\n", util::eng(r, "Ohm").c_str(),
                vsa_at(col, nom));
  }
  return 0;
}
