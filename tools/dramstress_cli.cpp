// dramstress: command-line driver for the full flow.
//
//   dramstress analyze  <defect> [side]          Section-3 fault analysis
//   dramstress optimize <defect> [side]          Section-4 stress optimization
//   dramstress report   <defect> [side]          markdown diagnostic report
//   dramstress table1                            the paper's Table 1
//   dramstress ffm      <defect> [side] <R>      fault-model classification
//   dramstress planes   <defect> [side]          w0/w1/r result planes (Fig. 2)
//   dramstress check-manifest <file>             validate a run manifest
//
// defect in {o1,o2,o3,sg,sv,b1,b2,b3}; side in {true,comp} (default true);
// R accepts engineering suffixes ("200k").
//
// --threads N caps the sweep worker pool (default: DRAMSTRESS_THREADS or
// all hardware threads); results are identical for every thread count.
//
// --batch N routes plane sweeps through the batched ensemble engine with N
// lanes per solve (default: DRAMSTRESS_BATCH, else the scalar engine);
// results are identical for every batch size >= 1.
//
// --adaptive / --no-adaptive selects LTE-controlled vs fixed time stepping
// (default: adaptive); --lte-tol X sets the relative LTE tolerance of the
// adaptive engine (default 5e-4; tighter tracks the fixed-step reference
// closer at the cost of more steps).
//
// --surrogate / --no-surrogate switches the surrogate-accelerated border
// search (docs/ANALYSIS.md) on or off process-wide (default: on;
// --no-surrogate reproduces the classic scan+bisection byte-for-byte);
// --surrogate-tol X sets its ln(R) bracket tolerance (default 0.02).
//
// --verify runs the static netlist verification (docs/LINT.md) over the
// column and every defect placeholder before the command, failing on
// errors; --verify=strict also fails on warnings.  With no command,
// "dramstress --verify" verifies and exits.
//
// --metrics FILE writes a versioned run manifest (settings, git revision,
// duration, full metric dump) on success; --trace FILE writes the span
// timing tree.  Schemas: docs/OBSERVABILITY.md.  --r-points N sets the
// resistance grid size of `planes` (default 15).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include <atomic>
#include <csignal>
#include <thread>

#include "analysis/result_plane.hpp"
#include "analysis/surrogate_options.hpp"
#include "campaign/runner.hpp"
#include "circuit/spice_reader.hpp"  // parse_spice_number
#include "core/flow.hpp"
#include "core/report.hpp"
#include "obs/manifest.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

using namespace dramstress;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dramstress "
               "<analyze|optimize|report|table1|ffm|planes|check-manifest>\n"
               "                  [defect] [side] [R|file] [--threads N] "
               "[--batch N]\n"
               "                  [--adaptive|--no-adaptive] [--lte-tol X] "
               "[--verify[=strict]]\n"
               "                  [--surrogate|--no-surrogate] "
               "[--surrogate-tol X]\n"
               "                  [--metrics FILE] [--trace FILE] "
               "[--r-points N]\n"
               "       dramstress campaign run <spec.json> [--out DIR] "
               "[--cache DIR] [--resume]\n"
               "       dramstress campaign status <run-dir>\n"
               "       dramstress campaign gc <spec.json> [--cache DIR]\n"
               "       dramstress serve --socket PATH [--runs DIR] "
               "[--cache DIR]\n"
               "                        [--workers N] [--io-threads N] "
               "[--cache-mem BYTES]\n"
               "       dramstress submit <spec.json> --socket PATH "
               "[--client NAME] [--wait]\n"
               "       dramstress watch <id> --socket PATH\n"
               "       dramstress status --socket PATH\n"
               "       dramstress shutdown --socket PATH\n"
               "  defect: o1 o2 o3 sg sv b1 b2 b3   side: true|comp\n"
               "  --verify runs the static netlist checks (docs/LINT.md) "
               "first; strict fails on warnings;\n"
               "  with no command, verify and exit\n"
               "  --metrics/--trace write a run manifest / span trace "
               "(docs/OBSERVABILITY.md)\n"
               "  campaign: resumable batch runs with a result cache "
               "(docs/CAMPAIGN.md)\n"
               "  --no-surrogate: classic border searches only "
               "(docs/ANALYSIS.md)\n");
  return 2;
}

/// Transient-engine knobs stripped from the command line.
struct EngineFlags {
  bool adaptive = true;     // LTE-controlled stepping (the default engine)
  double lte_tol = 5e-4;    // relative LTE tolerance
  bool verify = false;      // run static verification before the command
  bool verify_strict = false;  // ... and fail on warnings too
  int r_points = 15;        // resistance grid size of `planes`
  std::string metrics_path;  // --metrics FILE; empty = no manifest
  std::string trace_path;    // --trace FILE; empty = no trace

  void apply(dram::SimSettings* s) const {
    s->adaptive = adaptive;
    s->lte_tol = lte_tol;
  }
};

/// Strip --threads[=| ]N, --batch[=| ]N, --adaptive/--no-adaptive,
/// --lte-tol[=| ]X, --surrogate/--no-surrogate and --surrogate-tol[=| ]X
/// from argv, applying them to the sweep pool / ensemble default / the
/// surrogate process defaults / `flags`.  Returns the remaining positional
/// arguments; false on a malformed flag.
bool extract_flags(int argc, char** argv, std::vector<char*>* args,
                   EngineFlags* flags) {
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    const char* value = nullptr;
    bool is_tol = false;
    bool is_surrogate_tol = false;
    bool is_r_points = false;
    bool is_batch = false;
    std::string* path = nullptr;
    if (std::strcmp(a, "--adaptive") == 0) {
      flags->adaptive = true;
      continue;
    }
    if (std::strcmp(a, "--no-adaptive") == 0) {
      flags->adaptive = false;
      continue;
    }
    if (std::strcmp(a, "--surrogate") == 0) {
      analysis::set_default_surrogate_enabled(true);
      continue;
    }
    if (std::strcmp(a, "--no-surrogate") == 0) {
      analysis::set_default_surrogate_enabled(false);
      continue;
    }
    if (std::strcmp(a, "--verify") == 0) {
      flags->verify = true;
      continue;
    }
    if (std::strcmp(a, "--verify=strict") == 0) {
      flags->verify = flags->verify_strict = true;
      continue;
    }
    if (std::strncmp(a, "--metrics=", 10) == 0) {
      flags->metrics_path = a + 10;
      continue;
    }
    if (std::strcmp(a, "--metrics") == 0) {
      path = &flags->metrics_path;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      flags->trace_path = a + 8;
      continue;
    } else if (std::strcmp(a, "--trace") == 0) {
      path = &flags->trace_path;
    }
    if (path) {
      if (i + 1 >= argc) return false;
      *path = argv[++i];
      if (path->empty()) return false;
      continue;
    }
    if (std::strncmp(a, "--r-points=", 11) == 0) {
      value = a + 11;
      is_r_points = true;
    } else if (std::strcmp(a, "--r-points") == 0) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
      is_r_points = true;
    } else if (std::strncmp(a, "--lte-tol=", 10) == 0) {
      value = a + 10;
      is_tol = true;
    } else if (std::strcmp(a, "--lte-tol") == 0) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
      is_tol = true;
    } else if (std::strncmp(a, "--surrogate-tol=", 16) == 0) {
      value = a + 16;
      is_surrogate_tol = true;
    } else if (std::strcmp(a, "--surrogate-tol") == 0) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
      is_surrogate_tol = true;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      value = a + 10;
    } else if (std::strcmp(a, "--threads") == 0) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
    } else if (std::strncmp(a, "--batch=", 8) == 0) {
      value = a + 8;
      is_batch = true;
    } else if (std::strcmp(a, "--batch") == 0) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
      is_batch = true;
    } else {
      args->push_back(argv[i]);
      continue;
    }
    char* end = nullptr;
    if (is_tol) {
      const double tol = std::strtod(value, &end);
      if (end == value || *end != '\0' || tol <= 0.0) return false;
      flags->lte_tol = tol;
    } else if (is_surrogate_tol) {
      const double tol = std::strtod(value, &end);
      if (end == value || *end != '\0' || tol <= 0.0 || tol > 1.0)
        return false;
      analysis::set_default_surrogate_tol(tol);
    } else if (is_r_points) {
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 2) return false;
      flags->r_points = static_cast<int>(n);
    } else if (is_batch) {
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 1 || n > 1024) return false;
      util::set_default_batch(static_cast<int>(n));
    } else {
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 1) return false;
      util::set_default_threads(static_cast<int>(n));
    }
  }
  return true;
}

bool parse_defect(const char* s, defect::DefectKind* out) {
  using defect::DefectKind;
  static const std::pair<const char*, DefectKind> kMap[] = {
      {"o1", DefectKind::O1}, {"o2", DefectKind::O2}, {"o3", DefectKind::O3},
      {"sg", DefectKind::Sg}, {"sv", DefectKind::Sv}, {"b1", DefectKind::B1},
      {"b2", DefectKind::B2}, {"b3", DefectKind::B3}};
  for (const auto& [name, kind] : kMap) {
    if (std::strcmp(s, name) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void show_border(const analysis::BorderResult& br,
                 const defect::Defect& d) {
  if (!br.br.has_value()) {
    std::printf("%s: no faulty behaviour in its resistance range\n",
                d.name().c_str());
    return;
  }
  std::printf("%s: border %s (faults %s), condition '%s'\n", d.name().c_str(),
              util::eng(*br.br, "Ohm").c_str(),
              br.fault_at_high_r ? "above" : "below",
              br.condition.str().c_str());
}

/// Manifest header/settings for this invocation.
obs::ManifestInfo make_manifest_info(const EngineFlags& eng,
                                     const std::string& cmdline,
                                     double duration_s) {
  obs::ManifestInfo info;
  info.tool = "dramstress";
  info.command = cmdline;
  info.settings_number["threads"] = util::resolve_threads(0);
  info.settings_number["batch"] = util::resolve_batch(0);
  info.settings_flag["adaptive"] = eng.adaptive;
  info.settings_number["lte_tol"] = eng.lte_tol;
  info.settings_text["solver_backend"] = "auto";
  info.settings_number["r_points"] = eng.r_points;
  info.duration_s = duration_s;
  return info;
}

/// `check-manifest <file>`: validate against the documented schema.
int check_manifest(const char* path) {
  std::ifstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << f.rdbuf();
  const std::vector<std::string> errs =
      obs::validate_manifest_json(text.str());
  for (const std::string& e : errs)
    std::fprintf(stderr, "%s: %s\n", path, e.c_str());
  if (!errs.empty()) return 1;
  std::printf("%s: valid (manifest schema v%d)\n", path,
              obs::kManifestVersion);
  return 0;
}

/// `campaign run|status|gc` (docs/CAMPAIGN.md).
int run_campaign(int argc, char** argv, const EngineFlags& eng) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  std::string out = "campaign-run";
  std::string cache_dir = "campaign-cache";
  bool resume = false;
  std::vector<std::string> pos;
  for (int i = 3; i < argc; ++i) {
    const char* a = argv[i];
    std::string* path = nullptr;
    if (std::strcmp(a, "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out = a + 6;
    } else if (std::strcmp(a, "--out") == 0) {
      path = &out;
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      cache_dir = a + 8;
    } else if (std::strcmp(a, "--cache") == 0) {
      path = &cache_dir;
    } else if (a[0] == '-') {
      return usage();
    } else {
      pos.push_back(a);
    }
    if (path) {
      if (i + 1 >= argc) return usage();
      *path = argv[++i];
      if (path->empty()) return usage();
    }
  }

  const auto load = [](const std::string& spec_path)
      -> std::optional<campaign::CampaignSpec> {
    verify::VerifyReport report;
    std::optional<campaign::CampaignSpec> spec =
        campaign::load_spec(spec_path, &report);
    if (!report.clean()) std::fputs(report.str().c_str(), stderr);
    if (!spec.has_value())
      std::fprintf(stderr, "error: %s is not a valid campaign spec\n",
                   spec_path.c_str());
    return spec;
  };

  if (sub == "run") {
    if (pos.size() != 1) return usage();
    const std::optional<campaign::CampaignSpec> spec = load(pos[0]);
    if (!spec.has_value()) return 1;
    const dram::TechnologyParams tech = dram::default_technology();
    dram::DramColumn column(tech);
    campaign::CampaignPlan plan = campaign::expand(*spec, column);
    campaign::RunnerOptions opt;
    opt.resume = resume;
    std::printf("campaign '%s': %zu units -> %s (cache %s)\n",
                spec->name.c_str(), plan.units.size(), out.c_str(),
                cache_dir.c_str());
    campaign::CampaignRunner runner(std::move(plan), tech, out, cache_dir,
                                    opt);
    const campaign::CampaignResult r = runner.run();
    if (!r.diagnostics.clean())
      std::fputs(r.diagnostics.str().c_str(), stderr);
    std::printf(
        "campaign '%s': %d computed, %d cached, %d retries, %d quarantined, "
        "%d skipped\n",
        spec->name.c_str(), r.done, r.cached, r.retried, r.quarantined,
        r.skipped);
    std::printf("report: %s\n", r.report_path.c_str());
    if (r.quarantined > 0)
      std::printf("failure report: %s\n", r.failure_report_path.c_str());
    // Quarantined units are recorded, not fatal: the campaign completed.
    return 0;
  }

  if (sub == "status") {
    if (pos.size() != 1) return usage();
    const std::string dir = pos[0];
    const std::optional<campaign::CampaignSpec> spec =
        load(dir + "/spec.json");
    if (!spec.has_value()) return 1;
    const dram::TechnologyParams tech = dram::default_technology();
    dram::DramColumn column(tech);
    const campaign::CampaignPlan plan = campaign::expand(*spec, column);
    verify::VerifyReport report;
    const std::map<std::string, campaign::JournalEntry> journal =
        campaign::Journal::replay(dir + "/journal.jsonl", &report);
    if (!report.clean()) std::fputs(report.str().c_str(), stderr);
    int done = 0, quarantined = 0;
    for (const campaign::WorkUnit& u : plan.units) {
      const auto it = journal.find(u.key.hex());
      if (it == journal.end()) continue;
      if (it->second.status == "quarantined")
        ++quarantined;
      else
        ++done;
    }
    const int remaining =
        static_cast<int>(plan.units.size()) - done - quarantined;
    std::printf("campaign '%s' in %s: %zu units, %d done, %d quarantined, "
                "%d remaining\n",
                spec->name.c_str(), dir.c_str(), plan.units.size(), done,
                quarantined, remaining);
    return 0;
  }

  if (sub == "gc") {
    if (pos.empty()) return usage();
    // Everything reachable from the given specs is live; the rest of the
    // cache is from older engine versions or edited specs.
    std::map<std::string, bool> live;
    const dram::TechnologyParams tech = dram::default_technology();
    dram::DramColumn column(tech);
    for (const std::string& spec_path : pos) {
      const std::optional<campaign::CampaignSpec> spec = load(spec_path);
      if (!spec.has_value()) return 1;
      const campaign::CampaignPlan plan = campaign::expand(*spec, column);
      for (const campaign::WorkUnit& u : plan.units)
        live[u.key.hex()] = true;
    }
    const campaign::ResultCache cache(cache_dir);
    const int removed = cache.sweep(live);
    std::printf("campaign gc: %d stale objects removed from %s (%zu live)\n",
                removed, cache_dir.c_str(), live.size());
    return 0;
  }

  (void)eng;
  return usage();
}

// --- service verbs (docs/SERVICE.md) ----------------------------------

volatile std::sig_atomic_t g_stop_signal = 0;
void on_stop_signal(int) { g_stop_signal = 1; }

/// Strip --socket/--runs/--cache/--client + numeric service flags from
/// argv[from..); returns remaining positionals, or nullopt on bad flags.
struct ServiceFlags {
  std::string socket;
  std::string runs = "service-runs";
  std::string cache = "campaign-cache";
  std::string client = "default";
  int workers = 0;
  int io_threads = 4;
  size_t cache_mem = 64ull << 20;
  bool wait = false;
};

bool extract_service_flags(int argc, char** argv, int from,
                           std::vector<std::string>* pos,
                           ServiceFlags* f) {
  for (int i = from; i < argc; ++i) {
    const char* a = argv[i];
    std::string* str = nullptr;
    const char* num = nullptr;
    bool is_workers = false, is_io = false, is_mem = false;
    if (std::strcmp(a, "--wait") == 0) {
      f->wait = true;
      continue;
    }
    if (std::strncmp(a, "--socket=", 9) == 0) {
      f->socket = a + 9;
      continue;
    }
    if (std::strcmp(a, "--socket") == 0) {
      str = &f->socket;
    } else if (std::strncmp(a, "--runs=", 7) == 0) {
      f->runs = a + 7;
      continue;
    } else if (std::strcmp(a, "--runs") == 0) {
      str = &f->runs;
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      f->cache = a + 8;
      continue;
    } else if (std::strcmp(a, "--cache") == 0) {
      str = &f->cache;
    } else if (std::strncmp(a, "--client=", 9) == 0) {
      f->client = a + 9;
      continue;
    } else if (std::strcmp(a, "--client") == 0) {
      str = &f->client;
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      num = a + 10;
      is_workers = true;
    } else if (std::strcmp(a, "--workers") == 0) {
      if (i + 1 >= argc) return false;
      num = argv[++i];
      is_workers = true;
    } else if (std::strncmp(a, "--io-threads=", 13) == 0) {
      num = a + 13;
      is_io = true;
    } else if (std::strcmp(a, "--io-threads") == 0) {
      if (i + 1 >= argc) return false;
      num = argv[++i];
      is_io = true;
    } else if (std::strncmp(a, "--cache-mem=", 12) == 0) {
      num = a + 12;
      is_mem = true;
    } else if (std::strcmp(a, "--cache-mem") == 0) {
      if (i + 1 >= argc) return false;
      num = argv[++i];
      is_mem = true;
    } else if (a[0] == '-') {
      return false;
    } else {
      pos->push_back(a);
      continue;
    }
    if (str) {
      if (i + 1 >= argc) return false;
      *str = argv[++i];
      if (str->empty()) return false;
      continue;
    }
    if (is_mem) {
      // Accepts engineering suffixes ("64M", "1G") like every other
      // byte/ohm quantity on this command line.
      const double v = circuit::parse_spice_number(num);
      if (!(v > 0)) return false;
      f->cache_mem = static_cast<size_t>(v);
      continue;
    }
    char* end = nullptr;
    const long n = std::strtol(num, &end, 10);
    if (end == num || *end != '\0' || n < 1) return false;
    if (is_workers) f->workers = static_cast<int>(n);
    if (is_io) f->io_threads = static_cast<int>(n);
  }
  return true;
}

void print_session_line(const util::json::Value& s) {
  const auto text = [&s](const char* k) {
    const util::json::Value* v = s.find(k);
    return v != nullptr && v->is_string() ? v->string : std::string();
  };
  const auto num = [&s](const char* k) {
    const util::json::Value* v = s.find(k);
    return v != nullptr && v->is_number() ? static_cast<int>(v->number) : 0;
  };
  std::printf(
      "session %s [%s] '%s': %s -- %d/%d resolved (%d computed, %d "
      "cached, %d quarantined, %d skipped)\n",
      text("id").c_str(), text("client").c_str(), text("campaign").c_str(),
      text("state").c_str(), num("total") - num("pending"), num("total"),
      num("done"), num("cached"), num("quarantined"), num("skipped"));
}

int run_serve(const ServiceFlags& f) {
  service::ServerOptions o;
  o.socket_path = f.socket;
  o.runs_dir = f.runs;
  o.cache_dir = f.cache;
  o.workers = f.workers;
  o.io_threads = f.io_threads;
  o.cache_mem_bytes = f.cache_mem;
  service::Server server(dram::default_technology(), o);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::printf("dramstress serve: listening on %s (runs %s, cache %s)\n",
              f.socket.c_str(), f.runs.c_str(), f.cache.c_str());
  std::fflush(stdout);
  std::atomic<bool> done{false};
  std::thread t([&server, &done] {
    server.serve();
    done.store(true);
  });
  // serve() returns on POST /shutdown; a SIGINT/SIGTERM triggers the
  // same graceful drain (running campaigns finish and write reports).
  while (!done.load()) {
    if (g_stop_signal != 0) {
      server.shutdown();
      g_stop_signal = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  t.join();
  std::printf("dramstress serve: drained\n");
  return 0;
}

int run_watch(const ServiceFlags& f, const std::string& id);

int run_submit(const ServiceFlags& f, const std::string& spec_path) {
  std::ifstream file(spec_path);
  if (!file.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  util::json::Value spec;
  try {
    spec = util::json::parse(text.str());
  } catch (const util::json::ParseError& e) {
    std::fprintf(stderr, "error: %s line %d: %s\n", spec_path.c_str(),
                 util::json::line_of(text.str(), e.offset()), e.what());
    return 1;
  }
  util::json::Writer w;
  w.begin_object();
  w.key("client").value(f.client);
  w.key("spec");
  util::json::append(w, spec);
  w.end_object();
  service::Request req;
  req.method = "POST";
  req.target = "/submit";
  req.body = w.str();
  const service::Response resp = service::request(f.socket, req);
  if (resp.status != 202) {
    std::fprintf(stderr, "error: submit rejected (%d %s):\n%s\n",
                 resp.status, service::status_reason(resp.status),
                 resp.body.c_str());
    return 1;
  }
  const util::json::Value st = util::json::parse(resp.body);
  print_session_line(st);
  const util::json::Value* id = st.find("id");
  if (!f.wait || id == nullptr) return 0;
  return run_watch(f, id->string);
}

int run_watch(const ServiceFlags& f, const std::string& id) {
  service::Request req;
  req.method = "GET";
  req.target = "/status/" + id;
  for (;;) {
    const service::Response resp = service::request(f.socket, req);
    if (resp.status != 200) {
      std::fprintf(stderr, "error: %d %s:\n%s\n", resp.status,
                   service::status_reason(resp.status), resp.body.c_str());
      return 1;
    }
    const util::json::Value st = util::json::parse(resp.body);
    print_session_line(st);
    const util::json::Value* fin = st.find("finished");
    if (fin != nullptr && fin->is_bool() && fin->boolean) {
      const util::json::Value* state = st.find("state");
      const util::json::Value* report = st.find("report");
      if (report != nullptr)
        std::printf("report: %s\n", report->string.c_str());
      return state != nullptr && state->string == "finished" ? 0 : 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int run_simple_verb(const ServiceFlags& f, const char* method,
                    const char* target) {
  service::Request req;
  req.method = method;
  req.target = target;
  if (std::strcmp(method, "POST") == 0) req.body = "{}";
  const service::Response resp = service::request(f.socket, req);
  std::printf("%s\n", resp.body.c_str());
  return resp.status < 400 ? 0 : 1;
}

int run_service_verb(const std::string& cmd, int argc, char** argv) {
  ServiceFlags f;
  std::vector<std::string> pos;
  if (!extract_service_flags(argc, argv, 2, &pos, &f)) return usage();
  if (f.socket.empty()) {
    std::fprintf(stderr, "error: %s needs --socket PATH\n", cmd.c_str());
    return 2;
  }
  if (cmd == "serve") {
    if (!pos.empty()) return usage();
    return run_serve(f);
  }
  if (cmd == "submit") {
    if (pos.size() != 1) return usage();
    return run_submit(f, pos[0]);
  }
  if (cmd == "watch") {
    if (pos.size() != 1) return usage();
    return run_watch(f, pos[0]);
  }
  if (cmd == "status") {
    if (!pos.empty()) return usage();
    return run_simple_verb(f, "GET", "/status");
  }
  if (cmd == "shutdown") {
    if (!pos.empty()) return usage();
    return run_simple_verb(f, "POST", "/shutdown");
  }
  return usage();
}

int run_command(const std::string& cmd, int argc, char** argv,
                defect::Defect d, const EngineFlags& eng) {
  const bool verify_only = eng.verify && cmd.empty();
  stress::OptimizerOptions options;
  eng.apply(&options.settings);
  core::StressFlow flow(dram::default_technology(),
                        stress::nominal_condition(), options);
  if (eng.verify) {
    const verify::VerifyReport report = flow.verify();
    std::fputs(report.str().c_str(), stderr);
    if (!report.ok() || (eng.verify_strict && report.warnings() > 0)) {
      std::fprintf(stderr, "error: netlist verification failed%s\n",
                   eng.verify_strict ? " (strict: warnings are fatal)" : "");
      return 1;
    }
    if (verify_only) return 0;
  }
  if (cmd == "analyze") {
    show_border(flow.analyze(d), d);
    return 0;
  }
  if (cmd == "optimize") {
    const auto r = flow.optimize(d);
    show_border(r.nominal_border, d);
    for (const auto& dec : r.decisions)
      std::printf("  %-5s -> %s (%s)\n", stress::to_string(dec.axis),
                  dec.direction().c_str(), stress::to_string(dec.method));
    std::printf("stressed: %s\n", stress::describe(r.stressed_sc).c_str());
    show_border(r.stressed_border, d);
    return 0;
  }
  if (cmd == "report") {
    const auto r = flow.optimize(d);
    std::fputs(core::optimization_report(flow.column(), r).c_str(), stdout);
    return 0;
  }
  if (cmd == "table1") {
    std::fputs(flow.table1().render().c_str(), stdout);
    return 0;
  }
  if (cmd == "ffm") {
    if (argc < 5) return usage();
    const double r = circuit::parse_spice_number(argv[4]);
    defect::Injection inj(flow.column(), d, r);
    dram::ColumnSimulator sim(flow.column(), flow.nominal(),
                              flow.options().settings);
    std::printf("%s at %s: %s\n", d.name().c_str(),
                util::eng(r, "Ohm").c_str(),
                analysis::classify_ffm(sim, d.side).str().c_str());
    return 0;
  }
  if (cmd == "planes") {
    // The three Fig. 2 planes of one defect at the nominal corner; the
    // planes share one Vsa(R) memo, which also exercises the VsaCache
    // counters the metrics smoke test asserts on.
    analysis::PlaneOptions popt;
    popt.num_r_points = eng.r_points;
    dram::ColumnSimulator sim(flow.column(), flow.nominal(),
                              flow.options().settings);
    const analysis::PlaneSet set =
        analysis::generate_plane_set(flow.column(), d, sim, popt);
    auto summarize = [](const char* name, const analysis::ResultPlane& p) {
      double vsa_lo = p.vsa.front(), vsa_hi = p.vsa.front();
      for (const double v : p.vsa) {
        vsa_lo = std::min(vsa_lo, v);
        vsa_hi = std::max(vsa_hi, v);
      }
      std::printf("%s plane: %zu R points x %zu curves, Vsa in [%.3f, %.3f] V\n",
                  name, p.r_values.size(), p.curves.size(), vsa_lo, vsa_hi);
    };
    summarize("w0", set.w0);
    summarize("w1", set.w1);
    summarize("r", set.r);
    return 0;
  }
  return usage();
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  const auto t0 = std::chrono::steady_clock::now();
  // Test-only fault points (docs/SERVICE.md); inert unless the
  // DRAMSTRESS_FAULTS environment variable is set.  Armed before any
  // worker thread exists.
  try {
    util::fault::arm_from_env();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: DRAMSTRESS_FAULTS: %s\n", e.what());
    return 2;
  }
  std::vector<char*> args;
  EngineFlags eng;
  if (!extract_flags(raw_argc, raw_argv, &args, &eng)) return usage();
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  const bool verify_only = eng.verify && argc < 2;
  if (argc < 2 && !verify_only) return usage();
  const std::string cmd = verify_only ? "" : argv[1];

  if (cmd == "check-manifest") {
    if (argc < 3) return usage();
    return check_manifest(argv[2]);
  }

  int rc = 1;
  try {
    if (cmd == "campaign") {
      rc = run_campaign(argc, argv, eng);
    } else if (cmd == "serve" || cmd == "submit" || cmd == "watch" ||
               cmd == "status" || cmd == "shutdown") {
      rc = run_service_verb(cmd, argc, argv);
    } else {
      defect::Defect d{defect::DefectKind::O3, dram::Side::True};
      if (argc > 2 && !parse_defect(argv[2], &d.kind) && cmd != "table1")
        return usage();
      if (argc > 3 && std::strcmp(argv[3], "comp") == 0)
        d.side = dram::Side::Comp;
      rc = run_command(cmd, argc, argv, d, eng);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (rc == 0 && (!eng.metrics_path.empty() || !eng.trace_path.empty())) {
    std::string cmdline;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) cmdline += ' ';
      cmdline += argv[i];
    }
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    try {
      const obs::ManifestInfo info =
          make_manifest_info(eng, cmdline, wall.count());
      if (!eng.metrics_path.empty()) obs::write_manifest(eng.metrics_path, info);
      if (!eng.trace_path.empty()) obs::write_trace(eng.trace_path, info);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return rc;
}
