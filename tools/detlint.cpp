// detlint: the repo's determinism linter (docs/LINT.md, D5xx catalogue).
//
//   detlint src                          # scan a tree (*.hpp, *.cpp, ...)
//   detlint --compdb build/compile_commands.json src
//   detlint --report detlint.json src    # machine-readable findings
//   detlint --self-test tools/detlint_corpus
//
// The engine's headline property -- byte-identical plane/campaign output
// at any thread count and batch width -- is enforced dynamically by diff
// tests and TSan; detlint enforces the *coding rules* that keep it true,
// statically, at lexer level (no libclang; comments and string literals
// are stripped before matching, so diagnostics never fire on prose):
//
//   D501  unordered_map / unordered_set: iteration order is
//         implementation-defined, so any walk feeding output or
//         accumulation is a byte-stability bug.  Pure lookup indexes are
//         fine -- suppress with an allow comment saying so.
//   D502  nondeterminism sources in simulation paths: rand/srand,
//         std::random_device, system_clock / high_resolution_clock /
//         wall-clock time()/clock()/gettimeofday/localtime/gmtime.
//         steady_clock is exempt: monotonic, used only for timeouts and
//         span durations, never in numeric paths.
//   D503  pointer-keyed ordered containers (std::map/set/multimap/
//         multiset with a '*' in the key type): ordered by allocation
//         address, i.e. by allocator mood -- iteration is nondeterministic
//         run to run even though the container is "ordered".
//   D504  float reductions via std::accumulate / std::reduce /
//         std::transform_reduce: reduce's operation order is unspecified,
//         and accumulate hides the summation order from review; numeric
//         reductions belong in the repo's own deterministic helpers.
//   D505  getenv outside the option-resolution layer (util/parallel.cpp,
//         util/log.cpp): configuration must flow through options structs
//         so a run's inputs are captured by its manifest.
//
// Escape hatch: `// detlint:allow(D5xx reason)` on the same line or on
// comment-only lines directly above suppresses one rule with a recorded
// justification.  `--self-test` checks seeded corpus files whose expected
// findings are marked `// detlint:expect(D5xx)`.
//
// Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;
namespace util = dramstress::util;

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string code;  // "D501".."D505"
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;  // line of the suppressed finding
  std::string code;
  std::string reason;
};

/// One logical source line split into executable text and comment text.
struct SourceLine {
  std::string code;     // literals blanked, comments removed
  std::string comment;  // concatenated comment text of the line
};

/// Lexer-level split: strips // and /* */ comments into `comment`, blanks
/// string/char literals (the quotes survive as placeholders so token
/// boundaries stay intact).  Handles line continuations implicitly by
/// working character-wise; raw strings are treated as plain strings,
/// which is fine for linting (their content is blanked either way).
std::vector<SourceLine> split_lines(const std::string& text) {
  std::vector<SourceLine> lines(1);
  enum class State { Code, LineComment, BlockComment, String, Char };
  State st = State::Code;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == State::LineComment) st = State::Code;
      lines.emplace_back();
      continue;
    }
    SourceLine& cur = lines.back();
    switch (st) {
      case State::Code:
        if (c == '/' && next == '/') {
          st = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::BlockComment;
          ++i;
        } else if (c == '"') {
          cur.code += '"';
          st = State::String;
        } else if (c == '\'') {
          cur.code += '\'';
          st = State::Char;
        } else {
          cur.code += c;
        }
        break;
      case State::LineComment:
        cur.comment += c;
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          st = State::Code;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
      case State::String:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          cur.code += '"';
          st = State::Code;
        }
        break;
      case State::Char:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          cur.code += '\'';
          st = State::Code;
        }
        break;
    }
  }
  return lines;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Position of `word` in `s` at an identifier boundary, or npos.
size_t find_word(const std::string& s, const std::string& word,
                 size_t from = 0) {
  for (size_t pos = s.find(word, from); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

/// Last non-space character before `pos`, or '\0'.
char prev_nonspace(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
  }
  return '\0';
}

/// First non-space character at or after `pos`, or '\0'.
char next_nonspace(const std::string& s, size_t pos) {
  while (pos < s.size()) {
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
    ++pos;
  }
  return '\0';
}

/// True when s[..pos) ends with `suffix` (used for "std::" qualification).
bool preceded_by(const std::string& s, size_t pos, const std::string& suffix) {
  return pos >= suffix.size() &&
         s.compare(pos - suffix.size(), suffix.size(), suffix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string trim_copy(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// --- rules ------------------------------------------------------------

void rule_d501(const std::string& line, int /*lineno*/,
               std::vector<std::pair<std::string, std::string>>& out) {
  for (const char* word : {"unordered_map", "unordered_set"}) {
    if (find_word(line, word) == std::string::npos) continue;
    out.push_back(
        {"D501",
         util::format("%s has implementation-defined iteration order; "
                      "iterating it into output or accumulation is "
                      "nondeterministic -- use std::map/std::vector, or "
                      "allow with a lookup-only justification",
                      word)});
  }
}

void rule_d502(const std::string& line, int /*lineno*/,
               std::vector<std::pair<std::string, std::string>>& out) {
  // Unconditionally banned identifiers.
  for (const char* word :
       {"random_device", "system_clock", "high_resolution_clock", "srand",
        "gettimeofday", "localtime", "gmtime"}) {
    if (find_word(line, word) == std::string::npos) continue;
    out.push_back(
        {"D502", util::format("%s is a nondeterminism source; simulation "
                              "paths must be pure functions of their "
                              "options (steady_clock is the one sanctioned "
                              "clock, for timeouts only)",
                              word)});
  }
  // rand/time/clock: only as calls, and not as member access or the
  // declaration of an unrelated method that happens to share the name
  // (`double time(size_t lane)`), which an identifier directly before
  // the word indicates.
  for (const char* word : {"rand", "time", "clock"}) {
    for (size_t pos = find_word(line, word); pos != std::string::npos;
         pos = find_word(line, word, pos + 1)) {
      const size_t end = pos + std::string(word).size();
      if (next_nonspace(line, end) != '(') continue;  // not a call
      const bool std_qualified = preceded_by(line, pos, "std::");
      if (!std_qualified) {
        const char before = prev_nonspace(line, pos);
        // '.'/'->' member access, '::' other-namespace qualification, and
        // a preceding identifier (a declaration like `double time(...)`)
        // are all legitimate same-named entities, not the C library.
        if (before == '.' || before == ':' || before == '>') continue;
        if (ident_char(before)) continue;
      }
      out.push_back(
          {"D502", util::format("%s() reads wall-clock/PRNG state; "
                                "simulation paths must be pure functions "
                                "of their options",
                                word)});
      break;  // one finding per word per line
    }
  }
}

void rule_d503(const std::string& line, int /*lineno*/,
               std::vector<std::pair<std::string, std::string>>& out) {
  for (const char* word : {"map", "set", "multimap", "multiset"}) {
    for (size_t pos = find_word(line, word); pos != std::string::npos;
         pos = find_word(line, word, pos + 1)) {
      const size_t open = pos + std::string(word).size();
      if (open >= line.size() || line[open] != '<') continue;
      // First template argument: scan to the matching ',' or '>' at
      // depth 0, then look for a pointer declarator in it.
      int depth = 0;
      std::string key;
      for (size_t i = open + 1; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') {
          if (depth == 0) break;
          --depth;
        }
        if (c == ',' && depth == 0) break;
        key += c;
      }
      if (key.find('*') == std::string::npos) continue;
      out.push_back(
          {"D503",
           util::format("std::%s keyed on a pointer type (%s) orders by "
                        "allocation address: iteration is nondeterministic "
                        "run to run -- key on a name or stable id instead",
                        word, trim_copy(key).c_str())});
    }
  }
}

void rule_d504(const std::string& line, int /*lineno*/,
               std::vector<std::pair<std::string, std::string>>& out) {
  for (const char* word : {"accumulate", "reduce", "transform_reduce"}) {
    if (find_word(line, word) == std::string::npos) continue;
    out.push_back(
        {"D504",
         util::format("std::%s hides (or, for reduce, unspecifies) the "
                      "floating-point summation order; numeric reductions "
                      "belong in the repo's explicit loops or whitelisted "
                      "deterministic helpers",
                      word)});
  }
}

void rule_d505(const std::string& line, int /*lineno*/, bool whitelisted,
               std::vector<std::pair<std::string, std::string>>& out) {
  if (whitelisted) return;
  if (find_word(line, "getenv") == std::string::npos) return;
  out.push_back(
      {"D505", "getenv outside the option-resolution layer "
               "(util/parallel.cpp, util/log.cpp): configuration must "
               "flow through options structs so the run manifest "
               "captures it"});
}

// --- allow / expect comments ------------------------------------------

/// Extract every "detlint:<verb>(D5xx ...)" marker from comment text.
std::vector<std::pair<std::string, std::string>> markers(
    const std::string& comment, const std::string& verb) {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string tag = "detlint:" + verb + "(";
  for (size_t pos = comment.find(tag); pos != std::string::npos;
       pos = comment.find(tag, pos + 1)) {
    const size_t open = pos + tag.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    const std::string body = comment.substr(open, close - open);
    const size_t sp = body.find_first_of(" \t");
    const std::string code = sp == std::string::npos ? body : body.substr(0, sp);
    const std::string reason =
        sp == std::string::npos ? "" : trim_copy(body.substr(sp));
    out.push_back({code, reason});
  }
  return out;
}

/// detlint:allow(code ...) markers that apply to `lineno` (1-based): same
/// line, or a contiguous run of comment-only lines directly above.
std::vector<std::pair<std::string, std::string>> allows_for(
    const std::vector<SourceLine>& lines, int lineno) {
  std::vector<std::pair<std::string, std::string>> out;
  const auto collect = [&out](const SourceLine& l) {
    for (auto& m : markers(l.comment, "allow")) out.push_back(std::move(m));
  };
  collect(lines[static_cast<size_t>(lineno - 1)]);
  for (int i = lineno - 1; i >= 1; --i) {
    const SourceLine& above = lines[static_cast<size_t>(i - 1)];
    const bool comment_only =
        trim_copy(above.code).empty() && !above.comment.empty();
    if (!comment_only) break;
    collect(above);
  }
  return out;
}

// --- per-file scan ----------------------------------------------------

struct FileResult {
  std::vector<Finding> findings;          // unsuppressed
  std::vector<Suppression> suppressions;  // allow comments that fired
  std::vector<Finding> expected;          // detlint:expect markers
};

bool getenv_whitelisted(const std::string& path) {
  const std::string norm = fs::path(path).generic_string();
  return ends_with(norm, "util/parallel.cpp") ||
         ends_with(norm, "util/log.cpp");
}

FileResult scan_file(const std::string& path, const std::string& text) {
  FileResult res;
  const std::vector<SourceLine> lines = split_lines(text);
  const bool d505_ok = getenv_whitelisted(path);
  for (size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& [code, reason] : markers(lines[i].comment, "expect"))
      res.expected.push_back({path, lineno, code, reason});

    // Preprocessor directives are exempt: `#include <unordered_map>` is
    // not a use, and the rules target expression/declaration contexts.
    const std::string trimmed = trim_copy(lines[i].code);
    if (!trimmed.empty() && trimmed[0] == '#') continue;

    std::vector<std::pair<std::string, std::string>> hits;
    rule_d501(lines[i].code, lineno, hits);
    rule_d502(lines[i].code, lineno, hits);
    rule_d503(lines[i].code, lineno, hits);
    rule_d504(lines[i].code, lineno, hits);
    rule_d505(lines[i].code, lineno, d505_ok, hits);
    if (hits.empty()) continue;

    const auto allows = allows_for(lines, lineno);
    for (const auto& [code, message] : hits) {
      const auto it = std::find_if(
          allows.begin(), allows.end(),
          [&code](const auto& a) { return a.first == code; });
      if (it != allows.end()) {
        res.suppressions.push_back({path, lineno, code, it->second});
      } else {
        res.findings.push_back({path, lineno, code, message});
      }
    }
  }
  return res;
}

// --- input collection -------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".inl";
}

/// Deck of files to scan: positional paths (files or trees) plus the
/// source files of a compile_commands.json.  Sorted + deduped, so the
/// scan order -- and every report byte -- is independent of filesystem
/// enumeration order.
std::vector<std::string> collect(const std::vector<std::string>& paths,
                                 const std::string& compdb) {
  // Absolute, normalized paths so the same file reached through the
  // compdb and through a positional tree dedupes.
  const auto canon = [](const fs::path& p) {
    return fs::absolute(p).lexically_normal().generic_string();
  };
  std::set<std::string> files;
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p))
        if (e.is_regular_file() && lintable(e.path()))
          files.insert(canon(e.path()));
    } else {
      files.insert(canon(p));
    }
  }
  if (!compdb.empty()) {
    // Scope compdb entries to the positional trees (when given): the
    // determinism rules bind src/, not tests or tools, but generated TUs
    // under a scanned tree must not escape by being absent on disk walks.
    std::vector<std::string> roots;
    for (const std::string& p : paths)
      if (fs::is_directory(p)) roots.push_back(canon(p) + "/");
    std::ifstream in(compdb);
    if (!in.good())
      throw dramstress::ModelError("detlint: cannot open compdb " + compdb);
    std::ostringstream text;
    text << in.rdbuf();
    const util::json::Value root = util::json::parse(text.str());
    for (const util::json::Value& entry : root.array) {
      const util::json::Value* file = entry.find("file");
      const util::json::Value* dir = entry.find("directory");
      if (file == nullptr || !file->is_string()) continue;
      fs::path p = file->string;
      if (p.is_relative() && dir != nullptr && dir->is_string())
        p = fs::path(dir->string) / p;
      if (!lintable(p)) continue;
      const std::string c = canon(p);
      const bool in_scope =
          roots.empty() ||
          std::any_of(roots.begin(), roots.end(), [&c](const std::string& r) {
            return c.compare(0, r.size(), r) == 0;
          });
      if (in_scope) files.insert(c);
    }
  }
  return {files.begin(), files.end()};
}

// --- report -----------------------------------------------------------

void write_report(const std::string& path, const std::vector<Finding>& findings,
                  const std::vector<Suppression>& suppressions,
                  size_t files_scanned) {
  util::json::Writer w;
  w.begin_object();
  w.key("detlint_version").value(1l);
  w.key("files_scanned").value(static_cast<long>(files_scanned));
  w.key("findings");
  w.begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.key("file").value(f.file);
    w.key("line").value(static_cast<long>(f.line));
    w.key("code").value(f.code);
    w.key("message").value(f.message);
    w.end_object();
  }
  w.end_array();
  w.key("suppressions");
  w.begin_array();
  for (const Suppression& s : suppressions) {
    w.begin_object();
    w.key("file").value(s.file);
    w.key("line").value(static_cast<long>(s.line));
    w.key("code").value(s.code);
    w.key("reason").value(s.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path, std::ios::trunc);
  if (!out.good())
    throw dramstress::ModelError("detlint: cannot write report " + path);
  out << w.str() << '\n';
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--compdb FILE] [--report FILE] [--self-test] "
               "PATH...\n"
               "scan C++ sources for determinism-rule violations "
               "(D501..D505, docs/LINT.md)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compdb;
  std::string report_path;
  bool self_test = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--compdb" && i + 1 < argc) {
      compdb = argv[++i];
    } else if (a == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (a == "--self-test") {
      self_test = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty() && compdb.empty()) return usage(argv[0]);

  try {
    const std::vector<std::string> files = collect(paths, compdb);
    if (files.empty()) {
      std::fprintf(stderr, "detlint: nothing to scan\n");
      return 2;
    }
    std::vector<Finding> findings;
    std::vector<Finding> expected;
    std::vector<Suppression> suppressions;
    for (const std::string& f : files) {
      std::ifstream in(f);
      if (!in.good()) {
        std::fprintf(stderr, "detlint: cannot open %s\n", f.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      FileResult res = scan_file(f, text.str());
      findings.insert(findings.end(), res.findings.begin(),
                      res.findings.end());
      expected.insert(expected.end(), res.expected.begin(),
                      res.expected.end());
      suppressions.insert(suppressions.end(), res.suppressions.begin(),
                          res.suppressions.end());
    }

    if (self_test) {
      // Exact match between seeded expect markers and produced findings:
      // a missed violation and a spurious finding both fail.
      const auto key = [](const Finding& f) {
        return f.file + ":" + util::format("%d", f.line) + ":" + f.code;
      };
      std::set<std::string> want;
      std::set<std::string> got;
      for (const Finding& f : expected) want.insert(key(f));
      for (const Finding& f : findings) got.insert(key(f));
      int bad = 0;
      for (const std::string& k : want) {
        if (got.count(k) != 0) continue;
        ++bad;
        std::fprintf(stderr, "self-test MISSED expected finding %s\n",
                     k.c_str());
      }
      for (const std::string& k : got) {
        if (want.count(k) != 0) continue;
        ++bad;
        std::fprintf(stderr, "self-test SPURIOUS finding %s\n", k.c_str());
      }
      std::printf("detlint self-test: %zu expected, %zu produced, %d "
                  "mismatch(es) over %zu file(s)\n",
                  want.size(), got.size(), bad, files.size());
      return bad == 0 ? 0 : 1;
    }

    for (const Finding& f : findings)
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.code.c_str(),
                  f.message.c_str());
    if (!report_path.empty())
      write_report(report_path, findings, suppressions, files.size());
    std::printf("detlint: %zu finding(s), %zu suppression(s) over %zu "
                "file(s)\n",
                findings.size(), suppressions.size(), files.size());
    return findings.empty() ? 0 : 1;
  } catch (const dramstress::Error& e) {
    std::fprintf(stderr, "detlint: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlint: %s\n", e.what());
    return 2;
  }
}
