// minispice: run a SPICE-dialect deck with the bundled electrical engine.
//
//   minispice deck.sp            # run .tran, print probes as CSV to stdout
//   minispice deck.sp --plot     # ASCII-plot the probes instead
//   minispice deck.sp --lint     # static verification only: report
//                                # diagnostics with deck line numbers and
//                                # exit 1 on errors (docs/LINT.md)
//
// Supported dialect: see circuit/spice_reader.hpp.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/mna.hpp"
#include "circuit/spice_reader.hpp"
#include "circuit/transient.hpp"
#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "verify/netlist_lint.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <deck.sp> [--plot|--lint]\n", argv[0]);
    return 2;
  }
  const std::string mode = argc > 2 ? argv[2] : "";
  const bool plot = mode == "--plot";
  const bool lint = mode == "--lint";

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    SpiceDeck deck = parse_spice(buffer.str());
    if (!deck.title.empty())
      std::fprintf(stderr, "* %s\n", deck.title.c_str());
    if (lint) {
      verify::LintOptions opt;
      opt.source_lines = &deck.device_lines;
      const verify::VerifyReport report =
          verify::NetlistLinter(opt).lint(*deck.netlist);
      std::fputs(report.str().c_str(), stdout);
      return report.ok() ? 0 : 1;
    }
    if (deck.tran_stop <= 0.0) {
      std::fprintf(stderr, "deck has no .tran card\n");
      return 2;
    }

    MnaSystem sys(*deck.netlist);
    TransientOptions opt;
    opt.dt = deck.tran_step;
    opt.temperature = units::celsius_to_kelvin(deck.temp_c);
    TransientSim sim(sys, opt);
    for (const auto& [node, volts] : deck.initial_conditions)
      sim.set_initial_condition(deck.netlist->find_node(node), volts);
    for (const std::string& probe : deck.probes)
      sim.add_probe(probe, deck.netlist->find_node(probe));
    sim.run(deck.tran_stop);

    const Trace& trace = sim.trace();
    if (plot) {
      std::vector<util::Series> series;
      for (size_t p = 0; p < trace.names.size(); ++p)
        series.push_back({trace.names[p], static_cast<char>('1' + p),
                          trace.time, trace.samples[p]});
      util::PlotOptions po;
      po.title = deck.title.empty() ? argv[1] : deck.title;
      po.x_label = "t [s]";
      std::printf("%s", util::ascii_plot(series, po).c_str());
    } else {
      std::printf("time");
      for (const auto& name : trace.names) std::printf(",%s", name.c_str());
      std::printf("\n");
      for (size_t i = 0; i < trace.time.size(); ++i) {
        std::printf("%.9g", trace.time[i]);
        for (const auto& samples : trace.samples)
          std::printf(",%.6g", samples[i]);
        std::printf("\n");
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
