// minispice: run a SPICE-dialect deck with the bundled electrical engine.
//
//   minispice deck.sp            # run .tran, print probes as CSV to stdout
//   minispice deck.sp --plot     # ASCII-plot the probes instead
//   minispice deck.sp --lint     # static verification only: report
//                                # diagnostics with deck line numbers and
//                                # exit 1 on errors (docs/LINT.md)
//
// --metrics FILE / --trace FILE write a run manifest / span trace after a
// successful .tran run (schemas: docs/OBSERVABILITY.md).
//
// Supported dialect: see circuit/spice_reader.hpp.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/spice_reader.hpp"
#include "circuit/transient.hpp"
#include "obs/manifest.hpp"
#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/preflight.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

int main(int raw_argc, char** raw_argv) {
  const auto t0 = std::chrono::steady_clock::now();
  // Strip --metrics/--trace before the positional parse.
  std::string metrics_path;
  std::string trace_path;
  std::vector<char*> args;
  for (int i = 0; i < raw_argc; ++i) {
    std::string* path = nullptr;
    if (std::strncmp(raw_argv[i], "--metrics=", 10) == 0) {
      metrics_path = raw_argv[i] + 10;
    } else if (std::strcmp(raw_argv[i], "--metrics") == 0) {
      path = &metrics_path;
    } else if (std::strncmp(raw_argv[i], "--trace=", 8) == 0) {
      trace_path = raw_argv[i] + 8;
    } else if (std::strcmp(raw_argv[i], "--trace") == 0) {
      path = &trace_path;
    } else {
      args.push_back(raw_argv[i]);
      continue;
    }
    if (path) {
      if (i + 1 >= raw_argc) {
        std::fprintf(stderr, "%s needs a file argument\n", raw_argv[i]);
        return 2;
      }
      *path = raw_argv[++i];
    }
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <deck.sp> [--plot|--lint] [--metrics FILE] "
                 "[--trace FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argc > 2 ? argv[2] : "";
  const bool plot = mode == "--plot";
  const bool lint = mode == "--lint";

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    SpiceDeck deck = parse_spice(buffer.str());
    if (!deck.title.empty())
      std::fprintf(stderr, "* %s\n", deck.title.c_str());
    if (lint) {
      verify::LintOptions opt;
      opt.source_lines = &deck.device_lines;
      verify::VerifyReport report =
          verify::NetlistLinter(opt).lint(*deck.netlist);
      // Numeric pre-flight (E4xx).  minispice runs the fixed-step path,
      // so the adaptive-only checks (E403/E404) are skipped.
      verify::PreflightOptions pre;
      pre.adaptive = false;
      pre.t_stop = deck.tran_stop;
      pre.source_lines = &deck.device_lines;
      report.merge(verify::preflight_numeric(*deck.netlist, pre));
      std::fputs(report.str().c_str(), stdout);
      return report.ok() ? 0 : 1;
    }
    if (deck.tran_stop <= 0.0) {
      std::fprintf(stderr, "deck has no .tran card\n");
      return 2;
    }

    MnaSystem sys(*deck.netlist);
    TransientOptions opt;
    opt.dt = deck.tran_step;
    opt.temperature = units::celsius_to_kelvin(deck.temp_c);
    TransientSim sim(sys, opt);
    for (const auto& [node, volts] : deck.initial_conditions)
      sim.set_initial_condition(deck.netlist->find_node(node), volts);
    for (const std::string& probe : deck.probes)
      sim.add_probe(probe, deck.netlist->find_node(probe));
    sim.run(deck.tran_stop);

    const Trace& trace = sim.trace();
    if (plot) {
      std::vector<util::Series> series;
      for (size_t p = 0; p < trace.names.size(); ++p)
        series.push_back({trace.names[p], static_cast<char>('1' + p),
                          trace.time, trace.samples[p]});
      util::PlotOptions po;
      po.title = deck.title.empty() ? argv[1] : deck.title;
      po.x_label = "t [s]";
      std::printf("%s", util::ascii_plot(series, po).c_str());
    } else {
      std::printf("time");
      for (const auto& name : trace.names) std::printf(",%s", name.c_str());
      std::printf("\n");
      for (size_t i = 0; i < trace.time.size(); ++i) {
        std::printf("%.9g", trace.time[i]);
        for (const auto& samples : trace.samples)
          std::printf(",%.6g", samples[i]);
        std::printf("\n");
      }
    }
    if (!metrics_path.empty() || !trace_path.empty()) {
      obs::ManifestInfo info;
      info.tool = "minispice";
      info.command = std::string(argv[1]) + (mode.empty() ? "" : " " + mode);
      info.settings_number["dt"] = deck.tran_step;
      info.settings_number["t_stop"] = deck.tran_stop;
      info.settings_number["temp_c"] = deck.temp_c;
      info.settings_flag["adaptive"] = opt.adaptive;
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - t0;
      info.duration_s = wall.count();
      if (!metrics_path.empty()) obs::write_manifest(metrics_path, info);
      if (!trace_path.empty()) obs::write_trace(trace_path, info);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
