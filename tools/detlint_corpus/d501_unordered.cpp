// detlint self-test corpus: D501, unordered containers.
// Not compiled -- scanned by `detlint --self-test` (tools/CMakeLists.txt);
// each seeded violation carries a detlint:expect marker on its line.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Registry {
  std::unordered_map<std::string, int> by_name;  // detlint:expect(D501)
  std::unordered_set<int> live;                  // detlint:expect(D501)
};

// The escape hatch: a justified allow suppresses the finding, so no
// expect marker here -- a spurious finding on this line fails the
// self-test, proving the suppression path works.
// detlint:allow(D501 corpus: lookup-only index, never iterated)
std::unordered_map<const void*, int> lookup_only_index;

// Prose and literals never fire: unordered_map<int, int> in a comment.
const char* kDoc = "unordered_map<int, int> in a string literal";
