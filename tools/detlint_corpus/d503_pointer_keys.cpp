// detlint self-test corpus: D503, pointer-keyed ordered containers.
// Not compiled -- scanned by `detlint --self-test`.
#include <map>
#include <set>
#include <string>

struct Device;

std::map<const Device*, int> by_address;     // detlint:expect(D503)
std::set<Device*> live_devices;              // detlint:expect(D503)
std::multimap<void*, int> scratch;           // detlint:expect(D503)

// Pointer *values* are fine -- only the key's ordering matters.
std::map<std::string, Device*> by_name;

// Name-keyed containers are the sanctioned replacement.
std::map<std::string, int> ranks;
std::set<int> ids;
