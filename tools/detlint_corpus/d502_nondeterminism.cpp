// detlint self-test corpus: D502, nondeterminism sources.
// Not compiled -- scanned by `detlint --self-test`.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int wall_clock_sins() {
  std::srand(42);                            // detlint:expect(D502)
  int x = std::rand();                       // detlint:expect(D502)
  x += rand();                               // detlint:expect(D502)
  std::random_device entropy;                // detlint:expect(D502)
  x += static_cast<int>(entropy());
  auto wall = std::chrono::system_clock::now();  // detlint:expect(D502)
  (void)wall;
  auto hi = std::chrono::high_resolution_clock::now();  // detlint:expect(D502)
  (void)hi;
  std::time_t t = std::time(nullptr);        // detlint:expect(D502)
  struct tm* lt = std::localtime(&t);        // detlint:expect(D502)
  (void)lt;
  return x;
}

struct Lane {
  double time(int lane) const { return 0.0 * lane; }  // declaration: clean
};

double sanctioned(const Lane& l) {
  // steady_clock is monotonic and sanctioned for timeouts; method calls
  // named time() are not the C library.
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return l.time(0);
}
