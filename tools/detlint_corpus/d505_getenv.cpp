// detlint self-test corpus: D505, getenv outside option resolution.
// Not compiled -- scanned by `detlint --self-test`.  This file is not
// util/parallel.cpp or util/log.cpp, so getenv fires.
#include <cstdlib>

const char* sneaky_config() {
  return std::getenv("DRAMSTRESS_SNEAKY");  // detlint:expect(D505)
}

// detlint:allow(D505 corpus: demonstrating the escape hatch)
const char* allowed_config() { return std::getenv("DRAMSTRESS_ALLOWED"); }
