// detlint self-test corpus: D504, hidden floating-point reductions.
// Not compiled -- scanned by `detlint --self-test`.
#include <numeric>
#include <vector>

double hidden_sums(const std::vector<double>& v) {
  double a = std::accumulate(v.begin(), v.end(), 0.0);  // detlint:expect(D504)
  double b = std::reduce(v.begin(), v.end());           // detlint:expect(D504)
  double c = std::transform_reduce(                     // detlint:expect(D504)
      v.begin(), v.end(), 0.0, [](double x, double y) { return x + y; },
      [](double x) { return x * x; });
  return a + b + c;
}

double whitelisted_helper(const std::vector<double>& v) {
  // detlint:allow(D504 corpus: whitelisted deterministic helper)
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// The sanctioned form: an explicit loop with reviewable order.
double explicit_sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}
