#!/usr/bin/env bash
# Static analysis over the library and tool sources:
#   1. detlint -- the in-repo determinism linter (D5xx, docs/LINT.md),
#      built from tools/detlint.cpp; any unsuppressed finding fails.
#   2. clang-tidy (profile: .clang-tidy) over the compilation database
#      that CMake exports.
#
#   tools/lint.sh [build-dir]      default build dir: build
#
# detlint always runs (it is built by the repo's own toolchain); the
# clang-tidy stage exits 0 with a notice when no clang-tidy binary is
# installed, so the script is safe to call unconditionally from CI images
# that lack the clang tooling.  Everything else propagates the tools'
# exit status.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: $build_dir/compile_commands.json missing;" \
       "configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

# --- determinism linter ------------------------------------------------
detlint="$build_dir/tools/detlint"
if [[ ! -x "$detlint" ]]; then
  echo "lint.sh: building detlint"
  cmake --build "$build_dir" --target detlint -j > /dev/null
fi
echo "lint.sh: detlint over src/ (db: $build_dir)"
"$detlint" --compdb "$build_dir/compile_commands.json" \
    --report "$build_dir/detlint.json" src

# --- clang-tidy --------------------------------------------------------
tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "lint.sh: no clang-tidy binary found; skipping static analysis" >&2
  exit 0
fi

# Library + tool translation units; tests are covered by the compiler's
# -Wall -Wextra (-Werror in tier-1) and gtest's own checks.
mapfile -t sources < <(find src tools -name '*.cpp' | sort)

echo "lint.sh: $tidy over ${#sources[@]} files (db: $build_dir)"
"$tidy" -p "$build_dir" --quiet "${sources[@]}"
