#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over the library and tool sources
# using the compilation database that CMake exports.
#
#   tools/lint.sh [build-dir]      default build dir: build
#
# Exits 0 with a notice when no clang-tidy binary is installed, so the
# script is safe to call unconditionally from CI images that lack the
# clang tooling; everything else propagates clang-tidy's exit status.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "lint.sh: no clang-tidy binary found; skipping static analysis" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: $build_dir/compile_commands.json missing;" \
       "configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

# Library + tool translation units; tests are covered by the compiler's
# -Wall -Wextra (-Werror in tier-1) and gtest's own checks.
mapfile -t sources < <(find src tools -name '*.cpp' | sort)

echo "lint.sh: $tidy over ${#sources[@]} files (db: $build_dir)"
"$tidy" -p "$build_dir" --quiet "${sources[@]}"
