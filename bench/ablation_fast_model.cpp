// Ablation: accuracy and speed of the calibrated behavioural cell model
// against the full electrical simulation (DESIGN.md: the fast model makes
// Shmoo grids and march-coverage sweeps affordable; this bench bounds its
// error).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/border.hpp"
#include "stress/stress.hpp"
#include "analysis/fast_model.hpp"
#include "bench/bench_common.hpp"
#include "numeric/interp.hpp"

using namespace dramstress;

namespace {

void BM_SpiceWriteCycle(benchmark::State& state) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  defect::Injection inj(column, d, 200e3);
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    const auto r = sim.run({dram::Operation::w0()}, 2.4, dram::Side::True);
    benchmark::DoNotOptimize(r.final_vc);
  }
}
BENCHMARK(BM_SpiceWriteCycle);

void BM_FastModelWriteCycle(benchmark::State& state) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  analysis::FastCellModel model =
      analysis::FastCellModel::calibrate(column, d, sim);
  model.set_defect_resistance(200e3);
  for (auto _ : state) {
    model.set_vc(2.4);
    model.write(0);
    benchmark::DoNotOptimize(model.vc());
  }
}
BENCHMARK(BM_FastModelWriteCycle);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation -- fast behavioural model vs full SPICE");

  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());

  // Vc-after-w0 agreement across the resistance sweep.
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  analysis::FastCellModel model =
      analysis::FastCellModel::calibrate(column, d, sim);
  util::CsvTable csv({"r_ohm", "vc_spice", "vc_fast", "error_v"});
  double worst = 0.0;
  for (double r : numeric::logspace(30e3, 3e6, 9)) {
    defect::Injection inj(column, d, r);
    const auto spice = sim.run({dram::Operation::w0()}, 2.4, dram::Side::True);
    model.set_defect_resistance(r);
    model.set_vc(2.4);
    model.write(0);
    const double err = model.vc() - spice.vc_after(0);
    worst = std::max(worst, std::abs(err));
    csv.add_row({r, spice.vc_after(0), model.vc(), err});
    std::printf("R=%-10s spice=%.3f fast=%.3f err=%+.3f V\n",
                util::eng(r, "Ohm").c_str(), spice.vc_after(0), model.vc(),
                err);
  }
  bench::write_csv(csv, "ablation_fast_model");
  std::printf("worst-case Vc error over the sweep: %.3f V\n\n", worst);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
