// Shared helpers for the figure/table regeneration benches.
//
// Every bench prints the paper artifact it regenerates (ASCII plot or
// table) to stdout and writes machine-readable CSV next to the working
// directory (EXPERIMENTS.md indexes the shape criteria per artifact).
#pragma once

#include <cstdio>
#include <string>

#include "analysis/result_plane.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace dramstress::bench {

inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void write_csv(const util::CsvTable& table, const std::string& name) {
  const std::string path = name + ".csv";
  table.write_file(path);
  std::printf("[csv] wrote %s (%zu rows)\n", path.c_str(), table.num_rows());
}

/// Render a result plane the way the paper's Figs. 2/6 panels look:
/// every operation curve plus the bold Vsa curve over log R.
inline std::string render_plane(const analysis::ResultPlane& plane,
                                const std::string& title) {
  std::vector<util::Series> series;
  static const char glyphs[] = {'1', '2', '3', '4', '5', '6', 'a', 'b',
                                'c', 'd', 'e', 'f'};
  for (size_t c = 0; c < plane.curves.size(); ++c) {
    util::Series s;
    const auto& curve = plane.curves[c];
    s.name = util::format("(%d)%s%s", curve.op_number,
                          dram::to_string(plane.op),
                          curve.from_above ? " (from above Vsa)"
                          : plane.op == dram::OpKind::R ? " (from below Vsa)"
                                                        : "");
    s.glyph = glyphs[c % sizeof(glyphs)];
    s.x = plane.r_values;
    s.y = curve.vc;
    series.push_back(std::move(s));
  }
  util::Series vsa;
  vsa.name = "Vsa threshold";
  vsa.glyph = '#';
  vsa.x = plane.r_values;
  vsa.y = plane.vsa;
  series.push_back(std::move(vsa));

  util::PlotOptions opt;
  opt.title = title;
  opt.log_x = true;
  opt.x_label = "R [Ohm]";
  opt.y_label = "Vc";
  return util::ascii_plot(series, opt);
}

/// CSV dump of a plane (one row per R: curves..., vsa).
inline util::CsvTable plane_csv(const analysis::ResultPlane& plane) {
  std::vector<std::string> cols{"r_ohm"};
  for (const auto& c : plane.curves)
    cols.push_back(util::format("vc_op%d%s", c.op_number,
                                c.from_above ? "_above" : ""));
  cols.push_back("vsa");
  util::CsvTable table(cols);
  for (size_t i = 0; i < plane.r_values.size(); ++i) {
    std::vector<double> row{plane.r_values[i]};
    for (const auto& c : plane.curves) row.push_back(c.vc[i]);
    row.push_back(plane.vsa[i]);
    table.add_row(row);
  }
  return table;
}

}  // namespace dramstress::bench
