// Extension bench: the inter-cell coupling bridge (B3), beyond the paper's
// Fig. 7 set (cf. the authors' later bit-line coupling work).
//
// Shows why coupling defects need aggressor operations: the single-cell
// candidate conditions of the paper's Table 1 only see B3 as a weak
// retention fault, while a victim-write / aggressor-write / victim-read
// condition catches it decades earlier.
#include <cstdio>

#include "analysis/border.hpp"
#include "bench/bench_common.hpp"
#include "stress/stress.hpp"

using namespace dramstress;

int main() {
  bench::banner("inter-cell coupling bridge (B3)");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::B3, dram::Side::True};
  dram::ColumnSimulator sim(column, stress::nominal_condition());

  analysis::BorderOptions single_cell;
  analysis::BorderOptions with_coupling;
  with_coupling.detection.include_coupling = true;

  const analysis::BorderResult br_single =
      analysis::analyze_defect(column, d, sim, single_cell);
  const analysis::BorderResult br_coupled =
      analysis::analyze_defect(column, d, sim, with_coupling);

  const auto range = defect::default_sweep_range(d.kind);
  auto show = [&](const char* label, const analysis::BorderResult& br) {
    if (br.br.has_value()) {
      std::printf("%-24s: BR = %-12s condition '%s' (%.2f failing decades)\n",
                  label, util::eng(*br.br, "Ohm").c_str(),
                  br.condition.str().c_str(), br.failing_decades(range));
    } else {
      std::printf("%-24s: no fault found\n", label);
    }
  };
  show("single-cell candidates", br_single);
  show("with aggressor ops", br_coupled);

  // Victim disturbance trace: victim at 1, aggressor hammers 0.
  util::CsvTable csv({"r_ohm", "vc_after_2_aggressor_w0", "victim_read"});
  std::printf("\nvictim Vc after 'w1 n:w0 n:w0' per bridge resistance:\n");
  for (double r : numeric::logspace(10e3, 10e9, 7)) {
    defect::Injection inj(column, d, r);
    const auto run = sim.run({dram::Operation::w1(), dram::Operation::nw0(),
                              dram::Operation::nw0(), dram::Operation::r()},
                             0.0, d.side);
    std::printf("  R=%-10s Vc=%.3f read=%d\n", util::eng(r, "Ohm").c_str(),
                run.vc_after(2), run.last_read_bit());
    csv.add_row({r, run.vc_after(2),
                 static_cast<double>(run.last_read_bit())});
  }
  bench::write_csv(csv, "coupling_bridge");

  // The coupling signature: the fault depends on the *aggressor's data*.
  // With the neighbour holding 1, the same bridge sustains the victim's 1
  // instead of draining it -- a state-dependent (CFst-like) behaviour that
  // single-cell fault models cannot express.
  std::printf("\nstate dependence at R = 300 MOhm (del 100 us):\n");
  defect::Injection inj(column, d, 300e6);
  const auto drained = sim.run({dram::Operation::nw0(), dram::Operation::w1(),
                                dram::Operation::del(100e-6),
                                dram::Operation::r()},
                               0.0, d.side);
  const auto held = sim.run({dram::Operation::nw1(), dram::Operation::w1(),
                             dram::Operation::del(100e-6),
                             dram::Operation::r()},
                            0.0, d.side);
  std::printf("  aggressor=0: victim r1 -> %d (drained through the bridge)\n",
              drained.last_read_bit());
  std::printf("  aggressor=1: victim r1 -> %d (sustained by the bridge)\n",
              held.last_read_bit());
  return 0;
}
