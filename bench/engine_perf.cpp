// Engine microbenchmarks: the cost centres of the whole flow.
//  * dense LU factorization at MNA-typical sizes, and sparse
//    refactorization of the actual column Jacobian for comparison,
//  * one Newton-converged transient step of the full column,
//  * a complete memory operation cycle,
//  * one Vsa extraction (the inner loop of every result plane),
//  * generate_plane_set end to end: the seed serial path (1 thread, no Vsa
//    memoization) vs. the parallel engine (pool + VsaCache),
//  * the transient-engine ladder on the Fig. 2 plane workload (1 thread):
//    seed fixed-dt dense vs fixed-dt sparse vs adaptive (LTE) + sparse vs
//    the batched ensemble engine (adaptive + sparse + N lanes per solve),
//  * observability overhead: the adaptive+sparse plane workload with metric
//    and span collection on vs. suspended (obs::set_collecting); the
//    acceptance ceiling is <2% overhead,
//  * the Table 1 rung: BR at 3 Vdd values x 7 defects x 2 bitlines, the
//    surrogate warm-start chain vs. cold classic searches, counted in full
//    transients (table1_transients in the JSON); the acceptance floor is a
//    >= 5x transient reduction with every BR within the bisection tolerance
//    of its classic value.
//
// All comparisons are written to BENCH_engine.json (wall time and
// points/sec per variant plus the speedups), together with the full metric
// dump of the instrumented adaptive run, so the perf trajectory is
// self-describing across PRs.  The engine acceptance floors are
// adaptive_sparse_speedup >= 3 over the seed fixed-dense configuration and
// ensemble_speedup >= 2.5 over adaptive+sparse.  The JSON lands in the
// repo root (DRAMSTRESS_BENCH_OUT_DIR) regardless of the runner's CWD.
// Flags: --r-points=N shrinks the sweep grid, --threads=N caps the pool,
// --batch=N sets the ensemble rung's lane count (default 12, the measured
// sweet spot on the Fig. 2 grid -- wider batches fill rounds better until
// the lane-major working set outgrows the cache), --reps=N
// takes the best of N runs per ladder rung (default 2 -- scheduler noise
// on a loaded host easily exceeds the rung-to-rung differences),
// --out=PATH overrides the JSON destination, --skip-micro skips the
// google-benchmark microbenches, --skip-table1 skips the Table 1 rung
// (its transient counts are deterministic, so there is no --reps
// interaction to worry about).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "analysis/vsa.hpp"
#include "campaign/cache_index.hpp"
#include "defect/defect.hpp"
#include "circuit/mna.hpp"
#include "dram/column_sim.hpp"
#include "numeric/lu.hpp"
#include "stress/stress.hpp"
#include "numeric/sparse.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/version.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

using namespace dramstress;

namespace {

void BM_LuFactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  numeric::Matrix a(n, n);
  unsigned seed = 7;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      seed = seed * 1664525u + 1013904223u;
      a(i, j) = static_cast<double>(seed % 1000) / 1000.0;
    }
    a(i, i) += static_cast<double>(n);
  }
  numeric::LuSolver lu;
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.size());
  }
}
BENCHMARK(BM_LuFactor)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_SparseRefactorColumn(benchmark::State& state) {
  // Numeric-only sparse refactorization of the real column Jacobian -- the
  // per-iteration linear-algebra cost of the sparse Newton path (compare
  // BM_LuFactor at n=48).
  dram::DramColumn column;
  circuit::MnaSystem sys(column.netlist(), circuit::SolverBackend::Sparse);
  const size_t n = static_cast<size_t>(sys.num_unknowns());
  numeric::Vector x(n, 0.5);
  circuit::StampContext ctx;
  ctx.mode = circuit::AnalysisMode::TransientBe;
  ctx.time = 1e-9;
  ctx.dt = 0.1e-9;
  ctx.x = &x;
  ctx.num_nodes = sys.num_nodes();
  numeric::SparseMatrix& jac = sys.sparse_jacobian();
  numeric::Vector res(n, 0.0);
  sys.assemble_sparse(ctx, 1e-12, jac, res);
  numeric::SparseLuSolver lu;
  lu.factor(jac);
  for (auto _ : state) {
    lu.refactor(jac);
    benchmark::DoNotOptimize(lu.refactor_count());
  }
  state.SetLabel(util::format("n=%zu nnz=%zu fill=%zu", n, jac.nnz(),
                              lu.factor_nnz()));
}
BENCHMARK(BM_SparseRefactorColumn);

void BM_ColumnCycleW1(benchmark::State& state) {
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    const auto r = sim.run({dram::Operation::w1()}, 0.0, dram::Side::True);
    benchmark::DoNotOptimize(r.final_vc);
  }
}
BENCHMARK(BM_ColumnCycleW1);

void BM_ColumnReadCycle(benchmark::State& state) {
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.read_of_initial(1.8, dram::Side::True));
  }
}
BENCHMARK(BM_ColumnReadCycle);

void BM_VsaExtraction(benchmark::State& state) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  defect::Injection inj(column, d, 200e3);
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    const auto v = analysis::extract_vsa(sim, dram::Side::True);
    benchmark::DoNotOptimize(v.threshold);
  }
}
BENCHMARK(BM_VsaExtraction);

// --- plane-set sweep: serial seed path vs. parallel engine ----------------

struct SweepTiming {
  double wall_s = 0.0;
  long points = 0;  // R points x 3 planes
  double points_per_s() const { return points / wall_s; }
};

/// Time the three planes of generate_plane_set.  `serial_seed_path`
/// reproduces the pre-parallel engine exactly: three independent
/// generate_plane calls on one thread with no Vsa memoization (each plane
/// re-extracts the identical Vsa(R) curve).
SweepTiming time_plane_set(const analysis::PlaneOptions& opt,
                           bool serial_seed_path, int threads) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::ColumnSimulator sim(column, stress::nominal_condition());

  const auto t0 = std::chrono::steady_clock::now();
  if (serial_seed_path) {
    analysis::PlaneOptions o = opt;
    o.threads = 1;
    o.vsa_cache = nullptr;
    auto w0 = analysis::generate_plane(column, d, sim, dram::OpKind::W0, o);
    auto w1 = analysis::generate_plane(column, d, sim, dram::OpKind::W1, o);
    auto r = analysis::generate_plane(column, d, sim, dram::OpKind::R, o);
    benchmark::DoNotOptimize(w0);
    benchmark::DoNotOptimize(w1);
    benchmark::DoNotOptimize(r);
  } else {
    analysis::PlaneOptions o = opt;
    o.threads = threads;
    auto set = analysis::generate_plane_set(column, d, sim, o);
    benchmark::DoNotOptimize(set);
  }
  const auto t1 = std::chrono::steady_clock::now();

  SweepTiming t;
  t.wall_s = std::chrono::duration<double>(t1 - t0).count();
  t.points = 3L * opt.num_r_points;
  return t;
}

/// Time generate_plane_set single-threaded under one engine configuration
/// (the Fig. 2 plane workload with only the transient engine varying).
/// `batch` > 0 selects the ensemble engine with that many lanes per solve.
SweepTiming time_plane_engine_once(const analysis::PlaneOptions& opt,
                                   const dram::SimSettings& settings,
                                   int batch = 0) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::ColumnSimulator sim(column, stress::nominal_condition(), settings);
  analysis::PlaneOptions o = opt;
  o.threads = 1;
  o.batch = batch;
  const auto t0 = std::chrono::steady_clock::now();
  auto set = analysis::generate_plane_set(column, d, sim, o);
  benchmark::DoNotOptimize(set);
  const auto t1 = std::chrono::steady_clock::now();
  SweepTiming t;
  t.wall_s = std::chrono::duration<double>(t1 - t0).count();
  t.points = 3L * opt.num_r_points;
  return t;
}

// --- Table 1 rung: surrogate warm-start chains vs. cold classic searches --

struct Table1Timing {
  long transients_classic = 0;   // cold classic searches, all rows
  long transients_surrogate = 0; // warm-chained surrogate searches, all rows
  double wall_classic_s = 0.0;
  double wall_surrogate_s = 0.0;
  double worst_mismatch_dec = 0.0;  // max |log10(br_on / br_off)| over rows
  double reduction() const {
    return transients_surrogate > 0
               ? static_cast<double>(transients_classic) / transients_surrogate
               : 0.0;
  }
};

/// The Table 1 workload: the border resistance of every defect on both
/// bitlines at Vdd = {2.1, 2.4, 2.7} V, holding the detection condition
/// fixed at the one found by a classic analyze at nominal (shared by both
/// arms and excluded from the counts).  The classic arm re-runs the full
/// cold search at every Vdd, which is what the campaign did before the
/// surrogate; the surrogate arm chains warm starts: the nominal row reuses
/// the analyze BR outright, 2.1 V is hinted by the nominal BR, 2.7 V by
/// log-linear continuation of the (2.1, 2.4) trend, and the complement side
/// borrows the true side's same-Vdd BR when the two sides' nominal BRs
/// agree to within 0.1 decades.  Transient counts are deterministic; wall
/// times are informational only.
Table1Timing run_table1_rung() {
  dram::DramColumn column;
  const std::vector<defect::DefectKind> kinds = {
      defect::DefectKind::O1, defect::DefectKind::O2, defect::DefectKind::O3,
      defect::DefectKind::Sg, defect::DefectKind::Sv, defect::DefectKind::B1,
      defect::DefectKind::B2};
  const double vdds[] = {2.1, 2.4, 2.7};

  Table1Timing total;
  for (defect::DefectKind k : kinds) {
    double true_side_br[3] = {-1, -1, -1};
    for (dram::Side side : {dram::Side::True, dram::Side::Comp}) {
      const defect::Defect d{k, side};
      analysis::BorderOptions classic;
      classic.surrogate.enabled = false;
      analysis::BorderResult fixed;
      {
        dram::ColumnSimulator sim(column, stress::nominal_condition());
        fixed = analysis::analyze_defect(column, d, sim, classic);
      }
      if (!fixed.br.has_value()) {
        std::printf("  %-9s: not detectable at nominal, skipped\n",
                    d.name().c_str());
        continue;
      }
      const auto range = defect::default_sweep_range(k);

      // Classic arm: a cold search per Vdd (the fig5 sweep idiom).
      long t0 = dram::thread_transients();
      auto c0 = std::chrono::steady_clock::now();
      std::vector<double> br_off;
      for (double vdd : vdds) {
        stress::StressCondition sc = stress::nominal_condition();
        sc.vdd = vdd;
        dram::ColumnSimulator sim(column, sc);
        auto r = analysis::find_border_resistance(column, d, sim,
                                                  fixed.condition, range,
                                                  classic);
        br_off.push_back(r.br.value_or(-1));
      }
      const long off = dram::thread_transients() - t0;
      total.wall_classic_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
              .count();

      // Surrogate arm: nominal Vdd first (the analyze BR is already the
      // answer there), then the chained warm searches.
      t0 = dram::thread_transients();
      c0 = std::chrono::steady_clock::now();
      const double order[] = {2.4, 2.1, 2.7};
      double br_at[3] = {-1, -1, -1};  // indexed like vdds
      std::optional<double> slope = fixed.margin_slope;
      for (double vdd : order) {
        const int vi = vdd == 2.1 ? 0 : vdd == 2.4 ? 1 : 2;
        if (vdd == 2.4) {
          br_at[1] = *fixed.br;
          continue;
        }
        stress::StressCondition sc = stress::nominal_condition();
        sc.vdd = vdd;
        dram::ColumnSimulator sim(column, sc);
        std::optional<double> hint = fixed.br;
        const bool sides_agree =
            side == dram::Side::Comp && true_side_br[vi] > 0 &&
            true_side_br[1] > 0 &&
            std::abs(std::log10(*fixed.br / true_side_br[1])) < 0.1;
        if (sides_agree)
          hint = true_side_br[vi];
        else if (vdd == 2.1 && br_at[1] > 0)
          hint = br_at[1];
        else if (vdd == 2.7 && br_at[1] > 0)
          hint = br_at[0] > 0 ? br_at[1] * (br_at[1] / br_at[0]) : br_at[1];
        analysis::BorderOptions warm;
        warm.surrogate.enabled = true;
        warm.bracket_hint = hint;
        warm.margin_slope_hint = slope;
        auto r = analysis::find_border_resistance(column, d, sim,
                                                  fixed.condition, range,
                                                  warm);
        br_at[vi] = r.br.value_or(-1);
        if (r.br.has_value()) slope = r.margin_slope;
      }
      if (side == dram::Side::True)
        for (int i = 0; i < 3; ++i) true_side_br[i] = br_at[i];
      const long on = dram::thread_transients() - t0;
      total.wall_surrogate_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
              .count();

      total.transients_classic += off;
      total.transients_surrogate += on;
      double mism = 0.0;
      for (int i = 0; i < 3; ++i)
        if (br_off[static_cast<size_t>(i)] > 0 && br_at[i] > 0)
          mism = std::max(mism, std::abs(std::log10(
                                    br_at[i] / br_off[static_cast<size_t>(i)])));
      total.worst_mismatch_dec = std::max(total.worst_mismatch_dec, mism);
      std::printf(
          "  %-9s: classic %3ld  surrogate %3ld  (%5.2fx)  "
          "mismatch %.4f dec\n",
          d.name().c_str(), off, on, static_cast<double>(off) / on, mism);
    }
  }
  return total;
}

// --- shared-cache rung: the microsecond answer path of the service --------

struct CacheTiming {
  double hit_us = 0.0;       // memory-tier hit (the daemon's repeat path)
  double disk_hit_us = 0.0;  // cold-index hit: disk load + promotion
  int objects = 0;
  long lookups = 0;
  size_t payload_bytes = 0;
};

/// Time SharedCache lookups against a store of realistic unit payloads.
/// `cache_hit_us` is the number docs/SERVICE.md stakes the daemon's
/// "microseconds, without touching the simulator" claim on; the CI gate
/// holds it under an absolute ceiling (bench/engine_perf, ci.yml).
CacheTiming run_cache_rung() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "dramstress_bench_cache";
  fs::remove_all(dir);

  // A payload shaped like a real cached unit: the v2 wrapper around a
  // border-analysis result object.
  util::json::Writer pw;
  pw.begin_object();
  pw.key("transients").value(412);
  pw.key("result").begin_object();
  pw.key("unit").value("border/O3@nominal");
  pw.key("detectable").value(true);
  pw.key("br").value(187234.5612);
  pw.key("margin_slope").value(-0.0841);
  pw.key("condition").begin_object();
  pw.key("vdd").value(2.4);
  pw.key("temp_c").value(27.0);
  pw.key("tcyc").value(60e-9);
  pw.key("duty").value(0.5);
  pw.end_object();
  pw.end_object();
  pw.end_object();
  const std::string payload = pw.str();

  CacheTiming t;
  t.objects = 64;
  t.payload_bytes = payload.size();
  verify::VerifyReport report;
  std::vector<campaign::CacheKey> keys;
  {
    campaign::SharedCache cache(dir.string());
    for (int i = 0; i < t.objects; ++i) {
      campaign::KeyHasher h;
      h.feed("bench-unit").feed(static_cast<long>(i));
      keys.push_back(h.key());
      cache.store(keys.back(), payload);
    }

    // Memory-tier hits: round-robin over the hot set so the LRU list is
    // actually exercised instead of hammering one entry.
    t.lookups = 200000;
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < t.lookups; ++i) {
      auto hit = cache.lookup(keys[static_cast<size_t>(i) % keys.size()],
                              &report);
      benchmark::DoNotOptimize(hit);
    }
    const auto t1 = std::chrono::steady_clock::now();
    t.hit_us = std::chrono::duration<double>(t1 - t0).count() * 1e6 /
               static_cast<double>(t.lookups);
  }

  // Cold index (a daemon fresh after restart): every hit pays the disk
  // load once, then lives in memory.
  campaign::SharedCache cold(dir.string());
  const auto t0 = std::chrono::steady_clock::now();
  for (const campaign::CacheKey& k : keys) {
    auto hit = cold.lookup(k, &report);
    benchmark::DoNotOptimize(hit);
  }
  const auto t1 = std::chrono::steady_clock::now();
  t.disk_hit_us = std::chrono::duration<double>(t1 - t0).count() * 1e6 /
                  static_cast<double>(t.objects);

  fs::remove_all(dir);
  return t;
}

void append_timing(util::json::Writer& w, const SweepTiming& t) {
  w.begin_object();
  w.key("wall_s").value(t.wall_s);
  w.key("points_per_s").value(t.points_per_s());
  w.end_object();
}

void write_json(const std::string& path, const analysis::PlaneOptions& opt,
                int threads, const SweepTiming& serial,
                const SweepTiming& parallel, const SweepTiming& fixed_dense,
                const SweepTiming& fixed_sparse,
                const SweepTiming& adaptive_sparse, const SweepTiming& ensemble,
                int ensemble_batch, int ladder_reps, const SweepTiming& obs_on,
                const SweepTiming& obs_off, const Table1Timing* table1,
                const CacheTiming& cache,
                const obs::MetricsSnapshot& metrics) {
  util::json::Writer w;
  w.begin_object();
  w.key("bench").value("generate_plane_set");
  w.key("defect").value("O3 (true)");
  w.key("git").value(obs::git_describe());
  w.key("r_points").value(opt.num_r_points);
  w.key("ops_per_point").value(opt.ops_per_point);
  w.key("planes").value(3);
  w.key("points").value(serial.points);
  w.key("hardware_threads").value(util::hardware_threads());
  w.key("threads").value(threads);
  w.key("serial_seed_path");
  append_timing(w, serial);
  w.key("parallel_engine");
  append_timing(w, parallel);
  w.key("speedup").value(serial.wall_s / parallel.wall_s);
  w.key("transient_engine").begin_object();
  w.key("fixed_dense");
  append_timing(w, fixed_dense);
  w.key("fixed_sparse");
  append_timing(w, fixed_sparse);
  w.key("adaptive_sparse");
  append_timing(w, adaptive_sparse);
  w.key("ensemble");
  append_timing(w, ensemble);
  w.key("ensemble_batch").value(ensemble_batch);
  w.key("ladder_reps").value(ladder_reps);
  w.key("sparse_speedup").value(fixed_dense.wall_s / fixed_sparse.wall_s);
  w.key("adaptive_sparse_speedup")
      .value(fixed_dense.wall_s / adaptive_sparse.wall_s);
  // The headline ensemble number: batched lanes vs. the same adaptive +
  // sparse configuration run one lane at a time.
  w.key("ensemble_speedup").value(adaptive_sparse.wall_s / ensemble.wall_s);
  w.end_object();
  w.key("observability").begin_object();
  w.key("compiled_in").value(obs::compiled_in());
  w.key("on");
  append_timing(w, obs_on);
  w.key("off");
  append_timing(w, obs_off);
  w.key("overhead_pct")
      .value(obs_off.wall_s > 0.0
                 ? 100.0 * (obs_on.wall_s - obs_off.wall_s) / obs_off.wall_s
                 : 0.0);
  w.end_object();
  if (table1) {
    w.key("table1").begin_object();
    w.key("defects").value(7);
    w.key("sides").value(2);
    w.key("vdd_values").begin_array();
    w.value(2.1).value(2.4).value(2.7);
    w.end_array();
    w.key("table1_transients").value(table1->transients_surrogate);
    w.key("table1_transients_classic").value(table1->transients_classic);
    w.key("table1_reduction").value(table1->reduction());
    w.key("worst_br_mismatch_decades").value(table1->worst_mismatch_dec);
    w.key("wall_classic_s").value(table1->wall_classic_s);
    w.key("wall_surrogate_s").value(table1->wall_surrogate_s);
    w.end_object();
  }
  w.key("shared_cache").begin_object();
  w.key("objects").value(cache.objects);
  w.key("lookups").value(cache.lookups);
  w.key("payload_bytes").value(static_cast<long>(cache.payload_bytes));
  w.key("cache_hit_us").value(cache.hit_us);
  w.key("disk_hit_us").value(cache.disk_hit_us);
  w.end_object();
  // Full metric dump of the instrumented adaptive run: the same shape as a
  // run manifest's `metrics` object (docs/OBSERVABILITY.md).
  w.key("metrics");
  obs::append_metrics(w, metrics);
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  analysis::PlaneOptions opt;  // default PlaneOptions: the acceptance grid
  int threads = 0;             // 0 = util::default_threads()
  int batch = 12;              // ensemble-rung lane count (measured best)
  int reps = 2;                // best-of-N per ladder rung
  bool skip_micro = false;
  bool skip_table1 = false;
#ifndef DRAMSTRESS_BENCH_OUT_DIR
#define DRAMSTRESS_BENCH_OUT_DIR "."
#endif
  std::string out_path = std::string(DRAMSTRESS_BENCH_OUT_DIR)
                         + "/BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--r-points=", 11) == 0)
      opt.num_r_points = std::atoi(argv[i] + 11);
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = std::atoi(argv[i] + 10);
    else if (std::strncmp(argv[i], "--batch=", 8) == 0)
      batch = std::atoi(argv[i] + 8);
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = std::atoi(argv[i] + 7);
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strcmp(argv[i], "--skip-micro") == 0)
      skip_micro = true;
    else if (std::strcmp(argv[i], "--skip-table1") == 0)
      skip_table1 = true;
  }
  if (batch < 1) batch = 1;
  if (reps < 1) reps = 1;
  if (threads > 0) util::set_default_threads(threads);
  const int pool = util::resolve_threads(threads);

  std::printf("generate_plane_set: %d R points x 3 planes, pool of %d "
              "(hardware %d)\n",
              opt.num_r_points, pool, util::hardware_threads());
  try {
    const SweepTiming serial =
        time_plane_set(opt, /*serial_seed_path=*/true, 1);
    std::printf("  serial seed path : %8.3f s  (%7.2f points/s)\n",
                serial.wall_s, serial.points_per_s());
    const SweepTiming parallel =
        time_plane_set(opt, /*serial_seed_path=*/false, threads);
    std::printf(
        "  parallel engine  : %8.3f s  (%7.2f points/s)  speedup %.2fx\n",
        parallel.wall_s, parallel.points_per_s(),
        serial.wall_s / parallel.wall_s);

    std::printf(
        "transient-engine ladder (1 thread, best of %d, same plane "
        "workload):\n",
        reps);
    // Best-of-N per rung, with the reps INTERLEAVED across rungs: host
    // load drifts on a timescale of seconds to minutes, so back-to-back
    // reps of one rung share its bias while the cross-rung ratios -- the
    // numbers the acceptance floors gate on -- get comparable windows.
    dram::SimSettings s_fixed_dense;
    s_fixed_dense.adaptive = false;
    s_fixed_dense.backend = circuit::SolverBackend::Dense;
    dram::SimSettings s_fixed_sparse;
    s_fixed_sparse.adaptive = false;
    SweepTiming fixed_dense, fixed_sparse, adaptive_sparse, ensemble;
    for (int rep = 0; rep < reps; ++rep) {
      const SweepTiming fd = time_plane_engine_once(opt, s_fixed_dense);
      if (rep == 0 || fd.wall_s < fixed_dense.wall_s) fixed_dense = fd;
      const SweepTiming fs = time_plane_engine_once(opt, s_fixed_sparse);
      if (rep == 0 || fs.wall_s < fixed_sparse.wall_s) fixed_sparse = fs;
      const SweepTiming as = time_plane_engine_once(opt, dram::SimSettings{});
      if (rep == 0 || as.wall_s < adaptive_sparse.wall_s) adaptive_sparse = as;
      const SweepTiming en =
          time_plane_engine_once(opt, dram::SimSettings{}, batch);
      if (rep == 0 || en.wall_s < ensemble.wall_s) ensemble = en;
    }
    std::printf("  fixed + dense (seed) : %8.3f s  (%7.2f points/s)\n",
                fixed_dense.wall_s, fixed_dense.points_per_s());
    std::printf("  fixed + sparse       : %8.3f s  (%7.2f points/s)  %.2fx\n",
                fixed_sparse.wall_s, fixed_sparse.points_per_s(),
                fixed_dense.wall_s / fixed_sparse.wall_s);
    std::printf("  adaptive + sparse    : %8.3f s  (%7.2f points/s)  %.2fx\n",
                adaptive_sparse.wall_s, adaptive_sparse.points_per_s(),
                fixed_dense.wall_s / adaptive_sparse.wall_s);
    std::printf("  ensemble (batch %2d)  : %8.3f s  (%7.2f points/s)  %.2fx "
                "(%.2fx vs adaptive)\n",
                batch, ensemble.wall_s, ensemble.points_per_s(),
                fixed_dense.wall_s / ensemble.wall_s,
                adaptive_sparse.wall_s / ensemble.wall_s);

    // Observability overhead: the same adaptive workload with collection
    // enabled (fresh registries) vs. suspended at runtime.  Alternating
    // best-of-N pairs: scheduler noise on a loaded host easily exceeds the
    // effect being measured, and the minimum of each arm is the cleanest
    // estimate of its true cost.
    std::printf("observability overhead (adaptive + sparse, 1 thread):\n");
    constexpr int kObsReps = 3;
    SweepTiming obs_on, obs_off;
    obs::MetricsSnapshot metrics;
    for (int rep = 0; rep < kObsReps; ++rep) {
      obs::reset_metrics();
      obs::reset_spans();
      obs::set_collecting(true);
      const SweepTiming on = time_plane_engine_once(opt, dram::SimSettings{});
      if (rep == 0 || on.wall_s < obs_on.wall_s) {
        obs_on = on;
        metrics = obs::metrics_snapshot();
      }
      obs::set_collecting(false);
      const SweepTiming off =
          time_plane_engine_once(opt, dram::SimSettings{});
      obs::set_collecting(true);
      if (rep == 0 || off.wall_s < obs_off.wall_s) obs_off = off;
    }
    const double overhead_pct =
        100.0 * (obs_on.wall_s - obs_off.wall_s) / obs_off.wall_s;
    std::printf("  collection on        : %8.3f s  (best of %d)\n",
                obs_on.wall_s, kObsReps);
    std::printf("  collection off       : %8.3f s  (overhead %+.2f%%)\n",
                obs_off.wall_s, overhead_pct);

    // The shared-cache rung is cheap and deterministic in shape (pure
    // store/lookup, no simulation), so it always runs.
    const CacheTiming cache = run_cache_rung();
    std::printf("shared-cache rung (%d objects, %ld lookups, %zu-byte "
                "payload):\n",
                cache.objects, cache.lookups, cache.payload_bytes);
    std::printf("  memory-tier hit      : %8.3f us\n", cache.hit_us);
    std::printf("  cold-index disk hit  : %8.3f us\n", cache.disk_hit_us);

    Table1Timing table1;
    if (!skip_table1) {
      std::printf("Table 1 rung (BR at 3 Vdd x 7 defects x 2 bitlines, "
                  "full transients):\n");
      table1 = run_table1_rung();
      std::printf("  total: classic %ld transients, surrogate %ld "
                  "(%.2fx reduction), worst BR mismatch %.4f decades\n",
                  table1.transients_classic, table1.transients_surrogate,
                  table1.reduction(), table1.worst_mismatch_dec);
    }

    write_json(out_path, opt, pool, serial, parallel, fixed_dense,
               fixed_sparse, adaptive_sparse, ensemble, batch, reps, obs_on,
               obs_off, skip_table1 ? nullptr : &table1, cache, metrics);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (skip_micro) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
