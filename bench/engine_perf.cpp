// Engine microbenchmarks: the cost centres of the whole flow.
//  * dense LU factorization at MNA-typical sizes,
//  * one Newton-converged transient step of the full column,
//  * a complete memory operation cycle,
//  * one Vsa extraction (the inner loop of every result plane).
#include <benchmark/benchmark.h>

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "circuit/mna.hpp"
#include "dram/column_sim.hpp"
#include "numeric/lu.hpp"
#include "stress/stress.hpp"

using namespace dramstress;

namespace {

void BM_LuFactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  numeric::Matrix a(n, n);
  unsigned seed = 7;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      seed = seed * 1664525u + 1013904223u;
      a(i, j) = static_cast<double>(seed % 1000) / 1000.0;
    }
    a(i, i) += static_cast<double>(n);
  }
  numeric::LuSolver lu;
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.size());
  }
}
BENCHMARK(BM_LuFactor)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_ColumnCycleW1(benchmark::State& state) {
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    const auto r = sim.run({dram::Operation::w1()}, 0.0, dram::Side::True);
    benchmark::DoNotOptimize(r.final_vc);
  }
}
BENCHMARK(BM_ColumnCycleW1);

void BM_ColumnReadCycle(benchmark::State& state) {
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.read_of_initial(1.8, dram::Side::True));
  }
}
BENCHMARK(BM_ColumnReadCycle);

void BM_VsaExtraction(benchmark::State& state) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  defect::Injection inj(column, d, 200e3);
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  for (auto _ : state) {
    const auto v = analysis::extract_vsa(sim, dram::Side::True);
    benchmark::DoNotOptimize(v.threshold);
  }
}
BENCHMARK(BM_VsaExtraction);

}  // namespace

BENCHMARK_MAIN();
