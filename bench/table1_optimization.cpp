// Regenerates paper Table 1: stress-optimization results for all seven
// cell defects (O1-O3 opens, Sg/Sv shorts, B1/B2 bridges) on both the true
// and the complementary bitline.
//
// Shape criteria (paper Section 5.2):
//  * every defect gets a nominal border resistance, per-stress directions,
//    a stressed border and a stressed detection condition;
//  * true/comp pairs have matching borders and data-inverted conditions;
//  * reducing tcyc is more stressful for every defect;
//  * the stressed SC widens the failing resistance range (opens: lower BR;
//    shunts: higher BR).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/flow.hpp"

using namespace dramstress;

int main() {
  bench::banner("Table 1 -- ST optimization results for all defects");

  core::StressFlow flow;
  const core::Table1 table = flow.table1();
  std::printf("%s\n", table.render().c_str());

  util::CsvTable csv({"defect_kind", "is_comp", "nominal_br_ohm",
                      "stressed_br_ohm", "gain_decades"});
  int widened = 0;
  int tcyc_dec = 0;
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const core::Table1Row& row = table.rows[i];
    csv.add_row({static_cast<double>(i / 2),
                 row.defect.side == dram::Side::Comp ? 1.0 : 0.0,
                 row.nominal_br.value_or(0.0), row.stressed_br.value_or(0.0),
                 row.gain_decades});
    if (row.gain_decades > 0.0) ++widened;
    if (row.dir_tcyc.rfind("dec", 0) == 0) ++tcyc_dec;
  }
  bench::write_csv(csv, "table1_optimization");

  std::printf("summary: %d of %zu rows widen the failing range under the "
              "stressed SC; %d of %zu choose a shorter cycle time.\n",
              widened, table.rows.size(), tcyc_dec, table.rows.size());
  std::printf("paper reference: all defects widen (e.g. opens 200k -> 150k); "
              "tcyc decreases for all; T increases for all (see "
              "EXPERIMENTS.md for our retention-test deviation).\n");
  return 0;
}
