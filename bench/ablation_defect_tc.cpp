// Ablation implementing the paper's closing remark (Section 5.2):
//
//   "all simulated defects are modeled using regular ohmic resistances ...
//    Modeling the defects to increase their R with decreasing T (which is
//    the case with silicon based defects) may result in a different
//    stress value for T."
//
// A defect family with temperature coefficient alpha has
//   R(T) = R0 * (1 + alpha * (T - 27 C)).
// The set of nominal-referred R0 that fail at temperature T is
//   { R0 : R0 * f(T) beyond BR_ohmic(T) }  =>  BR_R0(T) = BR_ohmic(T)/f(T),
// so the silicon-like border is the ohmic border divided by f(T).  This
// bench computes the ohmic BR per temperature and re-derives the border in
// R0 space for several alpha values, showing where the "hotter is more
// stressful" conclusion flips.
#include <cmath>
#include <cstdio>
#include <limits>

#include "analysis/border.hpp"
#include "bench/bench_common.hpp"
#include "stress/stress.hpp"

using namespace dramstress;

int main() {
  bench::banner("ablation -- temperature-dependent defect resistance");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const stress::StressCondition nominal = stress::nominal_condition();
  analysis::BorderResult nominal_br;
  {
    dram::ColumnSimulator sim(column, nominal);
    nominal_br = analysis::analyze_defect(column, d, sim);
  }
  const auto range = defect::default_sweep_range(d.kind);

  const double temps[] = {-33.0, 27.0, 87.0};
  double br_ohmic[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    stress::StressCondition sc = nominal;
    sc.temp_c = temps[i];
    dram::ColumnSimulator sim(column, sc);
    const auto br = analysis::find_border_resistance(
        column, d, sim, nominal_br.condition, range);
    // No border = the fault never appears at this corner: infinitely
    // *relaxed*, not infinitely stressful.
    br_ohmic[i] = br.br.value_or(std::numeric_limits<double>::infinity());
  }

  util::CsvTable csv({"alpha_per_k", "temp_c", "br_r0_ohm"});
  std::printf("%-14s %-12s %-12s %-12s  most stressful T\n", "alpha [1/K]",
              "BR(-33 C)", "BR(+27 C)", "BR(+87 C)");
  // alpha = 0 is the paper's ohmic case; negative alpha makes silicon-like
  // defects *grow* when cold.
  for (double alpha : {0.0, -2e-3, -5e-3, -8e-3}) {
    double br_r0[3];
    for (int i = 0; i < 3; ++i) {
      const double f = 1.0 + alpha * (temps[i] - 27.0);
      br_r0[i] = br_ohmic[i] / f;
      csv.add_row({alpha, temps[i],
                   std::isfinite(br_r0[i]) ? br_r0[i] : -1.0});
    }
    // For an open, lower border in R0 space = more stressful.
    int best = 0;
    for (int i = 1; i < 3; ++i)
      if (br_r0[i] < br_r0[best]) best = i;
    auto cell = [](double v) {
      return std::isfinite(v) ? util::eng(v, "Ohm") : std::string("no fault");
    };
    std::printf("%-14g %-12s %-12s %-12s  %+.0f C\n", alpha,
                cell(br_r0[0]).c_str(), cell(br_r0[1]).c_str(),
                cell(br_r0[2]).c_str(), temps[best]);
  }
  bench::write_csv(csv, "ablation_defect_tc");
  std::printf("\nwith a strong enough negative alpha the cold corner takes "
              "over -- exactly the caveat the paper closes with.\n");
  return 0;
}
