// Section-5 claim: the optimized stress combination increases the fault
// coverage of a given test.  We run the standard march suite over the
// defect universe (all 14 defects, log-spaced resistances) at the nominal
// corner and at the O3-optimized stressed corner, using fast cell models
// calibrated against the electrical column at each corner.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "memtest/coverage.hpp"
#include "stress/optimizer.hpp"

using namespace dramstress;

int main() {
  bench::banner("fault-coverage gain of the stressed SC");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const stress::OptimizationResult opt =
      stress::optimize_stresses(column, d, stress::nominal_condition());
  std::printf("nominal:  %s\n", stress::describe(opt.nominal_sc).c_str());
  std::printf("stressed: %s\n\n", stress::describe(opt.stressed_sc).c_str());

  const auto universe = memtest::default_defect_universe(8);
  memtest::CoverageOptions copt;
  copt.memory_cells = 16;

  util::CsvTable csv({"test_index", "stressed", "detected", "total"});
  std::printf("%-28s %-18s %-18s\n", "test", "coverage(nominal)",
              "coverage(stressed)");
  int tests_improved = 0;
  auto suite = memtest::standard_test_suite();
  // Retention pauses are corner-specific in production: the 100 us pause
  // is not a valid test at +87 C (healthy junction leakage alone fails
  // it), so the hot corner gets a shorter pause variant too.
  suite.push_back(memtest::retention_test(3e-6));
  for (size_t ti = 0; ti < suite.size(); ++ti) {
    const memtest::MarchTest& test = suite[ti];
    const auto base = memtest::evaluate_coverage(column, universe, test,
                                                 opt.nominal_sc, copt);
    const auto stressed = memtest::evaluate_coverage(column, universe, test,
                                                     opt.stressed_sc, copt);
    std::printf("%-28s %3zu/%zu (%.0f%%)%s    %3zu/%zu (%.0f%%)%s\n",
                test.name.c_str(), base.detected, base.total,
                100.0 * base.fraction(), base.test_valid ? " " : "!",
                stressed.detected, stressed.total,
                100.0 * stressed.fraction(),
                stressed.test_valid ? " " : "!");
    csv.add_row({static_cast<double>(ti), 0.0,
                 static_cast<double>(base.detected),
                 static_cast<double>(base.total)});
    csv.add_row({static_cast<double>(ti), 1.0,
                 static_cast<double>(stressed.detected),
                 static_cast<double>(stressed.total)});
    if (stressed.test_valid && stressed.detected >= base.detected)
      ++tests_improved;
  }
  std::printf("('!' marks a test that fails even a healthy memory at that "
              "corner: its numbers are yield loss, not coverage)\n");
  bench::write_csv(csv, "coverage_gain");
  std::printf("\n%d of %zu tests kept or improved their coverage under the "
              "stressed SC (paper: stresses increase the coverage of a "
              "given test).\n", tests_improved, suite.size());
  return 0;
}
