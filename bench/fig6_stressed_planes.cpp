// Regenerates paper Fig. 6: the result planes of the cell open under the
// combined stress combination (SC), plus the Section 4.4 observations.
//
// Shape criteria (paper):
//  1. the border resistance drops vs. the nominal planes (200 -> 150 kOhm
//     in the paper);
//  2. the stressed SC needs a detection condition with *more* charging
//     writes than the nominal one;
//  3. the SC can induce write-1 fails in a resistance window;
//  4. the SC is strong enough that even at R = 0 a single write cannot
//     drive the cell rail-to-rail.
#include <algorithm>
#include <cstdio>

#include "analysis/border.hpp"
#include "bench/bench_common.hpp"
#include "stress/optimizer.hpp"

using namespace dramstress;

namespace {

int count_writes(const analysis::DetectionCondition& c) {
  int n = 0;
  for (const auto& op : c.ops)
    if (op.kind == dram::OpKind::W0 || op.kind == dram::OpKind::W1) ++n;
  return n;
}

}  // namespace

int main() {
  bench::banner("Fig. 6 -- result planes under the optimized SC");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};

  // Full Section-4 optimization gives the SC.
  const stress::OptimizationResult opt =
      stress::optimize_stresses(column, d, stress::nominal_condition());
  std::printf("optimized SC: %s\n", stress::describe(opt.stressed_sc).c_str());
  std::printf("paper's SC:   Vdd=2.1 V, tcyc=55 ns, T=+87 C\n\n");

  dram::ColumnSimulator sim(column, opt.stressed_sc);
  analysis::PlaneOptions popt;
  popt.num_r_points = 13;
  popt.ops_per_point = 3;
  popt.r_lo = 10e3;
  popt.r_hi = 10e6;
  const analysis::PlaneSet planes =
      analysis::generate_plane_set(column, d, sim, popt);
  std::printf("%s\n", bench::render_plane(planes.w0, "(a) plane of w0 (stressed)").c_str());
  std::printf("%s\n", bench::render_plane(planes.w1, "(b) plane of w1 (stressed)").c_str());
  std::printf("%s\n", bench::render_plane(planes.r, "(c) plane of r (stressed)").c_str());
  bench::write_csv(bench::plane_csv(planes.w0), "fig6_w0_plane");
  bench::write_csv(bench::plane_csv(planes.w1), "fig6_w1_plane");
  bench::write_csv(bench::plane_csv(planes.r), "fig6_r_plane");

  // Observation 1: BR drop.
  std::printf("1) BR: nominal %s -> stressed %s (paper: 200k -> 150k)\n",
              opt.nominal_border.br
                  ? util::eng(*opt.nominal_border.br, "Ohm").c_str()
                  : "none",
              opt.stressed_border.br
                  ? util::eng(*opt.stressed_border.br, "Ohm").c_str()
                  : "none");

  // Observation 2: the stressed detection condition needs at least as many
  // charging writes.
  const int wn = count_writes(opt.nominal_border.condition);
  const int ws = count_writes(opt.stressed_border.condition);
  std::printf("2) detection condition: nominal '%s' (%d writes) -> stressed "
              "'%s' (%d writes)\n",
              opt.nominal_border.condition.str().c_str(), wn,
              opt.stressed_border.condition.str().c_str(), ws);

  // Observation 3: write-1 fail range under the SC: resistances where a
  // single w1 from a stored 0 does not cross the sense threshold (the
  // paper's two dots on the (1)w1 curve of Fig. 6(b)).
  {
    util::CsvTable w1fail({"r_ohm", "vc_after_1w1", "vsa", "w1_fails"});
    double lo = 0.0;
    double hi = 0.0;
    for (double r : numeric::logspace(30e3, 10e6, 12)) {
      defect::Injection inj(column, d, r);
      const auto run = sim.run({dram::Operation::w1()}, 0.0, d.side);
      const double vsa = analysis::extract_vsa(sim, d.side).threshold;
      const bool fail = run.final_vc < vsa;
      if (fail && lo == 0.0) lo = r;
      if (fail) hi = r;
      w1fail.add_row({r, run.final_vc, vsa, fail ? 1.0 : 0.0});
    }
    if (lo > 0.0)
      std::printf("3) stressed single-w1 fail range: %s .. %s (paper: "
                  "50k .. 200k window)\n",
                  util::eng(lo, "Ohm").c_str(), util::eng(hi, "Ohm").c_str());
    else
      std::printf("3) no single-w1 fail range at the stressed SC\n");
    bench::write_csv(w1fail, "fig6_w1_fail_range");
  }

  // Observation 4: even with R ~ 0 a single operation cannot rail the cell.
  {
    defect::Injection inj(column, d, 1.0);
    const auto w1 = sim.run({dram::Operation::w1()}, 0.0, d.side);
    const auto w0 = sim.run({dram::Operation::w0()}, opt.stressed_sc.vdd, d.side);
    std::printf("4) at R=0: one w1 reaches %.2f V (of %.2f), one w0 leaves "
                "%.2f V (of 0)\n",
                w1.vc_after(0), opt.stressed_sc.vdd, w0.vc_after(0));
  }
  return 0;
}
