// Regenerates paper Fig. 4: the effect of temperature on a w0 operation
// and on a read, with the O3 open at 200 kOhm (Vdd = 2.4 V, tcyc = 60 ns).
//
// Shape criteria (paper Section 4.2):
//  * raising T weakens the w0 (higher residual Vc): -33 < +27 < +87 C;
//  * the read of a level slightly above the nominal Vsa is NON-MONOTONIC
//    in T: it returns 1 at +27 C but 0 at both -33 C and +87 C (multiple
//    competing mechanisms: Vth(T), drive current, junction leakage);
//  * conclusion (after BR comparison): high temperature is more stressful.
//
// The read probe carries a retention pause: in a real march test the read
// of a cell arrives many cycles after its write (array traversal), which
// is the exposure window the junction-leakage mechanism needs at +87 C.
#include "bench/fig_sweep_common.hpp"

using namespace dramstress;
using dramstress::bench::SweepEntry;

int main() {
  bench::banner("Fig. 4 -- temperature stress (-33 / +27 / +87 C)");
  stress::StressCondition cold = stress::nominal_condition();
  cold.temp_c = -33.0;
  stress::StressCondition room = stress::nominal_condition();
  stress::StressCondition hot = stress::nominal_condition();
  hot.temp_c = 87.0;
  bench::run_axis_figure(
      "fig4_temperature",
      {{"T=-33 C", cold}, {"T=+27 C", room}, {"T=+87 C", hot}}, 200e3,
      /*read_probe_offset=*/+0.10, /*read_del=*/1.5e-6);
  std::printf(
      "\npaper reference: Vc(w0) = 1.0/1.05/1.1 V at -33/+27/+87 C; the "
      "marginal read returns 1 only at +27 C (non-monotonic).\n");
  return 0;
}
