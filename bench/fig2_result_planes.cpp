// Regenerates paper Fig. 2: result planes of the w0, w1 and r operations
// for the cell open (O3) at the nominal stress condition
// (tcyc = 60 ns, T = +27 C, Vdd = 2.4 V).
//
// Shape criteria (paper):
//  * w0 plane: successive w0 curves, residual Vc rising with R; the
//    intersection of a w0 curve with the Vsa curve marks the border
//    resistance (~185 kOhm in the paper; our technology lands nearby).
//  * w1 plane: successive w1 curves charging toward a settlement level.
//  * r plane: Vsa curve bends toward GND as R grows (easier to detect 1,
//    harder to detect 0); read walks restore toward the rails.
#include <cstdio>

#include "analysis/border.hpp"
#include "bench/bench_common.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  bench::banner("Fig. 2 -- result planes for the cell open (nominal SC)");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const dram::OperatingConditions nominal{2.4, 27.0, 60e-9, 0.5};
  dram::ColumnSimulator sim(column, nominal);

  analysis::PlaneOptions opt;
  opt.num_r_points = 13;
  opt.ops_per_point = 3;
  opt.r_lo = 10e3;
  opt.r_hi = 10e6;

  const analysis::PlaneSet planes =
      analysis::generate_plane_set(column, d, sim, opt);

  std::printf("%s\n", bench::render_plane(planes.w0, "(a) plane of w0").c_str());
  std::printf("%s\n", bench::render_plane(planes.w1, "(b) plane of w1").c_str());
  std::printf("%s\n", bench::render_plane(planes.r, "(c) plane of r").c_str());

  bench::write_csv(bench::plane_csv(planes.w0), "fig2_w0_plane");
  bench::write_csv(bench::plane_csv(planes.w1), "fig2_w1_plane");
  bench::write_csv(bench::plane_csv(planes.r), "fig2_r_plane");

  // Graphical border estimate: last w0 curve against Vsa.
  const auto graphical =
      analysis::plane_border_resistance(planes.w0, planes.w0.curves.size() - 1);
  if (graphical.has_value()) {
    std::printf("graphical BR ((%zu)w0 x Vsa intersection): %s\n",
                planes.w0.curves.size(),
                util::eng(*graphical, "Ohm").c_str());
  }

  // Operational border + derived detection condition (Section 3).
  const analysis::BorderResult br = analysis::analyze_defect(column, d, sim);
  if (br.br.has_value()) {
    std::printf("operational BR: %s   detection condition: %s\n",
                util::eng(*br.br, "Ohm").c_str(), br.condition.str().c_str());
    std::printf("paper reference: BR ~185 kOhm, condition 'w1 w1 w0 r0'\n");
  }
  std::printf("mid-point voltage Vmp = %.2f V (paper: Vdd/2 region)\n",
              planes.w0.vmp);
  return 0;
}
