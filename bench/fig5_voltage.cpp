// Regenerates paper Fig. 5: the effect of the supply voltage on a w0
// operation and on a read, with the O3 open at 200 kOhm
// (tcyc = 60 ns, T = +27 C).
//
// Shape criteria (paper Section 4.3):
//  * raising Vdd weakens the w0 (higher residual Vc): 0.9/1.0/1.2 V at
//    2.1/2.4/2.7 V in the paper;
//  * raising Vdd *helps* the read of a 0 (the marginal level reads 1 at
//    2.1 V but 0 at 2.4/2.7 V) -- the two effects conflict;
//  * conclusion: the direction cannot be decided from the probes; the
//    border resistance must be computed per voltage (Section 4.3).
#include "bench/fig_sweep_common.hpp"

#include "analysis/border.hpp"

using namespace dramstress;
using dramstress::bench::SweepEntry;

int main() {
  bench::banner("Fig. 5 -- supply-voltage stress (2.1 / 2.4 / 2.7 V)");
  stress::StressCondition low = stress::nominal_condition();
  low.vdd = 2.1;
  stress::StressCondition nom = stress::nominal_condition();
  stress::StressCondition high = stress::nominal_condition();
  high.vdd = 2.7;
  // The marginal level sits between Vsa(2.1 V) and Vsa(2.4 V), i.e.
  // "slightly below" the nominal threshold as in the paper.
  bench::run_axis_figure("fig5_voltage",
                         {{"Vdd=2.1 V", low}, {"Vdd=2.4 V", nom},
                          {"Vdd=2.7 V", high}},
                         200e3, /*read_probe_offset=*/-0.07, /*read_del=*/0.0);

  // The BR-comparison the conflict forces (paper: BR = 160/200/255 kOhm at
  // 2.1/2.4/2.7 V -- lowest at 2.1 V).
  bench::banner("border-resistance comparison per supply voltage");
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  // Hold the *test* fixed (derived at the nominal corner) and move only the
  // supply, exactly as Section 4.3 re-evaluates the same curves per Vdd.
  analysis::BorderResult nominal_br;
  {
    dram::ColumnSimulator sim(column, nom);
    nominal_br = analysis::analyze_defect(column, d, sim);
  }
  std::printf("  fixed test: '%s'\n", nominal_br.condition.str().c_str());
  const auto range = defect::default_sweep_range(d.kind);
  util::CsvTable table({"vdd", "br_ohm"});
  for (const auto& sc : {low, nom, high}) {
    dram::ColumnSimulator sim(column, sc);
    const analysis::BorderResult br = analysis::find_border_resistance(
        column, d, sim, nominal_br.condition, range);
    std::printf("  Vdd=%.1f V: BR = %s\n", sc.vdd,
                br.br ? util::eng(*br.br, "Ohm").c_str() : "none");
    table.add_row({sc.vdd, br.br.value_or(0.0)});
  }
  bench::write_csv(table, "fig5_voltage_br");
  std::printf(
      "\npaper reference: conflicting probe directions resolved by BR "
      "comparison; the paper's model favoured 2.1 V, see EXPERIMENTS.md "
      "for our model's outcome.\n");
  return 0;
}
