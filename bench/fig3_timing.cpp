// Regenerates paper Fig. 3: the effect of the clock cycle time on a w0
// operation and on a read, with the O3 open at 200 kOhm
// (Vdd = 2.4 V, T = +27 C).
//
// Shape criteria (paper Section 4.1):
//  * reducing tcyc 60 -> 55 ns leaves a *higher* Vc after the w0 (the write
//    is cut short => more stressful for the write);
//  * the read outcome is unchanged (timing has no impact on Vsa);
//  * conclusion: reducing the cycle time is more stressful for the test.
#include "bench/fig_sweep_common.hpp"

using namespace dramstress;
using dramstress::bench::SweepEntry;

int main() {
  bench::banner("Fig. 3 -- timing stress (tcyc 60 ns vs 55 ns)");
  stress::StressCondition c60 = stress::nominal_condition();
  stress::StressCondition c55 = c60;
  c55.tcyc = 55e-9;
  bench::run_axis_figure("fig3_timing",
                         {{"tcyc=60 ns", c60}, {"tcyc=55 ns", c55}}, 200e3,
                         /*read_probe_offset=*/-0.10, /*read_del=*/0.0);
  std::printf(
      "\npaper reference: Vc(w0) = 1.0 V @60 ns vs 1.19 V @55 ns; read "
      "unchanged -> reduce tcyc.\n");
  return 0;
}
