// Section-2 baseline: Shmoo plots of the derived test for the cell open,
// over (tcyc x Vdd), at two defect resistances -- plus the cost comparison
// that motivates the paper's method (a Shmoo spends one full test
// execution per grid point and cannot say *why* a corner fails; the
// simulation method spends a handful of targeted probes per stress).
#include <cstdio>

#include "analysis/border.hpp"
#include "bench/bench_common.hpp"
#include "numeric/interp.hpp"
#include "stress/shmoo.hpp"

using namespace dramstress;

int main() {
  bench::banner("Shmoo baseline (paper Section 2)");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const stress::StressCondition nominal = stress::nominal_condition();

  // Derive the test once at the nominal corner.
  analysis::BorderResult nominal_br;
  {
    dram::ColumnSimulator sim(column, nominal);
    nominal_br = analysis::analyze_defect(column, d, sim);
  }
  if (!nominal_br.br.has_value()) {
    std::printf("unexpected: no nominal border\n");
    return 1;
  }
  std::printf("test under Shmoo: '%s'\n", nominal_br.condition.str().c_str());

  stress::ShmooOptions opt;
  opt.x_axis = stress::StressAxis::CycleTime;
  opt.y_axis = stress::StressAxis::SupplyVoltage;
  opt.x_values = numeric::linspace(52e-9, 68e-9, 9);
  opt.y_values = numeric::linspace(2.0, 2.8, 9);

  long total_sims = 0;
  for (double factor : {1.1, 0.8}) {
    const double r = *nominal_br.br * factor;
    const stress::ShmooPlot plot =
        stress::shmoo_plot(column, d, r, nominal_br.condition, nominal, opt);
    std::printf("\nDefect at R = %s (%.0f%% of the nominal border):\n",
                util::eng(r, "Ohm").c_str(), factor * 100);
    std::printf("%s", plot.render().c_str());
    std::printf("fail fraction: %.2f, simulations spent: %ld\n",
                plot.fail_fraction(), plot.simulations);
    total_sims += plot.simulations;

    util::CsvTable csv({"tcyc", "vdd", "pass"});
    for (size_t iy = 0; iy < plot.y_values.size(); ++iy)
      for (size_t ix = 0; ix < plot.x_values.size(); ++ix)
        csv.add_row({plot.x_values[ix], plot.y_values[iy],
                     plot.pass[iy][ix] ? 1.0 : 0.0});
    bench::write_csv(csv, util::format("shmoo_r%.0fk", r / 1e3));
  }

  std::printf("\ncost: Shmoo spent %ld full test simulations for 2 defect "
              "values on 1 axis pair.\n", total_sims);
  std::printf("the paper's probe method spends ~2 targeted simulations per "
              "stress value plus a handful of BR bisections, and explains "
              "*which* operation each stress attacks.\n");
  return 0;
}
