// Ablation: robustness of the stress recommendation under process
// variation (extension beyond the paper).  The border resistance of the
// fixed O3 test is sampled across perturbed technologies at the nominal
// and at the stressed corner; the stress conclusion holds if the stressed
// BR distribution sits below the nominal one.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "stress/optimizer.hpp"
#include "stress/variation.hpp"

using namespace dramstress;

int main() {
  bench::banner("ablation -- BR distribution under process variation");

  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const stress::StressCondition nominal = stress::nominal_condition();
  analysis::BorderResult nominal_br;
  {
    dram::ColumnSimulator sim(column, nominal);
    nominal_br = analysis::analyze_defect(column, d, sim);
  }
  stress::StressCondition stressed = nominal;
  stressed.tcyc = 55e-9;
  stressed.duty = 0.45;
  stressed.temp_c = 87.0;
  stressed.vdd = 2.1;

  stress::VariationOptions opt;
  opt.samples = 10;
  opt.settings.dt = 0.2e-9;
  opt.border.scan_points = 7;

  util::CsvTable csv({"stressed", "sample", "br_ohm"});
  const auto base = dram::default_technology();
  const auto dist_nom = stress::border_distribution(d, nominal,
                                                    nominal_br.condition,
                                                    base, opt);
  const auto dist_str = stress::border_distribution(d, stressed,
                                                    nominal_br.condition,
                                                    base, opt);
  for (size_t i = 0; i < dist_nom.borders.size(); ++i)
    csv.add_row({0.0, static_cast<double>(i), dist_nom.borders[i]});
  for (size_t i = 0; i < dist_str.borders.size(); ++i)
    csv.add_row({1.0, static_cast<double>(i), dist_str.borders[i]});
  bench::write_csv(csv, "ablation_variation");

  auto show = [](const char* label, const stress::BorderDistribution& dist) {
    std::printf("%-10s: mean %s, sigma %s, range [%s, %s] over %zu samples"
                " (%d without fault)\n", label,
                util::eng(dist.mean(), "Ohm").c_str(),
                util::eng(dist.stddev(), "Ohm").c_str(),
                util::eng(dist.min(), "Ohm").c_str(),
                util::eng(dist.max(), "Ohm").c_str(), dist.borders.size(),
                dist.no_fault_samples);
  };
  show("nominal", dist_nom);
  show("stressed", dist_str);

  const bool robust = dist_str.mean() < dist_nom.mean();
  std::printf("\nstress conclusion %s under variation: stressed mean BR %s "
              "nominal mean BR.\n", robust ? "HOLDS" : "DOES NOT HOLD",
              robust ? "<" : ">=");
  return 0;
}
