// Shared machinery for Figs. 3-5: overlaid Vc(t) traces of a single w0
// operation and a single read, swept over one stress axis.
#pragma once

#include <cstdio>

#include "analysis/vsa.hpp"
#include "bench/bench_common.hpp"
#include "dram/column_sim.hpp"
#include "stress/stress.hpp"

namespace dramstress::bench {

struct SweepEntry {
  std::string label;
  stress::StressCondition condition;
};

/// Time window of the first operation cycle in a compiled sequence.
inline double first_op_start(const stress::StressCondition& sc,
                             const dram::CommandTiming& timing) {
  return (1.0 - sc.duty) * sc.tcyc + timing.idle_cycles * sc.tcyc;
}

/// Extract the "vc" probe of the first operation cycle, time-shifted so the
/// wordline rise is t = 0.
inline util::Series cycle_series(const dram::RunResult& run,
                                 const stress::StressCondition& sc,
                                 const dram::CommandTiming& timing,
                                 const std::string& label, char glyph) {
  const double t0 = first_op_start(sc, timing);
  const size_t p = run.trace.probe_index("vc");
  util::Series s;
  s.name = label;
  s.glyph = glyph;
  for (size_t i = 0; i < run.trace.time.size(); ++i) {
    const double t = run.trace.time[i];
    if (t < t0) continue;
    s.x.push_back(t - t0);
    s.y.push_back(run.trace.samples[p][i]);
  }
  return s;
}

/// Run the Fig. 3/4/5 experiment: for each sweep entry, simulate one w0 on
/// a cell holding Vdd (top panel) and one read of a marginal level near the
/// nominal Vsa (bottom panel), then print both overlays and a summary.
/// `r_defect` is the injected O3 open (paper: 200 kOhm).
/// `read_probe_offset` sets the marginal read level relative to the nominal
/// Vsa; `read_del` optionally inserts a retention pause before the read
/// (used by the temperature figure, where leakage needs exposure time).
inline void run_axis_figure(const std::string& figure_name,
                            const std::vector<SweepEntry>& sweep,
                            double r_defect, double read_probe_offset,
                            double read_del) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  defect::Injection inj(column, d, r_defect);
  const dram::CommandTiming timing{};

  // Nominal Vsa anchors the marginal read level.
  const stress::StressCondition nominal = stress::nominal_condition();
  double vsa_nom = 0.0;
  {
    dram::ColumnSimulator sim(column, nominal);
    vsa_nom = analysis::extract_vsa(sim, d.side).threshold;
  }
  const double read_init = vsa_nom + read_probe_offset;
  std::printf("nominal Vsa(R=%s) = %.3f V; marginal read level = %.3f V\n",
              util::eng(r_defect, "Ohm").c_str(), vsa_nom, read_init);

  std::vector<util::Series> w0_series;
  std::vector<util::Series> rd_series;
  util::CsvTable summary({"sweep_value_index", "vc_after_w0", "read_bit"});
  static const char glyphs[] = {'*', 'o', '+'};

  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& entry = sweep[i];
    dram::ColumnSimulator sim(column, entry.condition);

    const dram::RunResult w0 =
        sim.run({dram::Operation::w0()}, entry.condition.vdd, d.side);
    w0_series.push_back(cycle_series(w0, entry.condition, timing,
                                     entry.label, glyphs[i % 3]));
    std::printf("  %-18s: Vc after w0 = %.3f V\n", entry.label.c_str(),
                w0.vc_after(0));

    dram::OpSequence read_seq;
    if (read_del > 0.0) read_seq.push_back(dram::Operation::del(read_del));
    read_seq.push_back(dram::Operation::r());
    const dram::RunResult rd = sim.run(read_seq, read_init, d.side);
    rd_series.push_back(cycle_series(rd, entry.condition, timing,
                                     entry.label, glyphs[i % 3]));
    std::printf("  %-18s: read of %.2f V -> %d\n", entry.label.c_str(),
                read_init, rd.last_read_bit());
    summary.add_row({static_cast<double>(i), w0.vc_after(0),
                     static_cast<double>(rd.last_read_bit())});
  }

  util::PlotOptions plot;
  plot.title = "Vc during a w0 operation (cell starts at Vdd)";
  plot.x_label = "t since WL rise [s]";
  plot.y_label = "Vc";
  std::printf("\n%s", util::ascii_plot(w0_series, plot).c_str());
  plot.title = "Vc during a read of the marginal level";
  std::printf("\n%s", util::ascii_plot(rd_series, plot).c_str());
  write_csv(summary, figure_name);
}

}  // namespace dramstress::bench
