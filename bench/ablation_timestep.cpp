// Ablation: sensitivity of the border resistance to the transient step
// size and the integration method (DESIGN.md: fixed-step implicit
// integration keeps sweeps deterministic; this bench quantifies the
// accuracy cost).  Includes google-benchmark timings of one full memory
// cycle per configuration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/border.hpp"
#include "stress/stress.hpp"
#include "bench/bench_common.hpp"

using namespace dramstress;

namespace {

double border_at(double dt, circuit::Integrator integ) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::SimSettings settings;
  settings.dt = dt;
  settings.integrator = integ;
  dram::ColumnSimulator sim(column, stress::nominal_condition(), settings);
  const analysis::BorderResult br = analysis::analyze_defect(column, d, sim);
  return br.br.value_or(0.0);
}

void BM_MemoryCycle(benchmark::State& state) {
  const double dt = static_cast<double>(state.range(0)) * 1e-12;
  dram::DramColumn column;
  dram::SimSettings settings;
  settings.dt = dt;
  dram::ColumnSimulator sim(column, stress::nominal_condition(), settings);
  for (auto _ : state) {
    const auto r = sim.run({dram::Operation::w1()}, 0.0, dram::Side::True);
    benchmark::DoNotOptimize(r.final_vc);
  }
  state.SetLabel(dramstress::util::format("dt=%g ps", dt * 1e12));
}
BENCHMARK(BM_MemoryCycle)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("ablation -- transient step size & integrator vs. BR");

  util::CsvTable csv({"dt_ps", "trapezoidal", "br_ohm"});
  const double reference = border_at(0.05e-9, circuit::Integrator::BackwardEuler);
  std::printf("%-10s %-14s %-14s %s\n", "dt [ps]", "integrator", "BR",
              "error vs 50 ps BE");
  for (double dt : {0.05e-9, 0.1e-9, 0.2e-9, 0.4e-9}) {
    for (auto integ : {circuit::Integrator::BackwardEuler,
                       circuit::Integrator::Trapezoidal}) {
      const double br = border_at(dt, integ);
      const bool trap = integ == circuit::Integrator::Trapezoidal;
      std::printf("%-10.0f %-14s %-14s %+.1f%%\n", dt * 1e12,
                  trap ? "trapezoidal" : "backward-Euler",
                  util::eng(br, "Ohm").c_str(),
                  100.0 * (br - reference) / reference);
      csv.add_row({dt * 1e12, trap ? 1.0 : 0.0, br});
    }
  }
  bench::write_csv(csv, "ablation_timestep");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
