// Technology parameter set for the simulated DRAM column.
//
// The paper used a proprietary Infineon "design-validation" model of a real
// DRAM.  We substitute an open parameter set with the same structure and,
// critically, the same three temperature mechanisms the paper names in
// Section 4.2:
//   1. threshold voltage rises as T drops          (tcv on all MOSFETs),
//   2. drain current falls as T rises              (mobility exponent bex),
//   3. junction leakage rises steeply as T rises   (storage-node diode).
//
// Absolute values are calibrated so that the headline open-defect behaviour
// lands near the paper's numbers (border resistance ~200 kOhm at nominal
// stress for the O3 cell open with tcyc = 60 ns, Vdd = 2.4 V, T = +27 C).
#pragma once

#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"

namespace dramstress::dram {

struct TechnologyParams {
  // --- supply & bias levels (scaled from Vdd at run time) ---------------
  double vdd_nom = 2.4;        // V, nominal supply (paper: 2.4 V)
  double vpp_boost = 2.0;      // V, wordline boost above Vdd
  double vbl_frac = 0.5;       // bitline precharge level as fraction of Vdd
  /// Reference-cell level offset from the precharge level (V) at tnom, and
  /// its temperature coefficient (V/K).  The reference generator is
  /// Vth-referenced, so the level *rises* when cold (Vth up) and falls when
  /// hot:  vref(T) = vbl + vref_offset + vref_offset_tc * (T - tnom).
  /// A slightly *negative* offset at room temperature biases a zero-signal
  /// read toward 1 (the paper's footnote-1 behaviour: at large open
  /// resistance the SA "detects a 1 instead of a 0"); when cold the offset
  /// turns positive and the bias flips toward 0.  Because the reference
  /// cell always fires on the bitline *opposite* the addressed cell, this
  /// bias is cell-referenced: true- and comp-side cells see the same
  /// logical behaviour (paper Section 5.2).  Together with the junction
  /// leakage (dominant when hot) this produces the non-monotonic
  /// read-vs-temperature behaviour of Fig. 4.
  double vref_offset = -0.030;
  double vref_offset_tc = -0.7e-3;
  double tnom = 300.15;

  // --- capacitances -------------------------------------------------------
  double cs = 150e-15;        // F, storage capacitor
  double cbl = 1.5e-12;       // F, bitline capacitance (each of BT/BC)
  double c_parasitic = 2e-15; // F, parasitic at internal cell nodes
  double c_dout = 20e-15;     // F, output buffer load

  // --- devices -------------------------------------------------------------
  circuit::MosfetParams access;     // cell access transistor
  circuit::MosfetParams sense_n;    // SA n-latch
  circuit::MosfetParams sense_p;    // SA p-latch
  circuit::MosfetParams precharge;  // equalize/precharge devices
  circuit::MosfetParams wdriver;    // write-driver pass devices
  circuit::MosfetParams outbuf_n;   // output buffer inverter
  circuit::MosfetParams outbuf_p;

  /// Optional device mismatch of the SA n-latch device that discharges the
  /// complementary bitline: a width surplus (`sa_mismatch`, fraction) and a
  /// threshold surplus (`sa_vth_mismatch`, volts).  Zero by default -- a
  /// bitline-fixed mismatch breaks the true/comp symmetry of the paper's
  /// Section 5.2; the read bias is carried by the cell-referenced
  /// reference-level offset above.  Exposed for mismatch studies.
  double sa_mismatch = 0.0;
  double sa_vth_mismatch = 0.0;

  // --- storage-node junction leakage ---------------------------------------
  circuit::DiodeParams cell_leak;

  /// Number of cells hanging on each bitline in the model (the paper's
  /// column has a 2x2 cell array plus 2 reference cells).
  int cells_per_bitline = 2;
};

/// The calibrated default technology used by all experiments.
TechnologyParams default_technology();

/// Temperature-dependent reference-cell level for a supply `vdd` at
/// absolute temperature `kelvin`.
double reference_level(const TechnologyParams& tech, double vdd, double kelvin);

}  // namespace dramstress::dram
