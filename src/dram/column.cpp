#include "dram/column.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "verify/netlist_lint.hpp"

namespace dramstress::dram {

using circuit::kGround;
using circuit::MosType;
using circuit::NodeId;
using circuit::Waveform;

const char* to_string(Side side) {
  return side == Side::True ? "true" : "comp";
}

double physical_level(Side side, int logical, double vdd) {
  require(logical == 0 || logical == 1, "physical_level: logical must be 0/1");
  const bool high = (logical == 1) == (side == Side::True);
  return high ? vdd : 0.0;
}

DramColumn::DramColumn(TechnologyParams tech) : tech_(tech) { build(); }

NodeId DramColumn::cell_node(Side side) const {
  return netlist_.find_node(prefix(side) + "_cn");
}

NodeId DramColumn::bitline(Side side) const {
  return side == Side::True ? bt_ : bc_;
}

NodeId DramColumn::idle_cell_node(Side side) const {
  return netlist_.find_node(side == Side::True ? "t1_cn" : "c1_cn");
}

NodeId DramColumn::ref_cell_node(Side side) const {
  // The reference cell fires on the bitline *opposite* the addressed cell.
  return netlist_.find_node(side == Side::True ? "rc_cn" : "rt_cn");
}

NodeId DramColumn::wordline_node(Side side) const {
  return netlist_.find_node(side == Side::True ? "wl0" : "wl0c");
}

verify::VerifyReport DramColumn::verify() {
  verify::LintOptions opt;
  // Narrow the MOSFET geometry bounds around this technology's device
  // set: a 10x envelope catches unit typos (nm vs um) without flagging
  // legitimate mismatch scaling (sa_n2's width surplus).
  double w_lo = tech_.access.w, w_hi = tech_.access.w;
  double l_lo = tech_.access.l, l_hi = tech_.access.l;
  for (const circuit::MosfetParams* p :
       {&tech_.sense_n, &tech_.sense_p, &tech_.precharge, &tech_.wdriver,
        &tech_.outbuf_n, &tech_.outbuf_p}) {
    w_lo = std::min(w_lo, p->w);
    w_hi = std::max(w_hi, p->w);
    l_lo = std::min(l_lo, p->l);
    l_hi = std::max(l_hi, p->l);
  }
  opt.mos_w_min = w_lo / 10.0;
  opt.mos_w_max = w_hi * 10.0;
  opt.mos_l_min = l_lo / 10.0;
  opt.mos_l_max = l_hi * 10.0;
  return verify::NetlistLinter(opt).lint(netlist_);
}

NodeId DramColumn::seg_node_nd(Side side) const {
  return netlist_.find_node(prefix(side) + "_nd");
}
NodeId DramColumn::seg_node_ns(Side side) const {
  return netlist_.find_node(prefix(side) + "_ns");
}
NodeId DramColumn::seg_node_nm(Side side) const {
  return netlist_.find_node(prefix(side) + "_nm");
}

circuit::Resistor* DramColumn::segment(Side side, const std::string& key) const {
  static const char* kKeys[] = {"o1", "o2", "o3", "sg", "sv", "b1", "b2", "b3"};
  bool known = false;
  for (const char* k : kKeys) known = known || key == k;
  require(known, "DramColumn::segment: unknown defect key: " + key);
  circuit::Device* dev = netlist_.find_device(prefix(side) + "_" + key);
  require(dev != nullptr, "DramColumn::segment: missing device for " + key);
  return static_cast<circuit::Resistor*>(dev);
}

void DramColumn::clear_defects() {
  for (Side side : {Side::True, Side::Comp}) {
    for (const char* k : {"o1", "o2", "o3"})
      segment(side, k)->set_resistance(kSeriesPristineOhms);
    for (const char* k : {"sg", "sv", "b1", "b2", "b3"})
      segment(side, k)->set_resistance(kShuntPristineOhms);
  }
}

void DramColumn::build_target_cell(Side side) {
  const std::string p = prefix(side);
  const NodeId bl = bitline(side);
  const NodeId wl_node = netlist_.find_node(side == Side::True ? "wl0" : "wl0c");

  const NodeId nd = netlist_.node(p + "_nd");
  const NodeId ns = netlist_.node(p + "_ns");
  const NodeId nm = netlist_.node(p + "_nm");
  const NodeId cn = netlist_.node(p + "_cn");

  // Series path with open-defect placeholders.
  netlist_.add_resistor(p + "_o1", bl, nd, kSeriesPristineOhms);
  netlist_.add_mosfet(p + "_acc", MosType::Nmos, nd, wl_node, ns, kGround,
                      tech_.access);
  netlist_.add_resistor(p + "_o2", ns, nm, kSeriesPristineOhms);
  netlist_.add_resistor(p + "_o3", nm, cn, kSeriesPristineOhms);

  // Storage and parasitics.
  netlist_.add_capacitor(p + "_cs", cn, kGround, tech_.cs);
  netlist_.add_capacitor(p + "_cnd", nd, kGround, tech_.c_parasitic);
  netlist_.add_capacitor(p + "_cns", ns, kGround, tech_.c_parasitic);
  netlist_.add_capacitor(p + "_cnm", nm, kGround, tech_.c_parasitic);

  // Junction leakage: reverse-biased diode from substrate (ground) to the
  // storage node pulls a stored high level down, faster when hot.
  netlist_.add_diode(p + "_leak", kGround, cn, tech_.cell_leak);

  // Short/bridge placeholders.  b3 bridges to the neighbouring cell's
  // storage node (same bitline) -- the inter-cell coupling defect.
  netlist_.add_resistor(p + "_sg", cn, kGround, kShuntPristineOhms);
  netlist_.add_resistor(p + "_sv", cn, vddn_, kShuntPristineOhms);
  netlist_.add_resistor(p + "_b1", cn, bl, kShuntPristineOhms);
  netlist_.add_resistor(p + "_b2", cn, wl_node, kShuntPristineOhms);
  const NodeId neighbor_cn =
      netlist_.node((side == Side::True ? std::string("t1") : std::string("c1")) + "_cn");
  netlist_.add_resistor(p + "_b3", cn, neighbor_cn, kShuntPristineOhms);
}

void DramColumn::build_idle_cell(const std::string& p, NodeId bl,
                                 circuit::VoltageSource** wl_out) {
  const NodeId wl = netlist_.node(p + "_wl");
  *wl_out = netlist_.add_voltage_source("V" + p + "_wl", wl, kGround,
                                        Waveform::dc(0.0));
  const NodeId cn = netlist_.node(p + "_cn");
  netlist_.add_mosfet(p + "_acc", MosType::Nmos, bl, wl, cn, kGround,
                      tech_.access);
  netlist_.add_capacitor(p + "_cs", cn, kGround, tech_.cs);
  netlist_.add_diode(p + "_leak", kGround, cn, tech_.cell_leak);
}

void DramColumn::build_ref_cell(const std::string& p, NodeId bl,
                                circuit::VoltageSource** rwl_out) {
  const NodeId rwl = netlist_.node(p + "_wl");
  *rwl_out = netlist_.add_voltage_source("V" + p + "_wl", rwl, kGround,
                                         Waveform::dc(0.0));
  const NodeId cn = netlist_.node(p + "_cn");
  netlist_.add_mosfet(p + "_acc", MosType::Nmos, bl, rwl, cn, kGround,
                      tech_.access);
  netlist_.add_capacitor(p + "_cs", cn, kGround, tech_.cs);
  netlist_.add_diode(p + "_leak", kGround, cn, tech_.cell_leak);
  // Reference refresh: during precharge (EQ high) the reference cell is
  // re-written to the vref level.
  const NodeId eq = netlist_.find_node("eq");
  const NodeId vrefn = netlist_.find_node("vrefn");
  netlist_.add_mosfet(p + "_rst", MosType::Nmos, vrefn, eq, cn, kGround,
                      tech_.precharge);
}

void DramColumn::build() {
  // --- rails and global control nodes -------------------------------
  vddn_ = netlist_.node("vddn");
  controls_.vdd = netlist_.add_voltage_source("Vdd", vddn_, kGround,
                                              Waveform::dc(tech_.vdd_nom));
  const NodeId vbln = netlist_.node("vbln");
  controls_.vbl = netlist_.add_voltage_source(
      "Vbl", vbln, kGround, Waveform::dc(tech_.vbl_frac * tech_.vdd_nom));
  const NodeId vrefn = netlist_.node("vrefn");
  controls_.vref = netlist_.add_voltage_source(
      "Vref", vrefn, kGround,
      Waveform::dc(reference_level(tech_, tech_.vdd_nom, tech_.tnom)));

  bt_ = netlist_.node("bt");
  bc_ = netlist_.node("bc");
  netlist_.add_capacitor("c_bt", bt_, kGround, tech_.cbl);
  netlist_.add_capacitor("c_bc", bc_, kGround, tech_.cbl);

  const NodeId eq = netlist_.node("eq");
  controls_.eq = netlist_.add_voltage_source("Veq", eq, kGround, Waveform::dc(0.0));
  const NodeId sann = netlist_.node("sann");
  controls_.san = netlist_.add_voltage_source("Vsan", sann, kGround, Waveform::dc(0.0));
  const NodeId sapn = netlist_.node("sapn");
  controls_.sap = netlist_.add_voltage_source("Vsap", sapn, kGround, Waveform::dc(0.0));
  const NodeId wsl = netlist_.node("wsl");
  controls_.wsl = netlist_.add_voltage_source("Vwsl", wsl, kGround, Waveform::dc(0.0));
  const NodeId csl = netlist_.node("csl");
  controls_.csl = netlist_.add_voltage_source("Vcsl", csl, kGround, Waveform::dc(0.0));
  const NodeId dt = netlist_.node("dt");
  controls_.dt = netlist_.add_voltage_source("Vdt", dt, kGround, Waveform::dc(0.0));
  const NodeId dc = netlist_.node("dc");
  controls_.dc = netlist_.add_voltage_source("Vdc", dc, kGround, Waveform::dc(0.0));

  // Addressed wordlines (one per side).
  const NodeId wl0 = netlist_.node("wl0");
  controls_.wl_true =
      netlist_.add_voltage_source("Vwl0", wl0, kGround, Waveform::dc(0.0));
  const NodeId wl0c = netlist_.node("wl0c");
  controls_.wl_comp =
      netlist_.add_voltage_source("Vwl0c", wl0c, kGround, Waveform::dc(0.0));

  // --- precharge / equalize ---------------------------------------------
  netlist_.add_mosfet("eq_t", MosType::Nmos, bt_, eq, vbln, kGround, tech_.precharge);
  netlist_.add_mosfet("eq_c", MosType::Nmos, bc_, eq, vbln, kGround, tech_.precharge);
  netlist_.add_mosfet("eq_x", MosType::Nmos, bt_, eq, bc_, kGround, tech_.precharge);

  // --- sense amplifier -------------------------------------------------
  netlist_.add_mosfet("sa_p1", MosType::Pmos, bt_, bc_, sapn, vddn_, tech_.sense_p);
  netlist_.add_mosfet("sa_p2", MosType::Pmos, bc_, bt_, sapn, vddn_, tech_.sense_p);
  netlist_.add_mosfet("sa_n1", MosType::Nmos, bt_, bc_, sann, kGround, tech_.sense_n);
  // The device discharging BC carries both deliberate imbalances (see
  // TechnologyParams): a width surplus whose offset scales with Vov(T)
  // (toward 1) and a threshold surplus (toward 0, T-independent).  At room
  // temperature the width term wins, so a zero-signal read resolves to 1
  // (the paper's footnote-1 behaviour: at large open resistance the SA
  // "detects a 1 instead of a 0"); when cold, Vov shrinks and the
  // threshold term wins.
  circuit::MosfetParams n2 = tech_.sense_n;
  n2.vth0 += tech_.sa_vth_mismatch;
  circuit::Mosfet* sa_n2 =
      netlist_.add_mosfet("sa_n2", MosType::Nmos, bc_, bt_, sann, kGround, n2);
  sa_n2->scale_width(1.0 + tech_.sa_mismatch);

  // --- write driver -----------------------------------------------------
  netlist_.add_mosfet("wd_t", MosType::Nmos, dt, wsl, bt_, kGround, tech_.wdriver);
  netlist_.add_mosfet("wd_c", MosType::Nmos, dc, wsl, bc_, kGround, tech_.wdriver);

  // --- data output buffer ------------------------------------------------
  const NodeId doutb = netlist_.node("doutb");
  dout_ = netlist_.node("dout");
  netlist_.add_mosfet("ob_p", MosType::Pmos, doutb, bt_, vddn_, vddn_, tech_.outbuf_p);
  netlist_.add_mosfet("ob_n", MosType::Nmos, doutb, bt_, kGround, kGround, tech_.outbuf_n);
  netlist_.add_mosfet("ob_csl", MosType::Nmos, doutb, csl, dout_, kGround, tech_.outbuf_n);
  netlist_.add_capacitor("c_doutb", doutb, kGround, tech_.c_dout);
  netlist_.add_capacitor("c_dout", dout_, kGround, tech_.c_dout);

  // --- cells --------------------------------------------------------------
  build_target_cell(Side::True);
  build_target_cell(Side::Comp);
  build_idle_cell("t1", bt_, &controls_.wl_idle_t);
  build_idle_cell("c1", bc_, &controls_.wl_idle_c);
  build_ref_cell("rt", bt_, &controls_.rwl_t);
  build_ref_cell("rc", bc_, &controls_.rwl_c);
}

}  // namespace dramstress::dram
