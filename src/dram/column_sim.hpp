// High-level facade: run an operation sequence on a (possibly defective)
// column under given operating conditions and report per-operation results.
//
// This is the workhorse of the whole flow: result planes, Vsa extraction,
// border-resistance bisection and stress probing all reduce to calls of
// ColumnSimulator::run with different initial cell voltages, defect values
// and operating corners.
#pragma once

#include <optional>
#include <vector>

#include "circuit/transient.hpp"
#include "dram/command.hpp"

namespace dramstress::dram {

struct SimSettings {
  double dt = 0.1e-9;  // s, transient step during clocked cycles
  circuit::Integrator integrator = circuit::Integrator::BackwardEuler;
  int record_stride = 4;        // trace decimation
  circuit::NewtonOptions newton;
  CommandTiming timing;
  /// Retention (del) phases integrate with dur/del_steps instead of dt.
  int del_steps = 256;

  // --- adaptive (LTE-controlled) stepping ---------------------------------
  // On by default: column waveforms are mostly flat holds, and the LTE
  // controller reproduces the fixed-step planes within documented tolerance
  // (docs/ENGINE.md) at a fraction of the steps.  `dt` above doubles as the
  // adaptive initial step.
  bool adaptive = true;
  double lte_tol = 5e-4;   // relative LTE tolerance on node voltages
  double dt_min = 1e-13;   // s, smallest adaptive step
  double dt_max = 0.0;     // s, largest adaptive step; 0 = uncapped
  /// Modified Newton: reuse the last factorization while convergence is fast.
  bool reuse_jacobian = true;
  /// MNA linear-solver backend (Auto picks sparse for column-sized systems).
  circuit::SolverBackend backend = circuit::SolverBackend::Auto;
};

struct OpResult {
  OpKind kind = OpKind::R;
  /// Logical value returned by the sense path (reads only).
  std::optional<int> bit;
  /// Bitline differential V(bt) - V(bc) at the read-decision sample (reads
  /// only, 0 otherwise).  `bit` is exactly `sense_margin > 0` -- the same
  /// comparison the sampler makes -- so the margin is a continuous measure
  /// of how close the read was to flipping.  The surrogate border search
  /// root-finds on it instead of bisecting the boolean.
  double sense_margin = 0.0;
  /// Addressed-cell storage voltage right after the active window.
  double vc = 0.0;
};

struct RunResult {
  std::vector<OpResult> ops;
  circuit::Trace trace;     // probes: "bt", "bc", "vc"
  double final_vc = 0.0;

  /// Read bit of operation i; throws if that op was not a read.
  int read_bit(size_t i) const;
  /// Cell voltage after operation i.
  double vc_after(size_t i) const;
  /// Bit of the last read in the sequence; throws if none.
  int last_read_bit() const;
};

/// Count of full transient runs executed by the *calling thread* since it
/// started: one per ColumnSimulator::run call, one per active lane of an
/// ensemble batch.  The process-wide total is mirrored into the
/// `sim.transients` obs counter; this thread-local view exists so callers
/// that own a whole work item on one thread (the campaign runner, the
/// surrogate search) can meter the item by differencing around it.
long thread_transients();

/// Record `n` transient runs against the calling thread's total and the
/// `sim.transients` counter (internal: ColumnSimulator and the ensemble
/// runner are the only intended callers).
void count_transients(long n = 1);

class ColumnSimulator {
public:
  ColumnSimulator(DramColumn& column, OperatingConditions cond,
                  SimSettings settings = {});

  /// Run `seq` against the addressed cell on `side`, whose storage node
  /// starts at `vc_init` (the floating-cell initialization of Section 3).
  RunResult run(const OpSequence& seq, double vc_init, Side side) const;

  /// Single read of a cell initialized to `vc_init`: the probe used for
  /// Vsa extraction.  Returns the logical bit.
  int read_of_initial(double vc_init, Side side) const;

  const OperatingConditions& conditions() const { return cond_; }
  void set_conditions(const OperatingConditions& cond) { cond_ = cond; }
  const SimSettings& settings() const { return settings_; }
  DramColumn& column() const { return *column_; }

private:
  DramColumn* column_;
  OperatingConditions cond_;
  SimSettings settings_;
};

}  // namespace dramstress::dram
