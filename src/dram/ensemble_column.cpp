#include "dram/ensemble_column.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "circuit/ensemble_transient.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace dramstress::dram {

using circuit::EnsembleTransient;
using circuit::TransientOptions;

namespace {

std::vector<circuit::Netlist*> lane_netlists(
    const std::vector<ColumnSimulator*>& sims) {
  require(!sims.empty(), "EnsembleColumnSim: at least one lane required");
  std::vector<circuit::Netlist*> nets;
  nets.reserve(sims.size());
  for (ColumnSimulator* s : sims) nets.push_back(&s->column().netlist());
  return nets;
}

}  // namespace

EnsembleColumnSim::EnsembleColumnSim(std::vector<ColumnSimulator*> sims)
    : sims_(std::move(sims)), mna_(lane_netlists(sims_)) {
  const OperatingConditions& cond = sims_[0]->conditions();
  const SimSettings& st = sims_[0]->settings();
  require(st.adaptive,
          "EnsembleColumnSim: batching requires the adaptive engine");
  for (const ColumnSimulator* s : sims_) {
    const OperatingConditions& c = s->conditions();
    require(c.vdd == cond.vdd && c.temp_c == cond.temp_c &&
                c.tcyc == cond.tcyc && c.duty == cond.duty,
            "EnsembleColumnSim: lanes must share operating conditions");
    const SimSettings& t = s->settings();
    require(t.dt == st.dt && t.integrator == st.integrator &&
                t.adaptive == st.adaptive && t.lte_tol == st.lte_tol &&
                t.dt_min == st.dt_min && t.dt_max == st.dt_max &&
                t.reuse_jacobian == st.reuse_jacobian &&
                t.del_steps == st.del_steps,
            "EnsembleColumnSim: lanes must share simulation settings");
  }
}

std::vector<EnsembleRunResult> EnsembleColumnSim::run_batch(
    const OpSequence& seq, Side side, const std::vector<double>& vc_init,
    const std::vector<char>& active, bool early_stop, double lte_scale) {
  require(lte_scale >= 1.0,
          "EnsembleColumnSim::run_batch: lte_scale must be >= 1");
  OBS_SPAN("column.run_batch");
  const size_t nlanes = sims_.size();
  std::vector<char> act = active;
  if (act.empty()) act.assign(nlanes, 1);
  require(act.size() == nlanes && vc_init.size() == nlanes,
          "EnsembleColumnSim::run_batch: per-lane input size mismatch");

  std::vector<EnsembleRunResult> results(nlanes);
  const OperatingConditions& cond = sims_[0]->conditions();
  const SimSettings& st = sims_[0]->settings();

  // Compiling installs each lane's waveforms; the schedule itself depends
  // only on (cond, side, seq, timing), which lanes share.
  std::optional<CompiledSchedule> sched;
  long active_count = 0;
  for (size_t l = 0; l < nlanes; ++l) {
    if (act[l] == 0) continue;
    ++active_count;
    CompiledSchedule s = compile_sequence(sims_[l]->column(), cond, side, seq,
                                          st.timing);
    if (!sched) sched = std::move(s);
  }
  if (!sched) return results;
  obs::count("ensemble.runs");
  obs::count("ensemble.lanes", active_count);
  count_transients(active_count);

  TransientOptions topt;
  topt.dt = st.dt;
  topt.integrator = st.integrator;
  topt.temperature = cond.kelvin();
  topt.newton = st.newton;
  topt.record_stride = st.record_stride;
  topt.adaptive = st.adaptive;
  topt.lte_tol = st.lte_tol * lte_scale;
  topt.dt_min = st.dt_min;
  topt.dt_max = st.dt_max;
  topt.reuse_jacobian = st.reuse_jacobian;
  EnsembleTransient sim(mna_, topt, act);

  // --- initial conditions, per lane (mirrors ColumnSimulator::run) --------
  const double kOpenThreshold = 10e3;
  for (size_t l = 0; l < nlanes; ++l) {
    if (act[l] == 0) continue;
    DramColumn& col = sims_[l]->column();
    const double vbl = col.tech().vbl_frac * cond.vdd;
    const double vref = reference_level(col.tech(), cond.vdd, cond.kelvin());
    struct SrcInit {
      circuit::VoltageSource* src;
      const char* node;
    };
    auto& c = col.controls();
    const SrcInit inits[] = {
        {c.vdd, "vddn"}, {c.vbl, "vbln"},   {c.vref, "vrefn"}, {c.eq, "eq"},
        {c.san, "sann"}, {c.sap, "sapn"},   {c.wsl, "wsl"},    {c.csl, "csl"},
        {c.dt, "dt"},    {c.dc, "dc"},      {c.wl_true, "wl0"},
        {c.wl_comp, "wl0c"}, {c.wl_idle_t, "t1_wl"}, {c.wl_idle_c, "c1_wl"},
        {c.rwl_t, "rt_wl"}, {c.rwl_c, "rc_wl"},
    };
    for (const SrcInit& si : inits)
      sim.set_initial_condition(l, col.netlist().find_node(si.node),
                                si.src->value(0.0));
    sim.set_initial_condition(l, col.bt(), vbl);
    sim.set_initial_condition(l, col.bc(), vbl);
    sim.set_initial_condition(l, col.netlist().find_node("rt_cn"), vref);
    sim.set_initial_condition(l, col.netlist().find_node("rc_cn"), vref);
    sim.set_initial_condition(l, col.idle_cell_node(Side::True), 0.0);
    sim.set_initial_condition(l, col.idle_cell_node(Side::Comp), 0.0);
    for (Side s : {Side::True, Side::Comp}) {
      const double v = (s == side) ? vc_init[l] : 0.0;
      const bool o3_open =
          col.segment(s, "o3")->resistance() > kOpenThreshold;
      const bool o2_open =
          col.segment(s, "o2")->resistance() > kOpenThreshold;
      sim.set_initial_condition(l, col.cell_node(s), v);
      sim.set_initial_condition(l, col.seg_node_nm(s), o3_open ? vbl : v);
      sim.set_initial_condition(l, col.seg_node_ns(s),
                                (o3_open || o2_open) ? vbl : v);
      sim.set_initial_condition(l, col.seg_node_nd(s), vbl);
    }
    sim.set_initial_condition(l, col.netlist().find_node("doutb"), 0.0);
    sim.set_initial_condition(l, col.dout(), 0.0);

    results[l].ops.resize(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) results[l].ops[i].kind = seq[i].kind;
  }

  // --- execute the schedule; sample times are common checkpoints ----------
  size_t next_sample = 0;
  const double eps = 1e-15;
  double now = 0.0;
  bool done = false;
  for (const auto& iv : sched->intervals) {
    const double span = iv.t1 - iv.t0;
    sim.set_dt(iv.is_del ? std::max(st.dt, span / st.del_steps) : st.dt);
    while (next_sample < sched->samples.size() &&
           sched->samples[next_sample].t <= iv.t1 + eps) {
      const auto& sm = sched->samples[next_sample];
      if (sm.t > now + eps) {
        sim.run(sm.t);
        now = sm.t;
      }
      for (size_t l = 0; l < nlanes; ++l) {
        if (act[l] == 0) continue;
        DramColumn& col = sims_[l]->column();
        OpResult& op = results[l].ops[static_cast<size_t>(sm.op_index)];
        if (sm.kind == CompiledSchedule::Sample::Kind::ReadBit) {
          op.sense_margin =
              sim.voltage(l, col.bt()) - sim.voltage(l, col.bc());
          op.bit = op.sense_margin > 0.0 ? 1 : 0;
        } else {
          op.vc = sim.voltage(l, col.cell_node(side));
        }
      }
      ++next_sample;
      if (early_stop && next_sample == sched->samples.size()) {
        // Nothing after the last sample is observed by any consumer of a
        // batched run (no trace, and final_vc is read at the stop point):
        // skip the tail of the final cycle.
        done = true;
        break;
      }
    }
    if (done) break;
    if (iv.t1 > now + eps) {
      sim.run(iv.t1);
      now = iv.t1;
    }
  }

  for (size_t l = 0; l < nlanes; ++l) {
    if (act[l] == 0) continue;
    results[l].final_vc = sim.voltage(l, sims_[l]->column().cell_node(side));
  }
  return results;
}

std::vector<int> EnsembleColumnSim::read_of_initial_batch(
    const std::vector<double>& vc_init, Side side,
    const std::vector<char>& active, bool early_stop, double lte_scale) {
  const std::vector<EnsembleRunResult> rr =
      run_batch({Operation::r()}, side, vc_init, active, early_stop,
                lte_scale);
  std::vector<int> bits(sims_.size(), -1);
  for (size_t l = 0; l < sims_.size(); ++l)
    if (!rr[l].ops.empty() && rr[l].ops[0].bit.has_value())
      bits[l] = *rr[l].ops[0].bit;
  return bits;
}

}  // namespace dramstress::dram
