// Folded-bitline DRAM column netlist builder.
//
// Reproduces the inventory of the paper's simplified design-validation
// model (Section 5.1): one folded cell-array column with a 2x2 cell array,
// 2 reference cells, precharge devices, a sense amplifier, one write driver
// and one data output buffer.
//
// Topology (true side shown; the complementary side mirrors it):
//
//   BT --[o1]-- nd --(access tx, gate WL0)-- ns --[o2]-- nm --[o3]-- cn
//                                                                    |
//                                                              Cs = storage
//   shunt placeholders:  cn--[sg]--GND   cn--[sv]--VDD
//                        cn--[b1]--BT    cn--[b2]--WL0
//
// o1..o3 are 1-Ohm series stubs and sg/sv/b1/b2 are 1e15-Ohm shunt stubs in
// the pristine column; defect injection only changes a stub's resistance,
// so the MNA structure is identical across every sweep point.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "dram/technology.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::dram {

/// Which bitline the addressed cell hangs on.  A comp-side cell stores the
/// inverted physical level for the same logical data (paper Table 1:
/// detection conditions for "comp." rows have 0s and 1s interchanged).
enum class Side { True, Comp };

const char* to_string(Side side);

/// Physical storage-node voltage representing `logical` (0/1) on `side`:
/// a true-side cell stores logical 1 as vdd, a comp-side cell as 0 V.
double physical_level(Side side, int logical, double vdd);

/// Pristine values of the defect placeholder stubs.
inline constexpr double kSeriesPristineOhms = 1.0;
inline constexpr double kShuntPristineOhms = 1e15;

/// Owns the netlist of one folded column and exposes the handles the
/// command engine (control sources), the analysis (probe nodes) and the
/// defect injector (placeholder resistors) need.
class DramColumn {
public:
  explicit DramColumn(TechnologyParams tech = default_technology());

  DramColumn(const DramColumn&) = delete;
  DramColumn& operator=(const DramColumn&) = delete;

  circuit::Netlist& netlist() { return netlist_; }
  const circuit::Netlist& netlist() const { return netlist_; }
  const TechnologyParams& tech() const { return tech_; }

  /// Static verification of this column's netlist: the full
  /// verify::NetlistLinter battery with MOSFET geometry bounds narrowed
  /// around this technology's device set.  A healthy column reports zero
  /// diagnostics.  (Non-const: linting assigns MNA branch indices, the
  /// same ones MnaSystem would.)
  verify::VerifyReport verify();

  // --- probe nodes --------------------------------------------------------
  circuit::NodeId bt() const { return bt_; }
  circuit::NodeId bc() const { return bc_; }
  circuit::NodeId dout() const { return dout_; }
  /// Supply rail node (the Vdd source's positive terminal).
  circuit::NodeId vdd_node() const { return vddn_; }
  /// Wordline node of the addressed cell on `side`.
  circuit::NodeId wordline_node(Side side) const;
  /// Storage node of the addressed (defect-bearing) cell on `side`.
  circuit::NodeId cell_node(Side side) const;
  /// Bitline the addressed cell on `side` hangs on.
  circuit::NodeId bitline(Side side) const;
  /// Storage node of the always-off neighbour cell on `side`.
  circuit::NodeId idle_cell_node(Side side) const;
  /// Reference-cell storage node on the bitline opposite to `side`.
  circuit::NodeId ref_cell_node(Side side) const;
  /// Internal defect-segment nodes of the addressed cell (nd, ns, nm).
  circuit::NodeId seg_node_nd(Side side) const;
  circuit::NodeId seg_node_ns(Side side) const;
  circuit::NodeId seg_node_nm(Side side) const;

  // --- control sources ------------------------------------------------
  struct Controls {
    circuit::VoltageSource* vdd = nullptr;   // supply rail
    circuit::VoltageSource* vbl = nullptr;   // bitline precharge level
    circuit::VoltageSource* vref = nullptr;  // reference-cell level
    circuit::VoltageSource* wl_true = nullptr;   // WL of addressed true cell
    circuit::VoltageSource* wl_comp = nullptr;   // WL of addressed comp cell
    circuit::VoltageSource* wl_idle_t = nullptr; // WL of off neighbour (true)
    circuit::VoltageSource* wl_idle_c = nullptr; // WL of off neighbour (comp)
    circuit::VoltageSource* rwl_t = nullptr;  // reference WL on BT
    circuit::VoltageSource* rwl_c = nullptr;  // reference WL on BC
    circuit::VoltageSource* eq = nullptr;     // precharge/equalize gate
    circuit::VoltageSource* san = nullptr;    // SA n-latch tail
    circuit::VoltageSource* sap = nullptr;    // SA p-latch tail
    circuit::VoltageSource* wsl = nullptr;    // write column select gate
    circuit::VoltageSource* dt = nullptr;     // data line (true)
    circuit::VoltageSource* dc = nullptr;     // data line (comp)
    circuit::VoltageSource* csl = nullptr;    // read column select gate
  };
  Controls& controls() { return controls_; }
  const Controls& controls() const { return controls_; }

  /// Defect placeholder resistor for `key` in {"o1","o2","o3","sg","sv",
  /// "b1","b2","b3"} on the addressed cell of `side` ("b3" bridges to the
  /// neighbouring cell's storage node).  Throws ModelError for an unknown
  /// key.
  circuit::Resistor* segment(Side side, const std::string& key) const;

  /// Restore every placeholder to its pristine value.
  void clear_defects();

private:
  void build();
  void build_target_cell(Side side);
  void build_idle_cell(const std::string& prefix, circuit::NodeId bl,
                       circuit::VoltageSource** wl_out);
  void build_ref_cell(const std::string& prefix, circuit::NodeId bl,
                      circuit::VoltageSource** rwl_out);
  std::string prefix(Side side) const { return side == Side::True ? "t" : "c"; }

  TechnologyParams tech_;
  circuit::Netlist netlist_;
  Controls controls_;
  circuit::NodeId vddn_ = 0;
  circuit::NodeId bt_ = 0;
  circuit::NodeId bc_ = 0;
  circuit::NodeId dout_ = 0;
};

}  // namespace dramstress::dram
