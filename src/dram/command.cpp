#include "dram/command.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace dramstress::dram {

using circuit::Waveform;

double OperatingConditions::kelvin() const {
  return units::celsius_to_kelvin(temp_c);
}

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::W0: return "w0";
    case OpKind::W1: return "w1";
    case OpKind::R: return "r";
    case OpKind::Del: return "del";
  }
  return "?";
}

std::string to_string(const OpSequence& seq) {
  std::vector<std::string> parts;
  parts.reserve(seq.size());
  for (const Operation& op : seq) {
    if (op.kind == OpKind::Del) {
      parts.push_back(util::format("del(%s)", util::eng(op.del_seconds, "s").c_str()));
    } else {
      parts.push_back(std::string(op.neighbor ? "n:" : "") +
                      to_string(op.kind));
    }
  }
  return util::join(parts, " ");
}

namespace {

/// Builds one control waveform as a series of held levels with ramps.
class Signal {
public:
  Signal(double initial, double ramp) : ramp_(ramp) {
    w_ = Waveform::pwl();
    w_.add_point(0.0, initial);
  }
  /// Hold the current level until t, then ramp to `level` by t + ramp.
  void to(double t, double level) { w_.hold_then_ramp(t, level, ramp_); }
  Waveform take() { return std::move(w_); }

private:
  Waveform w_;
  double ramp_;
};

}  // namespace

CompiledSchedule compile_sequence(DramColumn& col, const OperatingConditions& cond,
                                  Side side, const OpSequence& seq,
                                  const CommandTiming& timing) {
  require(!seq.empty(), "compile_sequence: empty operation sequence");
  require(cond.duty > 0.05 && cond.duty < 0.95,
          "compile_sequence: duty must be in (0.05, 0.95)");
  const double active = cond.duty * cond.tcyc;
  require(active > timing.csl_delay + 3.0 * timing.ramp,
          "compile_sequence: active window too short for the command timing");

  const TechnologyParams& tech = col.tech();
  const double vdd = cond.vdd;
  const double vpp = vdd + tech.vpp_boost;
  const double vbl = tech.vbl_frac * vdd;
  const double vref = reference_level(tech, vdd, cond.kelvin());
  const double ramp = timing.ramp;

  // DC rails follow the stressed supply.
  auto& c = col.controls();
  c.vdd->set_waveform(Waveform::dc(vdd));
  c.vbl->set_waveform(Waveform::dc(vbl));
  c.vref->set_waveform(Waveform::dc(vref));

  // Addressed wordline, the neighbour's wordline (for aggressor ops) and
  // the reference wordline on the opposite bitline.
  Signal wl(0.0, ramp);
  Signal nwl(0.0, ramp);
  Signal rwl(0.0, ramp);
  Signal eq(vpp, ramp);
  Signal san(vbl, ramp);
  Signal sap(vbl, ramp);
  Signal wsl(0.0, ramp);
  Signal csl(0.0, ramp);
  Signal dt(0.0, ramp);
  Signal dc(0.0, ramp);

  CompiledSchedule sched;
  sched.ops = seq;

  // Initial precharge window (plus the configured idle cycles) so the
  // bitlines settle and leakage sees its pre-access exposure.
  require(timing.idle_cycles >= 0, "compile_sequence: idle_cycles < 0");
  double t = (1.0 - cond.duty) * cond.tcyc + timing.idle_cycles * cond.tcyc;
  sched.intervals.push_back({0.0, t, false});

  for (size_t i = 0; i < seq.size(); ++i) {
    const Operation& op = seq[i];
    const int idx = static_cast<int>(i);
    if (op.kind == OpKind::Del) {
      require(op.del_seconds > 0.0, "compile_sequence: del needs a duration");
      // Quiet retention phase: column stays precharged (EQ high).
      sched.intervals.push_back({t, t + op.del_seconds, true, idx});
      t += op.del_seconds;
      continue;
    }

    const double t0 = t;             // cycle start: WL rises
    const double t_act_end = t0 + active;
    eq.to(t0 - 2.0 * ramp, 0.0);  // precharge ends just before activation
    Signal& row = op.neighbor ? nwl : wl;
    row.to(t0, vpp);
    rwl.to(t0, vpp);
    // Sense amplifier fires after the charge-sharing window.
    san.to(t0 + timing.sense_delay, 0.0);
    sap.to(t0 + timing.sense_delay, vdd);

    if (op.kind == OpKind::W0 || op.kind == OpKind::W1) {
      const bool one = op.kind == OpKind::W1;
      // Logical data on the shared data lines; a comp-side cell physically
      // stores the complement because it hangs on BC.
      dt.to(t0 - ramp, one ? vdd : 0.0);
      dc.to(t0 - ramp, one ? 0.0 : vdd);
      wsl.to(t0 + timing.write_delay, vpp);
      wsl.to(t_act_end - 2.0 * ramp, 0.0);
    } else {  // read
      csl.to(t0 + timing.csl_delay, vpp);
      csl.to(t_act_end - 2.0 * ramp, 0.0);
      sched.samples.push_back({t_act_end - ramp, idx,
                               CompiledSchedule::Sample::Kind::ReadBit});
    }

    // Close the row, recover the SA, precharge until the cycle ends.
    row.to(t_act_end - ramp, 0.0);
    rwl.to(t_act_end - ramp, 0.0);
    san.to(t_act_end + 0.5e-9, vbl);
    sap.to(t_act_end + 0.5e-9, vbl);
    sched.samples.push_back({t_act_end, idx,
                             CompiledSchedule::Sample::Kind::CellVoltage});
    eq.to(t_act_end + 2.0e-9, vpp);  // stays high until the next activation
    const double t_cycle_end = t0 + cond.tcyc;
    sched.intervals.push_back({t0, t_cycle_end, false, idx});
    t = t_cycle_end;
  }

  sched.t_end = t;

  // Route the wordlines according to the addressed side; the neighbour
  // shares the bitline, so its waveform goes to the idle cell's wordline
  // on the same side.
  if (side == Side::True) {
    c.wl_true->set_waveform(wl.take());
    c.wl_idle_t->set_waveform(nwl.take());
    c.wl_comp->set_waveform(Waveform::dc(0.0));
    c.wl_idle_c->set_waveform(Waveform::dc(0.0));
    c.rwl_c->set_waveform(rwl.take());
    c.rwl_t->set_waveform(Waveform::dc(0.0));
  } else {
    c.wl_comp->set_waveform(wl.take());
    c.wl_idle_c->set_waveform(nwl.take());
    c.wl_true->set_waveform(Waveform::dc(0.0));
    c.wl_idle_t->set_waveform(Waveform::dc(0.0));
    c.rwl_t->set_waveform(rwl.take());
    c.rwl_c->set_waveform(Waveform::dc(0.0));
  }
  c.eq->set_waveform(eq.take());
  c.san->set_waveform(san.take());
  c.sap->set_waveform(sap.take());
  c.wsl->set_waveform(wsl.take());
  c.csl->set_waveform(csl.take());
  c.dt->set_waveform(dt.take());
  c.dc->set_waveform(dc.take());
  return sched;
}

}  // namespace dramstress::dram
