// Memory operations and the command/timing compiler.
//
// Each operation (w0, w1, r) occupies one full clock cycle, as in the
// paper: an active window of duty*tcyc during which the wordline is open,
// followed by a precharge window.  A sequence therefore directly inherits
// the two timing stresses: shrinking tcyc shortens the time a write has to
// charge/discharge the cell through a defect, and the duty cycle moves the
// boundary between active and precharge time.
#pragma once

#include <string>
#include <vector>

#include "dram/column.hpp"

namespace dramstress::dram {

/// Operating corner: the four stresses of the paper.
struct OperatingConditions {
  double vdd = 2.4;      // V
  double temp_c = 27.0;  // degrees Celsius
  double tcyc = 60e-9;   // s, clock cycle time
  double duty = 0.5;     // active fraction of the cycle

  double kelvin() const;
};

enum class OpKind { W0, W1, R, Del };

const char* to_string(OpKind kind);

struct Operation {
  OpKind kind = OpKind::R;
  double del_seconds = 0.0;  // only for Del
  /// Operate on the neighbouring cell (same bitline, next wordline)
  /// instead of the addressed one: the aggressor accesses that coupling
  /// defects (e.g. a bridge between adjacent storage nodes) need.
  bool neighbor = false;

  static Operation w0() { return {OpKind::W0, 0.0, false}; }
  static Operation w1() { return {OpKind::W1, 0.0, false}; }
  static Operation r() { return {OpKind::R, 0.0, false}; }
  static Operation del(double seconds) { return {OpKind::Del, seconds, false}; }
  static Operation nw0() { return {OpKind::W0, 0.0, true}; }
  static Operation nw1() { return {OpKind::W1, 0.0, true}; }
  static Operation nr() { return {OpKind::R, 0.0, true}; }
};

using OpSequence = std::vector<Operation>;

/// Render e.g. "w1 w1 w0 r" (del shown with its duration).
std::string to_string(const OpSequence& seq);

/// Intra-cycle timing constants (relative to the cycle start).
struct CommandTiming {
  double ramp = 1e-9;         // rise/fall time of every control edge
  double sense_delay = 5e-9;  // WL rise -> SAN/SAP fire (charge sharing)
  double write_delay = 2e-9;  // WL rise -> write driver on
  double csl_delay = 6e-9;    // WL rise -> output column select on
  /// Idle (precharged) cycles before the first operation.  Models the row
  /// having been closed since the previous access; gives the storage-node
  /// junction leakage its realistic pre-read exposure window.
  int idle_cycles = 1;
};

/// Fully scheduled sequence: source waveforms have been installed on the
/// column; the schedule tells the simulator where to sample.
struct CompiledSchedule {
  struct Sample {
    double t = 0.0;
    int op_index = 0;
    enum class Kind { ReadBit, CellVoltage } kind = Kind::CellVoltage;
  };
  struct Interval {
    double t0 = 0.0;
    double t1 = 0.0;
    bool is_del = false;   // retention phase: integrate with a coarse step
    int op_index = -1;     // index into ops; -1 for the initial precharge
  };

  double t_end = 0.0;
  OpSequence ops;
  std::vector<Sample> samples;     // sorted by time
  std::vector<Interval> intervals; // contiguous, cover [0, t_end]
};

/// Compile `seq` for the addressed cell on `side` under `cond`: installs
/// PWL waveforms on every control source of `col` (including the supply
/// rails scaled to cond.vdd) and returns the sampling schedule.
/// The sequence is preceded by one precharge window so the column is in a
/// settled precharged state before the first operation.
CompiledSchedule compile_sequence(DramColumn& col, const OperatingConditions& cond,
                                  Side side, const OpSequence& seq,
                                  const CommandTiming& timing = {});

}  // namespace dramstress::dram
