// Batched column simulation: one EnsembleMna drives N per-worker column
// clones ("lanes") through the same operation sequence at once.
//
// Lanes share structure (the plane sweep clones one column per worker and
// only rewrites the injected defect value between points) but carry their
// own element values, initial cell voltage and solver state, so each
// lane's results are byte-identical to what a batch of size 1 -- and any
// other batch composition -- would produce.  The symbolic analysis, the
// per-mode stamp programs and the device-major assembly are built once in
// the constructor and amortized over every run of the batch.
//
// The run loop mirrors ColumnSimulator::run exactly: the compiled
// schedule's sample times and interval ends are common checkpoints at
// which every lane has landed exactly (EnsembleTransient::run semantics),
// so sampling logic carries over unchanged, per lane.
#pragma once

#include <optional>
#include <vector>

#include "circuit/ensemble_mna.hpp"
#include "dram/column_sim.hpp"

namespace dramstress::dram {

/// Per-operation results of one lane (no trace: batched runs feed plane
/// sweeps and bisection probes, which read bits and cell voltages only).
struct EnsembleRunResult {
  std::vector<OpResult> ops;
  double final_vc = 0.0;
};

class EnsembleColumnSim {
public:
  /// Bind N simulators as lanes.  All lanes must share operating
  /// conditions and settings (adaptive path required); columns must be
  /// structurally identical.
  explicit EnsembleColumnSim(std::vector<ColumnSimulator*> sims);

  size_t num_lanes() const { return sims_.size(); }
  ColumnSimulator& lane(size_t l) { return *sims_[l]; }

  /// Run `seq` on every lane whose active[] entry is nonzero (empty mask =
  /// all lanes), lane l's addressed cell starting at vc_init[l].  With
  /// `early_stop` the run ends right after the last scheduled sample --
  /// bisection probes only consume per-op results, so the tail of the
  /// final cycle (whose state no sample observes) is skipped.  `lte_scale`
  /// multiplies the step controller's LTE tolerance for this run only:
  /// probe runs that merely read a comparator bit tolerate a looser
  /// waveform than stress walks do, and the scale is a fixed constant per
  /// call site, so it never breaks batch-size determinism.  Inactive
  /// lanes get a default-constructed result.
  std::vector<EnsembleRunResult> run_batch(const OpSequence& seq, Side side,
                                           const std::vector<double>& vc_init,
                                           const std::vector<char>& active = {},
                                           bool early_stop = false,
                                           double lte_scale = 1.0);

  /// Batched read_of_initial: bit[l] of one read of a cell at vc_init[l].
  /// Entries for inactive lanes are -1.
  std::vector<int> read_of_initial_batch(const std::vector<double>& vc_init,
                                         Side side,
                                         const std::vector<char>& active = {},
                                         bool early_stop = true,
                                         double lte_scale = 1.0);

private:
  std::vector<ColumnSimulator*> sims_;
  circuit::EnsembleMna mna_;
};

}  // namespace dramstress::dram
