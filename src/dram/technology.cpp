#include "dram/technology.hpp"

namespace dramstress::dram {

TechnologyParams default_technology() {
  TechnologyParams t;

  circuit::MosfetParams base;
  base.l = 0.25e-6;
  base.kp_tnom = 120e-6;
  base.n = 1.35;
  base.lambda = 0.02;
  base.tnom = 300.15;
  base.tcv = 1.5e-3;
  base.bex = -2.0;

  // Access transistor: deliberately small (a real DRAM cell transistor has
  // an on-resistance of 10-20 kOhm).  This matters: the temperature
  // dependence of its drive current is what makes a w0 through a cell open
  // end at a higher Vc when hot (paper Fig. 4, top panel).  The wordline
  // boost (vpp) keeps it out of the threshold-drop regime.
  t.access = base;
  t.access.w = 0.10e-6;
  t.access.l = 0.90e-6;
  t.access.vth0 = 0.75;

  // Sense-amp latch: sized so the regeneration time constant against the
  // 1.5 pF bitline is ~1-2 ns.  The latch devices get a steeper Vth(T)
  // so the width-imbalance offset (proportional to Vov(T)) swings visibly
  // across the -33..+87 C range.
  t.sense_n = base;
  t.sense_n.w = 4e-6;
  t.sense_n.vth0 = 0.70;
  t.sense_n.tcv = 3.0e-3;
  t.sense_p = base;
  t.sense_p.w = 8e-6;  // PMOS mobility deficit compensated by width
  t.sense_p.vth0 = 0.70;
  t.sense_p.tcv = 3.0e-3;

  // Precharge/equalize devices: strong, gated at vpp.
  t.precharge = base;
  t.precharge.w = 6e-6;
  t.precharge.vth0 = 0.70;

  // Write driver pass devices: must overpower the SA latch.
  t.wdriver = base;
  t.wdriver.w = 10e-6;
  t.wdriver.vth0 = 0.70;

  // Output buffer inverter.
  t.outbuf_n = base;
  t.outbuf_n.w = 2e-6;
  t.outbuf_n.vth0 = 0.70;
  t.outbuf_p = base;
  t.outbuf_p.w = 4e-6;
  t.outbuf_p.vth0 = 0.70;

  // Storage-node junction: ~1 nA reverse leakage at +27 C in this
  // accelerated design-validation model, growing ~100x by +87 C (activation
  // energy 0.65 eV, roughly a doubling per 10 C -- typical for DRAM
  // retention) and shrinking to picoamps at -33 C.  Negligible within one
  // 60 ns cycle at room temperature, but enough to move a marginal stored
  // '1' during the idle window before a read at +87 C -- the paper's
  // leakage mechanism.
  t.cell_leak.is_tnom = 0.5e-9;
  t.cell_leak.n = 1.0;
  t.cell_leak.tnom = 300.15;
  t.cell_leak.xti = 3.0;
  t.cell_leak.eg = 0.65;

  return t;
}

double reference_level(const TechnologyParams& tech, double vdd, double kelvin) {
  return tech.vbl_frac * vdd + tech.vref_offset +
         tech.vref_offset_tc * (kelvin - tech.tnom);
}

}  // namespace dramstress::dram
