#include "dram/column_sim.hpp"

#include <chrono>
#include <cmath>

#include "circuit/mna.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::dram {

namespace {
thread_local long t_transients = 0;
}  // namespace

long thread_transients() { return t_transients; }

void count_transients(long n) {
  t_transients += n;
  obs::count("sim.transients", n);
}

using circuit::MnaSystem;
using circuit::TransientOptions;
using circuit::TransientSim;

int RunResult::read_bit(size_t i) const {
  require(i < ops.size(), "RunResult: op index out of range");
  require(ops[i].bit.has_value(),
          util::format("RunResult: op %zu is not a read", i));
  return *ops[i].bit;
}

double RunResult::vc_after(size_t i) const {
  require(i < ops.size(), "RunResult: op index out of range");
  return ops[i].vc;
}

int RunResult::last_read_bit() const {
  for (size_t i = ops.size(); i-- > 0;)
    if (ops[i].bit.has_value()) return *ops[i].bit;
  throw ModelError("RunResult: sequence contains no read");
}

ColumnSimulator::ColumnSimulator(DramColumn& column, OperatingConditions cond,
                                 SimSettings settings)
    : column_(&column), cond_(cond), settings_(settings) {}

namespace {

/// Histogram name for the wall time of one scheduled interval.  Literals:
/// obs metric names must outlive the process.
const char* op_wall_metric(const CompiledSchedule& sched, int op_index) {
  if (op_index < 0) return "op.wall.precharge";
  switch (sched.ops[static_cast<size_t>(op_index)].kind) {
    case OpKind::W0: return "op.wall.w0";
    case OpKind::W1: return "op.wall.w1";
    case OpKind::R: return "op.wall.r";
    case OpKind::Del: return "op.wall.del";
  }
  return "op.wall.precharge";
}

}  // namespace

RunResult ColumnSimulator::run(const OpSequence& seq, double vc_init,
                               Side side) const {
  OBS_SPAN("column.run");
  count_transients();
  DramColumn& col = *column_;
  const CompiledSchedule sched =
      compile_sequence(col, cond_, side, seq, settings_.timing);

  MnaSystem sys(col.netlist(), settings_.backend);
  TransientOptions topt;
  topt.dt = settings_.dt;
  topt.integrator = settings_.integrator;
  topt.temperature = cond_.kelvin();
  topt.newton = settings_.newton;
  topt.record_stride = settings_.record_stride;
  topt.adaptive = settings_.adaptive;
  topt.lte_tol = settings_.lte_tol;
  topt.dt_min = settings_.dt_min;
  topt.dt_max = settings_.dt_max;
  topt.reuse_jacobian = settings_.reuse_jacobian;
  TransientSim sim(sys, topt);

  // --- initial conditions -----------------------------------------------
  const double vbl = col.tech().vbl_frac * cond_.vdd;
  const double vref = reference_level(col.tech(), cond_.vdd, cond_.kelvin());
  // Every source-driven node starts at its waveform's t=0 value, so the
  // first step does not see artificial rail steps.
  struct SrcInit {
    circuit::VoltageSource* src;
    const char* node;
  };
  auto& c = col.controls();
  const SrcInit inits[] = {
      {c.vdd, "vddn"}, {c.vbl, "vbln"},   {c.vref, "vrefn"}, {c.eq, "eq"},
      {c.san, "sann"}, {c.sap, "sapn"},   {c.wsl, "wsl"},    {c.csl, "csl"},
      {c.dt, "dt"},    {c.dc, "dc"},      {c.wl_true, "wl0"},
      {c.wl_comp, "wl0c"}, {c.wl_idle_t, "t1_wl"}, {c.wl_idle_c, "c1_wl"},
      {c.rwl_t, "rt_wl"}, {c.rwl_c, "rc_wl"},
  };
  for (const SrcInit& si : inits)
    sim.set_initial_condition(col.netlist().find_node(si.node), si.src->value(0.0));

  sim.set_initial_condition(col.bt(), vbl);
  sim.set_initial_condition(col.bc(), vbl);
  // Reference and idle cells.
  sim.set_initial_condition(col.netlist().find_node("rt_cn"), vref);
  sim.set_initial_condition(col.netlist().find_node("rc_cn"), vref);
  sim.set_initial_condition(col.idle_cell_node(Side::True), 0.0);
  sim.set_initial_condition(col.idle_cell_node(Side::Comp), 0.0);
  // Addressed cell on `side` floats at vc_init.  Internal segment nodes
  // follow the cell only while their path to the storage node is intact;
  // a node isolated from the cell by an injected open equilibrates to the
  // bitline level across cycles (it connects to the bitline whenever the
  // wordline opens), so it starts there.
  const double kOpenThreshold = 10e3;
  for (Side s : {Side::True, Side::Comp}) {
    const double v = (s == side) ? vc_init : 0.0;
    const bool o3_open =
        col.segment(s, "o3")->resistance() > kOpenThreshold;
    const bool o2_open =
        col.segment(s, "o2")->resistance() > kOpenThreshold;
    sim.set_initial_condition(col.cell_node(s), v);
    sim.set_initial_condition(col.seg_node_nm(s), o3_open ? vbl : v);
    sim.set_initial_condition(col.seg_node_ns(s), (o3_open || o2_open) ? vbl : v);
    sim.set_initial_condition(col.seg_node_nd(s), vbl);
  }
  sim.set_initial_condition(col.netlist().find_node("doutb"), 0.0);
  sim.set_initial_condition(col.dout(), 0.0);

  sim.add_probe("bt", col.bt());
  sim.add_probe("bc", col.bc());
  sim.add_probe("vc", col.cell_node(side));

  // --- execute the schedule, sampling where requested ---------------------
  RunResult result;
  result.ops.resize(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) result.ops[i].kind = seq[i].kind;

  size_t next_sample = 0;
  const double eps = 1e-15;
  for (const auto& iv : sched.intervals) {
    const auto iv_start = std::chrono::steady_clock::now();
    const double span = iv.t1 - iv.t0;
    sim.set_dt(iv.is_del ? std::max(settings_.dt, span / settings_.del_steps)
                         : settings_.dt);
    while (next_sample < sched.samples.size() &&
           sched.samples[next_sample].t <= iv.t1 + eps) {
      const auto& sm = sched.samples[next_sample];
      if (sm.t > sim.time() + eps) sim.run(sm.t);
      OpResult& op = result.ops[static_cast<size_t>(sm.op_index)];
      if (sm.kind == CompiledSchedule::Sample::Kind::ReadBit) {
        op.sense_margin = sim.voltage(col.bt()) - sim.voltage(col.bc());
        op.bit = op.sense_margin > 0.0 ? 1 : 0;
      } else {
        op.vc = sim.voltage(col.cell_node(side));
      }
      ++next_sample;
    }
    if (iv.t1 > sim.time() + eps) sim.run(iv.t1);
    if (obs::collecting()) {
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - iv_start;
      obs::observe(op_wall_metric(sched, iv.op_index), wall.count());
    }
  }
  result.final_vc = sim.voltage(col.cell_node(side));
  result.trace = sim.trace();
  return result;
}

int ColumnSimulator::read_of_initial(double vc_init, Side side) const {
  const RunResult r = run({Operation::r()}, vc_init, side);
  return r.read_bit(0);
}

}  // namespace dramstress::dram
