// Per-worker column clone for parallel sweeps.
//
// Defect sweeps mutate shared state twice over: Injection::set_value
// rewrites a placeholder resistor of the column, and every
// ColumnSimulator::run installs fresh control waveforms on it.  Workers of
// a parallel sweep therefore cannot share one DramColumn.  A SweepContext
// is the worker-local bundle -- its own column (rebuilt from the same
// TechnologyParams, so electrically identical), its own RAII injection and
// its own simulator.  Because runs are stateless apart from that mutable
// column state, a sweep over per-worker clones is bit-identical to the
// serial sweep over one shared column.
#pragma once

#include <memory>

#include "defect/defect.hpp"
#include "dram/column_sim.hpp"

namespace dramstress::defect {

class SweepContext {
public:
  /// Build a column from `tech`, inject `defect` at `r_init` and wrap a
  /// simulator at corner `cond` with `settings`.
  SweepContext(const dram::TechnologyParams& tech, const Defect& defect,
               double r_init, dram::OperatingConditions cond = {},
               dram::SimSettings settings = {});

  SweepContext(SweepContext&&) = default;
  SweepContext& operator=(SweepContext&&) = default;

  dram::DramColumn& column() { return *column_; }
  const dram::ColumnSimulator& sim() const { return *sim_; }
  dram::ColumnSimulator& sim() { return *sim_; }
  Injection& injection() { return *injection_; }
  const Defect& defect() const { return injection_->defect(); }

private:
  std::unique_ptr<dram::DramColumn> column_;
  std::unique_ptr<Injection> injection_;
  std::unique_ptr<dram::ColumnSimulator> sim_;
};

}  // namespace dramstress::defect
