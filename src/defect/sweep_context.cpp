#include "defect/sweep_context.hpp"

namespace dramstress::defect {

SweepContext::SweepContext(const dram::TechnologyParams& tech,
                           const Defect& defect, double r_init,
                           dram::OperatingConditions cond,
                           dram::SimSettings settings)
    : column_(std::make_unique<dram::DramColumn>(tech)),
      injection_(std::make_unique<Injection>(*column_, defect, r_init)),
      sim_(std::make_unique<dram::ColumnSimulator>(*column_, cond, settings)) {}

}  // namespace dramstress::defect
