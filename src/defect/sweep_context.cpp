#include "defect/sweep_context.hpp"

#include "util/error.hpp"
#include "verify/netlist_lint.hpp"

namespace dramstress::defect {

SweepContext::SweepContext(const dram::TechnologyParams& tech,
                           const Defect& defect, double r_init,
                           dram::OperatingConditions cond,
                           dram::SimSettings settings)
    : column_(std::make_unique<dram::DramColumn>(tech)),
      injection_(std::make_unique<Injection>(*column_, defect, r_init)),
      sim_(std::make_unique<dram::ColumnSimulator>(*column_, cond, settings)) {
  // Static verification, once per sweep context (the injection then only
  // rewrites this resistor's value, never the structure): the full column
  // lint plus the injection sanity check -- the placeholder must sit on
  // the exact bitline/cell path the defect taxonomy advertises.
  verify::VerifyReport report = column_->verify();
  const auto [seg_a, seg_b] = expected_terminals(*column_, defect);
  report.merge(verify::lint_injection(column_->netlist(),
                                      defect.device_name(), seg_a, seg_b));
  if (!report.ok())
    throw ModelError("SweepContext: netlist verification failed for " +
                     defect.name() + ":\n" + report.str());
}

}  // namespace dramstress::defect
