// Defect taxonomy and injection (paper Section 5.1, Fig. 7).
//
// Seven resistive defects are modelled, each on the true or the
// complementary bitline:
//   O1, O2, O3 -- opens: series resistance on the bitline-to-storage path
//                 (at the bitline contact, between access transistor and
//                 the mid node, and at the storage capacitor, respectively);
//   Sg         -- short: storage node to ground;
//   Sv         -- short: storage node to Vdd;
//   B1         -- bridge: storage node to its own bitline (across the
//                 access transistor);
//   B2         -- bridge: storage node to its own wordline;
//   B3         -- bridge: storage node to the neighbouring cell's storage
//                 node (inter-cell coupling; extension beyond the paper's
//                 Fig. 7 set, cf. the authors' later bit-line-coupling
//                 work).
//
// Injection only changes the value of a placeholder resistor that is
// already part of the column netlist, so sweeps never rebuild the circuit.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dram/column.hpp"

namespace dramstress::defect {

enum class DefectKind { O1, O2, O3, Sg, Sv, B1, B2, B3 };

const char* to_string(DefectKind kind);

/// True for opens (series defects): the fault appears for R *above* the
/// border resistance.  Shorts and bridges are shunt defects: the fault
/// appears for R *below* the border.
bool is_series(DefectKind kind);

/// A defect instance: kind + which bitline the defective cell hangs on.
struct Defect {
  DefectKind kind = DefectKind::O3;
  dram::Side side = dram::Side::True;

  std::string name() const;  // e.g. "O3 (true)"

  /// The placeholder key in DramColumn::segment().
  const char* segment_key() const;

  /// Full netlist name of the placeholder resistor, e.g. "t_o3".
  std::string device_name() const;
};

/// The terminal pair the placeholder of `defect` must span, derived from
/// the column's advertised topology accessors (bitline, segment nodes,
/// storage node, rails).  Feeds verify::lint_injection: a placeholder
/// that drifts off this path means the builder and the defect taxonomy
/// disagree, which would corrupt every Vc(R) curve silently.
std::pair<circuit::NodeId, circuit::NodeId> expected_terminals(
    const dram::DramColumn& column, const Defect& defect);

/// All 7 x 2 defects of the paper's Table 1, in table order.
std::vector<Defect> paper_defect_set();

/// The paper set plus the inter-cell coupling bridge (B3) on both sides.
std::vector<Defect> extended_defect_set();

/// RAII injector: sets the defect resistance on construction / set_value,
/// restores the pristine value on destruction.
class Injection {
public:
  Injection(dram::DramColumn& column, const Defect& defect, double ohms);
  ~Injection();

  Injection(const Injection&) = delete;
  Injection& operator=(const Injection&) = delete;

  void set_value(double ohms);
  double value() const;
  const Defect& defect() const { return defect_; }

private:
  dram::DramColumn* column_;
  Defect defect_;
  double pristine_;
};

/// Default resistance sweep range for a defect kind (log-spaced analyses).
struct SweepRange {
  double lo = 0.0;
  double hi = 0.0;
};
SweepRange default_sweep_range(DefectKind kind);

}  // namespace dramstress::defect
