#include "defect/defect.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::defect {

const char* to_string(DefectKind kind) {
  switch (kind) {
    case DefectKind::O1: return "O1";
    case DefectKind::O2: return "O2";
    case DefectKind::O3: return "O3";
    case DefectKind::Sg: return "Sg";
    case DefectKind::Sv: return "Sv";
    case DefectKind::B1: return "B1";
    case DefectKind::B2: return "B2";
    case DefectKind::B3: return "B3";
  }
  return "?";
}

bool is_series(DefectKind kind) {
  return kind == DefectKind::O1 || kind == DefectKind::O2 ||
         kind == DefectKind::O3;
}

std::string Defect::name() const {
  return util::format("%s (%s)", to_string(kind), dram::to_string(side));
}

const char* Defect::segment_key() const {
  switch (kind) {
    case DefectKind::O1: return "o1";
    case DefectKind::O2: return "o2";
    case DefectKind::O3: return "o3";
    case DefectKind::Sg: return "sg";
    case DefectKind::Sv: return "sv";
    case DefectKind::B1: return "b1";
    case DefectKind::B2: return "b2";
    case DefectKind::B3: return "b3";
  }
  return "";
}

std::string Defect::device_name() const {
  return std::string(side == dram::Side::True ? "t_" : "c_") + segment_key();
}

std::pair<circuit::NodeId, circuit::NodeId> expected_terminals(
    const dram::DramColumn& column, const Defect& defect) {
  const dram::Side side = defect.side;
  switch (defect.kind) {
    case DefectKind::O1:
      return {column.bitline(side), column.seg_node_nd(side)};
    case DefectKind::O2:
      return {column.seg_node_ns(side), column.seg_node_nm(side)};
    case DefectKind::O3:
      return {column.seg_node_nm(side), column.cell_node(side)};
    case DefectKind::Sg:
      return {column.cell_node(side), circuit::kGround};
    case DefectKind::Sv:
      return {column.cell_node(side), column.vdd_node()};
    case DefectKind::B1:
      return {column.cell_node(side), column.bitline(side)};
    case DefectKind::B2:
      return {column.cell_node(side), column.wordline_node(side)};
    case DefectKind::B3:
      return {column.cell_node(side), column.idle_cell_node(side)};
  }
  throw ModelError("expected_terminals: unknown defect kind");
}

std::vector<Defect> extended_defect_set() {
  std::vector<Defect> out = paper_defect_set();
  out.push_back({DefectKind::B3, dram::Side::True});
  out.push_back({DefectKind::B3, dram::Side::Comp});
  return out;
}

std::vector<Defect> paper_defect_set() {
  std::vector<Defect> out;
  for (DefectKind k : {DefectKind::O1, DefectKind::O2, DefectKind::O3,
                       DefectKind::Sg, DefectKind::Sv, DefectKind::B1,
                       DefectKind::B2}) {
    out.push_back({k, dram::Side::True});
    out.push_back({k, dram::Side::Comp});
  }
  return out;
}

Injection::Injection(dram::DramColumn& column, const Defect& defect, double ohms)
    : column_(&column), defect_(defect) {
  pristine_ = is_series(defect.kind) ? dram::kSeriesPristineOhms
                                     : dram::kShuntPristineOhms;
  set_value(ohms);
}

Injection::~Injection() {
  column_->segment(defect_.side, defect_.segment_key())
      ->set_resistance(pristine_);
}

void Injection::set_value(double ohms) {
  require(ohms > 0.0, "Injection: defect resistance must be positive");
  column_->segment(defect_.side, defect_.segment_key())->set_resistance(ohms);
}

double Injection::value() const {
  return column_->segment(defect_.side, defect_.segment_key())->resistance();
}

SweepRange default_sweep_range(DefectKind kind) {
  if (is_series(kind)) return {1e3, 10e6};  // paper: 1 kOhm .. 1 MOhm+
  // Shunts and bridges: retention-style borders live in the GOhm range
  // (a 10 GOhm path still drains the storage capacitor in milliseconds).
  return {1e3, 10e9};
}

}  // namespace dramstress::defect
