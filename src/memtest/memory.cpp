#include "memtest/memory.hpp"

#include "util/error.hpp"

namespace dramstress::memtest {

BehavioralMemory::BehavioralMemory(uint32_t cells, uint32_t defect_address,
                                   analysis::FastCellModel defect_model,
                                   double tcyc)
    : cells_(cells),
      defect_address_(defect_address),
      model_(std::move(defect_model)),
      tcyc_(tcyc),
      bits_(cells, 0) {
  require(cells > 0, "BehavioralMemory: need at least one cell");
  require(defect_address < cells, "BehavioralMemory: defect address out of range");
  require(tcyc > 0.0, "BehavioralMemory: tcyc must be positive");
}

void BehavioralMemory::age_defect(double seconds) { model_.idle(seconds); }

void BehavioralMemory::write(uint32_t address, int value) {
  require(address < cells_, "BehavioralMemory: address out of range");
  if (address == defect_address_) {
    model_.write(value);
  } else {
    bits_[address] = value;
    age_defect(tcyc_);  // one cycle elapses for the defective cell
  }
}

int BehavioralMemory::read(uint32_t address) {
  require(address < cells_, "BehavioralMemory: address out of range");
  if (address == defect_address_) return model_.read();
  age_defect(tcyc_);
  return bits_[address];
}

void BehavioralMemory::pause(double seconds) { age_defect(seconds); }

std::optional<FaultObservation> BehavioralMemory::run(const MarchTest& test,
                                                      double initial_vc) {
  model_.set_vc(initial_vc);
  for (auto& b : bits_) b = 0;  // healthy cells power up at 0 in this model

  for (size_t ei = 0; ei < test.elements.size(); ++ei) {
    const MarchElement& element = test.elements[ei];
    const bool down = element.order == AddressOrder::Down;
    for (uint32_t k = 0; k < cells_; ++k) {
      const uint32_t address = down ? cells_ - 1 - k : k;
      for (size_t oi = 0; oi < element.ops.size(); ++oi) {
        const MarchOp& op = element.ops[oi];
        switch (op.kind) {
          case MarchOp::Kind::W0:
          case MarchOp::Kind::W1:
            write(address, op.value());
            break;
          case MarchOp::Kind::R0:
          case MarchOp::Kind::R1: {
            const int got = read(address);
            if (got != op.value()) {
              return FaultObservation{ei, oi, address, op.value(), got};
            }
            break;
          }
          case MarchOp::Kind::Del:
            // A pause element applies once per element, not per address:
            // only the first visited address triggers it.
            if (k == 0) pause(op.del_seconds);
            break;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace dramstress::memtest
