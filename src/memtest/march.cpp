#include "memtest/march.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::memtest {

using analysis::DetectionCondition;
using dram::OpKind;

const char* to_string(AddressOrder order) {
  switch (order) {
    case AddressOrder::Up: return "up";
    case AddressOrder::Down: return "down";
    case AddressOrder::Any: return "any";
  }
  return "?";
}

int MarchOp::value() const {
  switch (kind) {
    case Kind::W0:
    case Kind::R0: return 0;
    case Kind::W1:
    case Kind::R1: return 1;
    case Kind::Del: break;
  }
  throw ModelError("MarchOp::value: del has no data value");
}

std::string MarchOp::str() const {
  switch (kind) {
    case Kind::W0: return "w0";
    case Kind::W1: return "w1";
    case Kind::R0: return "r0";
    case Kind::R1: return "r1";
    case Kind::Del:
      return util::format("del(%s)", util::eng(del_seconds, "s").c_str());
  }
  return "?";
}

std::string MarchElement::str() const {
  std::vector<std::string> parts;
  parts.reserve(ops.size());
  for (const MarchOp& op : ops) parts.push_back(op.str());
  return util::format("%s(%s)", to_string(order),
                      util::join(parts, ",").c_str());
}

std::string MarchTest::str() const {
  std::vector<std::string> parts;
  parts.reserve(elements.size());
  for (const MarchElement& e : elements) parts.push_back(e.str());
  return "{ " + util::join(parts, "; ") + " }";
}

size_t MarchTest::ops_per_cell() const {
  size_t n = 0;
  for (const MarchElement& e : elements) n += e.ops.size();
  return n;
}

MarchTest mats_plus() {
  return {"MATS+",
          {{AddressOrder::Any, {MarchOp::w0()}},
           {AddressOrder::Up, {MarchOp::r0(), MarchOp::w1()}},
           {AddressOrder::Down, {MarchOp::r1(), MarchOp::w0()}}}};
}

MarchTest march_cminus() {
  return {"March C-",
          {{AddressOrder::Any, {MarchOp::w0()}},
           {AddressOrder::Up, {MarchOp::r0(), MarchOp::w1()}},
           {AddressOrder::Up, {MarchOp::r1(), MarchOp::w0()}},
           {AddressOrder::Down, {MarchOp::r0(), MarchOp::w1()}},
           {AddressOrder::Down, {MarchOp::r1(), MarchOp::w0()}},
           {AddressOrder::Any, {MarchOp::r0()}}}};
}

MarchTest march_y() {
  return {"March Y",
          {{AddressOrder::Any, {MarchOp::w0()}},
           {AddressOrder::Up, {MarchOp::r0(), MarchOp::w1(), MarchOp::r1()}},
           {AddressOrder::Down, {MarchOp::r1(), MarchOp::w0(), MarchOp::r0()}},
           {AddressOrder::Any, {MarchOp::r0()}}}};
}

MarchTest march_ss() {
  using Op = MarchOp;
  return {"March SS",
          {{AddressOrder::Any, {Op::w0()}},
           {AddressOrder::Up,
            {Op::r0(), Op::r0(), Op::w0(), Op::r0(), Op::w1()}},
           {AddressOrder::Up,
            {Op::r1(), Op::r1(), Op::w1(), Op::r1(), Op::w0()}},
           {AddressOrder::Down,
            {Op::r0(), Op::r0(), Op::w0(), Op::r0(), Op::w1()}},
           {AddressOrder::Down,
            {Op::r1(), Op::r1(), Op::w1(), Op::r1(), Op::w0()}},
           {AddressOrder::Any, {Op::r0()}}}};
}

MarchTest pmovi() {
  using Op = MarchOp;
  return {"PMOVI",
          {{AddressOrder::Down, {Op::w0()}},
           {AddressOrder::Up, {Op::r0(), Op::w1(), Op::r1()}},
           {AddressOrder::Up, {Op::r1(), Op::w0(), Op::r0()}},
           {AddressOrder::Down, {Op::r0(), Op::w1(), Op::r1()}},
           {AddressOrder::Down, {Op::r1(), Op::w0(), Op::r0()}}}};
}

MarchTest retention_test(double pause_seconds) {
  return {util::format("Pause(%s)", util::eng(pause_seconds, "s").c_str()),
          {{AddressOrder::Any, {MarchOp::w1()}},
           {AddressOrder::Any, {MarchOp::del(pause_seconds), MarchOp::r1()}},
           {AddressOrder::Any, {MarchOp::w0()}},
           {AddressOrder::Any, {MarchOp::del(pause_seconds), MarchOp::r0()}}}};
}

MarchTest march_from_detection(const DetectionCondition& cond,
                               const std::string& name) {
  MarchElement init;
  init.order = AddressOrder::Any;
  init.ops = {cond.init_logical == 0 ? MarchOp::w0() : MarchOp::w1()};

  MarchElement body;
  body.order = AddressOrder::Up;
  for (const dram::Operation& op : cond.ops) {
    switch (op.kind) {
      case OpKind::W0: body.ops.push_back(MarchOp::w0()); break;
      case OpKind::W1: body.ops.push_back(MarchOp::w1()); break;
      case OpKind::Del: body.ops.push_back(MarchOp::del(op.del_seconds)); break;
      case OpKind::R:
        body.ops.push_back(cond.expected == 0 ? MarchOp::r0() : MarchOp::r1());
        break;
    }
  }
  return {name, {init, body}};
}

std::vector<MarchTest> standard_test_suite() {
  return {mats_plus(), march_cminus(), march_y(), retention_test(100e-6)};
}

}  // namespace dramstress::memtest
