#include "memtest/coverage.hpp"

#include "numeric/interp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::memtest {

std::vector<DefectInstance> default_defect_universe(int points_per_defect) {
  std::vector<DefectInstance> out;
  for (const defect::Defect& d : defect::paper_defect_set()) {
    const auto range = defect::default_sweep_range(d.kind);
    for (double r : numeric::logspace(range.lo, range.hi, points_per_defect))
      out.push_back({d, r});
  }
  return out;
}

CoverageReport evaluate_coverage(dram::DramColumn& column,
                                 const std::vector<DefectInstance>& universe,
                                 const MarchTest& test,
                                 const stress::StressCondition& sc,
                                 const CoverageOptions& opt) {
  CoverageReport report;
  report.condition = sc;
  report.test_name = test.name;
  report.total = universe.size();

  const dram::ColumnSimulator sim(column, sc, opt.settings);

  // Validity: the test must pass on a defect-free memory at this corner.
  {
    const defect::Defect probe{defect::DefectKind::O3, dram::Side::True};
    analysis::FastCellModel healthy =
        analysis::FastCellModel::calibrate(column, probe, sim, opt.calib);
    healthy.set_defect_resistance(dram::kSeriesPristineOhms);
    BehavioralMemory mem(opt.memory_cells, opt.memory_cells / 2,
                         std::move(healthy), sc.tcyc);
    report.test_valid = !mem.run(test, opt.initial_vc).has_value();
  }

  // Calibrate one model per (defect, side) and reuse it across resistances.
  std::string last_key;
  std::optional<analysis::FastCellModel> model;
  for (const DefectInstance& inst : universe) {
    const std::string key = inst.defect.name();
    if (key != last_key) {
      model = analysis::FastCellModel::calibrate(column, inst.defect, sim,
                                                 opt.calib);
      last_key = key;
    }
    analysis::FastCellModel cell = *model;
    cell.set_defect_resistance(inst.resistance);
    BehavioralMemory mem(opt.memory_cells, opt.memory_cells / 2,
                         std::move(cell), sc.tcyc);
    const auto fault = mem.run(test, opt.initial_vc);
    report.per_instance.push_back(fault.has_value());
    if (fault.has_value()) ++report.detected;
  }
  util::log_info(util::format("coverage[%s @ %s] = %zu/%zu",
                              test.name.c_str(),
                              stress::describe(sc).c_str(), report.detected,
                              report.total));
  return report;
}

}  // namespace dramstress::memtest
