// March test notation and standard industrial tests.
//
// A march test is a sequence of march elements; each element visits every
// memory address in a given order and applies a fixed list of operations
// to the addressed cell.  Example (MATS+):
//   { any(w0); up(r0,w1); down(r1,w0) }
// The stress optimization of this library does not change *which* march
// test runs -- it changes the operating corner the test runs at, raising
// the test's fault coverage (paper Section 1: stresses "ensure a higher
// fault coverage of a given test").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/detection.hpp"

namespace dramstress::memtest {

enum class AddressOrder { Up, Down, Any };

const char* to_string(AddressOrder order);

/// One operation within a march element.
struct MarchOp {
  enum class Kind { W0, W1, R0, R1, Del } kind = Kind::R0;
  double del_seconds = 0.0;  // Kind::Del only

  static MarchOp w0() { return {Kind::W0, 0.0}; }
  static MarchOp w1() { return {Kind::W1, 0.0}; }
  static MarchOp r0() { return {Kind::R0, 0.0}; }
  static MarchOp r1() { return {Kind::R1, 0.0}; }
  static MarchOp del(double seconds) { return {Kind::Del, seconds}; }

  bool is_read() const { return kind == Kind::R0 || kind == Kind::R1; }
  bool is_write() const { return kind == Kind::W0 || kind == Kind::W1; }
  /// Data value written/expected (0/1); meaningless for Del.
  int value() const;
  std::string str() const;
};

struct MarchElement {
  AddressOrder order = AddressOrder::Any;
  std::vector<MarchOp> ops;
  std::string str() const;  // e.g. "up(r0,w1)"
};

struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  std::string str() const;  // "{ any(w0); up(r0,w1); ... }"
  /// Total operations per cell (dels count once per element).
  size_t ops_per_cell() const;
};

// --- standard tests ----------------------------------------------------
MarchTest mats_plus();     // 5N
MarchTest march_cminus();  // 10N
MarchTest march_y();       // 8N
MarchTest march_ss();      // 22N, detects all simple static faults
MarchTest pmovi();         // 13N, read-after-write on every transition
/// Pause/retention test: write, pause, read back, both data values.
MarchTest retention_test(double pause_seconds);

/// Wrap a derived detection condition into a march test: an initializing
/// element followed by one element applying the condition's operations.
MarchTest march_from_detection(const analysis::DetectionCondition& cond,
                               const std::string& name);

/// All standard tests above (with a default 100 us pause).
std::vector<MarchTest> standard_test_suite();

}  // namespace dramstress::memtest
