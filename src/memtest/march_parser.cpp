#include "memtest/march_parser.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::memtest {
namespace {

class MarchLexer {
public:
  explicit MarchLexer(const std::string& text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(util::format("expected '%c'", c));
  }

  /// Read a lower-cased identifier [a-z0-9.]+.
  std::string ident() {
    skip_space();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) fail("expected an identifier");
    return out;
  }

  /// Read a number with an optional time-unit suffix (s, ms, us, ns).
  double time_value() {
    skip_space();
    size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(pos_), &used);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += used;
    skip_space();
    // Optional unit.
    std::string unit;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      unit += static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_])));
      ++pos_;
    }
    if (unit.empty() || unit == "s") return value;
    if (unit == "ms") return value * 1e-3;
    if (unit == "us") return value * 1e-6;
    if (unit == "ns") return value * 1e-9;
    fail("unknown time unit '" + unit + "'");
  }

  bool at_end() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ModelError(util::format("march notation, position %zu: %s", pos_,
                                  msg.c_str()));
  }

private:
  const std::string& text_;
  size_t pos_ = 0;
};

MarchOp parse_op(MarchLexer& lex) {
  const std::string id = lex.ident();
  if (id == "w0") return MarchOp::w0();
  if (id == "w1") return MarchOp::w1();
  if (id == "r0") return MarchOp::r0();
  if (id == "r1") return MarchOp::r1();
  if (id == "del") {
    lex.expect('(');
    const double seconds = lex.time_value();
    lex.expect(')');
    require(seconds > 0.0, "march del needs a positive duration");
    return MarchOp::del(seconds);
  }
  lex.fail("unknown operation '" + id + "'");
}

MarchElement parse_element(MarchLexer& lex) {
  MarchElement element;
  const std::string order = lex.ident();
  if (order == "up")
    element.order = AddressOrder::Up;
  else if (order == "down")
    element.order = AddressOrder::Down;
  else if (order == "any")
    element.order = AddressOrder::Any;
  else
    lex.fail("unknown address order '" + order + "'");

  lex.expect('(');
  element.ops.push_back(parse_op(lex));
  while (lex.eat(',')) element.ops.push_back(parse_op(lex));
  lex.expect(')');
  return element;
}

}  // namespace

MarchTest parse_march(const std::string& text, const std::string& name) {
  MarchLexer lex(text);
  MarchTest test;
  test.name = name.empty() ? "parsed" : name;
  lex.expect('{');
  test.elements.push_back(parse_element(lex));
  while (lex.eat(';')) test.elements.push_back(parse_element(lex));
  lex.expect('}');
  if (!lex.at_end()) lex.fail("trailing characters after '}'");
  return test;
}

}  // namespace dramstress::memtest
