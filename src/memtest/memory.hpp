// Behavioural memory with one electrically-modelled defective cell.
//
// The healthy cells are ideal bits; the cell at `defect_address` is backed
// by the calibrated FastCellModel, so march tests see realistic
// partial-write, sense-threshold and retention behaviour, including the
// idle decay that accumulates while the march visits *other* addresses
// (each operation elsewhere costs one clock cycle of retention time --
// that is why a march over a large array is implicitly a retention test).
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/fast_model.hpp"
#include "memtest/march.hpp"

namespace dramstress::memtest {

struct FaultObservation {
  size_t element_index = 0;
  size_t op_index = 0;
  uint32_t address = 0;
  int expected = 0;
  int observed = 0;
};

class BehavioralMemory {
public:
  /// `cells` addresses; the defective cell sits at `defect_address`.
  BehavioralMemory(uint32_t cells, uint32_t defect_address,
                   analysis::FastCellModel defect_model, double tcyc);

  uint32_t size() const { return cells_; }
  uint32_t defect_address() const { return defect_address_; }

  /// Direct access to the defective cell model (e.g. to sweep R).
  analysis::FastCellModel& defect_model() { return model_; }

  void write(uint32_t address, int value);
  int read(uint32_t address);
  /// Explicit pause (march del op): ages the defective cell.
  void pause(double seconds);

  /// Run a march test from power-up (unknown state: the defective cell
  /// starts at the given physical voltage).  Returns the first observed
  /// fault, or nullopt if the test passes.
  std::optional<FaultObservation> run(const MarchTest& test,
                                      double initial_vc = 0.0);

private:
  void age_defect(double seconds);

  uint32_t cells_;
  uint32_t defect_address_;
  analysis::FastCellModel model_;
  double tcyc_;
  std::vector<int> bits_;  // healthy cells' stored values
};

}  // namespace dramstress::memtest
