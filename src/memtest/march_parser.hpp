// Parser for the textual march notation used throughout this library:
//
//   { any(w0); up(r0,w1); down(r1,w0) }
//
// Grammar (whitespace-insensitive, case-insensitive keywords):
//   test    := '{' element (';' element)* '}'
//   element := order '(' op (',' op)* ')'
//   order   := 'up' | 'down' | 'any'
//   op      := 'w0' | 'w1' | 'r0' | 'r1' | 'del' '(' number unit? ')'
// The round trip MarchTest::str() -> parse_march() is the identity.
#pragma once

#include <string>

#include "memtest/march.hpp"

namespace dramstress::memtest {

/// Parse a march test from its textual notation.  Throws ModelError with a
/// character position on any syntax error.
MarchTest parse_march(const std::string& text, const std::string& name = "");

}  // namespace dramstress::memtest
