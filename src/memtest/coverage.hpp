// Fault-coverage evaluation of a march test over the defect library
// (the paper's framing: stresses "increase the fault coverage of a given
// test").
//
// A defect universe is a set of (defect, resistance) instances; coverage
// is the fraction the test detects.  Each instance gets a FastCellModel
// calibrated against the electrical column at the evaluated stress
// condition, so the coverage difference between two corners reflects the
// electrical effect of the stresses, not a re-labelled fault dictionary.
#pragma once

#include "memtest/memory.hpp"
#include "stress/stress.hpp"

namespace dramstress::memtest {

struct DefectInstance {
  defect::Defect defect;
  double resistance = 0.0;
};

/// Log-spaced instances per defect kind over its default sweep range.
std::vector<DefectInstance> default_defect_universe(int points_per_defect = 6);

struct CoverageOptions {
  uint32_t memory_cells = 16;
  double initial_vc = 0.0;
  analysis::FastCalibOptions calib;
  dram::SimSettings settings;
};

struct CoverageReport {
  stress::StressCondition condition;
  std::string test_name;
  size_t detected = 0;
  size_t total = 0;
  std::vector<bool> per_instance;
  /// False if the test already fails on a defect-free memory at this
  /// corner (e.g. a long retention pause at +87 C): its "detections" are
  /// then meaningless yield loss, not fault coverage.
  bool test_valid = true;

  double fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(detected) / total;
  }
};

/// Coverage of `test` over `universe` at corner `sc`.
CoverageReport evaluate_coverage(dram::DramColumn& column,
                                 const std::vector<DefectInstance>& universe,
                                 const MarchTest& test,
                                 const stress::StressCondition& sc,
                                 const CoverageOptions& opt = {});

}  // namespace dramstress::memtest
