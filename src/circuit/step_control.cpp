#include "circuit/step_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dramstress::circuit {

// ------------------------------------------------------ BreakpointRegistry

void BreakpointRegistry::add_all(const std::vector<double>& ts) {
  times_.insert(times_.end(), ts.begin(), ts.end());
  sorted_ = false;
}

void BreakpointRegistry::ensure_sorted() const {
  if (sorted_) return;
  std::sort(times_.begin(), times_.end());
  times_.erase(std::unique(times_.begin(), times_.end()), times_.end());
  sorted_ = true;
}

double BreakpointRegistry::next_after(double t) const {
  ensure_sorted();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  return it == times_.end() ? std::numeric_limits<double>::infinity() : *it;
}

// --------------------------------------------------------- StepController

StepController::StepController(StepControlOptions opt, double dt_init,
                               size_t num_error_vars)
    : opt_(opt), num_error_vars_(num_error_vars) {
  require(opt_.dt_min > 0.0, "StepController: dt_min must be positive");
  require(opt_.lte_tol > 0.0, "StepController: lte_tol must be positive");
  dt_ = clamped(dt_init);
}

double StepController::clamped(double dt) const {
  if (opt_.dt_max > 0.0) dt = std::min(dt, opt_.dt_max);
  return std::max(dt, opt_.dt_min);
}

void StepController::seed(double t, const numeric::Vector& x) {
  t_hist_[1] = t;
  x_hist_[1] = x;
  hist_count_ = 1;
}

bool StepController::predict(double t_new, numeric::Vector& out) const {
  if (hist_count_ < 2) return false;
  const double span = t_hist_[1] - t_hist_[0];
  const double frac = (t_new - t_hist_[1]) / span;
  out.resize(x_hist_[1].size());
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = x_hist_[1][i] + frac * (x_hist_[1][i] - x_hist_[0][i]);
  return true;
}

double StepController::error_norm(double t_new,
                                  const numeric::Vector& x_new) const {
  if (hist_count_ < 2) return 0.0;  // no predictor yet: accept
  const double span = t_hist_[1] - t_hist_[0];
  const double frac = (t_new - t_hist_[1]) / span;
  double err = 0.0;
  const size_t n = std::min(num_error_vars_, x_new.size());
  for (size_t i = 0; i < n; ++i) {
    const double pred =
        x_hist_[1][i] + frac * (x_hist_[1][i] - x_hist_[0][i]);
    const double tol =
        opt_.lte_tol * std::max(std::fabs(x_new[i]), std::fabs(pred)) +
        opt_.abs_tol;
    err = std::max(err, std::fabs(x_new[i] - pred) / tol);
  }
  return err / opt_.trtol;
}

void StepController::accept(double t, const numeric::Vector& x, double err) {
  t_hist_[0] = t_hist_[1];
  x_hist_[0] = x_hist_[1];
  t_hist_[1] = t;
  x_hist_[1] = x;
  if (hist_count_ < 2) ++hist_count_;

  double factor = opt_.grow_limit;
  if (err > 0.0) factor = opt_.safety / std::sqrt(err);
  factor = std::clamp(factor, opt_.shrink_limit, opt_.grow_limit);
  dt_ = clamped(dt_ * factor);
}

void StepController::reject(double err) {
  double factor = 0.5;
  if (err > 0.0)
    factor = std::clamp(opt_.safety / std::sqrt(err), opt_.shrink_limit, 0.5);
  dt_ = clamped(dt_ * factor);
}

void StepController::halve() { dt_ = clamped(0.5 * dt_); }

void StepController::clamp_to(double dt_cap) {
  dt_ = clamped(std::min(dt_, dt_cap));
}

bool StepController::at_dt_min() const {
  return dt_ <= opt_.dt_min * (1.0 + 1e-12);
}

}  // namespace dramstress::circuit
