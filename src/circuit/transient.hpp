// Implicit transient analysis with UIC start: fixed-step or adaptive.
//
// The fixed-step path is the seed engine: DRAM operation sequences are
// rigidly clocked, so a fixed step per phase keeps sweeps deterministic
// and comparable across stress conditions (the ablation bench quantifies
// BR sensitivity to the step size).  The adaptive path adds SPICE-style
// local-truncation-error control on top of the same corrector: a
// polynomial predictor extrapolates the last accepted solutions, the
// predictor-vs-corrector difference bounds the LTE, the step grows
// through flat holds and shrinks at precharge/sense edges, and a
// breakpoint registry fed by every source waveform pins accepted steps
// exactly onto command edges.  Backward Euler is the default method: its
// numerical damping is what we want for the regenerative sense-amp
// latch; trapezoidal integration is available for accuracy comparisons.
// Steps that fail to converge are retried with a halved local step.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/step_control.hpp"

namespace dramstress::circuit {

enum class Integrator { BackwardEuler, Trapezoidal };

struct TransientOptions {
  double dt = 0.1e-9;          // s; fixed step, and the adaptive initial step
  Integrator integrator = Integrator::BackwardEuler;
  double temperature = 300.15;  // K
  NewtonOptions newton;
  int max_step_halvings = 8;   // local retries on Newton failure
  int record_stride = 1;       // record every k-th accepted step (fixed path)

  // --- adaptive (LTE-controlled) stepping ---------------------------------
  bool adaptive = false;       // variable step with LTE control
  double lte_tol = 5e-4;       // relative LTE tolerance on node voltages
  double dt_min = 1e-13;       // s, smallest adaptive step
  double dt_max = 0.0;         // s, largest adaptive step; 0 = uncapped
  /// Modified Newton in the adaptive path: keep the last factorization
  /// while convergence is fast, refactor on slowdown or step rejection.
  bool reuse_jacobian = true;
};

/// Recorded waveforms.
struct Trace {
  std::vector<double> time;
  std::vector<std::string> names;
  std::vector<std::vector<double>> samples;  // samples[probe][k]

  /// Value of probe `name` at time t, linearly interpolated between the
  /// two bracketing samples (clamped outside the recorded range).  With
  /// adaptive stepping the sample spacing is not uniform, so
  /// nearest-sample snapping would bias threshold measurements.
  double at(const std::string& name, double t) const;
  /// Same, by probe index -- resolve the name once with probe_index() and
  /// use this overload in bisection loops.
  double at(size_t probe, double t) const;
  /// Last recorded value of probe `name`.
  double back(const std::string& name) const;
  double back(size_t probe) const;
  size_t probe_index(const std::string& name) const;
};

class TransientSim {
public:
  TransientSim(MnaSystem& sys, TransientOptions options);

  /// Set the initial voltage of a node (UIC).  Must be called before the
  /// first run().  Unspecified nodes start at 0 V.
  void set_initial_condition(NodeId node, double volts);

  /// Record this node every accepted step under `name`.
  void add_probe(const std::string& name, NodeId node);

  /// Advance to absolute time t_end (must exceed the current time).
  /// Throws ConvergenceError if a step fails even after halvings.
  void run(double t_end);

  /// Change the step size for subsequent run() calls (e.g. long retention
  /// "del" phases integrate with a much coarser step).  In adaptive mode
  /// this resets the controller's current proposal.
  void set_dt(double dt);
  void set_temperature(double kelvin);

  /// Register an extra time the integrator must land on exactly
  /// (waveform edges are registered automatically at start).
  void add_breakpoint(double t);

  double time() const { return time_; }
  double voltage(NodeId node) const { return MnaSystem::voltage(x_, node); }
  const Trace& trace() const { return trace_; }
  const numeric::Vector& state() const { return x_; }
  /// Accepted steps so far (fixed and adaptive paths).
  long accepted_steps() const { return accepted_steps_; }
  /// Steps rejected by the LTE controller (adaptive path).
  long rejected_steps() const { return rejected_steps_; }

private:
  void ensure_started();
  /// One implicit step of size dt ending at time_ + dt; recursion depth
  /// tracks halvings.  Fixed path only.
  void step(double dt, int depth);
  void run_fixed(double t_end);
  void run_adaptive(double t_end);
  /// Commit an accepted solution at t_new (state, device states, history).
  void commit(numeric::Vector&& x_new, double t_new, const StampContext& ctx);
  void record();

  MnaSystem* sys_;
  TransientOptions opt_;
  numeric::Vector x_;
  double time_ = 0.0;
  bool started_ = false;
  bool first_step_done_ = false;
  int steps_since_record_ = 0;
  long accepted_steps_ = 0;
  long rejected_steps_ = 0;
  std::vector<NodeId> probe_nodes_;
  Trace trace_;
  BreakpointRegistry breakpoints_;
  std::optional<StepController> ctrl_;
};

}  // namespace dramstress::circuit
