// Fixed-step implicit transient analysis with UIC start.
//
// DRAM operation sequences are rigidly clocked, so a fixed step per phase
// keeps sweeps deterministic and comparable across stress conditions (the
// ablation bench quantifies BR sensitivity to the step size).  Backward
// Euler is the default method: its numerical damping is what we want for
// the regenerative sense-amp latch; trapezoidal integration is available
// for accuracy comparisons.  Steps that fail to converge are retried with
// a halved local step.
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"

namespace dramstress::circuit {

enum class Integrator { BackwardEuler, Trapezoidal };

struct TransientOptions {
  double dt = 0.1e-9;          // s
  Integrator integrator = Integrator::BackwardEuler;
  double temperature = 300.15;  // K
  NewtonOptions newton;
  int max_step_halvings = 8;   // local retries on Newton failure
  int record_stride = 1;       // record every k-th accepted step
};

/// Recorded waveforms.
struct Trace {
  std::vector<double> time;
  std::vector<std::string> names;
  std::vector<std::vector<double>> samples;  // samples[probe][k]

  /// Value of probe `name` at the recorded point nearest to t.
  double at(const std::string& name, double t) const;
  /// Last recorded value of probe `name`.
  double back(const std::string& name) const;
  size_t probe_index(const std::string& name) const;
};

class TransientSim {
public:
  TransientSim(MnaSystem& sys, TransientOptions options);

  /// Set the initial voltage of a node (UIC).  Must be called before the
  /// first run().  Unspecified nodes start at 0 V.
  void set_initial_condition(NodeId node, double volts);

  /// Record this node every accepted step under `name`.
  void add_probe(const std::string& name, NodeId node);

  /// Advance to absolute time t_end (must exceed the current time).
  /// Throws ConvergenceError if a step fails even after halvings.
  void run(double t_end);

  /// Change the step size for subsequent run() calls (e.g. long retention
  /// "del" phases integrate with a much coarser step).
  void set_dt(double dt);
  void set_temperature(double kelvin);

  double time() const { return time_; }
  double voltage(NodeId node) const { return MnaSystem::voltage(x_, node); }
  const Trace& trace() const { return trace_; }
  const numeric::Vector& state() const { return x_; }

private:
  void ensure_started();
  /// One implicit step of size dt ending at time_ + dt; recursion depth
  /// tracks halvings.
  void step(double dt, int depth);
  void record();

  MnaSystem* sys_;
  TransientOptions opt_;
  numeric::Vector x_;
  double time_ = 0.0;
  bool started_ = false;
  bool first_step_done_ = false;
  int steps_since_record_ = 0;
  std::vector<NodeId> probe_nodes_;
  Trace trace_;
};

}  // namespace dramstress::circuit
