// Junction diode with strongly temperature-dependent saturation current.
//
// In the DRAM column the storage-node junction diode is the carrier of the
// paper's third temperature mechanism: cell leakage grows steeply with T,
// which is what makes high temperature pull a marginal stored '1' below the
// sense threshold (Section 4.2 / Fig. 4 of the paper).
#pragma once

#include "circuit/device.hpp"

namespace dramstress::circuit {

struct DiodeParams {
  double is_tnom = 1e-15;   // A, saturation current at tnom
  double n = 1.0;           // emission coefficient
  double tnom = 300.15;     // K, reference temperature
  /// Temperature exponent xti and activation energy (eV) for
  /// Is(T) = Is(tnom) * (T/tnom)^xti * exp(Eg/Vt(tnom) - Eg/Vt(T)).
  double xti = 3.0;
  double eg = 1.12;
};

/// Diode conducting from anode to cathode.
class Diode : public Device {
public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  DeviceKind kind() const override { return DeviceKind::Diode; }
  std::vector<NodeId> terminals() const override { return {anode_, cathode_}; }

  const DiodeParams& params() const { return p_; }

  /// Saturation current at absolute temperature T (exposed for tests).
  double saturation_current(double kelvin) const;

  /// Diode current for junction voltage v at temperature T.
  double current(double v, double kelvin, double* conductance = nullptr) const;

private:
  NodeId anode_;
  NodeId cathode_;
  DiodeParams p_;
};

}  // namespace dramstress::circuit
