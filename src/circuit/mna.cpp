#include "circuit/mna.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

namespace {
/// Below this unknown count the dense O(n^3) sweep beats the sparse
/// bookkeeping; above it the MNA matrix is sparse enough to win big.
constexpr int kSparseThreshold = 16;
}  // namespace

MnaSystem::MnaSystem(Netlist& netlist, SolverBackend backend)
    : netlist_(&netlist) {
  num_nodes_ = netlist.num_nodes();
  int branch = 0;
  for (const auto& dev : netlist.devices()) {
    dev->set_branch_base(branch);
    branch += dev->num_branches();
  }
  num_branches_ = branch;
  const size_t n = static_cast<size_t>(num_unknowns());
  jac_ = numeric::Matrix(n, n);
  res_.assign(n, 0.0);
  dx_.assign(n, 0.0);
  use_sparse_ = backend == SolverBackend::Sparse ||
                (backend == SolverBackend::Auto &&
                 num_unknowns() >= kSparseThreshold);
  if (use_sparse_) capture_pattern();
}

void MnaSystem::capture_pattern() {
  const size_t n = static_cast<size_t>(num_unknowns());
  sjac_ = numeric::SparseMatrix(n);
  // Stamp every device in every analysis mode at a zero iterate: the union
  // covers mode-dependent structure (capacitors stamp no Jacobian in DC,
  // inductors change their branch row between modes).  Values are ignored
  // by the unfinalized matrix, so a nonsense operating point is fine.
  numeric::Vector x0(n, 0.0);
  numeric::Vector res_scratch(n, 0.0);
  for (const AnalysisMode mode :
       {AnalysisMode::DcOp, AnalysisMode::TransientBe,
        AnalysisMode::TransientTrap}) {
    StampContext ctx;
    ctx.mode = mode;
    ctx.time = 0.0;
    ctx.dt = 1e-9;  // any positive dt: only the structure matters here
    ctx.x = &x0;
    ctx.num_nodes = num_nodes_;
    Stamper stamper(sjac_, res_scratch, num_nodes_);
    for (const auto& dev : netlist_->devices()) dev->stamp(ctx, stamper);
  }
  // gmin diagonal on every node row.
  for (int i = 0; i < num_nodes_; ++i)
    sjac_.add(static_cast<size_t>(i), static_cast<size_t>(i), 0.0);
  sjac_.finalize();
}

numeric::SparseMatrix& MnaSystem::sparse_jacobian() const {
  require(use_sparse_, "MnaSystem: sparse backend not enabled");
  return sjac_;
}

void MnaSystem::assemble(const StampContext& ctx, double gmin,
                         numeric::Matrix& jac, numeric::Vector& res) const {
  jac.zero();
  std::fill(res.begin(), res.end(), 0.0);
  Stamper stamper(jac, res, num_nodes_);
  for (const auto& dev : netlist_->devices()) dev->stamp(ctx, stamper);
  // gmin to ground on every node: keeps floating nodes (isolated storage
  // nodes with the access transistor off) non-singular and models a
  // negligible substrate leakage floor.
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t k = static_cast<size_t>(i);
    jac(k, k) += gmin;
    res[k] += gmin * (*ctx.x)[k];
  }
}

void MnaSystem::assemble_sparse(const StampContext& ctx, double gmin,
                                numeric::SparseMatrix& jac,
                                numeric::Vector& res) const {
  jac.zero();
  std::fill(res.begin(), res.end(), 0.0);
  Stamper stamper(jac, res, num_nodes_);
  for (const auto& dev : netlist_->devices()) dev->stamp(ctx, stamper);
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t k = static_cast<size_t>(i);
    jac.add(k, k, gmin);
    res[k] += gmin * (*ctx.x)[k];
  }
}

NewtonResult MnaSystem::solve(StampContext ctx, numeric::Vector& x,
                              const NewtonOptions& opt) const {
  require(x.size() == static_cast<size_t>(num_unknowns()),
          "MnaSystem::solve: unknown vector has wrong size");
  ctx.x = &x;
  ctx.num_nodes = num_nodes_;
  OBS_SPAN("newton.solve");

  // Modified Newton: reuse the previous factorization only while the
  // companion-model coefficients it was built from are unchanged.
  bool reuse = use_sparse_ && opt.reuse_jacobian &&
               factor_key_matches(ctx, opt.gmin);
  double prev_residual = 0.0;
  long chord_reuses = 0;  // counted locally, one obs emit per solve
  const auto emit = [&](const NewtonResult& r) {
    obs::count("newton.solves");
    obs::count("newton.iterations", r.iterations);
    if (chord_reuses != 0) obs::count("newton.chord_reuse", chord_reuses);
    if (!r.converged) obs::count("newton.nonconverged");
  };

  NewtonResult result;
  for (int iter = 0; iter < opt.max_iter; ++iter) {
    if (use_sparse_) {
      assemble_sparse(ctx, opt.gmin, sjac_, res_);
      if (reuse) {
        ++reuse_count_;
        ++chord_reuses;
      } else {
        if (slu_.analyzed())
          slu_.refactor(sjac_);
        else
          slu_.factor(sjac_);
        have_factor_ = true;
        fkey_mode_ = ctx.mode;
        fkey_dt_ = ctx.dt;
        fkey_gmin_ = opt.gmin;
        fkey_temp_ = ctx.temperature;
        // Within-solve chord iteration: hold this factorization for the
        // remaining iterations (until the stall check below revokes it).
        reuse = opt.reuse_jacobian;
      }
      slu_.solve_into(res_, dx_);  // dx_ = J^{-1} f ; the update is -dx_
    } else {
      assemble(ctx, opt.gmin, jac_, res_);
      lu_.factor(jac_);
      lu_.solve_into(res_, dx_);
    }

    // Damping: clamp the largest node-voltage update.
    double max_dv = 0.0;
    for (int i = 0; i < num_nodes_; ++i)
      max_dv = std::max(max_dv, std::fabs(dx_[static_cast<size_t>(i)]));
    const double scale = max_dv > opt.max_step ? opt.max_step / max_dv : 1.0;
    for (size_t i = 0; i < x.size(); ++i) x[i] -= scale * dx_[i];

    result.iterations = iter + 1;
    result.residual = numeric::norm_inf(res_);
    const double step = scale * max_dv;
    if (step < opt.v_tol && result.residual < opt.res_tol) {
      result.converged = true;
      emit(result);
      return result;
    }
    // A stale factorization that stops shrinking the residual is not worth
    // keeping: refactor from the next assembly on.
    if (reuse && iter > 0 && result.residual > 0.5 * prev_residual) {
      reuse = false;
      obs::count("newton.chord_fallback");
    }
    prev_residual = result.residual;
  }
  // Final residual check: accept if the residual alone is tiny (can happen
  // when the update is limited by conditioning, not by physics).
  if (use_sparse_)
    assemble_sparse(ctx, opt.gmin, sjac_, res_);
  else
    assemble(ctx, opt.gmin, jac_, res_);
  result.residual = numeric::norm_inf(res_);
  result.converged = result.residual < opt.res_tol;
  if (!result.converged) {
    util::log_debug(util::format(
        "Newton: no convergence after %d iterations (residual %.3e) at t=%.4g",
        result.iterations, result.residual, ctx.time));
  }
  emit(result);
  return result;
}

}  // namespace dramstress::circuit
