#include "circuit/mna.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

MnaSystem::MnaSystem(Netlist& netlist) : netlist_(&netlist) {
  num_nodes_ = netlist.num_nodes();
  int branch = 0;
  for (const auto& dev : netlist.devices()) {
    dev->set_branch_base(branch);
    branch += dev->num_branches();
  }
  num_branches_ = branch;
  const size_t n = static_cast<size_t>(num_unknowns());
  jac_ = numeric::Matrix(n, n);
  res_.assign(n, 0.0);
  dx_.assign(n, 0.0);
}

void MnaSystem::assemble(const StampContext& ctx, double gmin,
                         numeric::Matrix& jac, numeric::Vector& res) const {
  jac.zero();
  std::fill(res.begin(), res.end(), 0.0);
  Stamper stamper(jac, res, num_nodes_);
  for (const auto& dev : netlist_->devices()) dev->stamp(ctx, stamper);
  // gmin to ground on every node: keeps floating nodes (isolated storage
  // nodes with the access transistor off) non-singular and models a
  // negligible substrate leakage floor.
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t k = static_cast<size_t>(i);
    jac(k, k) += gmin;
    res[k] += gmin * (*ctx.x)[k];
  }
}

NewtonResult MnaSystem::solve(StampContext ctx, numeric::Vector& x,
                              const NewtonOptions& opt) const {
  require(x.size() == static_cast<size_t>(num_unknowns()),
          "MnaSystem::solve: unknown vector has wrong size");
  ctx.x = &x;
  ctx.num_nodes = num_nodes_;

  NewtonResult result;
  for (int iter = 0; iter < opt.max_iter; ++iter) {
    assemble(ctx, opt.gmin, jac_, res_);
    lu_.factor(jac_);
    lu_.solve_into(res_, dx_);  // dx_ = J^{-1} f ; the update is -dx_

    // Damping: clamp the largest node-voltage update.
    double max_dv = 0.0;
    for (int i = 0; i < num_nodes_; ++i)
      max_dv = std::max(max_dv, std::fabs(dx_[static_cast<size_t>(i)]));
    const double scale = max_dv > opt.max_step ? opt.max_step / max_dv : 1.0;
    for (size_t i = 0; i < x.size(); ++i) x[i] -= scale * dx_[i];

    result.iterations = iter + 1;
    result.residual = numeric::norm_inf(res_);
    const double step = scale * max_dv;
    if (step < opt.v_tol && result.residual < opt.res_tol) {
      result.converged = true;
      return result;
    }
  }
  // Final residual check: accept if the residual alone is tiny (can happen
  // when the update is limited by conditioning, not by physics).
  assemble(ctx, opt.gmin, jac_, res_);
  result.residual = numeric::norm_inf(res_);
  result.converged = result.residual < opt.res_tol;
  if (!result.converged) {
    util::log_debug(util::format(
        "Newton: no convergence after %d iterations (residual %.3e) at t=%.4g",
        result.iterations, result.residual, ctx.time));
  }
  return result;
}

}  // namespace dramstress::circuit
