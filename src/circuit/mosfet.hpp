// MOSFET large-signal model.
//
// An EKV-flavoured charge-sheet approximation is used instead of the
// classic SPICE level-1 square law because it is:
//  * source/drain symmetric -- a DRAM access transistor conducts in both
//    directions (write vs. read/restore), and the square law's hard
//    saturation split is not symmetric;
//  * continuous from subthreshold to strong inversion, so Newton never
//    sees a derivative jump at Vgs = Vth;
//  * naturally temperature dependent through Vth(T), mobility(T) and the
//    thermal voltage -- exactly the mechanisms the paper invokes for the
//    temperature stress (Section 4.2).
//
// Ids = Ispec * [F((Vp-Vs)/Vt) - F((Vp-Vd)/Vt)] * (1 + lambda |Vds|)
//   with Vp = (Vg - Vth)/n,  F(u) = ln(1 + e^{u/2})^2,
//   Ispec = 2 n kp (W/L) Vt^2,  all voltages bulk-referenced.
//
// Gate and bulk are ideal (no DC current); device capacitances are modelled
// as explicit Capacitor elements in the netlist where they matter.
#pragma once

#include "circuit/device.hpp"

namespace dramstress::circuit {

enum class MosType { Nmos, Pmos };

struct MosfetParams {
  double w = 1e-6;        // channel width, m
  double l = 0.25e-6;     // channel length, m
  double kp_tnom = 120e-6;  // transconductance u0*Cox, A/V^2, at tnom
  double vth0 = 0.7;      // |Vth| at tnom, V
  double n = 1.35;        // subthreshold slope factor
  double lambda = 0.02;   // channel-length modulation, 1/V
  double tnom = 300.15;   // reference temperature, K
  double tcv = 1.5e-3;    // |Vth| decrease per kelvin of warming, V/K
  double bex = -1.5;      // mobility temperature exponent
};

/// Operating-point currents/conductances returned by evaluate().
struct MosOperatingPoint {
  double ids = 0.0;  // drain -> source current, A (sign per device type)
  double gm = 0.0;   // dIds/dVg
  double gds = 0.0;  // dIds/dVd
  double gs = 0.0;   // dIds/dVs
  double gb = 0.0;   // dIds/dVb
};

class Mosfet : public Device {
public:
  Mosfet(std::string name, MosType type, NodeId drain, NodeId gate,
         NodeId source, NodeId bulk, MosfetParams params);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  DeviceKind kind() const override { return DeviceKind::Mosfet; }
  std::vector<NodeId> terminals() const override { return {d_, s_}; }
  std::vector<NodeId> sense_terminals() const override { return {g_, b_}; }

  /// Large-signal evaluation at explicit terminal voltages (exposed for
  /// characterization tests and the fast behavioural model calibration).
  MosOperatingPoint evaluate(double vd, double vg, double vs, double vb,
                             double kelvin) const;

  /// Threshold voltage magnitude at temperature T.
  double vth(double kelvin) const;

  const MosfetParams& params() const { return p_; }
  MosType type() const { return type_; }

  /// Scale the channel width by `factor` (used to model sense-amp device
  /// mismatch, one of the mechanisms behind the read-vs-temperature
  /// non-monotonicity in Fig. 4).
  void scale_width(double factor);

private:
  MosType type_;
  NodeId d_;
  NodeId g_;
  NodeId s_;
  NodeId b_;
  MosfetParams p_;
};

}  // namespace dramstress::circuit
