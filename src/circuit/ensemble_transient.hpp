// Lockstep adaptive transient over an EnsembleMna.
//
// Each lane integrates with exactly the semantics of TransientSim's
// adaptive path -- its own LTE StepController, its own breakpoint
// registry (built from its own devices), its own Newton-failure halving
// -- so a lane's trajectory is a pure function of that lane's inputs and
// is bitwise independent of which other lanes share the batch.  What the
// ensemble shares is *work*: every round, all lanes that still have
// ground to cover attempt their next step together through one batched
// solve_lockstep call (device-major assembly, per-lane chord
// factorizations).  Lanes that reach t_end retire from the round set;
// run(t_end) returns when every active lane has landed exactly on t_end,
// which makes run() boundaries (operation samples, interval ends) the
// common checkpoints of a batched column simulation.
//
// Adaptive/LTE stepping only: the ensemble engine exists for the
// plane-sweep workload, which runs the adaptive path.
#pragma once

#include <optional>
#include <vector>

#include "circuit/ensemble_mna.hpp"
#include "circuit/step_control.hpp"
#include "circuit/transient.hpp"

namespace dramstress::circuit {

class EnsembleTransient {
public:
  /// `active[l] == false` lanes are never stepped (lane retirement: a
  /// caller batching heterogeneous work can run a subset).  Pass an empty
  /// mask to step every lane.
  EnsembleTransient(EnsembleMna& sys, TransientOptions options,
                    std::vector<char> active = {});

  void set_initial_condition(size_t lane, NodeId node, double volts);

  /// Change the proposal step for subsequent run() calls, all lanes.
  void set_dt(double dt);

  /// Advance every active lane to exactly t_end.
  void run(double t_end);

  double time(size_t lane) const { return time_[lane]; }
  double voltage(size_t lane, NodeId node) const {
    return EnsembleMna::voltage(x_[lane], node);
  }
  const numeric::Vector& state(size_t lane) const { return x_[lane]; }
  long accepted_steps(size_t lane) const { return accepted_[lane]; }
  long rejected_steps(size_t lane) const { return rejected_[lane]; }

private:
  void ensure_started();
  void commit(size_t lane, numeric::Vector&& x_new, double t_new,
              const StampContext& ctx);

  // Concurrency: every field below is thread-confined to the sweep worker
  // that owns this EnsembleTransient (util/annotations.hpp conventions --
  // confinement is documented, not DS_GUARDED_BY-annotated, because no
  // mutex is involved).  Lanes share *work*, never state: lane l touches
  // only index l of each vector, so batching cannot couple trajectories.
  EnsembleMna* sys_;
  TransientOptions opt_;
  std::vector<char> active_;
  bool started_ = false;

  std::vector<numeric::Vector> x_;
  std::vector<double> time_;
  std::vector<char> first_step_done_;
  std::vector<long> accepted_;
  std::vector<long> rejected_;
  std::vector<BreakpointRegistry> breakpoints_;
  std::vector<std::optional<StepController>> ctrl_;

  // Per-run scratch, lane-indexed.
  std::vector<StampContext> ctx_;
  std::vector<numeric::Vector> x_try_;
  std::vector<NewtonResult> results_;
};

}  // namespace dramstress::circuit
