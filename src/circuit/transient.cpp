#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

double Trace::at(const std::string& name, double t) const {
  const size_t p = probe_index(name);
  require(!time.empty(), "Trace: empty");
  // `time` is monotone, so the nearest sample is one of the two neighbours
  // of the lower_bound -- O(log N) instead of a full-trace scan.
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  if (it == time.begin()) return samples[p].front();
  if (it == time.end()) return samples[p].back();
  const size_t hi = static_cast<size_t>(it - time.begin());
  const size_t lo = hi - 1;
  const size_t best = (t - time[lo] <= time[hi] - t) ? lo : hi;
  return samples[p][best];
}

double Trace::back(const std::string& name) const {
  const size_t p = probe_index(name);
  require(!samples[p].empty(), "Trace: empty probe " + name);
  return samples[p].back();
}

size_t Trace::probe_index(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  throw ModelError("Trace: unknown probe " + name);
}

TransientSim::TransientSim(MnaSystem& sys, TransientOptions options)
    : sys_(&sys), opt_(options) {
  x_.assign(static_cast<size_t>(sys.num_unknowns()), 0.0);
  require(opt_.dt > 0.0, "TransientSim: dt must be positive");
}

void TransientSim::set_initial_condition(NodeId node, double volts) {
  require(!started_, "TransientSim: initial conditions must precede run()");
  require(node != kGround, "TransientSim: cannot set IC on ground");
  x_[static_cast<size_t>(node - 1)] = volts;
}

void TransientSim::add_probe(const std::string& name, NodeId node) {
  require(!started_, "TransientSim: probes must be added before run()");
  probe_nodes_.push_back(node);
  trace_.names.push_back(name);
  trace_.samples.emplace_back();
}

void TransientSim::set_dt(double dt) {
  require(dt > 0.0, "TransientSim: dt must be positive");
  opt_.dt = dt;
}

void TransientSim::set_temperature(double kelvin) {
  opt_.temperature = kelvin;
}

void TransientSim::ensure_started() {
  if (started_) return;
  started_ = true;
  // UIC start: take the user-specified node voltages as the state at t=0
  // and let storage elements remember them.
  StampContext ctx;
  ctx.mode = AnalysisMode::TransientBe;
  ctx.time = time_;
  ctx.dt = opt_.dt;
  ctx.temperature = opt_.temperature;
  ctx.x = &x_;
  ctx.num_nodes = sys_->num_nodes();
  for (const auto& dev : sys_->netlist().devices()) dev->init_state(ctx);
  record();
}

void TransientSim::record() {
  trace_.time.push_back(time_);
  for (size_t i = 0; i < probe_nodes_.size(); ++i)
    trace_.samples[i].push_back(voltage(probe_nodes_[i]));
}

void TransientSim::step(double dt, int depth) {
  // First accepted step (and every retry) uses backward Euler: trapezoidal
  // integration needs a consistent previous current, which BE provides.
  const bool use_trap = opt_.integrator == Integrator::Trapezoidal &&
                        first_step_done_ && depth == 0;
  StampContext ctx;
  ctx.mode = use_trap ? AnalysisMode::TransientTrap : AnalysisMode::TransientBe;
  ctx.time = time_ + dt;
  ctx.dt = dt;
  ctx.temperature = opt_.temperature;
  ctx.num_nodes = sys_->num_nodes();

  numeric::Vector x_try = x_;  // warm start from the previous solution
  const NewtonResult r = sys_->solve(ctx, x_try, opt_.newton);
  if (!r.converged) {
    if (depth >= opt_.max_step_halvings) {
      throw ConvergenceError(util::format(
          "transient: Newton failed at t=%.6g ns even at dt=%.3g ps "
          "(residual %.3e)",
          ctx.time * 1e9, dt * 1e12, r.residual));
    }
    step(0.5 * dt, depth + 1);
    step(0.5 * dt, depth + 1);
    return;
  }
  x_ = std::move(x_try);
  time_ += dt;
  first_step_done_ = true;
  ctx.x = &x_;
  for (const auto& dev : sys_->netlist().devices()) dev->commit_step(ctx);
}

void TransientSim::run(double t_end) {
  ensure_started();
  require(t_end > time_, "TransientSim::run: t_end must exceed current time");
  // Guard against accumulation drift: derive the step count up front.
  const double span = t_end - time_;
  const int steps = std::max(1, static_cast<int>(std::ceil(span / opt_.dt - 1e-9)));
  const double dt = span / steps;
  for (int k = 0; k < steps; ++k) {
    step(dt, 0);
    if (++steps_since_record_ >= opt_.record_stride) {
      steps_since_record_ = 0;
      record();
    }
  }
}

}  // namespace dramstress::circuit
