#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

double Trace::at(size_t probe, double t) const {
  require(probe < samples.size(), "Trace: probe index out of range");
  require(!time.empty(), "Trace: empty");
  // A truncated trace (e.g. a simulation aborted by a campaign retry
  // timeout) can leave a probe with fewer samples than time points; front()
  // or the interpolation below would then read out of bounds.
  require(samples[probe].size() == time.size(),
          "Trace: probe sample count does not match time axis");
  // `time` is monotone: locate the bracketing samples in O(log N) and
  // interpolate linearly between them (adaptive traces are non-uniform,
  // so nearest-sample snapping would bias threshold measurements).
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  if (it == time.begin()) return samples[probe].front();
  if (it == time.end()) return samples[probe].back();
  const size_t hi = static_cast<size_t>(it - time.begin());
  const size_t lo = hi - 1;
  if (time[hi] == time[lo]) return samples[probe][hi];
  const double frac = (t - time[lo]) / (time[hi] - time[lo]);
  return samples[probe][lo] + frac * (samples[probe][hi] - samples[probe][lo]);
}

double Trace::at(const std::string& name, double t) const {
  return at(probe_index(name), t);
}

double Trace::back(size_t probe) const {
  require(probe < samples.size(), "Trace: probe index out of range");
  require(!samples[probe].empty(), "Trace: empty probe");
  return samples[probe].back();
}

double Trace::back(const std::string& name) const {
  const size_t p = probe_index(name);
  require(!samples[p].empty(), "Trace: empty probe " + name);
  return samples[p].back();
}

size_t Trace::probe_index(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  throw ModelError("Trace: unknown probe " + name);
}

TransientSim::TransientSim(MnaSystem& sys, TransientOptions options)
    : sys_(&sys), opt_(options) {
  x_.assign(static_cast<size_t>(sys.num_unknowns()), 0.0);
  require(opt_.dt > 0.0, "TransientSim: dt must be positive");
}

void TransientSim::set_initial_condition(NodeId node, double volts) {
  require(!started_, "TransientSim: initial conditions must precede run()");
  require(node != kGround, "TransientSim: cannot set IC on ground");
  x_[static_cast<size_t>(node - 1)] = volts;
}

void TransientSim::add_probe(const std::string& name, NodeId node) {
  require(!started_, "TransientSim: probes must be added before run()");
  probe_nodes_.push_back(node);
  trace_.names.push_back(name);
  trace_.samples.emplace_back();
}

void TransientSim::set_dt(double dt) {
  require(dt > 0.0, "TransientSim: dt must be positive");
  opt_.dt = dt;
  if (ctrl_) ctrl_->reset(dt);
}

void TransientSim::set_temperature(double kelvin) {
  opt_.temperature = kelvin;
}

void TransientSim::add_breakpoint(double t) { breakpoints_.add(t); }

void TransientSim::ensure_started() {
  if (started_) return;
  started_ = true;
  // UIC start: take the user-specified node voltages as the state at t=0
  // and let storage elements remember them.
  StampContext ctx;
  ctx.mode = AnalysisMode::TransientBe;
  ctx.time = time_;
  ctx.dt = opt_.dt;
  ctx.temperature = opt_.temperature;
  ctx.x = &x_;
  ctx.num_nodes = sys_->num_nodes();
  for (const auto& dev : sys_->netlist().devices()) dev->init_state(ctx);
  record();
  // Every source waveform corner becomes a mandatory landing time.
  std::vector<double> bps;
  for (const auto& dev : sys_->netlist().devices())
    dev->append_breakpoints(bps);
  breakpoints_.add_all(bps);
  if (opt_.adaptive) {
    StepControlOptions sopt;
    sopt.lte_tol = opt_.lte_tol;
    sopt.dt_min = opt_.dt_min;
    sopt.dt_max = opt_.dt_max;
    ctrl_.emplace(sopt, opt_.dt, static_cast<size_t>(sys_->num_nodes()));
    ctrl_->seed(time_, x_);
  }
}

void TransientSim::record() {
  trace_.time.push_back(time_);
  for (size_t i = 0; i < probe_nodes_.size(); ++i)
    trace_.samples[i].push_back(voltage(probe_nodes_[i]));
}

void TransientSim::commit(numeric::Vector&& x_new, double t_new,
                          const StampContext& ctx0) {
  x_ = std::move(x_new);
  const double dt = t_new - time_;
  time_ = t_new;
  first_step_done_ = true;
  ++accepted_steps_;
  obs::count("step.accepted");
  obs::observe("step.dt", dt);
  StampContext ctx = ctx0;
  ctx.x = &x_;
  for (const auto& dev : sys_->netlist().devices()) dev->commit_step(ctx);
}

void TransientSim::step(double dt, int depth) {
  // First accepted step (and every retry) uses backward Euler: trapezoidal
  // integration needs a consistent previous current, which BE provides.
  const bool use_trap = opt_.integrator == Integrator::Trapezoidal &&
                        first_step_done_ && depth == 0;
  StampContext ctx;
  ctx.mode = use_trap ? AnalysisMode::TransientTrap : AnalysisMode::TransientBe;
  ctx.time = time_ + dt;
  ctx.dt = dt;
  ctx.temperature = opt_.temperature;
  ctx.num_nodes = sys_->num_nodes();

  numeric::Vector x_try = x_;  // warm start from the previous solution
  const NewtonResult r = sys_->solve(ctx, x_try, opt_.newton);
  if (!r.converged) {
    if (depth >= opt_.max_step_halvings) {
      throw ConvergenceError(util::format(
          "transient: Newton failed at t=%.6g ns even at dt=%.3g ps "
          "(residual %.3e)",
          ctx.time * 1e9, dt * 1e12, r.residual));
    }
    obs::count("step.rejected_newton");
    step(0.5 * dt, depth + 1);
    step(0.5 * dt, depth + 1);
    return;
  }
  commit(std::move(x_try), ctx.time, ctx);
}

void TransientSim::run_fixed(double t_end) {
  // Guard against accumulation drift: derive the step count up front.
  const double span = t_end - time_;
  const int steps = std::max(1, static_cast<int>(std::ceil(span / opt_.dt - 1e-9)));
  const double dt = span / steps;
  for (int k = 0; k < steps; ++k) {
    step(dt, 0);
    if (++steps_since_record_ >= opt_.record_stride) {
      steps_since_record_ = 0;
      record();
    }
  }
  // A stride that does not divide the step count must not drop the final
  // sample: Trace::back has to reflect the state at t_end.
  if (trace_.time.back() != time_) {
    steps_since_record_ = 0;
    record();
  }
}

void TransientSim::run_adaptive(double t_end) {
  StepController& ctrl = *ctrl_;
  const double teps = 1e-15;
  while (time_ < t_end - teps) {
    // Candidate end time: the controller's proposal, cut by the next
    // waveform breakpoint and by t_end; a sliver shorter than dt_min left
    // before the limit is absorbed into this step so the landing is exact.
    const double bp = breakpoints_.next_after(time_ + teps);
    const double limit = std::min(bp, t_end);
    double target = time_ + ctrl.dt();
    if (target > limit - ctrl.options().dt_min) target = limit;
    const bool on_breakpoint = target == bp;
    const double h = target - time_;

    const bool use_trap =
        opt_.integrator == Integrator::Trapezoidal && first_step_done_;
    StampContext ctx;
    ctx.mode =
        use_trap ? AnalysisMode::TransientTrap : AnalysisMode::TransientBe;
    ctx.time = target;
    ctx.dt = h;
    ctx.temperature = opt_.temperature;
    ctx.num_nodes = sys_->num_nodes();

    // Predictor doubles as the Newton warm start.
    numeric::Vector x_try;
    if (!ctrl.predict(target, x_try)) x_try = x_;
    NewtonOptions nopt = opt_.newton;
    nopt.reuse_jacobian = opt_.reuse_jacobian;
    const NewtonResult r = sys_->solve(ctx, x_try, nopt);
    if (!r.converged) {
      if (ctrl.at_dt_min()) {
        throw ConvergenceError(util::format(
            "transient: Newton failed at t=%.6g ns even at dt_min=%.3g ps "
            "(residual %.3e)",
            ctx.time * 1e9, ctrl.options().dt_min * 1e12, r.residual));
      }
      ctrl.halve();
      ++rejected_steps_;
      obs::count("step.rejected_newton");
      continue;
    }

    const double err = ctrl.error_norm(target, x_try);
    const bool h_at_floor = h <= ctrl.options().dt_min * (1.0 + 1e-12);
    if (err > 1.0 && !h_at_floor) {
      ctrl.reject(err);
      ++rejected_steps_;
      obs::count("step.rejected_lte");
      continue;
    }

    commit(std::move(x_try), target, ctx);
    ctrl.accept(time_, x_, err);
    // A breakpoint marks a waveform corner: the slope ahead is new, so
    // restart from the conservative initial step instead of carrying a
    // hold-sized proposal into the edge.
    if (on_breakpoint) ctrl.clamp_to(opt_.dt);
    record();
  }
}

void TransientSim::run(double t_end) {
  OBS_SPAN("transient.run");
  ensure_started();
  require(t_end > time_, "TransientSim::run: t_end must exceed current time");
  if (opt_.adaptive)
    run_adaptive(t_end);
  else
    run_fixed(t_end);
}

}  // namespace dramstress::circuit
