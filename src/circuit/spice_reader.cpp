#include "circuit/spice_reader.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Physical lines joined per SPICE continuation rules ('+' prefix).
std::vector<std::pair<int, std::string>> logical_lines(const std::string& text) {
  std::vector<std::pair<int, std::string>> out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing comments ('$' and ';') and whitespace.
    for (const char c : {'$', ';'}) {
      const auto pos = line.find(c);
      if (pos != std::string::npos) line.erase(pos);
    }
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    size_t start = 0;
    while (start < line.size() && std::isspace(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (line.empty() || line[0] == '*') continue;
    if (line[0] == '+') {
      require(!out.empty(), util::format(
          "spice line %d: continuation '+' with no previous card", line_no));
      out.back().second += ' ';
      out.back().second.append(line, 1, std::string::npos);
    } else {
      out.emplace_back(line_no, line);
    }
  }
  return out;
}

/// Split a card into tokens; parentheses and '=' become separators but the
/// grouped PWL(...) content keeps its numbers.
std::vector<std::string> tokenize(const std::string& card) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char raw : card) {
    const char c = raw;
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == '=' || c == ',') {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

struct ModelCard {
  enum class Kind { Nmos, Pmos, Diode } kind = Kind::Nmos;
  MosfetParams mos;
  DiodeParams diode;
};

class Parser {
public:
  SpiceDeck parse(const std::string& text) {
    deck_.netlist = std::make_unique<Netlist>();
    const auto lines = logical_lines(text);
    require(!lines.empty(), "spice: empty deck");

    // First pass: collect .model cards so elements can reference them in
    // any order.
    for (const auto& [no, card] : lines) {
      if (lower(card).rfind(".model", 0) == 0) parse_model(no, tokenize(card));
    }
    // SPICE rule: the first line is the title (even if it looks like an
    // element card -- the classic gotcha), unless it is a control card.
    size_t first = 0;
    if (!lines.empty() && lines[0].second[0] != '.') {
      deck_.title = lines[0].second;
      first = 1;
    }
    for (size_t i = first; i < lines.size(); ++i) {
      const auto& [no, card] = lines[i];
      const std::string low = lower(card);
      if (low.rfind(".model", 0) == 0) continue;  // already handled
      if (low.rfind(".end", 0) == 0) break;
      if (card[0] == '.')
        parse_control(no, tokenize(card));
      else
        parse_element(no, tokenize(card));
    }
    return std::move(deck_);
  }

private:
  [[noreturn]] void fail(int no, const std::string& msg) const {
    throw ModelError(util::format("spice line %d: %s", no, msg.c_str()));
  }

  double num(int no, const std::string& tok) const {
    try {
      return parse_spice_number(tok);
    } catch (const ModelError& e) {
      fail(no, e.what());
    }
  }

  NodeId node(const std::string& name) { return deck_.netlist->node(lower(name)); }

  void parse_model(int no, const std::vector<std::string>& t) {
    if (t.size() < 3) fail(no, ".model needs a name and a type");
    const std::string name = lower(t[1]);
    const std::string type = lower(t[2]);
    ModelCard model;
    if (type == "nmos")
      model.kind = ModelCard::Kind::Nmos;
    else if (type == "pmos")
      model.kind = ModelCard::Kind::Pmos;
    else if (type == "d")
      model.kind = ModelCard::Kind::Diode;
    else
      fail(no, "unknown model type '" + type + "'");

    for (size_t i = 3; i + 1 < t.size(); i += 2) {
      const std::string key = lower(t[i]);
      const double value = num(no, t[i + 1]);
      if (model.kind == ModelCard::Kind::Diode) {
        if (key == "is") model.diode.is_tnom = value;
        else if (key == "n") model.diode.n = value;
        else if (key == "xti") model.diode.xti = value;
        else if (key == "eg") model.diode.eg = value;
        else fail(no, "unknown diode parameter '" + key + "'");
      } else {
        if (key == "vto") model.mos.vth0 = value;
        else if (key == "kp") model.mos.kp_tnom = value;
        else if (key == "n") model.mos.n = value;
        else if (key == "lambda") model.mos.lambda = value;
        else if (key == "tcv") model.mos.tcv = value;
        else if (key == "bex") model.mos.bex = value;
        else if (key == "w") model.mos.w = value;
        else if (key == "l") model.mos.l = value;
        else fail(no, "unknown MOS parameter '" + key + "'");
      }
    }
    models_[name] = model;
  }

  Waveform parse_source(int no, const std::vector<std::string>& t, size_t i) {
    if (i >= t.size()) fail(no, "source needs a value");
    const std::string kind = lower(t[i]);
    if (kind == "dc") {
      if (i + 1 >= t.size()) fail(no, "DC needs a value");
      return Waveform::dc(num(no, t[i + 1]));
    }
    if (kind == "pulse") {
      // PULSE(v0 v1 delay rise fall width period)
      if (i + 7 >= t.size()) fail(no, "PULSE needs 7 values");
      return Waveform::pulse(num(no, t[i + 1]), num(no, t[i + 2]),
                             num(no, t[i + 3]), num(no, t[i + 4]),
                             num(no, t[i + 5]), num(no, t[i + 6]),
                             num(no, t[i + 7]));
    }
    if (kind == "pwl") {
      Waveform w = Waveform::pwl();
      size_t k = i + 1;
      if (k + 1 >= t.size()) fail(no, "PWL needs at least one (t, v) pair");
      for (; k + 1 < t.size(); k += 2)
        w.add_point(num(no, t[k]), num(no, t[k + 1]));
      if (k != t.size()) fail(no, "PWL has an odd number of values");
      return w;
    }
    // Bare number = DC.
    return Waveform::dc(num(no, t[i]));
  }

  void parse_element(int no, const std::vector<std::string>& t) {
    const std::string name = lower(t[0]);
    const auto prev = deck_.device_lines.find(name);
    if (prev != deck_.device_lines.end())
      fail(no, util::format("duplicate device name '%s' (first defined at "
                            "line %d)",
                            name.c_str(), prev->second));
    deck_.device_lines.emplace(name, no);
    const char kind = name[0];
    switch (kind) {
      case 'r': {
        if (t.size() != 4) fail(no, "R card: Rname n1 n2 value");
        deck_.netlist->add_resistor(name, node(t[1]), node(t[2]), num(no, t[3]));
        return;
      }
      case 'c': {
        if (t.size() != 4) fail(no, "C card: Cname n1 n2 value");
        deck_.netlist->add_capacitor(name, node(t[1]), node(t[2]), num(no, t[3]));
        return;
      }
      case 'v': {
        if (t.size() < 4) fail(no, "V card: Vname n+ n- DC v | PWL(...)");
        deck_.netlist->add_voltage_source(name, node(t[1]), node(t[2]),
                                          parse_source(no, t, 3));
        return;
      }
      case 'i': {
        if (t.size() < 4) fail(no, "I card: Iname n+ n- DC v | PWL(...)");
        deck_.netlist->add_current_source(name, node(t[1]), node(t[2]),
                                          parse_source(no, t, 3));
        return;
      }
      case 'd': {
        if (t.size() != 4) fail(no, "D card: Dname anode cathode model");
        const auto it = models_.find(lower(t[3]));
        if (it == models_.end() || it->second.kind != ModelCard::Kind::Diode)
          fail(no, "unknown diode model '" + t[3] + "'");
        deck_.netlist->add_diode(name, node(t[1]), node(t[2]), it->second.diode);
        return;
      }
      case 'l': {
        if (t.size() != 4) fail(no, "L card: Lname n1 n2 value");
        deck_.netlist->add_inductor(name, node(t[1]), node(t[2]), num(no, t[3]));
        return;
      }
      case 'e': {
        if (t.size() != 6) fail(no, "E card: Ename n+ n- cp cn gain");
        deck_.netlist->add_vcvs(name, node(t[1]), node(t[2]), node(t[3]),
                                node(t[4]), num(no, t[5]));
        return;
      }
      case 'g': {
        if (t.size() != 6) fail(no, "G card: Gname n+ n- cp cn gm");
        deck_.netlist->add_vccs(name, node(t[1]), node(t[2]), node(t[3]),
                                node(t[4]), num(no, t[5]));
        return;
      }
      case 'm': {
        if (t.size() < 6) fail(no, "M card: Mname d g s b model [W v] [L v]");
        const auto it = models_.find(lower(t[5]));
        if (it == models_.end() || it->second.kind == ModelCard::Kind::Diode)
          fail(no, "unknown MOS model '" + t[5] + "'");
        MosfetParams params = it->second.mos;
        for (size_t i = 6; i + 1 < t.size(); i += 2) {
          const std::string key = lower(t[i]);
          if (key == "w") params.w = num(no, t[i + 1]);
          else if (key == "l") params.l = num(no, t[i + 1]);
          else fail(no, "unknown MOS instance parameter '" + key + "'");
        }
        const MosType type = it->second.kind == ModelCard::Kind::Nmos
                                 ? MosType::Nmos
                                 : MosType::Pmos;
        deck_.netlist->add_mosfet(name, type, node(t[1]), node(t[2]),
                                  node(t[3]), node(t[4]), params);
        return;
      }
      default:
        fail(no, util::format("unknown element card '%c'", kind));
    }
  }

  void parse_control(int no, const std::vector<std::string>& t) {
    const std::string card = lower(t[0]);
    if (card == ".ic") {
      // .ic V(node)=value ... ; tokenizer split it into "v", node, value.
      size_t i = 1;
      while (i < t.size()) {
        if (lower(t[i]) == "v" && i + 2 < t.size()) {
          deck_.initial_conditions[lower(t[i + 1])] = num(no, t[i + 2]);
          i += 3;
        } else {
          fail(no, ".ic entries must look like V(node)=value");
        }
      }
      return;
    }
    if (card == ".tran") {
      if (t.size() < 3) fail(no, ".tran needs step and stop");
      deck_.tran_step = num(no, t[1]);
      deck_.tran_stop = num(no, t[2]);
      return;
    }
    if (card == ".probe" || card == ".print") {
      for (size_t i = 1; i < t.size(); ++i) {
        std::string n = lower(t[i]);
        if (n == "v") continue;  // tolerate .probe v(node) syntax
        deck_.probes.push_back(n);
      }
      return;
    }
    if (card == ".temp") {
      if (t.size() != 2) fail(no, ".temp needs one value");
      deck_.temp_c = num(no, t[1]);
      return;
    }
    fail(no, "unknown control card '" + card + "'");
  }

  SpiceDeck deck_;
  std::map<std::string, ModelCard> models_;
};

}  // namespace

double parse_spice_number(const std::string& token) {
  require(!token.empty(), "empty number");
  const std::string low = lower(token);
  size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(low, &used);
  } catch (const std::exception&) {
    throw ModelError("not a number: '" + token + "'");
  }
  const std::string suffix = low.substr(used);
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default: break;
  }
  // Unit tails like "2.4v" or "30fF" are tolerated: the first suffix char
  // decided the scale above; anything alphabetic that is not a known scale
  // char is treated as a unit name.
  if (std::isalpha(static_cast<unsigned char>(suffix[0]))) return value;
  throw ModelError("bad numeric suffix in '" + token + "'");
}

SpiceDeck parse_spice(const std::string& text) {
  Parser parser;
  return parser.parse(text);
}

}  // namespace dramstress::circuit
