#include "circuit/dcop.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

numeric::Vector dc_operating_point(MnaSystem& sys, const DcOpOptions& opt) {
  numeric::Vector x(static_cast<size_t>(sys.num_unknowns()), 0.0);

  StampContext ctx;
  ctx.mode = AnalysisMode::DcOp;
  ctx.time = opt.time;
  ctx.temperature = opt.temperature;

  NewtonOptions newton = opt.newton;
  double gmin = opt.gmin_start;
  bool any = false;
  while (true) {
    newton.gmin = gmin;
    const NewtonResult r = sys.solve(ctx, x, newton);
    if (r.converged) any = true;
    if (gmin <= opt.gmin_target) {
      if (!r.converged) {
        throw ConvergenceError(util::format(
            "dc_operating_point: Newton failed at final gmin %.1e "
            "(residual %.3e after %d iterations)",
            gmin, r.residual, r.iterations));
      }
      return x;
    }
    gmin = std::max(gmin / opt.gmin_factor, opt.gmin_target);
  }
  (void)any;
}

}  // namespace dramstress::circuit
