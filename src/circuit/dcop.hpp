// DC operating point with gmin stepping.
#pragma once

#include "circuit/mna.hpp"

namespace dramstress::circuit {

struct DcOpOptions {
  NewtonOptions newton;
  /// gmin stepping ladder: start value and target (the netlist gmin).
  double gmin_start = 1e-3;
  double gmin_target = 1e-12;
  double gmin_factor = 10.0;  // reduction per rung
  double temperature = 300.15;  // K
  double time = 0.0;            // sources evaluated at this time
};

/// Solve for the DC operating point (capacitors open).  Returns the unknown
/// vector; throws ConvergenceError if no rung of the gmin ladder converges.
numeric::Vector dc_operating_point(MnaSystem& sys, const DcOpOptions& opt = {});

}  // namespace dramstress::circuit
