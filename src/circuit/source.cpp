#include "circuit/source.hpp"

namespace dramstress::circuit {

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Waveform volts)
    : Device(std::move(name)), plus_(plus), minus_(minus), volts_(std::move(volts)) {}

void VoltageSource::stamp(const StampContext& ctx, Stamper& s) const {
  const int b = branch_base();
  const double i = ctx.branch(b);
  // KCL: branch current leaves the plus node, enters the minus node.
  s.res_node(plus_, i);
  s.res_node(minus_, -i);
  s.jac_node_branch(plus_, b, 1.0);
  s.jac_node_branch(minus_, b, -1.0);
  // Constitutive: v(plus) - v(minus) - V(t) = 0.
  s.res_branch(b, ctx.v(plus_) - ctx.v(minus_) - volts_.value(ctx.time));
  s.jac_branch_node(b, plus_, 1.0);
  s.jac_branch_node(b, minus_, -1.0);
}

}  // namespace dramstress::circuit
