#include "circuit/source.hpp"

namespace dramstress::circuit {

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Waveform volts)
    : Device(std::move(name)), plus_(plus), minus_(minus), volts_(std::move(volts)) {}

}  // namespace dramstress::circuit
