#include "circuit/diode.hpp"

#include <cmath>

#include "util/units.hpp"

namespace dramstress::circuit {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), p_(params) {}

double Diode::saturation_current(double kelvin) const {
  const double vt_nom = units::thermal_voltage(p_.tnom);
  const double vt = units::thermal_voltage(kelvin);
  return p_.is_tnom * std::pow(kelvin / p_.tnom, p_.xti) *
         std::exp(p_.eg / vt_nom - p_.eg / vt);
}

double Diode::current(double v, double kelvin, double* conductance) const {
  const double is = saturation_current(kelvin);
  const double nvt = p_.n * units::thermal_voltage(kelvin);
  // Limited exponential: linearize beyond v_crit to keep Newton stable.
  const double v_crit = 40.0 * nvt;
  double i;
  double g;
  if (v < v_crit) {
    const double e = std::exp(v / nvt);
    i = is * (e - 1.0);
    g = is * e / nvt;
  } else {
    const double e = std::exp(v_crit / nvt);
    g = is * e / nvt;
    i = is * (e - 1.0) + g * (v - v_crit);
  }
  if (conductance != nullptr) *conductance = g;
  return i;
}

void Diode::stamp(const StampContext& ctx, Stamper& s) const {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  double g = 0.0;
  const double i = current(v, ctx.temperature, &g);
  s.res_node(anode_, i);
  s.res_node(cathode_, -i);
  s.jac_node_node(anode_, anode_, g);
  s.jac_node_node(anode_, cathode_, -g);
  s.jac_node_node(cathode_, anode_, -g);
  s.jac_node_node(cathode_, cathode_, g);
}

}  // namespace dramstress::circuit
