// Time-domain stimulus description for independent sources.
//
// The DRAM command engine compiles an operation sequence (w0, w1, r, del)
// into one piecewise-linear waveform per control signal (WL, EQ, SAE, CSL,
// WE, data lines); finite rise/fall times keep the Newton iteration smooth.
#pragma once

#include <cstddef>
#include <vector>

namespace dramstress::circuit {

/// Piecewise-linear waveform; constant (DC) if it has a single point.
/// Evaluation clamps to the first/last value outside the sample range.
class Waveform {
public:
  /// DC value.
  static Waveform dc(double value);

  /// Empty PWL; append breakpoints with add_point (time strictly increasing).
  static Waveform pwl();

  /// SPICE-style PULSE(v0 v1 delay rise fall width period), expanded as a
  /// PWL up to t_end (finite repetitions; t_end defaults to 16 periods).
  static Waveform pulse(double v0, double v1, double delay, double rise,
                        double fall, double width, double period,
                        double t_end = 0.0);

  /// Append a breakpoint (t must exceed the previous breakpoint's time).
  void add_point(double t, double value);

  /// Append a linear ramp from the current last value to `value`, taking
  /// `ramp` seconds starting at time t (i.e. holds until t, reaches `value`
  /// at t + ramp).  If the waveform is empty, starts at `value` directly.
  void hold_then_ramp(double t, double value, double ramp);

  /// Value at time t.
  double value(double t) const;

  /// Final value (value(inf)).
  double last_value() const;

  bool empty() const { return times_.empty(); }
  size_t size() const { return times_.size(); }

  /// Time of the last breakpoint (0 for DC).
  double end_time() const { return times_.empty() ? 0.0 : times_.back(); }

  /// Breakpoint times (slope discontinuities).  A DC waveform's single
  /// t = 0 point is not a transient breakpoint and is skipped.
  void append_breakpoints(std::vector<double>& out) const;

private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace dramstress::circuit
