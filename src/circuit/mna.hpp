// Modified-nodal-analysis assembly and the damped Newton iteration shared by
// the DC operating point and every transient step.
#pragma once

#include "circuit/netlist.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"

namespace dramstress::circuit {

struct NewtonOptions {
  double v_tol = 1e-6;       // V, convergence on max |dx| for node voltages
  double res_tol = 1e-9;     // A, convergence on max KCL residual
  int max_iter = 120;
  double max_step = 0.5;     // V, per-iteration voltage update clamp
  double gmin = 1e-12;       // S, conductance to ground at every node
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;  // final max |f|
};

/// Binds a Netlist to an unknown vector layout:
///   unknowns [0, num_nodes)                 -> node voltages
///   unknowns [num_nodes, num_nodes+branches) -> source branch currents
class MnaSystem {
public:
  explicit MnaSystem(Netlist& netlist);

  int num_nodes() const { return num_nodes_; }
  int num_branches() const { return num_branches_; }
  int num_unknowns() const { return num_nodes_ + num_branches_; }

  Netlist& netlist() { return *netlist_; }
  const Netlist& netlist() const { return *netlist_; }

  /// Assemble residual f(x) and Jacobian J(x) for the given context
  /// (ctx.x must point at x).  gmin is added on every node diagonal.
  void assemble(const StampContext& ctx, double gmin, numeric::Matrix& jac,
                numeric::Vector& res) const;

  /// Damped Newton: iterate J dx = -f from the given starting point.
  /// `ctx` carries mode/time/dt/temperature; ctx.x is set internally.
  NewtonResult solve(StampContext ctx, numeric::Vector& x,
                     const NewtonOptions& opt) const;

  /// Voltage of node n in an unknown vector.
  static double voltage(const numeric::Vector& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<size_t>(n - 1)];
  }

private:
  Netlist* netlist_;
  int num_nodes_ = 0;
  int num_branches_ = 0;
  // Scratch storage reused across Newton iterations.
  mutable numeric::Matrix jac_;
  mutable numeric::Vector res_;
  mutable numeric::Vector dx_;
  mutable numeric::LuSolver lu_;
};

}  // namespace dramstress::circuit
