// Modified-nodal-analysis assembly and the damped Newton iteration shared by
// the DC operating point and every transient step.
//
// Two linear-algebra backends share one assembly code path (devices stamp
// through the same Stamper either way):
//   * dense: the seed path -- O(n^3) partial-pivot LU per iteration.  Kept
//     for tiny systems and as the reference in equivalence tests.
//   * sparse: the MNA pattern is captured once at construction (union of
//     every analysis mode's stamps), and a SparseLuSolver reuses that
//     pattern's symbolic analysis across all refactorizations.  With
//     NewtonOptions::reuse_jacobian the factorization itself is also
//     reused across iterations and steps (modified Newton): the residual
//     is always exact, so convergence checks stay sound, and a stalling
//     iteration triggers a refactorization.
#pragma once

#include "circuit/netlist.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"

namespace dramstress::circuit {

struct NewtonOptions {
  double v_tol = 1e-6;       // V, convergence on max |dx| for node voltages
  double res_tol = 1e-9;     // A, convergence on max KCL residual
  int max_iter = 120;
  double max_step = 0.5;     // V, per-iteration voltage update clamp
  double gmin = 1e-12;       // S, conductance to ground at every node
  /// Modified Newton (sparse backend only): start from the last
  /// factorization when mode/dt/gmin/temperature are unchanged and only
  /// refactor when the residual stalls.  The exact-residual convergence
  /// test is unaffected; only the iteration path changes.
  bool reuse_jacobian = false;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;  // final max |f|
};

/// Linear-solver backend selection for MnaSystem.
enum class SolverBackend {
  Auto,    // sparse for systems of >= 16 unknowns, dense below
  Dense,   // force the seed dense path
  Sparse,  // force the sparse path
};

/// Binds a Netlist to an unknown vector layout:
///   unknowns [0, num_nodes)                 -> node voltages
///   unknowns [num_nodes, num_nodes+branches) -> source branch currents
class MnaSystem {
public:
  explicit MnaSystem(Netlist& netlist,
                     SolverBackend backend = SolverBackend::Auto);

  int num_nodes() const { return num_nodes_; }
  int num_branches() const { return num_branches_; }
  int num_unknowns() const { return num_nodes_ + num_branches_; }

  Netlist& netlist() { return *netlist_; }
  const Netlist& netlist() const { return *netlist_; }

  bool using_sparse() const { return use_sparse_; }

  /// Assemble residual f(x) and Jacobian J(x) for the given context
  /// (ctx.x must point at x).  gmin is added on every node diagonal.
  void assemble(const StampContext& ctx, double gmin, numeric::Matrix& jac,
                numeric::Vector& res) const;

  /// Same assembly into the sparse structure (jac must carry this system's
  /// pattern; pass the matrix returned by sparse_jacobian()).
  void assemble_sparse(const StampContext& ctx, double gmin,
                       numeric::SparseMatrix& jac, numeric::Vector& res) const;

  /// The system's captured sparse Jacobian (finalized pattern).  Throws if
  /// the backend is dense.
  numeric::SparseMatrix& sparse_jacobian() const;

  /// Damped Newton: iterate J dx = -f from the given starting point.
  /// `ctx` carries mode/time/dt/temperature; ctx.x is set internally.
  NewtonResult solve(StampContext ctx, numeric::Vector& x,
                     const NewtonOptions& opt) const;

  /// Voltage of node n in an unknown vector.
  static double voltage(const numeric::Vector& x, NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<size_t>(n - 1)];
  }

  // Solver-cost counters (tests, perf bench).
  long factor_count() const { return slu_.factor_count(); }
  long refactor_count() const { return slu_.refactor_count(); }
  /// Newton iterations that skipped factorization entirely (modified
  /// Newton running on a previous step's factorization).
  long jacobian_reuse_count() const { return reuse_count_; }

private:
  /// Capture the structural pattern by stamping every device in every
  /// analysis mode at a zero iterate.
  void capture_pattern();

  bool factor_key_matches(const StampContext& ctx, double gmin) const {
    return have_factor_ && fkey_mode_ == ctx.mode && fkey_dt_ == ctx.dt &&
           fkey_gmin_ == gmin && fkey_temp_ == ctx.temperature;
  }

  Netlist* netlist_;
  int num_nodes_ = 0;
  int num_branches_ = 0;
  bool use_sparse_ = false;
  // Scratch storage reused across Newton iterations.
  mutable numeric::Matrix jac_;
  mutable numeric::SparseMatrix sjac_;
  mutable numeric::Vector res_;
  mutable numeric::Vector dx_;
  mutable numeric::LuSolver lu_;
  mutable numeric::SparseLuSolver slu_;
  // Modified-Newton factorization identity.
  mutable bool have_factor_ = false;
  mutable AnalysisMode fkey_mode_ = AnalysisMode::DcOp;
  mutable double fkey_dt_ = 0.0;
  mutable double fkey_gmin_ = 0.0;
  mutable double fkey_temp_ = 0.0;
  mutable long reuse_count_ = 0;
};

}  // namespace dramstress::circuit
