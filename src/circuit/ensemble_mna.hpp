// Batched (ensemble) MNA: one symbolic analysis drives N parameter lanes.
//
// Every lane is a structurally identical netlist (per-worker clones of the
// same column; only element *values* differ -- the injected defect
// resistance, waveform levels, capacitor state).  The ensemble exploits
// that three ways:
//   * the CSR pattern, its slot map and the gmin diagonal are captured
//     once, from lane 0, and shared by every lane;
//   * the stamp sequence of each device is compiled once per analysis mode
//     into a flat slot program (Stamper record mode) and replayed for every
//     lane and iteration -- assembly never searches for a slot again;
//   * assembly replays those programs lane-major, writing straight into
//     each lane's CSR value array and residual, and MOSFET evaluation
//     hoists the temperature-dependent model constants out of the loop.
//
// Each lane keeps its own numeric factorization and Newton iterate, so
// lanes at different time steps / defect values never couple numerically:
// a lane's solution is a pure function of that lane's inputs, which is
// what makes batch-size-1-vs-N results byte-identical.  Within a solve,
// later iterations reuse the first iteration's factorization (chord
// method) exactly as MnaSystem does; carrying a factorization across
// *steps* was tried and measured a net loss (see solve_lockstep).
// begin_run() forgets all factorizations so every run re-derives its pivot
// order from its own first matrix -- no cross-run numeric state.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "numeric/ensemble.hpp"
#include "numeric/sparse.hpp"

namespace dramstress::circuit {

class EnsembleMna {
public:
  /// Bind the lanes.  All netlists must be structurally identical (node
  /// count, device order/kinds/terminals); throws ModelError otherwise.
  /// Branch unknowns are assigned on every lane, as MnaSystem's
  /// constructor would.
  explicit EnsembleMna(std::vector<Netlist*> lanes);

  size_t num_lanes() const { return lanes_.size(); }
  int num_nodes() const { return num_nodes_; }
  int num_branches() const { return num_branches_; }
  int num_unknowns() const { return num_nodes_ + num_branches_; }

  Netlist& lane_netlist(size_t lane) { return *lanes_[lane]; }

  /// Forget every lane's factorization.  Call at the start of each
  /// simulation run: results then depend only on the run's inputs, never
  /// on what the engine solved before (the batch-determinism contract).
  void begin_run();

  /// Damped Newton in lockstep over `lanes` (lane indices).  ctx[l] and
  /// x[l] are indexed by absolute lane index and carry each lane's own
  /// mode/time/dt and iterate.  Lanes that converge retire from the
  /// iteration; results[l] is written for every requested lane.
  /// Semantics per lane match MnaSystem::solve (damping, exact-residual
  /// convergence, residual-only acceptance after max_iter).
  void solve_lockstep(const std::vector<size_t>& lanes,
                      std::vector<StampContext>& ctx,
                      std::vector<numeric::Vector>& x,
                      const NewtonOptions& opt,
                      std::vector<NewtonResult>& results);

  static double voltage(const numeric::Vector& x, NodeId n) {
    return MnaSystem::voltage(x, n);
  }

private:
  /// Per-MOSFET constants that depend only on parameters and temperature,
  /// hoisted out of the per-iteration evaluation.
  struct MosCache {
    const Mosfet* dev = nullptr;
    NodeId d = 0, g = 0, s = 0, b = 0;
    double temp_key = -1.0;  // kelvin the block below was computed for
    double sign = 1.0, n = 1.0, lambda = 0.0;
    double vt = 0.0, vth_t = 0.0, ispec = 0.0;
  };

  struct LaneSolver {
    numeric::SparseMatrix mat;  // shared pattern, this lane's values
    numeric::SparseLuSolver slu;
    numeric::Vector res, dx;
    bool fresh = true;  // no factorization yet this run
  };

  void capture_pattern();
  void record_programs();
  /// Assemble residual and Jacobian for every lane in `pending`.  When
  /// `res_only` is non-empty, lanes it flags replay the residual alone:
  /// chord iterations reuse the previous factorization, so their Jacobian
  /// is never read and its stores (and zero-fill) are skipped.
  void assemble(const std::vector<size_t>& pending,
                const std::vector<StampContext>& ctx,
                const std::vector<char>& res_only);
  void stamp_mosfet(MosCache& mc, const StampContext& ctx, Stamper& st) const;

  std::vector<Netlist*> lanes_;
  int num_nodes_ = 0;
  int num_branches_ = 0;

  // Shared structure (from lane 0).
  numeric::SparseMatrix pattern_;
  std::vector<size_t> diag_slot_;  // gmin slot per node row
  // Per-mode slot programs with per-device offsets (off[d]..off[d+1]).
  std::vector<unsigned> prog_[3];
  std::vector<size_t> prog_off_[3];

  // Per-lane device tables (same order as lane 0).
  std::vector<std::vector<Device*>> devices_;     // [lane][device]
  std::vector<DeviceKind> kinds_;                 // [device]
  std::vector<int> mos_index_;                    // [device] -> mos_ slot or -1
  std::vector<std::vector<MosCache>> mos_;        // [lane][mosfet]

  std::vector<LaneSolver> solvers_;
  numeric::EnsembleLu elu_;  // lane-batched refactorization kernel
};

}  // namespace dramstress::circuit
