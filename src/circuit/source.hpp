// Independent voltage source with a branch-current unknown.
#pragma once

#include "circuit/device.hpp"
#include "circuit/waveform.hpp"

namespace dramstress::circuit {

/// Ideal voltage source: v(plus) - v(minus) = volts(t).
/// Introduces one branch current unknown (current flowing plus -> minus
/// through the source, i.e. delivered out of the plus terminal externally
/// is -i_branch).
class VoltageSource : public Device {
public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform volts);

  // Defined inline so the ensemble engine's assembly loop (a qualified,
  // non-virtual call site) can fold the stamp into the loop.
  void stamp(const StampContext& ctx, Stamper& s) const override {
    const int b = branch_base();
    const double i = ctx.branch(b);
    // KCL: branch current leaves the plus node, enters the minus node.
    s.res_node(plus_, i);
    s.res_node(minus_, -i);
    s.jac_node_branch(plus_, b, 1.0);
    s.jac_node_branch(minus_, b, -1.0);
    // Constitutive: v(plus) - v(minus) - V(t) = 0.
    s.res_branch(b, ctx.v(plus_) - ctx.v(minus_) - volts_.value(ctx.time));
    s.jac_branch_node(b, plus_, 1.0);
    s.jac_branch_node(b, minus_, -1.0);
  }
  int num_branches() const override { return 1; }
  void append_breakpoints(std::vector<double>& out) const override {
    volts_.append_breakpoints(out);
  }
  DeviceKind kind() const override { return DeviceKind::VoltageSource; }
  std::vector<NodeId> terminals() const override { return {plus_, minus_}; }

  /// Replace the stimulus (used per operation sequence by the DRAM engine).
  void set_waveform(Waveform w) { volts_ = std::move(w); }
  const Waveform& waveform() const { return volts_; }

  /// Source voltage at time t.
  double value(double t) const { return volts_.value(t); }

  /// Branch current (plus -> minus through source) at the given iterate.
  double branch_current(const StampContext& ctx) const {
    return ctx.branch(branch_base());
  }

private:
  NodeId plus_;
  NodeId minus_;
  Waveform volts_;
};

}  // namespace dramstress::circuit
