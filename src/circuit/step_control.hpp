// Local-truncation-error step control and the breakpoint registry for the
// adaptive transient engine.
//
// DRAM column waveforms are long flat holds punctuated by sharp
// precharge/sense edges.  The controller makes the holds nearly free: a
// polynomial predictor extrapolates the last accepted solutions, the
// predictor-vs-corrector difference estimates the local truncation error,
// and the step grows geometrically while the estimate stays inside
// tolerance.  The registry pins accepted steps exactly onto waveform
// corners so no command edge is ever integrated across.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace dramstress::circuit {

struct StepControlOptions {
  double lte_tol = 5e-4;    // relative LTE tolerance on node voltages
  double abs_tol = 1e-4;    // V, absolute error floor
  double trtol = 7.0;       // LTE overestimation divisor (SPICE TRTOL)
  double dt_min = 1e-13;    // s
  double dt_max = 0.0;      // s; 0 = no upper cap
  double grow_limit = 3.0;  // max dt growth per accepted step
  double shrink_limit = 0.1;  // max dt shrink per rejection
  double safety = 0.9;
};

/// Sorted registry of times the integrator must land on exactly.
class BreakpointRegistry {
public:
  void add(double t) {
    times_.push_back(t);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& ts);

  /// First breakpoint strictly after `t`, or +infinity if none.
  double next_after(double t) const;

  size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

private:
  void ensure_sorted() const;
  mutable std::vector<double> times_;
  mutable bool sorted_ = true;
};

/// Proposes, grows and shrinks the transient step from LTE estimates.
///
/// Error metric: with fewer than two accepted solutions the predictor is
/// undefined and any converged step is accepted (the caller starts from a
/// conservative dt); afterwards the predictor is the linear extrapolation
/// of the last two accepted states and
///   err = max_i |x_i - pred_i| / (lte_tol * max(|x_i|, |pred_i|) + abs_tol)
///         / trtol
/// over the first `num_error_vars` unknowns (node voltages; source branch
/// currents follow the voltages and are excluded, as in SPICE practice).
/// err <= 1 accepts; the next dt scales with err^(-1/2) (backward Euler's
/// LTE is O(dt^2) against a first-order predictor).
class StepController {
public:
  StepController(StepControlOptions opt, double dt_init, size_t num_error_vars);

  double dt() const { return dt_; }
  const StepControlOptions& options() const { return opt_; }

  /// Install the state at the start of the transient (t0).
  void seed(double t, const numeric::Vector& x);

  /// Weighted LTE norm of a candidate solution at t_new (see class docs).
  double error_norm(double t_new, const numeric::Vector& x_new) const;

  /// Predictor value (linear extrapolation) as a Newton warm start; returns
  /// false (and leaves `out` untouched) with fewer than two history points.
  bool predict(double t_new, numeric::Vector& out) const;

  /// Commit an accepted solution and grow/shrink dt from its error norm.
  void accept(double t, const numeric::Vector& x, double err);

  /// Shrink dt after an LTE rejection (err > 1).
  void reject(double err);

  /// Halve dt after a Newton convergence failure.
  void halve();

  /// Replace the current proposal outright (phase changes reset the step).
  void reset(double dt) { dt_ = clamped(dt); }

  /// Clamp the current proposal (e.g. after landing on a breakpoint, where
  /// a waveform edge follows and large steps would only be rejected).
  void clamp_to(double dt_cap);

  /// True once dt has bottomed out at dt_min (the step cannot improve).
  bool at_dt_min() const;

private:
  double clamped(double dt) const;

  StepControlOptions opt_;
  double dt_;
  size_t num_error_vars_;
  // Last two accepted states, most recent last.
  double t_hist_[2] = {0.0, 0.0};
  numeric::Vector x_hist_[2];
  int hist_count_ = 0;
};

}  // namespace dramstress::circuit
