// Linear controlled sources and the inductor.
//
// These complete the classic SPICE element set: VCVS (E element) and VCCS
// (G element) let users model behavioural blocks (ideal sense amplifiers,
// level shifters) next to the transistor-level ones, and the inductor
// covers package/bond-wire parasitics in supply-noise studies.
#pragma once

#include "circuit/device.hpp"

namespace dramstress::circuit {

/// Voltage-controlled voltage source: v(p) - v(n) = gain * (v(cp) - v(cn)).
/// One branch-current unknown, like the independent voltage source.
class Vcvs : public Device {
public:
  Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
       NodeId ctrl_minus, double gain);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  int num_branches() const override { return 1; }
  DeviceKind kind() const override { return DeviceKind::Vcvs; }
  std::vector<NodeId> terminals() const override { return {p_, n_}; }
  std::vector<NodeId> sense_terminals() const override { return {cp_, cn_}; }

  double gain() const { return gain_; }

private:
  NodeId p_;
  NodeId n_;
  NodeId cp_;
  NodeId cn_;
  double gain_;
};

/// Voltage-controlled current source: i(p->n) = gm * (v(cp) - v(cn)).
class Vccs : public Device {
public:
  Vccs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
       NodeId ctrl_minus, double gm);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  DeviceKind kind() const override { return DeviceKind::Vccs; }
  std::vector<NodeId> terminals() const override { return {p_, n_}; }
  std::vector<NodeId> sense_terminals() const override { return {cp_, cn_}; }

  double gm() const { return gm_; }

private:
  NodeId p_;
  NodeId n_;
  NodeId cp_;
  NodeId cn_;
  double gm_;
};

/// Linear inductor with backward-Euler / trapezoidal companion models.
/// Carries one branch-current unknown (current a -> b); a short circuit in
/// the DC operating point.
class Inductor : public Device {
public:
  Inductor(std::string name, NodeId a, NodeId b, double henries);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  int num_branches() const override { return 1; }
  void init_state(const StampContext& ctx) override;
  void commit_step(const StampContext& ctx) override;
  DeviceKind kind() const override { return DeviceKind::Inductor; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double inductance() const { return henries_; }

private:
  NodeId a_;
  NodeId b_;
  double henries_;
  double i_state_ = 0.0;  // accepted branch current
  double v_state_ = 0.0;  // accepted branch voltage
};

}  // namespace dramstress::circuit
