#include "circuit/mosfet.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace dramstress::circuit {
namespace {

/// softplus(x) = ln(1 + e^x), overflow-safe.
double softplus(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// logistic(x) = 1 / (1 + e^{-x}) = d softplus / dx.
double logistic(double x) {
  if (x > 35.0) return 1.0;
  if (x < -35.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

/// EKV interpolation F(u) = softplus(u/2)^2 and its derivative.
void ekv_f(double u, double* f, double* df) {
  const double sp = softplus(0.5 * u);
  *f = sp * sp;
  *df = sp * logistic(0.5 * u);
}

}  // namespace

Mosfet::Mosfet(std::string name, MosType type, NodeId drain, NodeId gate,
               NodeId source, NodeId bulk, MosfetParams params)
    : Device(std::move(name)),
      type_(type),
      d_(drain),
      g_(gate),
      s_(source),
      b_(bulk),
      p_(params) {
  require(p_.w > 0 && p_.l > 0, "Mosfet: W and L must be positive: " + this->name());
  require(p_.n >= 1.0, "Mosfet: slope factor n must be >= 1: " + this->name());
}

void Mosfet::scale_width(double factor) {
  require(factor > 0.0, "Mosfet: width scale must be positive: " + name());
  p_.w *= factor;
}

double Mosfet::vth(double kelvin) const {
  return p_.vth0 - p_.tcv * (kelvin - p_.tnom);
}

MosOperatingPoint Mosfet::evaluate(double vd, double vg, double vs, double vb,
                                   double kelvin) const {
  // PMOS: evaluate the NMOS equations in mirrored voltage space; currents
  // negate, conductances keep their sign (d(-I)/d(-V) = dI/dV).
  const double sign = (type_ == MosType::Nmos) ? 1.0 : -1.0;
  const double vdb = sign * (vd - vb);
  const double vgb = sign * (vg - vb);
  const double vsb = sign * (vs - vb);

  const double vt = units::thermal_voltage(kelvin);
  const double vth_t = vth(kelvin);
  const double kp = p_.kp_tnom * std::pow(kelvin / p_.tnom, p_.bex);
  const double ispec = 2.0 * p_.n * kp * (p_.w / p_.l) * vt * vt;

  const double vp = (vgb - vth_t) / p_.n;
  const double uf = (vp - vsb) / vt;
  const double ur = (vp - vdb) / vt;

  double ff;
  double dff;
  double fr;
  double dfr;
  ekv_f(uf, &ff, &dff);
  ekv_f(ur, &fr, &dfr);

  const double i0 = ispec * (ff - fr);  // before channel-length modulation
  const double vds = vdb - vsb;
  const double clm = 1.0 + p_.lambda * std::fabs(vds);
  const double dclm_dvd = p_.lambda * (vds >= 0.0 ? 1.0 : -1.0);

  MosOperatingPoint op;
  const double ids_mirror = i0 * clm;
  // Derivatives in mirrored space.
  const double di0_dvg = ispec * (dff - dfr) / (p_.n * vt);
  const double di0_dvs = -ispec * dff / vt;
  const double di0_dvd = ispec * dfr / vt;
  // uf = ((vgb - vth)/n - vsb)/vt with vgb = vg - vb, vsb = vs - vb, so
  // d uf/d vb = (1 - 1/n)/vt, identically for ur.
  const double gb_mirror = ispec * (dff - dfr) * (1.0 - 1.0 / p_.n) / vt;

  op.gm = di0_dvg * clm;
  op.gs = di0_dvs * clm - i0 * dclm_dvd;  // d vds/d vs = -1
  op.gds = di0_dvd * clm + i0 * dclm_dvd;
  op.gb = gb_mirror * clm;
  op.ids = sign * ids_mirror;
  return op;
}

void Mosfet::stamp(const StampContext& ctx, Stamper& s) const {
  const MosOperatingPoint op = evaluate(ctx.v(d_), ctx.v(g_), ctx.v(s_),
                                        ctx.v(b_), ctx.temperature);
  // KCL: ids flows (externally) into the drain terminal and out of the
  // source terminal, i.e. ids leaves the drain *node*.
  s.res_node(d_, op.ids);
  s.res_node(s_, -op.ids);

  s.jac_node_node(d_, d_, op.gds);
  s.jac_node_node(d_, g_, op.gm);
  s.jac_node_node(d_, s_, op.gs);
  s.jac_node_node(d_, b_, op.gb);

  s.jac_node_node(s_, d_, -op.gds);
  s.jac_node_node(s_, g_, -op.gm);
  s.jac_node_node(s_, s_, -op.gs);
  s.jac_node_node(s_, b_, -op.gb);
}

}  // namespace dramstress::circuit
