#include "circuit/netlist.hpp"

#include "util/error.hpp"

namespace dramstress::circuit {

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd") return kGround;
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  names_.push_back(name);
  const NodeId id = static_cast<NodeId>(names_.size());
  by_name_.emplace(name, id);
  return id;
}

bool Netlist::has_node(const std::string& name) const {
  return name == "0" || name == "gnd" || by_name_.count(name) != 0;
}

NodeId Netlist::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd") return kGround;
  const auto it = by_name_.find(name);
  require(it != by_name_.end(), "Netlist: unknown node: " + name);
  return it->second;
}

const std::string& Netlist::node_name(NodeId n) const {
  static const std::string kGroundName = "gnd";
  if (n == kGround) return kGroundName;
  require(n >= 1 && n <= static_cast<NodeId>(names_.size()),
          "Netlist: node id out of range");
  return names_[static_cast<size_t>(n - 1)];
}

template <typename T, typename... Args>
T* Netlist::add(Args&&... args) {
  auto dev = std::make_unique<T>(std::forward<Args>(args)...);
  T* raw = dev.get();
  require(device_by_name_.count(raw->name()) == 0,
          "Netlist: duplicate device name: " + raw->name());
  device_by_name_.emplace(raw->name(), raw);
  devices_.push_back(std::move(dev));
  return raw;
}

Resistor* Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double ohms) {
  return add<Resistor>(name, a, b, ohms);
}

Capacitor* Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                  double farads) {
  return add<Capacitor>(name, a, b, farads);
}

VoltageSource* Netlist::add_voltage_source(const std::string& name, NodeId plus,
                                           NodeId minus, Waveform volts) {
  return add<VoltageSource>(name, plus, minus, std::move(volts));
}

CurrentSource* Netlist::add_current_source(const std::string& name, NodeId a,
                                           NodeId b, Waveform amps) {
  return add<CurrentSource>(name, a, b, std::move(amps));
}

Diode* Netlist::add_diode(const std::string& name, NodeId anode, NodeId cathode,
                          DiodeParams params) {
  return add<Diode>(name, anode, cathode, params);
}

Mosfet* Netlist::add_mosfet(const std::string& name, MosType type, NodeId drain,
                            NodeId gate, NodeId source, NodeId bulk,
                            MosfetParams params) {
  return add<Mosfet>(name, type, drain, gate, source, bulk, params);
}

Vcvs* Netlist::add_vcvs(const std::string& name, NodeId plus, NodeId minus,
                        NodeId ctrl_plus, NodeId ctrl_minus, double gain) {
  return add<Vcvs>(name, plus, minus, ctrl_plus, ctrl_minus, gain);
}

Vccs* Netlist::add_vccs(const std::string& name, NodeId plus, NodeId minus,
                        NodeId ctrl_plus, NodeId ctrl_minus, double gm) {
  return add<Vccs>(name, plus, minus, ctrl_plus, ctrl_minus, gm);
}

Inductor* Netlist::add_inductor(const std::string& name, NodeId a, NodeId b,
                                double henries) {
  return add<Inductor>(name, a, b, henries);
}

Device* Netlist::find_device(const std::string& name) const {
  const auto it = device_by_name_.find(name);
  return it == device_by_name_.end() ? nullptr : it->second;
}

}  // namespace dramstress::circuit
