#include "circuit/waveform.hpp"

#include "util/error.hpp"

namespace dramstress::circuit {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.times_.push_back(0.0);
  w.values_.push_back(value);
  return w;
}

Waveform Waveform::pwl() { return Waveform{}; }

Waveform Waveform::pulse(double v0, double v1, double delay, double rise,
                         double fall, double width, double period,
                         double t_end) {
  require(rise > 0.0 && fall > 0.0 && width > 0.0,
          "Waveform::pulse: rise/fall/width must be positive");
  require(period >= rise + width + fall,
          "Waveform::pulse: period shorter than rise+width+fall");
  if (t_end <= 0.0) t_end = delay + 16.0 * period;
  Waveform w = Waveform::pwl();
  w.add_point(0.0, v0);
  double t = delay;
  while (t < t_end) {
    if (t > w.end_time()) w.add_point(t, v0);
    w.add_point(t + rise, v1);
    w.add_point(t + rise + width, v1);
    w.add_point(t + rise + width + fall, v0);
    t += period;
  }
  return w;
}

void Waveform::add_point(double t, double value) {
  require(times_.empty() || t > times_.back(),
          "Waveform: breakpoints must have strictly increasing time");
  times_.push_back(t);
  values_.push_back(value);
}

void Waveform::hold_then_ramp(double t, double value, double ramp) {
  require(ramp > 0.0, "Waveform: ramp must be positive");
  if (times_.empty()) {
    add_point(t, value);
    return;
  }
  const double last = values_.back();
  if (t > times_.back()) add_point(t, last);
  add_point(times_.back() + ramp, value);
}

double Waveform::value(double t) const {
  if (times_.empty()) return 0.0;
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  size_t lo = 0;
  size_t hi = times_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (times_[mid] <= t)
      lo = mid;
    else
      hi = mid;
  }
  const double frac = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double Waveform::last_value() const {
  return values_.empty() ? 0.0 : values_.back();
}

void Waveform::append_breakpoints(std::vector<double>& out) const {
  if (times_.size() < 2) return;  // DC or empty: no slope breaks
  out.insert(out.end(), times_.begin(), times_.end());
}

}  // namespace dramstress::circuit
