// SPICE-dialect netlist reader.
//
// The paper's flow ran on a proprietary SPICE (Titan); this reader makes
// the bundled engine usable the same way: parse a deck, run the transient,
// probe nodes.  The supported dialect covers what DRAM cell modelling
// needs:
//
//   * element cards
//       Rname n1 n2 value
//       Cname n1 n2 value
//       Vname n+ n- DC value | PWL(t1 v1 ...) | PULSE(v0 v1 td tr tf pw per)
//       Iname n+ n- DC value | PWL(...) | PULSE(...)
//       Lname n1 n2 value
//       Ename n+ n- cp cn gain        (VCVS)
//       Gname n+ n- cp cn gm          (VCCS)
//       Dname anode cathode model
//       Mname d g s b model [W=value] [L=value]
//   * control cards
//       .model name NMOS|PMOS|D (param=value ...)
//       .ic V(node)=value ...
//       .tran step stop
//       .probe node [node ...]
//       .temp celsius
//       .end
//   * '*' comment lines, '+' continuation lines, engineering suffixes
//     (f p n u m k meg g t), case-insensitive keywords.
//
// MOSFET model parameters: vto, kp, n, lambda, tcv, bex, w, l (defaults
// from circuit::MosfetParams); diode: is, n, xti, eg.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace dramstress::circuit {

/// A parsed deck: the netlist plus the control-card directives.
struct SpiceDeck {
  std::string title;
  std::unique_ptr<Netlist> netlist;
  /// .ic entries: node name -> initial voltage.
  std::map<std::string, double> initial_conditions;
  /// Element name -> 1-based source line of its card, for diagnostics
  /// (verify::LintOptions::source_lines).
  std::map<std::string, int> device_lines;
  /// .probe entries, in order.
  std::vector<std::string> probes;
  /// .tran card (0/0 if absent).
  double tran_step = 0.0;
  double tran_stop = 0.0;
  /// .temp card in Celsius (27 if absent).
  double temp_c = 27.0;
};

/// Parse a deck from text.  Throws ModelError with a line reference on any
/// syntax or semantic error.
SpiceDeck parse_spice(const std::string& text);

/// Parse an engineering-notation number ("2.4", "30f", "200k", "1meg").
/// Exposed for tests.  Throws ModelError on garbage.
double parse_spice_number(const std::string& token);

}  // namespace dramstress::circuit
