#include "circuit/ensemble_mna.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "circuit/passive.hpp"
#include "circuit/source.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace dramstress::circuit {

namespace {

int mode_index(AnalysisMode m) { return static_cast<int>(m); }

/// F(u) = softplus(u/2)^2 and its derivative, sharing one exp() between
/// the softplus and logistic factors (logistic(x) = e^x / (1 + e^x)).
/// Same guard bands as the scalar model in mosfet.cpp.
inline void ekv_f_fast(double u, double* f, double* df) {
  const double x = 0.5 * u;
  double sp;
  double lg;
  if (x > 35.0) {
    sp = x;
    lg = 1.0;
  } else if (x < -35.0) {
    const double e = std::exp(x);
    sp = e;
    lg = e;
  } else {
    const double e = std::exp(x);
    sp = std::log1p(e);
    lg = e / (1.0 + e);
  }
  *f = sp * sp;
  *df = sp * lg;
}

}  // namespace

EnsembleMna::EnsembleMna(std::vector<Netlist*> lanes)
    : lanes_(std::move(lanes)) {
  require(!lanes_.empty(), "EnsembleMna: at least one lane required");
  num_nodes_ = lanes_[0]->num_nodes();
  const size_t num_devices = lanes_[0]->devices().size();
  const size_t nlanes = lanes_.size();

  devices_.resize(nlanes);
  mos_.resize(nlanes);
  kinds_.reserve(num_devices);
  mos_index_.reserve(num_devices);

  for (size_t l = 0; l < nlanes; ++l) {
    Netlist& nl = *lanes_[l];
    require(nl.num_nodes() == num_nodes_,
                  "EnsembleMna: lanes disagree on node count");
    require(nl.devices().size() == num_devices,
                  "EnsembleMna: lanes disagree on device count");
    devices_[l].reserve(num_devices);
    int branch = 0;
    for (size_t di = 0; di < num_devices; ++di) {
      Device* dev = nl.devices()[di].get();
      dev->set_branch_base(branch);
      branch += dev->num_branches();
      devices_[l].push_back(dev);
      if (l == 0) {
        kinds_.push_back(dev->kind());
        if (dev->kind() == DeviceKind::Mosfet) {
          mos_index_.push_back(static_cast<int>(mos_[0].size()));
        } else {
          mos_index_.push_back(-1);
        }
      } else {
        Device* ref = devices_[0][di];
        require(dev->kind() == ref->kind() &&
                          dev->num_branches() == ref->num_branches() &&
                          dev->terminals() == ref->terminals() &&
                          dev->sense_terminals() == ref->sense_terminals(),
                      "EnsembleMna: lanes are not structurally identical: " +
                          dev->name());
      }
      if (dev->kind() == DeviceKind::Mosfet) {
        const Mosfet* mos = static_cast<const Mosfet*>(dev);
        MosCache mc;
        mc.dev = mos;
        mc.d = mos->terminals()[0];
        mc.s = mos->terminals()[1];
        mc.g = mos->sense_terminals()[0];
        mc.b = mos->sense_terminals()[1];
        mc.sign = (mos->type() == MosType::Nmos) ? 1.0 : -1.0;
        mc.n = mos->params().n;
        mc.lambda = mos->params().lambda;
        mos_[l].push_back(mc);
      }
    }
    if (l == 0) {
      num_branches_ = branch;
    } else {
      require(branch == num_branches_,
                    "EnsembleMna: lanes disagree on branch count");
    }
  }

  capture_pattern();
  record_programs();

  const size_t n = static_cast<size_t>(num_unknowns());
  diag_slot_.resize(static_cast<size_t>(num_nodes_));
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t k = static_cast<size_t>(i);
    diag_slot_[k] = pattern_.slot(k, k);
  }

  solvers_.resize(nlanes);
  for (auto& ls : solvers_) {
    ls.mat = pattern_;  // shared structure, per-lane values
    ls.res.assign(n, 0.0);
    ls.dx.assign(n, 0.0);
  }
}

void EnsembleMna::capture_pattern() {
  // Identical to MnaSystem::capture_pattern, run on lane 0: the union of
  // every mode's stamps plus the gmin diagonal.
  const size_t n = static_cast<size_t>(num_unknowns());
  pattern_ = numeric::SparseMatrix(n);
  numeric::Vector x0(n, 0.0);
  numeric::Vector res_scratch(n, 0.0);
  for (const AnalysisMode mode :
       {AnalysisMode::DcOp, AnalysisMode::TransientBe,
        AnalysisMode::TransientTrap}) {
    StampContext ctx;
    ctx.mode = mode;
    ctx.time = 0.0;
    ctx.dt = 1e-9;
    ctx.x = &x0;
    ctx.num_nodes = num_nodes_;
    Stamper stamper(pattern_, res_scratch, num_nodes_);
    for (Device* dev : devices_[0]) dev->stamp(ctx, stamper);
  }
  for (int i = 0; i < num_nodes_; ++i)
    pattern_.add(static_cast<size_t>(i), static_cast<size_t>(i), 0.0);
  pattern_.finalize();
}

void EnsembleMna::record_programs() {
  // A device's stamp sequence is fixed within an analysis mode (stamps may
  // be skipped per mode -- capacitors in DC -- but never per value), so
  // recording lane 0 once per mode yields a program valid for every lane
  // and every iterate.
  const size_t n = static_cast<size_t>(num_unknowns());
  const size_t num_devices = devices_[0].size();
  numeric::Vector x0(n, 0.0);
  numeric::Vector res_scratch(n, 0.0);
  for (const AnalysisMode mode :
       {AnalysisMode::DcOp, AnalysisMode::TransientBe,
        AnalysisMode::TransientTrap}) {
    const int m = mode_index(mode);
    StampContext ctx;
    ctx.mode = mode;
    ctx.time = 0.0;
    ctx.dt = 1e-9;
    ctx.x = &x0;
    ctx.num_nodes = num_nodes_;
    prog_off_[m].clear();
    prog_off_[m].reserve(num_devices + 1);
    prog_[m].clear();
    for (size_t di = 0; di < num_devices; ++di) {
      prog_off_[m].push_back(prog_[m].size());
      Stamper rec(pattern_, prog_[m], res_scratch, num_nodes_);
      devices_[0][di]->stamp(ctx, rec);
    }
    prog_off_[m].push_back(prog_[m].size());
    for (const unsigned slot : prog_[m])
      require(slot < pattern_.nnz(),
                    "EnsembleMna: stamp outside the captured pattern");
  }
}

void EnsembleMna::begin_run() {
  for (auto& ls : solvers_) ls.fresh = true;
}

void EnsembleMna::stamp_mosfet(MosCache& mc, const StampContext& ctx,
                               Stamper& st) const {
  if (mc.temp_key != ctx.temperature) {
    // Hoist the temperature block of Mosfet::evaluate (pow, Vth(T), Vt):
    // recomputed only when the lane's temperature changes, i.e. once per
    // simulation in practice.
    const MosfetParams& p = mc.dev->params();
    mc.temp_key = ctx.temperature;
    mc.vt = units::thermal_voltage(ctx.temperature);
    mc.vth_t = mc.dev->vth(ctx.temperature);
    const double kp = p.kp_tnom * std::pow(ctx.temperature / p.tnom, p.bex);
    mc.ispec = 2.0 * p.n * kp * (p.w / p.l) * mc.vt * mc.vt;
  }

  // Same math as Mosfet::evaluate with the hoisted constants and the
  // shared-exp F(u); see mosfet.cpp for the derivation and sign notes.
  const double sign = mc.sign;
  const double vdb = sign * (ctx.v(mc.d) - ctx.v(mc.b));
  const double vgb = sign * (ctx.v(mc.g) - ctx.v(mc.b));
  const double vsb = sign * (ctx.v(mc.s) - ctx.v(mc.b));

  const double vp = (vgb - mc.vth_t) / mc.n;
  const double uf = (vp - vsb) / mc.vt;
  const double ur = (vp - vdb) / mc.vt;

  double ff;
  double dff;
  double fr;
  double dfr;
  ekv_f_fast(uf, &ff, &dff);
  ekv_f_fast(ur, &fr, &dfr);

  const double i0 = mc.ispec * (ff - fr);
  const double vds = vdb - vsb;
  const double clm = 1.0 + mc.lambda * std::fabs(vds);
  const double dclm_dvd = mc.lambda * (vds >= 0.0 ? 1.0 : -1.0);

  const double di0_dvg = mc.ispec * (dff - dfr) / (mc.n * mc.vt);
  const double di0_dvs = -mc.ispec * dff / mc.vt;
  const double di0_dvd = mc.ispec * dfr / mc.vt;
  const double gb_mirror = mc.ispec * (dff - dfr) * (1.0 - 1.0 / mc.n) / mc.vt;

  const double gm = di0_dvg * clm;
  const double gs = di0_dvs * clm - i0 * dclm_dvd;
  const double gds = di0_dvd * clm + i0 * dclm_dvd;
  const double gb = gb_mirror * clm;
  const double ids = sign * (i0 * clm);

  // Exact call order of Mosfet::stamp so the recorded program lines up.
  st.res_node(mc.d, ids);
  st.res_node(mc.s, -ids);
  st.jac_node_node(mc.d, mc.d, gds);
  st.jac_node_node(mc.d, mc.g, gm);
  st.jac_node_node(mc.d, mc.s, gs);
  st.jac_node_node(mc.d, mc.b, gb);
  st.jac_node_node(mc.s, mc.d, -gds);
  st.jac_node_node(mc.s, mc.g, -gm);
  st.jac_node_node(mc.s, mc.s, -gs);
  st.jac_node_node(mc.s, mc.b, -gb);
}

void EnsembleMna::assemble(const std::vector<size_t>& pending,
                           const std::vector<StampContext>& ctx,
                           const std::vector<char>& res_only) {
  // Lane-major direct assembly: each lane replays the shared slot programs
  // straight into its own CSR value array and residual (stride 1).  An
  // earlier device-major variant staged values in a lane-major SoA store
  // and gathered per lane before factoring; the gather touched every value
  // a second time per iteration and measured slower on the plane workload,
  // so the staging was dropped.
  const size_t nnz = pattern_.nnz();
  const size_t num_devices = kinds_.size();
  for (const size_t l : pending) {
    LaneSolver& ls = solvers_[l];
    const StampContext& c = ctx[l];
    const int m = mode_index(c.mode);
    double* jac = nullptr;
    if (res_only.empty() || res_only[l] == 0) {
      jac = ls.mat.values_data();
      std::fill(jac, jac + nnz, 0.0);
    }
    std::fill(ls.res.begin(), ls.res.end(), 0.0);
    // One Stamper replays the whole lane: devices consume the program
    // sequentially, and every per-mode program has a fixed entry count per
    // device, so the cursor stays aligned with prog_off_.  The common
    // element kinds dispatch through qualified (non-virtual) calls to the
    // header-inline stamps, which lets the compiler fold them -- and the
    // Stamper mode branches -- into this loop.
    Stamper st(prog_[m].data(), jac, ls.res.data(), /*stride=*/1, num_nodes_);
    for (size_t di = 0; di < num_devices; ++di) {
      const Device* dev = devices_[l][di];
      switch (kinds_[di]) {
        case DeviceKind::Mosfet:
          stamp_mosfet(mos_[l][static_cast<size_t>(mos_index_[di])], c, st);
          break;
        case DeviceKind::Resistor:
          static_cast<const Resistor*>(dev)->Resistor::stamp(c, st);
          break;
        case DeviceKind::Capacitor:
          static_cast<const Capacitor*>(dev)->Capacitor::stamp(c, st);
          break;
        case DeviceKind::VoltageSource:
          static_cast<const VoltageSource*>(dev)->VoltageSource::stamp(c, st);
          break;
        default:
          dev->stamp(c, st);
          break;
      }
    }
  }
}

void EnsembleMna::solve_lockstep(const std::vector<size_t>& lanes,
                                 std::vector<StampContext>& ctx,
                                 std::vector<numeric::Vector>& x,
                                 const NewtonOptions& opt,
                                 std::vector<NewtonResult>& results) {
  const size_t n = static_cast<size_t>(num_unknowns());

  // Every solve (re)factors at its first iteration; later iterations of
  // the same solve may reuse that factorization (chord method), exactly as
  // MnaSystem does.  A cross-*step* chord was tried here and measured a
  // net loss on the plane workload -- it roughly doubled the Newton
  // iteration count (4.9 vs 2.5 per solve), and each extra iteration costs
  // a full assembly, which outweighs the ~2 us refactorization it saves.
  std::vector<char> reuse(lanes_.size(), 0);
  std::vector<double> prev_res(lanes_.size(), 0.0);
  long chord_reuses = 0;
  long chord_fallbacks = 0;

  for (const size_t l : lanes) {
    require(x[l].size() == n,
                  "EnsembleMna::solve_lockstep: unknown vector has wrong size");
    ctx[l].x = &x[l];
    ctx[l].num_nodes = num_nodes_;
    results[l] = NewtonResult{};
    reuse[l] = 0;
  }

  std::vector<size_t> pending = lanes;
  std::vector<size_t> next;
  next.reserve(pending.size());
  long active_lane_rounds = 0;
  long rounds = 0;

  std::vector<size_t> refac;
  refac.reserve(lanes.size());
  std::vector<numeric::SparseLuSolver*> slus;
  std::vector<const numeric::SparseMatrix*> mats;
  std::vector<const numeric::Vector*> rhs;
  std::vector<numeric::Vector*> dxs;
  std::vector<char> batched_done;

  for (int iter = 0; iter < opt.max_iter && !pending.empty(); ++iter) {
    ++rounds;
    active_lane_rounds += static_cast<long>(pending.size());
    // Chord lanes (reuse set) keep their factorization, so only their
    // residual is assembled; everyone else gets the full Jacobian.
    assemble(pending, ctx, reuse);

    // Pass 1: gmin regularization, and classify each lane's factor work.
    // Lanes refactoring this round (all of them at iteration 0) do it in
    // one lane-batched elimination when their recorded pivot orders agree.
    refac.clear();
    for (const size_t l : pending) {
      LaneSolver& ls = solvers_[l];
      if (reuse[l] != 0) {
        // Residual-only round: the Jacobian was neither assembled nor
        // will it be read, so gmin lands on the residual alone.
        for (int i = 0; i < num_nodes_; ++i) {
          const size_t k = static_cast<size_t>(i);
          ls.res[k] += opt.gmin * x[l][k];
        }
        ++chord_reuses;
        continue;
      }
      double* v = ls.mat.values_data();
      for (int i = 0; i < num_nodes_; ++i) {
        const size_t k = static_cast<size_t>(i);
        v[diag_slot_[k]] += opt.gmin;
        ls.res[k] += opt.gmin * x[l][k];
      }
      if (ls.fresh) {
        // First factorization of this run: fresh pivot order, so the
        // numeric path is a pure function of this run's inputs.
        ls.slu.factor(ls.mat);
        ls.fresh = false;
        reuse[l] = opt.reuse_jacobian ? 1 : 0;
      } else {
        refac.push_back(l);
      }
    }
    if (!refac.empty()) {
      batched_done.assign(refac.size(), 0);
      if (refac.size() >= 2) {
        slus.clear();
        mats.clear();
        for (const size_t l : refac) {
          slus.push_back(&solvers_[l].slu);
          mats.push_back(&solvers_[l].mat);
        }
        elu_.refactor_batch(slus.data(), mats.data(), refac.size(),
                            batched_done.data());
      }
      for (size_t i = 0; i < refac.size(); ++i) {
        const size_t l = refac[i];
        if (batched_done[i] == 0) solvers_[l].slu.refactor(solvers_[l].mat);
        reuse[l] = opt.reuse_jacobian ? 1 : 0;
      }
    }

    // Pass 2: triangular solves (lane-batched over the shared structure
    // where pivot orders agree -- bit-identical to solve_into), then
    // per-lane damping and convergence.
    batched_done.assign(pending.size(), 0);
    if (pending.size() >= 2) {
      slus.clear();
      rhs.clear();
      dxs.clear();
      for (const size_t l : pending) {
        slus.push_back(&solvers_[l].slu);
        rhs.push_back(&solvers_[l].res);
        dxs.push_back(&solvers_[l].dx);
      }
      elu_.solve_batch(slus.data(), rhs.data(), dxs.data(), pending.size(),
                       batched_done.data());
    }
    next.clear();
    for (size_t pi = 0; pi < pending.size(); ++pi) {
      const size_t l = pending[pi];
      LaneSolver& ls = solvers_[l];
      if (batched_done[pi] == 0) ls.slu.solve_into(ls.res, ls.dx);

      double max_dv = 0.0;
      for (int i = 0; i < num_nodes_; ++i)
        max_dv = std::max(max_dv, std::fabs(ls.dx[static_cast<size_t>(i)]));
      const double scale = max_dv > opt.max_step ? opt.max_step / max_dv : 1.0;
      numeric::Vector& xl = x[l];
      for (size_t i = 0; i < xl.size(); ++i) xl[i] -= scale * ls.dx[i];

      results[l].iterations = iter + 1;
      results[l].residual = numeric::norm_inf(ls.res);
      const double step = scale * max_dv;
      if (step < opt.v_tol && results[l].residual < opt.res_tol) {
        results[l].converged = true;
        continue;  // retire the lane from this solve
      }
      if (reuse[l] != 0 && iter > 0 &&
          results[l].residual > 0.5 * prev_res[l]) {
        reuse[l] = 0;
        ++chord_fallbacks;
      }
      prev_res[l] = results[l].residual;
      next.push_back(l);
    }
    pending.swap(next);
  }

  if (!pending.empty()) {
    // Residual-only acceptance after max_iter, as in MnaSystem::solve.
    // Every lane can skip the Jacobian here: nothing factors again.
    std::vector<char> all_res_only(lanes_.size(), 1);
    assemble(pending, ctx, all_res_only);
    for (const size_t l : pending) {
      LaneSolver& ls = solvers_[l];
      for (int i = 0; i < num_nodes_; ++i)
        ls.res[static_cast<size_t>(i)] += opt.gmin * x[l][static_cast<size_t>(i)];
      results[l].residual = numeric::norm_inf(ls.res);
      results[l].converged = results[l].residual < opt.res_tol;
    }
  }

  long total_iters = 0;
  long nonconverged = 0;
  for (const size_t l : lanes) {
    total_iters += results[l].iterations;
    if (!results[l].converged) ++nonconverged;
  }
  obs::count("newton.solves", static_cast<long>(lanes.size()));
  obs::count("newton.iterations", total_iters);
  if (chord_reuses != 0) obs::count("newton.chord_reuse", chord_reuses);
  if (nonconverged != 0) obs::count("newton.nonconverged", nonconverged);
  if (chord_fallbacks != 0)
    obs::count("newton.chord_fallback", chord_fallbacks);
  if (rounds > 0) {
    obs::observe("ensemble.occupancy",
                 static_cast<double>(active_lane_rounds) /
                     (static_cast<double>(rounds) *
                      static_cast<double>(lanes_.size())));
  }
}

}  // namespace dramstress::circuit
