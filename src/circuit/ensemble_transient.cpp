#include "circuit/ensemble_transient.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::circuit {

EnsembleTransient::EnsembleTransient(EnsembleMna& sys, TransientOptions options,
                                     std::vector<char> active)
    : sys_(&sys), opt_(options), active_(std::move(active)) {
  require(opt_.dt > 0.0, "EnsembleTransient: dt must be positive");
  require(opt_.adaptive,
          "EnsembleTransient: only the adaptive (LTE) path is batched");
  const size_t nlanes = sys_->num_lanes();
  if (active_.empty()) active_.assign(nlanes, 1);
  require(active_.size() == nlanes,
          "EnsembleTransient: active mask size must match lane count");
  const size_t n = static_cast<size_t>(sys_->num_unknowns());
  x_.assign(nlanes, numeric::Vector(n, 0.0));
  time_.assign(nlanes, 0.0);
  first_step_done_.assign(nlanes, 0);
  accepted_.assign(nlanes, 0);
  rejected_.assign(nlanes, 0);
  breakpoints_.resize(nlanes);
  ctrl_.resize(nlanes);
  ctx_.resize(nlanes);
  x_try_.resize(nlanes);
  results_.resize(nlanes);
}

void EnsembleTransient::set_initial_condition(size_t lane, NodeId node,
                                              double volts) {
  require(!started_,
          "EnsembleTransient: initial conditions must precede run()");
  require(node != kGround, "EnsembleTransient: cannot set IC on ground");
  x_[lane][static_cast<size_t>(node - 1)] = volts;
}

void EnsembleTransient::set_dt(double dt) {
  require(dt > 0.0, "EnsembleTransient: dt must be positive");
  opt_.dt = dt;
  for (auto& c : ctrl_)
    if (c) c->reset(dt);
}

void EnsembleTransient::ensure_started() {
  if (started_) return;
  started_ = true;
  // One EnsembleTransient = one simulation run: forget every carried
  // factorization so the run is a pure function of its inputs.
  sys_->begin_run();
  StepControlOptions sopt;
  sopt.lte_tol = opt_.lte_tol;
  sopt.dt_min = opt_.dt_min;
  sopt.dt_max = opt_.dt_max;
  for (size_t l = 0; l < sys_->num_lanes(); ++l) {
    if (active_[l] == 0) continue;
    // UIC start per lane, as TransientSim::ensure_started.
    StampContext ctx;
    ctx.mode = AnalysisMode::TransientBe;
    ctx.time = time_[l];
    ctx.dt = opt_.dt;
    ctx.temperature = opt_.temperature;
    ctx.x = &x_[l];
    ctx.num_nodes = sys_->num_nodes();
    std::vector<double> bps;
    for (const auto& dev : sys_->lane_netlist(l).devices()) {
      dev->init_state(ctx);
      dev->append_breakpoints(bps);
    }
    // Per-lane registry (from the lane's own devices): lanes never see
    // each other's landing times, which is what keeps a lane's trajectory
    // independent of the batch composition.
    breakpoints_[l].add_all(bps);
    ctrl_[l].emplace(sopt, opt_.dt, static_cast<size_t>(sys_->num_nodes()));
    ctrl_[l]->seed(time_[l], x_[l]);
  }
}

void EnsembleTransient::commit(size_t lane, numeric::Vector&& x_new,
                               double t_new, const StampContext& ctx0) {
  x_[lane] = std::move(x_new);
  const double dt = t_new - time_[lane];
  time_[lane] = t_new;
  first_step_done_[lane] = 1;
  ++accepted_[lane];
  obs::count("step.accepted");
  obs::observe("step.dt", dt);
  StampContext ctx = ctx0;
  ctx.x = &x_[lane];
  for (const auto& dev : sys_->lane_netlist(lane).devices())
    dev->commit_step(ctx);
}

void EnsembleTransient::run(double t_end) {
  OBS_SPAN("transient.run");
  ensure_started();
  const double teps = 1e-15;
  const size_t nlanes = sys_->num_lanes();
  for (size_t l = 0; l < nlanes; ++l)
    if (active_[l] != 0)
      require(t_end > time_[l],
              "EnsembleTransient::run: t_end must exceed current time");

  NewtonOptions nopt = opt_.newton;
  nopt.reuse_jacobian = opt_.reuse_jacobian;

  std::vector<size_t> stepping;
  stepping.reserve(nlanes);
  std::vector<char> on_bp(nlanes, 0);
  std::vector<char> arrived(nlanes, 0);

  for (;;) {
    stepping.clear();
    for (size_t l = 0; l < nlanes; ++l) {
      if (active_[l] == 0) continue;
      if (time_[l] < t_end - teps) {
        stepping.push_back(l);
      } else if (arrived[l] == 0) {
        arrived[l] = 1;
        // Early arrival: the lane waits out the rest of the batch's round
        // set (run() boundaries are the common checkpoints).
        obs::count("ensemble.retired");
      }
    }
    if (stepping.empty()) break;

    // Per-lane step proposal, exactly as TransientSim::run_adaptive.
    for (const size_t l : stepping) {
      StepController& ctrl = *ctrl_[l];
      const double bp = breakpoints_[l].next_after(time_[l] + teps);
      const double limit = std::min(bp, t_end);
      double target = time_[l] + ctrl.dt();
      if (target > limit - ctrl.options().dt_min) target = limit;
      on_bp[l] = target == bp ? 1 : 0;
      const double h = target - time_[l];

      const bool use_trap = opt_.integrator == Integrator::Trapezoidal &&
                            first_step_done_[l] != 0;
      StampContext& ctx = ctx_[l];
      ctx = StampContext{};
      ctx.mode =
          use_trap ? AnalysisMode::TransientTrap : AnalysisMode::TransientBe;
      ctx.time = target;
      ctx.dt = h;
      ctx.temperature = opt_.temperature;
      if (!ctrl.predict(target, x_try_[l])) x_try_[l] = x_[l];
    }

    sys_->solve_lockstep(stepping, ctx_, x_try_, nopt, results_);

    for (const size_t l : stepping) {
      StepController& ctrl = *ctrl_[l];
      const double target = ctx_[l].time;
      const double h = ctx_[l].dt;
      if (!results_[l].converged) {
        if (ctrl.at_dt_min()) {
          throw ConvergenceError(util::format(
              "ensemble transient: Newton failed at t=%.6g ns even at "
              "dt_min=%.3g ps (lane %zu, residual %.3e)",
              target * 1e9, ctrl.options().dt_min * 1e12, l,
              results_[l].residual));
        }
        ctrl.halve();
        ++rejected_[l];
        obs::count("step.rejected_newton");
        continue;
      }
      const double err = ctrl.error_norm(target, x_try_[l]);
      const bool h_at_floor = h <= ctrl.options().dt_min * (1.0 + 1e-12);
      if (err > 1.0 && !h_at_floor) {
        ctrl.reject(err);
        ++rejected_[l];
        obs::count("step.rejected_lte");
        continue;
      }
      commit(l, std::move(x_try_[l]), target, ctx_[l]);
      ctrl.accept(time_[l], x_[l], err);
      if (on_bp[l] != 0) ctrl.clamp_to(opt_.dt);
    }
  }
}

}  // namespace dramstress::circuit
