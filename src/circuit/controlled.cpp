#include "circuit/controlled.hpp"

#include "util/error.hpp"

namespace dramstress::circuit {

// -------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
           NodeId ctrl_minus, double gain)
    : Device(std::move(name)), p_(plus), n_(minus), cp_(ctrl_plus),
      cn_(ctrl_minus), gain_(gain) {}

void Vcvs::stamp(const StampContext& ctx, Stamper& s) const {
  const int b = branch_base();
  const double i = ctx.branch(b);
  s.res_node(p_, i);
  s.res_node(n_, -i);
  s.jac_node_branch(p_, b, 1.0);
  s.jac_node_branch(n_, b, -1.0);
  // v(p) - v(n) - gain * (v(cp) - v(cn)) = 0.
  s.res_branch(b, ctx.v(p_) - ctx.v(n_) - gain_ * (ctx.v(cp_) - ctx.v(cn_)));
  s.jac_branch_node(b, p_, 1.0);
  s.jac_branch_node(b, n_, -1.0);
  s.jac_branch_node(b, cp_, -gain_);
  s.jac_branch_node(b, cn_, gain_);
}

// -------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
           NodeId ctrl_minus, double gm)
    : Device(std::move(name)), p_(plus), n_(minus), cp_(ctrl_plus),
      cn_(ctrl_minus), gm_(gm) {}

void Vccs::stamp(const StampContext& ctx, Stamper& s) const {
  const double i = gm_ * (ctx.v(cp_) - ctx.v(cn_));
  s.res_node(p_, i);
  s.res_node(n_, -i);
  s.jac_node_node(p_, cp_, gm_);
  s.jac_node_node(p_, cn_, -gm_);
  s.jac_node_node(n_, cp_, -gm_);
  s.jac_node_node(n_, cn_, gm_);
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries) {
  require(henries > 0.0, "Inductor: inductance must be positive: " + this->name());
}

void Inductor::stamp(const StampContext& ctx, Stamper& s) const {
  const int b = branch_base();
  const double i = ctx.branch(b);
  s.res_node(a_, i);
  s.res_node(b_, -i);
  s.jac_node_branch(a_, b, 1.0);
  s.jac_node_branch(b_, b, -1.0);

  const double v = ctx.v(a_) - ctx.v(b_);
  switch (ctx.mode) {
    case AnalysisMode::DcOp:
      // Short circuit: v = 0.
      s.res_branch(b, v);
      s.jac_branch_node(b, a_, 1.0);
      s.jac_branch_node(b, b_, -1.0);
      break;
    case AnalysisMode::TransientBe: {
      const double r = henries_ / ctx.dt;
      s.res_branch(b, v - r * (i - i_state_));
      s.jac_branch_node(b, a_, 1.0);
      s.jac_branch_node(b, b_, -1.0);
      s.jac_branch_branch(b, b, -r);
      break;
    }
    case AnalysisMode::TransientTrap: {
      const double r = 2.0 * henries_ / ctx.dt;
      s.res_branch(b, v - r * (i - i_state_) + v_state_);
      s.jac_branch_node(b, a_, 1.0);
      s.jac_branch_node(b, b_, -1.0);
      s.jac_branch_branch(b, b, -r);
      break;
    }
  }
}

void Inductor::init_state(const StampContext& ctx) {
  i_state_ = ctx.branch(branch_base());
  v_state_ = ctx.v(a_) - ctx.v(b_);
}

void Inductor::commit_step(const StampContext& ctx) {
  i_state_ = ctx.branch(branch_base());
  v_state_ = ctx.v(a_) - ctx.v(b_);
}

}  // namespace dramstress::circuit
