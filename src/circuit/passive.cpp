#include "circuit/passive.hpp"

#include "util/error.hpp"

namespace dramstress::circuit {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  require(ohms > 0.0, "Resistor: resistance must be positive: " + this->name());
}

void Resistor::set_resistance(double ohms) {
  require(ohms > 0.0, "Resistor: resistance must be positive: " + name());
  ohms_ = ohms;
}

void Resistor::stamp(const StampContext& ctx, Stamper& s) const {
  const double g = 1.0 / ohms_;
  const double i = g * (ctx.v(a_) - ctx.v(b_));
  s.res_node(a_, i);
  s.res_node(b_, -i);
  s.jac_node_node(a_, a_, g);
  s.jac_node_node(a_, b_, -g);
  s.jac_node_node(b_, a_, -g);
  s.jac_node_node(b_, b_, g);
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  require(farads > 0.0, "Capacitor: capacitance must be positive: " + this->name());
}

double Capacitor::current(const StampContext& ctx, double* dI_dv) const {
  const double v = ctx.v(a_) - ctx.v(b_);
  switch (ctx.mode) {
    case AnalysisMode::DcOp:
      if (dI_dv != nullptr) *dI_dv = 0.0;
      return 0.0;
    case AnalysisMode::TransientBe: {
      const double g = farads_ / ctx.dt;
      if (dI_dv != nullptr) *dI_dv = g;
      return g * (v - v_state_);
    }
    case AnalysisMode::TransientTrap: {
      const double g = 2.0 * farads_ / ctx.dt;
      if (dI_dv != nullptr) *dI_dv = g;
      return g * (v - v_state_) - i_state_;
    }
  }
  return 0.0;
}

void Capacitor::stamp(const StampContext& ctx, Stamper& s) const {
  double g = 0.0;
  const double i = current(ctx, &g);
  s.res_node(a_, i);
  s.res_node(b_, -i);
  if (g != 0.0) {
    s.jac_node_node(a_, a_, g);
    s.jac_node_node(a_, b_, -g);
    s.jac_node_node(b_, a_, -g);
    s.jac_node_node(b_, b_, g);
  }
}

void Capacitor::init_state(const StampContext& ctx) {
  v_state_ = ctx.v(a_) - ctx.v(b_);
  i_state_ = 0.0;
}

void Capacitor::commit_step(const StampContext& ctx) {
  const double i = current(ctx, nullptr);
  v_state_ = ctx.v(a_) - ctx.v(b_);
  i_state_ = i;
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, Waveform amps)
    : Device(std::move(name)), a_(a), b_(b), amps_(std::move(amps)) {}

void CurrentSource::stamp(const StampContext& ctx, Stamper& s) const {
  const double i = amps_.value(ctx.time);
  s.res_node(a_, i);
  s.res_node(b_, -i);
}

}  // namespace dramstress::circuit
