#include "circuit/passive.hpp"

#include "util/error.hpp"

namespace dramstress::circuit {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  require(ohms > 0.0, "Resistor: resistance must be positive: " + this->name());
}

void Resistor::set_resistance(double ohms) {
  require(ohms > 0.0, "Resistor: resistance must be positive: " + name());
  ohms_ = ohms;
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  require(farads > 0.0, "Capacitor: capacitance must be positive: " + this->name());
}

void Capacitor::init_state(const StampContext& ctx) {
  v_state_ = ctx.v(a_) - ctx.v(b_);
  i_state_ = 0.0;
}

void Capacitor::commit_step(const StampContext& ctx) {
  const double i = current(ctx, nullptr);
  v_state_ = ctx.v(a_) - ctx.v(b_);
  i_state_ = i;
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, Waveform amps)
    : Device(std::move(name)), a_(a), b_(b), amps_(std::move(amps)) {}

void CurrentSource::stamp(const StampContext& ctx, Stamper& s) const {
  const double i = amps_.value(ctx.time);
  s.res_node(a_, i);
  s.res_node(b_, -i);
}

}  // namespace dramstress::circuit
