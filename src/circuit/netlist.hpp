// Netlist: node registry plus owned device list.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/controlled.hpp"
#include "circuit/device.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passive.hpp"
#include "circuit/source.hpp"

namespace dramstress::circuit {

/// Owns nodes and devices.  Typed factory methods return non-owning
/// pointers so callers (e.g. defect injection, the DRAM command engine)
/// can adjust parameters or waveforms after construction.
class Netlist {
public:
  Netlist() = default;

  /// Return the node with this name, creating it on first use.
  /// "0" and "gnd" map to ground.
  NodeId node(const std::string& name);

  /// Look up an existing node; throws ModelError if absent.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  /// Name of a node id (for diagnostics).
  const std::string& node_name(NodeId n) const;

  /// Number of non-ground nodes.
  int num_nodes() const { return static_cast<int>(names_.size()); }

  // --- typed device factories -----------------------------------------
  Resistor* add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  Capacitor* add_capacitor(const std::string& name, NodeId a, NodeId b, double farads);
  VoltageSource* add_voltage_source(const std::string& name, NodeId plus,
                                    NodeId minus, Waveform volts);
  CurrentSource* add_current_source(const std::string& name, NodeId a, NodeId b,
                                    Waveform amps);
  Diode* add_diode(const std::string& name, NodeId anode, NodeId cathode,
                   DiodeParams params);
  Mosfet* add_mosfet(const std::string& name, MosType type, NodeId drain,
                     NodeId gate, NodeId source, NodeId bulk, MosfetParams params);
  Vcvs* add_vcvs(const std::string& name, NodeId plus, NodeId minus,
                 NodeId ctrl_plus, NodeId ctrl_minus, double gain);
  Vccs* add_vccs(const std::string& name, NodeId plus, NodeId minus,
                 NodeId ctrl_plus, NodeId ctrl_minus, double gm);
  Inductor* add_inductor(const std::string& name, NodeId a, NodeId b,
                         double henries);

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }
  std::vector<std::unique_ptr<Device>>& devices() { return devices_; }

  /// Find a device by name (nullptr if absent).
  Device* find_device(const std::string& name) const;

  size_t num_devices() const { return devices_.size(); }

private:
  template <typename T, typename... Args>
  T* add(Args&&... args);

  std::vector<std::string> names_;  // index i -> node id i+1
  // detlint:allow(D501 lookup-only index; every walk over nodes uses names_)
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<std::unique_ptr<Device>> devices_;
  // detlint:allow(D501 lookup-only index; every walk over devices uses devices_)
  std::unordered_map<std::string, Device*> device_by_name_;
};

}  // namespace dramstress::circuit
