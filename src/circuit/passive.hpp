// Linear passive elements: resistor, capacitor, independent current source.
#pragma once

#include "circuit/device.hpp"
#include "circuit/waveform.hpp"

namespace dramstress::circuit {

/// Two-terminal linear resistor.  The resistance is mutable so defect
/// injection can sweep a defect's value without rebuilding the netlist.
class Resistor : public Device {
public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  DeviceKind kind() const override { return DeviceKind::Resistor; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  void set_resistance(double ohms);
  double resistance() const { return ohms_; }

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

private:
  NodeId a_;
  NodeId b_;
  double ohms_;
};

/// Two-terminal linear capacitor with backward-Euler / trapezoidal
/// companion models.  Open circuit in DC operating point analysis.
class Capacitor : public Device {
public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  void init_state(const StampContext& ctx) override;
  void commit_step(const StampContext& ctx) override;
  DeviceKind kind() const override { return DeviceKind::Capacitor; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double capacitance() const { return farads_; }
  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

private:
  /// Device current (a -> b) implied by the companion model at the iterate.
  double current(const StampContext& ctx, double* dI_dv = nullptr) const;

  NodeId a_;
  NodeId b_;
  double farads_;
  // State from the last accepted step.
  double v_state_ = 0.0;  // capacitor voltage v(a) - v(b)
  double i_state_ = 0.0;  // capacitor current a -> b
};

/// Independent current source driving `amps(t)` from node a to node b
/// (through the device; i.e. the current leaves node a).
class CurrentSource : public Device {
public:
  CurrentSource(std::string name, NodeId a, NodeId b, Waveform amps);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  void append_breakpoints(std::vector<double>& out) const override {
    amps_.append_breakpoints(out);
  }
  DeviceKind kind() const override { return DeviceKind::CurrentSource; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  void set_waveform(Waveform w) { amps_ = std::move(w); }

private:
  NodeId a_;
  NodeId b_;
  Waveform amps_;
};

}  // namespace dramstress::circuit
