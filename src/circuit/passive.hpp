// Linear passive elements: resistor, capacitor, independent current source.
#pragma once

#include "circuit/device.hpp"
#include "circuit/waveform.hpp"

namespace dramstress::circuit {

/// Two-terminal linear resistor.  The resistance is mutable so defect
/// injection can sweep a defect's value without rebuilding the netlist.
class Resistor : public Device {
public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  // Defined inline: the ensemble engine's assembly loop calls it
  // non-virtually (qualified call) so the stamp folds into the loop.
  void stamp(const StampContext& ctx, Stamper& s) const override {
    const double g = 1.0 / ohms_;
    const double i = g * (ctx.v(a_) - ctx.v(b_));
    s.res_node(a_, i);
    s.res_node(b_, -i);
    s.jac_node_node(a_, a_, g);
    s.jac_node_node(a_, b_, -g);
    s.jac_node_node(b_, a_, -g);
    s.jac_node_node(b_, b_, g);
  }
  DeviceKind kind() const override { return DeviceKind::Resistor; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  void set_resistance(double ohms);
  double resistance() const { return ohms_; }

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

private:
  NodeId a_;
  NodeId b_;
  double ohms_;
};

/// Two-terminal linear capacitor with backward-Euler / trapezoidal
/// companion models.  Open circuit in DC operating point analysis.
class Capacitor : public Device {
public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  // Inline for the same reason as Resistor::stamp.
  void stamp(const StampContext& ctx, Stamper& s) const override {
    double g = 0.0;
    const double i = current(ctx, &g);
    s.res_node(a_, i);
    s.res_node(b_, -i);
    if (g != 0.0) {
      s.jac_node_node(a_, a_, g);
      s.jac_node_node(a_, b_, -g);
      s.jac_node_node(b_, a_, -g);
      s.jac_node_node(b_, b_, g);
    }
  }
  void init_state(const StampContext& ctx) override;
  void commit_step(const StampContext& ctx) override;
  DeviceKind kind() const override { return DeviceKind::Capacitor; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double capacitance() const { return farads_; }
  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

private:
  /// Device current (a -> b) implied by the companion model at the iterate.
  double current(const StampContext& ctx, double* dI_dv = nullptr) const {
    const double v = ctx.v(a_) - ctx.v(b_);
    switch (ctx.mode) {
      case AnalysisMode::DcOp:
        if (dI_dv != nullptr) *dI_dv = 0.0;
        return 0.0;
      case AnalysisMode::TransientBe: {
        const double g = farads_ / ctx.dt;
        if (dI_dv != nullptr) *dI_dv = g;
        return g * (v - v_state_);
      }
      case AnalysisMode::TransientTrap: {
        const double g = 2.0 * farads_ / ctx.dt;
        if (dI_dv != nullptr) *dI_dv = g;
        return g * (v - v_state_) - i_state_;
      }
    }
    return 0.0;
  }

  NodeId a_;
  NodeId b_;
  double farads_;
  // State from the last accepted step.
  double v_state_ = 0.0;  // capacitor voltage v(a) - v(b)
  double i_state_ = 0.0;  // capacitor current a -> b
};

/// Independent current source driving `amps(t)` from node a to node b
/// (through the device; i.e. the current leaves node a).
class CurrentSource : public Device {
public:
  CurrentSource(std::string name, NodeId a, NodeId b, Waveform amps);

  void stamp(const StampContext& ctx, Stamper& s) const override;
  void append_breakpoints(std::vector<double>& out) const override {
    amps_.append_breakpoints(out);
  }
  DeviceKind kind() const override { return DeviceKind::CurrentSource; }
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  void set_waveform(Waveform w) { amps_ = std::move(w); }

private:
  NodeId a_;
  NodeId b_;
  Waveform amps_;
};

}  // namespace dramstress::circuit
