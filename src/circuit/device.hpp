// Device interface for the MNA engine.
//
// Formulation: the Newton iteration solves J(x) dx = -f(x), where f is the
// vector of KCL residuals (sum of currents *leaving* each non-ground node)
// followed by one constitutive residual per source branch.  Devices stamp
// both the residual f and the Jacobian J at the current iterate.
#pragma once

#include <string>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"

namespace dramstress::circuit {

/// Node handle.  0 is ground; positive ids are created by Netlist::node().
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class AnalysisMode {
  DcOp,           // capacitors open, sources at t=0 value
  TransientBe,    // backward-Euler companion for storage elements
  TransientTrap,  // trapezoidal companion for storage elements
};

class Netlist;

/// Everything a device needs to evaluate itself at the current iterate.
struct StampContext {
  AnalysisMode mode = AnalysisMode::DcOp;
  double time = 0.0;         // s; for transient, the time being solved for
  double dt = 0.0;           // s; transient step size
  double temperature = 300.15;  // K
  const numeric::Vector* x = nullptr;       // current Newton iterate
  int num_nodes = 0;         // non-ground node count (branch unknowns follow)

  /// Voltage of `n` in the current iterate (0 for ground).
  double v(NodeId n) const {
    return n == kGround ? 0.0 : (*x)[static_cast<size_t>(n - 1)];
  }
  /// Current of branch unknown `b` (absolute branch index) in the iterate.
  double branch(int b) const {
    return (*x)[static_cast<size_t>(num_nodes + b)];
  }
};

/// Accumulates Jacobian and residual entries, mapping node ids / branch
/// indices to unknown indices and silently dropping ground rows/columns.
/// Four targets share the one interface devices stamp through:
///   * dense matrix / sparse CSR matrix (a not-yet-finalized sparse target
///     records the structural pattern instead of values, which is how
///     MnaSystem builds its stamp-slot map once at construction);
///   * record: append each Jacobian entry's CSR slot to a program instead
///     of writing a value -- the stamp sequence of a device is fixed per
///     analysis mode, so the program replays for every later assembly;
///   * replay: consume the recorded program, accumulating into lane-major
///     ensemble storage (base pointer + stride) with no slot search.
class Stamper {
public:
  Stamper(numeric::Matrix& jac, numeric::Vector& res, int num_nodes)
      : dense_(&jac), res_(res.data()), num_nodes_(num_nodes) {}
  Stamper(numeric::SparseMatrix& jac, numeric::Vector& res, int num_nodes)
      : sparse_(&jac), res_(res.data()), num_nodes_(num_nodes) {}
  /// Record mode: jac entries append pattern.slot(r, c) to `program`;
  /// residual writes land in `res_scratch` (values are meaningless here).
  Stamper(const numeric::SparseMatrix& pattern,
          std::vector<unsigned>& program, numeric::Vector& res_scratch,
          int num_nodes)
      : record_pat_(&pattern),
        record_prog_(&program),
        res_(res_scratch.data()),
        num_nodes_(num_nodes) {}
  /// Replay mode: the k-th jac call of the stamp sequence accumulates into
  /// jac_base[program[k] * stride]; residual row r into res_base[r * stride].
  /// Caller folds the lane offset into the base pointers.  A null jac_base
  /// replays the residual only (the program cursor still advances so the
  /// device sequence stays aligned) -- chord iterations reuse the previous
  /// factorization and never read the Jacobian.
  Stamper(const unsigned* program, double* jac_base, double* res_base,
          size_t stride, int num_nodes)
      : replay_prog_(program),
        replay_jac_(jac_base),
        replay_res_(res_base),
        stride_(stride),
        num_nodes_(num_nodes) {}

  // --- node-row stamps (KCL residuals) ---
  void res_node(NodeId n, double current_leaving) {
    if (n != kGround) res(idx(n), current_leaving);
  }
  void jac_node_node(NodeId r, NodeId c, double g) {
    if (r != kGround && c != kGround) jac(idx(r), idx(c), g);
  }
  void jac_node_branch(NodeId r, int b, double g) {
    if (r != kGround) jac(idx(r), bidx(b), g);
  }

  // --- branch-row stamps (constitutive residuals) ---
  void res_branch(int b, double residual) { res(bidx(b), residual); }
  void jac_branch_node(int b, NodeId c, double g) {
    if (c != kGround) jac(bidx(b), idx(c), g);
  }
  void jac_branch_branch(int br, int bc, double g) {
    jac(bidx(br), bidx(bc), g);
  }

private:
  void jac(size_t r, size_t c, double g) {
    if (replay_prog_ != nullptr) {
      const size_t slot = replay_prog_[pc_++];
      if (replay_jac_ != nullptr) replay_jac_[slot * stride_] += g;
    } else if (sparse_ != nullptr)
      sparse_->add(r, c, g);
    else if (record_prog_ != nullptr)
      record_prog_->push_back(static_cast<unsigned>(record_pat_->slot(r, c)));
    else
      (*dense_)(r, c) += g;
  }
  void res(size_t r, double v) {
    if (replay_res_ != nullptr)
      replay_res_[r * stride_] += v;
    else
      res_[r] += v;
  }
  size_t idx(NodeId n) const { return static_cast<size_t>(n - 1); }
  size_t bidx(int b) const { return static_cast<size_t>(num_nodes_ + b); }
  numeric::Matrix* dense_ = nullptr;
  numeric::SparseMatrix* sparse_ = nullptr;
  const numeric::SparseMatrix* record_pat_ = nullptr;
  std::vector<unsigned>* record_prog_ = nullptr;
  const unsigned* replay_prog_ = nullptr;
  double* replay_jac_ = nullptr;
  double* replay_res_ = nullptr;
  size_t stride_ = 1;
  size_t pc_ = 0;
  double* res_ = nullptr;
  int num_nodes_;
};

/// Element classification for static analysis (verify::NetlistLinter);
/// checks select conduction/source subgraphs by kind instead of RTTI.
enum class DeviceKind {
  Resistor,
  Capacitor,
  Inductor,
  VoltageSource,
  CurrentSource,
  Vcvs,
  Vccs,
  Diode,
  Mosfet,
};

inline const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Resistor: return "resistor";
    case DeviceKind::Capacitor: return "capacitor";
    case DeviceKind::Inductor: return "inductor";
    case DeviceKind::VoltageSource: return "vsource";
    case DeviceKind::CurrentSource: return "isource";
    case DeviceKind::Vcvs: return "vcvs";
    case DeviceKind::Vccs: return "vccs";
    case DeviceKind::Diode: return "diode";
    case DeviceKind::Mosfet: return "mosfet";
  }
  return "?";
}

/// Base class for all circuit elements.
class Device {
public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Add this device's contribution to the residual and Jacobian.
  virtual void stamp(const StampContext& ctx, Stamper& s) const = 0;

  /// Element classification (drives the static-verification checks).
  virtual DeviceKind kind() const = 0;

  /// Terminals through which device current flows (KCL contributions).
  virtual std::vector<NodeId> terminals() const = 0;

  /// High-impedance sensing terminals: nodes the device reads but never
  /// drives current into (MOSFET gate/bulk, E/G control pins).
  virtual std::vector<NodeId> sense_terminals() const { return {}; }

  /// Number of branch-current unknowns this device introduces.
  virtual int num_branches() const { return 0; }

  /// Called by the MNA setup with this device's first absolute branch index.
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  /// Initialize internal state from a converged solution at t = t0
  /// (start of a transient; capacitors remember their voltage, zero current).
  virtual void init_state(const StampContext& /*ctx*/) {}

  /// Update internal state after an accepted transient step.
  virtual void commit_step(const StampContext& /*ctx*/) {}

  /// Append the times at which this device's stimulus has a slope break
  /// (waveform corners).  The adaptive transient engine forces accepted
  /// steps to land exactly on these so no command edge is integrated over.
  virtual void append_breakpoints(std::vector<double>& /*out*/) const {}

  const std::string& name() const { return name_; }

private:
  std::string name_;
  int branch_base_ = -1;
};

}  // namespace dramstress::circuit
