// Diagnostics engine for static circuit verification.
//
// Every check in the verify layer reports through the same currency: a
// Diagnostic carries a stable machine-readable code (catalogued in
// docs/LINT.md), a severity, a human-readable message and, when known,
// the offending device/node and the SPICE source line the device came
// from.  A VerifyReport is an ordered collection with severity counters
// and a renderer -- callers decide whether warnings are fatal (the CLIs'
// --verify=strict mode) or advisory.
#pragma once

#include <string>
#include <vector>

namespace dramstress::verify {

enum class Severity { Info, Warning, Error };

const char* to_string(Severity severity);

/// Stable diagnostic codes.  The numeric id (rendered as E1xx/W1xx for
/// netlist checks, E2xx for defect-injection checks, E3xx for campaign
/// spec / cache integrity checks) never changes once shipped; docs/LINT.md
/// is the catalogue.
enum class Code {
  FloatingIsland,     // E101: nodes with no connection to ground at all
  NoDcPath,           // W102: node only reaches ground through C / I / G
  VsourceLoop,        // E103: loop of ideal voltage sources (V/E)
  IsourceCutset,      // E104: current sources form a cutset around a node
  SingularPattern,    // E105: structurally singular MNA pattern
  DanglingNode,       // W106: node referenced by a single device terminal
  DuplicateParallel,  // W107: same-kind device duplicated across one node set
  NonPhysicalParam,   // E108: parameter value that cannot be simulated
  SuspiciousParam,    // W109: parameter outside the plausible range
  SelfLoop,           // E110/W110: both terminals on one node
  DefectUnknownDevice,  // E201: injected device name not in the netlist
  DefectNotResistor,    // E202: injected device is not a resistor
  DefectWrongNodes,     // E203: defect resistor spans the wrong node pair
  DefectBadValue,       // E204: injected resistance non-finite or <= 0
  SpecParse,            // E301: campaign spec is not valid JSON
  SpecMissingField,     // E302: required spec field absent
  SpecBadType,          // E303: spec field has the wrong JSON type
  SpecBadValue,         // E304: spec field value out of range / unknown enum
  SpecUnknownKey,       // W305: spec key not in the schema (ignored)
  CacheCorrupt,         // E310: unreadable cache object / journal record
  ProtoFraming,         // E320: malformed service request framing
  ProtoLimit,           // E321: request exceeds a protocol size limit
  ProtoTimeout,         // E322: request truncated / timed out mid-read
  ProtoSemantic,        // E323: well-formed request, unserviceable meaning
  ConductanceRatio,     // W401: extreme resistor conductance spread
  IndexTwoLoop,         // E402: capacitor/voltage-source loop (DAE index 2)
  StiffnessUnresolvable,  // E403/W403: fastest RC constant vs dt_min
  BreakpointSpacing,    // E404: waveform breakpoints finer than dt_min
};

/// Catalogue id, e.g. Code::VsourceLoop -> "E103".  SelfLoop renders as
/// E110 -- the voltage-source case is an error, the passive case is
/// reported with Severity::Warning under the same id.  Likewise
/// StiffnessUnresolvable renders as E403: an RC constant the minimum step
/// cannot resolve at all is an error, the trapezoidal-ringing case is a
/// warning under the same id.
const char* code_id(Code code);

/// The severity a check assigns by default (SelfLoop: per-case).
Severity default_severity(Code code);

struct Diagnostic {
  Code code = Code::FloatingIsland;
  Severity severity = Severity::Error;
  std::string message;
  std::string device;  // offending device name; empty for node-level findings
  std::string node;    // offending/representative node name; may be empty
  int spice_line = 0;  // 1-based deck line of the device; 0 when not parsed

  /// One-line render: "error[E103] line 4: ... [device Vdup]".
  std::string str() const;
};

/// Ordered diagnostic collection produced by one verification pass.
class VerifyReport {
public:
  void add(Diagnostic d);
  void merge(const VerifyReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int count(Severity severity) const;
  int errors() const { return count(Severity::Error); }
  int warnings() const { return count(Severity::Warning); }

  /// No errors (warnings allowed).
  bool ok() const { return errors() == 0; }
  /// Not a single diagnostic of any severity.
  bool clean() const { return diags_.empty(); }

  bool has(Code code) const { return find(code) != nullptr; }
  const Diagnostic* find(Code code) const;

  /// Multi-line render: one line per diagnostic plus a summary line.
  std::string str() const;

private:
  std::vector<Diagnostic> diags_;
};

}  // namespace dramstress::verify
