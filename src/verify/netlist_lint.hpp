// Static netlist verification (the "circuit linter").
//
// Every result downstream -- result planes, border resistances, Table 1 --
// is only as trustworthy as the netlist fed to the solver.  A floating
// node, a voltage-source loop or a defect injected between the wrong nodes
// corrupts Vc(R) curves silently instead of failing loudly.  The linter
// runs a fixed battery of structural checks *before* any transient:
//
//   E101 floating-node islands       (no connection to ground at all)
//   W102 no DC path to ground        (only C / I / G paths; gmin pins it)
//   E103 voltage-source loops        (V/E cycle overdetermines KCL)
//   E104 current-source cutsets      (I/G cut isolates a node's KCL)
//   E105 structurally singular MNA   (pattern rank < unknowns; reuses the
//        SparseMatrix pattern-capture phase plus a bipartite matching)
//   W106 dangling nodes              (single-terminal nodes)
//   W107 duplicate parallel devices  (same kind across one node set)
//   E108/W109 parameter ranges       (non-physical vs merely implausible)
//   E110 self-loops                  (error for sources, warning for RCL)
//
// plus the defect-injection sanity check (E201..E204) used by the sweep
// layer after every Injection.
#pragma once

#include <map>
#include <string>

#include "circuit/netlist.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::verify {

/// Tunable bounds and toggles.  Defaults are deliberately loose; the DRAM
/// layer narrows the MOSFET geometry bounds from its TechnologyParams
/// (see DramColumn::verify).
struct LintOptions {
  // Resistance above this is suspicious even for an "open" model; the
  // column's pristine shunt stubs sit at 1e15 Ohm, so the bound clears
  // them with margin.
  double r_max = 1e16;        // Ohm
  double c_max = 1.0;         // F: a farad-scale cap is a typo'd suffix
  double l_max = 1.0;         // H
  double mos_w_min = 1e-9;    // m
  double mos_w_max = 1e-2;    // m
  double mos_l_min = 1e-9;    // m
  double mos_l_max = 1e-3;    // m

  /// Device name -> 1-based source line (SpiceDeck::device_lines); linted
  /// devices pick their `spice_line` from here when present.
  const std::map<std::string, int>* source_lines = nullptr;

  /// The E105 structural-rank check stamps every device once; turn it off
  /// for pathological netlists where even pattern capture is unwanted.
  bool check_singular_pattern = true;
};

/// Static checks over one netlist.  Linting assigns branch indices to the
/// devices (same assignment MnaSystem makes), hence the non-const Netlist.
class NetlistLinter {
public:
  explicit NetlistLinter(LintOptions options = {}) : opt_(options) {}

  VerifyReport lint(circuit::Netlist& netlist) const;

private:
  LintOptions opt_;
};

/// Defect-injection sanity: `resistor_name` must exist, be a resistor,
/// span exactly {expect_a, expect_b} and carry a finite positive value.
/// Callers (defect::SweepContext) supply the expected terminals from the
/// column's advertised topology.
VerifyReport lint_injection(const circuit::Netlist& netlist,
                            const std::string& resistor_name,
                            circuit::NodeId expect_a, circuit::NodeId expect_b);

}  // namespace dramstress::verify
