// Numeric pre-flight: E4xx checks computed statically from the deck.
//
// The structural linter (netlist_lint.hpp) answers "is this a circuit";
// pre-flight answers "can the transient engine integrate it with the
// configured tolerances".  Each check is a cheap static proxy for a
// failure mode that otherwise only shows up dynamically -- a Newton grind,
// a silently skipped command edge, a garbage Vc(R) curve:
//
//   W401 extreme conductance ratio   max(1/R)/min(1/R) across the
//        resistors bounds (from below) the MNA condition number; past
//        ~1e16 the factorization works at the edge of double precision.
//   E402 capacitor/voltage-source loop   a cycle whose branches are only
//        capacitors and ideal voltage sources (at least one of each)
//        makes the MNA system a DAE of index 2 (Tischendorf's criterion):
//        the loop caps' current is the *derivative* of the source input,
//        so a step edge demands an impulse the integrator cannot
//        represent.  One series resistance anywhere in the loop fixes it.
//   E403 unresolvable stiffness   the fastest RC time constant of the
//        deck, estimated per capacitor as C / (sum of resistor
//        conductances at its faster terminal).  Error when it is below
//        dt_min by more than the stiff margin -- the LTE controller can
//        neither resolve the mode nor step over its driven edges without
//        Newton failures clamped at dt_min.  Warning (same id) when
//        trapezoidal integration meets tau < dt_min: trap does not damp
//        unresolved modes, it rings them.
//   E404 breakpoint spacing finer than dt_min   the adaptive engine lands
//        accepted steps exactly on waveform breakpoints; two breakpoints
//        closer than the minimum step cannot both be hit, so one edge is
//        silently integrated over.
//
// E403/E404 depend on the stepping configuration, so the caller passes the
// engine settings it will actually run with (StressFlow forwards its
// SimSettings; minispice forwards the deck's .tran card).  Fixed-step runs
// skip both: dt_min and breakpoints are adaptive-path concepts.
#pragma once

#include <map>
#include <string>

#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::verify {

/// Engine-facing knobs of the numeric pre-flight.  Defaults mirror
/// dram::SimSettings so StressFlow::verify() stays in sync by
/// construction; the ratio/margin thresholds are deliberately loose --
/// the shipped column sits at a conductance ratio of exactly 1e15 (1 Ohm
/// series stubs vs 1e15 Ohm pristine shunt stubs) and must stay clean
/// under --verify=strict.
struct PreflightOptions {
  /// W401 above this max/min resistor-conductance ratio.
  double cond_ratio_max = 1e16;

  // --- stepping configuration the deck will run under -------------------
  bool adaptive = true;  // false: skip E403/E404 (fixed step ignores both)
  double dt_min = 1e-13;   // s, smallest adaptive step
  double lte_tol = 5e-4;   // relative LTE tolerance (reported in E403)
  circuit::Integrator integrator = circuit::Integrator::BackwardEuler;

  /// E403 is an error when tau_min < dt_min * stiff_margin: backward
  /// Euler damps a fast mode it cannot resolve, but three decades below
  /// the step floor its *driven* edges are effectively discontinuities to
  /// Newton.
  double stiff_margin = 1e-3;

  /// Breakpoint horizon for E404; <= 0 checks every registered breakpoint.
  double t_stop = 0.0;

  /// Device name -> 1-based source line (SpiceDeck::device_lines), as in
  /// LintOptions.
  const std::map<std::string, int>* source_lines = nullptr;
};

/// Run the E4xx checks over one netlist.  Purely read-only: unlike the
/// structural linter it assigns no branch indices and stamps nothing.
VerifyReport preflight_numeric(const circuit::Netlist& netlist,
                               const PreflightOptions& options = {});

}  // namespace dramstress::verify
