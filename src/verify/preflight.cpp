#include "verify/preflight.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "circuit/passive.hpp"
#include "util/strings.hpp"

namespace dramstress::verify {

using circuit::Capacitor;
using circuit::Device;
using circuit::DeviceKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using circuit::Resistor;

namespace {

int line_of(const PreflightOptions& opt, const std::string& device) {
  if (opt.source_lines == nullptr) return 0;
  const auto it = opt.source_lines->find(device);
  return it == opt.source_lines->end() ? 0 : it->second;
}

void add(VerifyReport& report, const PreflightOptions& opt, Code code,
         Severity severity, std::string message, std::string device = {},
         std::string node = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.device = std::move(device);
  d.node = std::move(node);
  if (!d.device.empty()) d.spice_line = line_of(opt, d.device);
  report.add(d);
}

/// Resistor conductance, or 0 when the value is non-physical (E108's
/// domain -- pre-flight never double-reports what the structural linter
/// already rejects).
double conductance(const Resistor& r) {
  const double ohms = r.resistance();
  if (!std::isfinite(ohms) || ohms <= 0.0) return 0.0;
  return 1.0 / ohms;
}

// --- W401: resistor conductance spread --------------------------------

void check_conductance_ratio(const Netlist& nl, const PreflightOptions& opt,
                             VerifyReport& report) {
  double g_min = std::numeric_limits<double>::infinity();
  double g_max = 0.0;
  const Device* dev_min = nullptr;
  const Device* dev_max = nullptr;
  for (const auto& dev : nl.devices()) {
    if (dev->kind() != DeviceKind::Resistor) continue;
    const double g = conductance(static_cast<const Resistor&>(*dev));
    if (g == 0.0) continue;
    if (g < g_min) { g_min = g; dev_min = dev.get(); }
    if (g > g_max) { g_max = g; dev_max = dev.get(); }
  }
  if (dev_min == nullptr || dev_max == nullptr) return;
  const double ratio = g_max / g_min;
  if (ratio <= opt.cond_ratio_max) return;
  add(report, opt, Code::ConductanceRatio, Severity::Warning,
      util::format("resistor conductance ratio %.3g (min %s, max %s) exceeds "
                   "%.3g; the MNA condition number is at least this large, "
                   "so factorization works at the edge of double precision",
                   ratio, dev_min->name().c_str(), dev_max->name().c_str(),
                   opt.cond_ratio_max),
      dev_min->name());
}

// --- E402: capacitor / voltage-source loops ---------------------------

/// Branch of the C/V subgraph.
struct CvEdge {
  NodeId a = kGround;
  NodeId b = kGround;
  bool is_cap = false;
  const Device* dev = nullptr;
};

/// Union-find over node ids (0..num_nodes inclusive, ground is 0).
class Dsu {
 public:
  explicit Dsu(int n) : parent_(static_cast<size_t>(n)) {
    for (size_t i = 0; i < parent_.size(); ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Detect cycles of capacitors and ideal voltage sources (V and E count;
/// at least one of each kind in the cycle).  Every edge that closes a
/// cycle in the incrementally built C/V forest yields a fundamental
/// cycle; its composition is read off the unique tree path between the
/// edge's endpoints.  Fundamental cycles generate the whole cycle space,
/// so a deck with any mixed C/V loop has a mixed fundamental cycle here.
void check_index_two_loops(const Netlist& nl, const PreflightOptions& opt,
                           VerifyReport& report) {
  const int n = nl.num_nodes() + 1;  // ids 0..num_nodes, ground included
  Dsu dsu(n);
  // Adjacency of accepted (tree) edges: node -> (neighbour, edge index).
  std::vector<std::vector<std::pair<NodeId, size_t>>> adj(
      static_cast<size_t>(n));
  std::vector<CvEdge> tree;

  for (const auto& dev : nl.devices()) {
    const DeviceKind kind = dev->kind();
    const bool is_cap = kind == DeviceKind::Capacitor;
    const bool is_vsrc =
        kind == DeviceKind::VoltageSource || kind == DeviceKind::Vcvs;
    if (!is_cap && !is_vsrc) continue;
    const std::vector<NodeId> t = dev->terminals();
    if (t.size() != 2 || t[0] == t[1]) continue;  // self-loop: E110's domain
    const CvEdge edge{t[0], t[1], is_cap, dev.get()};
    if (dsu.unite(edge.a, edge.b)) {
      const size_t idx = tree.size();
      tree.push_back(edge);
      adj[static_cast<size_t>(edge.a)].push_back({edge.b, idx});
      adj[static_cast<size_t>(edge.b)].push_back({edge.a, idx});
      continue;
    }
    // Closing edge: walk the tree path edge.a -> edge.b (BFS; the forest
    // path is unique) and tally the cycle's composition.
    std::vector<int> prev_edge(static_cast<size_t>(n), -1);
    std::vector<NodeId> prev_node(static_cast<size_t>(n), -1);
    std::vector<char> seen(static_cast<size_t>(n), 0);
    std::deque<NodeId> queue{edge.a};
    seen[static_cast<size_t>(edge.a)] = 1;
    while (!queue.empty() && !seen[static_cast<size_t>(edge.b)]) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const auto& [v, idx] : adj[static_cast<size_t>(u)]) {
        if (seen[static_cast<size_t>(v)]) continue;
        seen[static_cast<size_t>(v)] = 1;
        prev_edge[static_cast<size_t>(v)] = static_cast<int>(idx);
        prev_node[static_cast<size_t>(v)] = u;
        queue.push_back(v);
      }
    }
    int caps = edge.is_cap ? 1 : 0;
    int vsrcs = edge.is_cap ? 0 : 1;
    std::string members = edge.dev->name();
    for (NodeId u = edge.b; u != edge.a;
         u = prev_node[static_cast<size_t>(u)]) {
      const CvEdge& e = tree[static_cast<size_t>(
          prev_edge[static_cast<size_t>(u)])];
      (e.is_cap ? caps : vsrcs) += 1;
      members += ", " + e.dev->name();
    }
    if (caps == 0 || vsrcs == 0) continue;  // pure-V loop: E103's domain
    add(report, opt, Code::IndexTwoLoop, Severity::Error,
        util::format("loop of %d capacitor(s) and %d voltage source(s) "
                     "(%s) makes the transient DAE index 2: the loop "
                     "current is the derivative of the source input, so a "
                     "step edge demands an impulse; add series resistance "
                     "in the loop",
                     caps, vsrcs, members.c_str()),
        edge.dev->name(), nl.node_name(edge.a));
  }
}

// --- E403: stiffness vs the minimum step ------------------------------

void check_stiffness(const Netlist& nl, const PreflightOptions& opt,
                     VerifyReport& report) {
  if (!(opt.dt_min > 0.0)) return;
  // Resistive conductance seen at each node.
  std::vector<double> g_node(static_cast<size_t>(nl.num_nodes()) + 1, 0.0);
  for (const auto& dev : nl.devices()) {
    if (dev->kind() != DeviceKind::Resistor) continue;
    const auto& r = static_cast<const Resistor&>(*dev);
    const double g = conductance(r);
    if (g == 0.0) continue;
    g_node[static_cast<size_t>(r.a())] += g;
    g_node[static_cast<size_t>(r.b())] += g;
  }
  double tau_min = std::numeric_limits<double>::infinity();
  const Device* dev_min = nullptr;
  for (const auto& dev : nl.devices()) {
    if (dev->kind() != DeviceKind::Capacitor) continue;
    const auto& c = static_cast<const Capacitor&>(*dev);
    const double farads = c.capacitance();
    if (!std::isfinite(farads) || farads <= 0.0) continue;  // E108's domain
    // Fastest mode the cap can form: discharge through the stronger of
    // its two terminal conductances.  A terminal with no resistor at all
    // contributes no mode (W102 covers truly floating caps).
    const double g = std::max(g_node[static_cast<size_t>(c.a())],
                              g_node[static_cast<size_t>(c.b())]);
    if (g <= 0.0) continue;
    const double tau = farads / g;
    if (tau < tau_min) { tau_min = tau; dev_min = dev.get(); }
  }
  if (dev_min == nullptr) return;
  if (tau_min < opt.dt_min * opt.stiff_margin) {
    add(report, opt, Code::StiffnessUnresolvable, Severity::Error,
        util::format("fastest RC time constant ~%.3g s (%s) is more than "
                     "%.0e below the minimum adaptive step %.3g s: driven "
                     "edges of this mode look discontinuous to Newton at "
                     "every allowed step, and LTE control (lte_tol=%.3g) "
                     "cannot shrink past dt_min",
                     tau_min, dev_min->name().c_str(), 1.0 / opt.stiff_margin,
                     opt.dt_min, opt.lte_tol),
        dev_min->name());
  } else if (opt.integrator == circuit::Integrator::Trapezoidal &&
             tau_min < opt.dt_min) {
    add(report, opt, Code::StiffnessUnresolvable, Severity::Warning,
        util::format("fastest RC time constant ~%.3g s (%s) is below the "
                     "minimum adaptive step %.3g s and the integrator is "
                     "trapezoidal, which rings unresolved modes instead of "
                     "damping them; use backward Euler or raise dt_min",
                     tau_min, dev_min->name().c_str(), opt.dt_min),
        dev_min->name());
  }
}

// --- E404: breakpoint spacing ----------------------------------------

void check_breakpoints(const Netlist& nl, const PreflightOptions& opt,
                       VerifyReport& report) {
  if (!(opt.dt_min > 0.0)) return;
  std::vector<double> bp;
  for (const auto& dev : nl.devices()) dev->append_breakpoints(bp);
  std::sort(bp.begin(), bp.end());
  // Exact-duplicate dedupe, matching BreakpointRegistry: two waveforms
  // switching at the same instant are one breakpoint.
  bp.erase(std::unique(bp.begin(), bp.end()), bp.end());
  if (opt.t_stop > 0.0) {
    bp.erase(std::remove_if(bp.begin(), bp.end(),
                            [&](double t) { return t > opt.t_stop; }),
             bp.end());
  }
  int pairs = 0;
  double first_lo = 0.0;
  double first_hi = 0.0;
  for (size_t i = 0; i + 1 < bp.size(); ++i) {
    if (bp[i + 1] - bp[i] >= opt.dt_min) continue;
    if (pairs == 0) { first_lo = bp[i]; first_hi = bp[i + 1]; }
    ++pairs;
  }
  if (pairs == 0) return;
  // Attribute the finding to a device whose stimulus owns the second
  // breakpoint of the first offending pair.
  std::string device;
  std::vector<double> mine;
  for (const auto& dev : nl.devices()) {
    mine.clear();
    dev->append_breakpoints(mine);
    if (std::find(mine.begin(), mine.end(), first_hi) != mine.end()) {
      device = dev->name();
      break;
    }
  }
  add(report, opt, Code::BreakpointSpacing, Severity::Error,
      util::format("waveform breakpoints at t=%.6g s and t=%.6g s are "
                   "%.3g s apart, finer than the minimum adaptive step "
                   "%.3g s (%d such pair(s)): the engine lands accepted "
                   "steps on breakpoints and would silently integrate "
                   "over one of these edges",
                   first_lo, first_hi, first_hi - first_lo, opt.dt_min,
                   pairs),
      device);
}

}  // namespace

VerifyReport preflight_numeric(const Netlist& netlist,
                               const PreflightOptions& options) {
  VerifyReport report;
  check_conductance_ratio(netlist, options, report);
  check_index_two_loops(netlist, options, report);
  if (options.adaptive) {
    check_stiffness(netlist, options, report);
    check_breakpoints(netlist, options, report);
  }
  return report;
}

}  // namespace dramstress::verify
