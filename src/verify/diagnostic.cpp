#include "verify/diagnostic.hpp"

#include "util/strings.hpp"

namespace dramstress::verify {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* code_id(Code code) {
  switch (code) {
    case Code::FloatingIsland: return "E101";
    case Code::NoDcPath: return "W102";
    case Code::VsourceLoop: return "E103";
    case Code::IsourceCutset: return "E104";
    case Code::SingularPattern: return "E105";
    case Code::DanglingNode: return "W106";
    case Code::DuplicateParallel: return "W107";
    case Code::NonPhysicalParam: return "E108";
    case Code::SuspiciousParam: return "W109";
    case Code::SelfLoop: return "E110";
    case Code::DefectUnknownDevice: return "E201";
    case Code::DefectNotResistor: return "E202";
    case Code::DefectWrongNodes: return "E203";
    case Code::DefectBadValue: return "E204";
    case Code::SpecParse: return "E301";
    case Code::SpecMissingField: return "E302";
    case Code::SpecBadType: return "E303";
    case Code::SpecBadValue: return "E304";
    case Code::SpecUnknownKey: return "W305";
    case Code::CacheCorrupt: return "E310";
    case Code::ProtoFraming: return "E320";
    case Code::ProtoLimit: return "E321";
    case Code::ProtoTimeout: return "E322";
    case Code::ProtoSemantic: return "E323";
    case Code::ConductanceRatio: return "W401";
    case Code::IndexTwoLoop: return "E402";
    case Code::StiffnessUnresolvable: return "E403";
    case Code::BreakpointSpacing: return "E404";
  }
  return "?";
}

Severity default_severity(Code code) {
  switch (code) {
    case Code::NoDcPath:
    case Code::DanglingNode:
    case Code::DuplicateParallel:
    case Code::SuspiciousParam:
    case Code::SpecUnknownKey:
    case Code::ConductanceRatio:
      return Severity::Warning;
    default:
      return Severity::Error;
  }
}

std::string Diagnostic::str() const {
  std::string out = to_string(severity);
  out += '[';
  out += code_id(code);
  out += ']';
  if (spice_line > 0) out += util::format(" line %d", spice_line);
  out += ": ";
  out += message;
  if (!device.empty()) out += " [device " + device + "]";
  if (!node.empty()) out += " [node " + node + "]";
  return out;
}

void VerifyReport::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void VerifyReport::merge(const VerifyReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

int VerifyReport::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diags_)
    if (d.severity == severity) ++n;
  return n;
}

const Diagnostic* VerifyReport::find(Code code) const {
  for (const Diagnostic& d : diags_)
    if (d.code == code) return &d;
  return nullptr;
}

std::string VerifyReport::str() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.str();
    out += '\n';
  }
  out += util::format("verify: %d error(s), %d warning(s), %d note(s)\n",
                      errors(), warnings(), count(Severity::Info));
  return out;
}

}  // namespace dramstress::verify
