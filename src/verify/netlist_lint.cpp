#include "verify/netlist_lint.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "numeric/sparse.hpp"
#include "util/strings.hpp"

namespace dramstress::verify {

namespace {

using circuit::Device;
using circuit::DeviceKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

/// Union-find over node ids 0..n (0 = ground).
class NodeSets {
public:
  explicit NodeSets(int num_nodes) : parent_(static_cast<size_t>(num_nodes) + 1) {
    for (size_t i = 0; i < parent_.size(); ++i) parent_[i] = static_cast<NodeId>(i);
  }
  NodeId find(NodeId a) {
    while (parent_[static_cast<size_t>(a)] != a) {
      parent_[static_cast<size_t>(a)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(a)])];
      a = parent_[static_cast<size_t>(a)];
    }
    return a;
  }
  /// Returns false if a and b were already connected (i.e. this edge
  /// closes a cycle).
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
    return true;
  }

private:
  std::vector<NodeId> parent_;
};

/// True for elements whose branch provides a DC conduction path between
/// its terminals (capacitors are open at DC; I/G fix a current, not a
/// path).
bool conducts_dc(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Resistor:
    case DeviceKind::Inductor:
    case DeviceKind::VoltageSource:
    case DeviceKind::Vcvs:
    case DeviceKind::Diode:
    case DeviceKind::Mosfet:
      return true;
    case DeviceKind::Capacitor:
    case DeviceKind::CurrentSource:
    case DeviceKind::Vccs:
      return false;
  }
  return false;
}

bool is_current_source(DeviceKind kind) {
  return kind == DeviceKind::CurrentSource || kind == DeviceKind::Vccs;
}

/// All node references of a device (conduction + sensing terminals).
std::vector<NodeId> all_nodes(const Device& dev) {
  std::vector<NodeId> nodes = dev.terminals();
  const std::vector<NodeId> sense = dev.sense_terminals();
  nodes.insert(nodes.end(), sense.begin(), sense.end());
  return nodes;
}

/// Up to `cap` comma-joined node names (with an ellipsis beyond).
std::string name_list(const Netlist& nl, const std::vector<NodeId>& nodes,
                      size_t cap = 6) {
  std::string out;
  for (size_t i = 0; i < nodes.size() && i < cap; ++i) {
    if (i != 0) out += ", ";
    out += nl.node_name(nodes[i]);
  }
  if (nodes.size() > cap)
    out += util::format(", ... (%zu total)", nodes.size());
  return out;
}

class LintPass {
public:
  LintPass(Netlist& nl, const LintOptions& opt) : nl_(nl), opt_(opt) {}

  VerifyReport run() {
    check_parameters();
    check_self_loops();
    check_duplicates();
    check_connectivity();  // E101 + W102/E104 + W106
    check_vsource_loops();
    if (opt_.check_singular_pattern) check_singular_pattern();
    return std::move(report_);
  }

private:
  int line_of(const std::string& device) const {
    if (opt_.source_lines == nullptr) return 0;
    const auto it = opt_.source_lines->find(device);
    return it == opt_.source_lines->end() ? 0 : it->second;
  }

  void add(Code code, Severity severity, std::string message,
           const std::string& device = {}, const std::string& node = {}) {
    report_.add({code, severity, std::move(message), device, node,
                 line_of(device)});
  }

  void add(Code code, std::string message, const std::string& device = {},
           const std::string& node = {}) {
    add(code, default_severity(code), std::move(message), device, node);
  }

  void bad_param(const Device& dev, const std::string& what, double value) {
    add(Code::NonPhysicalParam,
        util::format("%s '%s' has non-physical %s = %g",
                     to_string(dev.kind()), dev.name().c_str(), what.c_str(),
                     value),
        dev.name());
  }

  void odd_param(const Device& dev, const std::string& what, double value,
                 const std::string& range) {
    add(Code::SuspiciousParam,
        util::format("%s '%s' has %s = %g outside the plausible range %s",
                     to_string(dev.kind()), dev.name().c_str(), what.c_str(),
                     value, range.c_str()),
        dev.name());
  }

  void check_parameters() {
    for (const auto& dev : nl_.devices()) {
      switch (dev->kind()) {
        case DeviceKind::Resistor: {
          const double r = static_cast<const circuit::Resistor&>(*dev).resistance();
          if (!std::isfinite(r) || r <= 0.0)
            bad_param(*dev, "resistance", r);
          else if (r > opt_.r_max)
            odd_param(*dev, "resistance", r,
                      util::format("(0, %g] Ohm", opt_.r_max));
          break;
        }
        case DeviceKind::Capacitor: {
          const double c = static_cast<const circuit::Capacitor&>(*dev).capacitance();
          if (!std::isfinite(c) || c <= 0.0)
            bad_param(*dev, "capacitance", c);
          else if (c > opt_.c_max)
            odd_param(*dev, "capacitance", c,
                      util::format("(0, %g] F", opt_.c_max));
          break;
        }
        case DeviceKind::Inductor: {
          const double l = static_cast<const circuit::Inductor&>(*dev).inductance();
          if (!std::isfinite(l) || l <= 0.0)
            bad_param(*dev, "inductance", l);
          else if (l > opt_.l_max)
            odd_param(*dev, "inductance", l,
                      util::format("(0, %g] H", opt_.l_max));
          break;
        }
        case DeviceKind::Diode: {
          const auto& p = static_cast<const circuit::Diode&>(*dev).params();
          if (!std::isfinite(p.is_tnom) || p.is_tnom <= 0.0)
            bad_param(*dev, "saturation current", p.is_tnom);
          if (p.n <= 0.0) bad_param(*dev, "emission coefficient", p.n);
          break;
        }
        case DeviceKind::Mosfet: {
          const auto& p = static_cast<const circuit::Mosfet&>(*dev).params();
          if (!std::isfinite(p.w) || p.w <= 0.0)
            bad_param(*dev, "width", p.w);
          else if (p.w < opt_.mos_w_min || p.w > opt_.mos_w_max)
            odd_param(*dev, "width", p.w,
                      util::format("[%g, %g] m", opt_.mos_w_min, opt_.mos_w_max));
          if (!std::isfinite(p.l) || p.l <= 0.0)
            bad_param(*dev, "length", p.l);
          else if (p.l < opt_.mos_l_min || p.l > opt_.mos_l_max)
            odd_param(*dev, "length", p.l,
                      util::format("[%g, %g] m", opt_.mos_l_min, opt_.mos_l_max));
          if (p.kp_tnom <= 0.0) bad_param(*dev, "transconductance kp", p.kp_tnom);
          if (p.n <= 0.0) bad_param(*dev, "slope factor n", p.n);
          break;
        }
        case DeviceKind::VoltageSource:
        case DeviceKind::CurrentSource:
        case DeviceKind::Vcvs:
        case DeviceKind::Vccs:
          break;
      }
    }
  }

  void check_self_loops() {
    for (const auto& dev : nl_.devices()) {
      const std::vector<NodeId> terms = dev->terminals();
      if (terms.size() < 2) continue;
      const bool all_same =
          std::all_of(terms.begin(), terms.end(),
                      [&](NodeId n) { return n == terms.front(); });
      if (!all_same) continue;
      const DeviceKind kind = dev->kind();
      const bool hard = kind == DeviceKind::VoltageSource || kind == DeviceKind::Vcvs;
      add(Code::SelfLoop, hard ? Severity::Error : Severity::Warning,
          hard ? util::format("%s '%s' shorts its own terminals: the branch "
                              "equation v(n) - v(n) = V(t) is unsatisfiable",
                              to_string(kind), dev->name().c_str())
               : util::format("%s '%s' connects a node to itself and carries "
                              "no current",
                              to_string(kind), dev->name().c_str()),
          dev->name(), nl_.node_name(terms.front()));
    }
  }

  void check_duplicates() {
    std::map<std::string, const Device*> seen;
    for (const auto& dev : nl_.devices()) {
      // Conduction and sensing terminals are keyed separately: a
      // cross-coupled pair (drain/gate swapped, e.g. a latch) shares the
      // node *union* but is anything but a duplicate.
      std::vector<NodeId> terms = dev->terminals();
      std::vector<NodeId> sense = dev->sense_terminals();
      std::sort(terms.begin(), terms.end());
      std::sort(sense.begin(), sense.end());
      std::string key = to_string(dev->kind());
      for (const NodeId n : terms) key += util::format(":%d", n);
      key += '/';
      for (const NodeId n : sense) key += util::format(":%d", n);
      const auto [it, inserted] = seen.emplace(key, dev.get());
      if (inserted) continue;
      add(Code::DuplicateParallel,
          util::format("%s '%s' duplicates '%s' across the same nodes (%s)",
                       to_string(dev->kind()), dev->name().c_str(),
                       it->second->name().c_str(),
                       name_list(nl_, dev->terminals()).c_str()),
          dev->name());
    }
  }

  void check_connectivity() {
    const int n = nl_.num_nodes();
    NodeSets full(n);
    NodeSets dc(n);
    std::vector<int> term_refs(static_cast<size_t>(n) + 1, 0);
    // incident current source (by node), for the E104 attribution
    std::vector<const Device*> isrc_at(static_cast<size_t>(n) + 1, nullptr);

    for (const auto& dev : nl_.devices()) {
      const std::vector<NodeId> nodes = all_nodes(*dev);
      for (size_t i = 1; i < nodes.size(); ++i) full.unite(nodes[0], nodes[i]);
      for (const NodeId node : nodes) ++term_refs[static_cast<size_t>(node)];
      const std::vector<NodeId> terms = dev->terminals();
      if (conducts_dc(dev->kind()))
        for (size_t i = 1; i < terms.size(); ++i) dc.unite(terms[0], terms[i]);
      if (is_current_source(dev->kind()))
        for (const NodeId node : terms)
          isrc_at[static_cast<size_t>(node)] = dev.get();
    }

    // E101: islands with no connection to ground at all.
    std::map<NodeId, std::vector<NodeId>> islands;
    std::vector<char> floating(static_cast<size_t>(n) + 1, 0);
    for (NodeId node = 1; node <= n; ++node) {
      if (full.find(node) == full.find(kGround)) continue;
      islands[full.find(node)].push_back(node);
      floating[static_cast<size_t>(node)] = 1;
    }
    for (const auto& [root, nodes] : islands) {
      add(Code::FloatingIsland,
          util::format("nodes {%s} form an island with no connection to "
                       "ground",
                       name_list(nl_, nodes).c_str()),
          {}, nl_.node_name(nodes.front()));
    }

    // W102 / E104: connected to ground overall, but not through any DC
    // conduction path.  If a current source hangs on the orphan group the
    // group's KCL is overdetermined (cutset of current sources): error.
    std::map<NodeId, std::vector<NodeId>> orphans;
    for (NodeId node = 1; node <= n; ++node) {
      if (floating[static_cast<size_t>(node)]) continue;
      if (dc.find(node) == dc.find(kGround)) continue;
      orphans[dc.find(node)].push_back(node);
    }
    for (const auto& [root, nodes] : orphans) {
      const Device* isrc = nullptr;
      for (const NodeId node : nodes)
        if (isrc_at[static_cast<size_t>(node)] != nullptr)
          isrc = isrc_at[static_cast<size_t>(node)];
      if (isrc != nullptr) {
        add(Code::IsourceCutset,
            util::format("current source '%s' feeds nodes {%s} that have no "
                         "DC path to ground: KCL fixes their charge, not "
                         "their voltage",
                         isrc->name().c_str(), name_list(nl_, nodes).c_str()),
            isrc->name(), nl_.node_name(nodes.front()));
      } else {
        add(Code::NoDcPath,
            util::format("nodes {%s} reach ground only through capacitors "
                         "or controlled current sources; the DC operating "
                         "point is pinned by gmin alone",
                         name_list(nl_, nodes).c_str()),
            {}, nl_.node_name(nodes.front()));
      }
    }

    // W106: a node referenced by exactly one device terminal dead-ends.
    for (NodeId node = 1; node <= n; ++node) {
      if (term_refs[static_cast<size_t>(node)] != 1) continue;
      if (floating[static_cast<size_t>(node)]) continue;  // already E101
      add(Code::DanglingNode,
          util::format("node '%s' is referenced by a single device terminal "
                       "(dead end: no current can flow)",
                       nl_.node_name(node).c_str()),
          {}, nl_.node_name(node));
    }
  }

  void check_vsource_loops() {
    NodeSets vsets(nl_.num_nodes());
    for (const auto& dev : nl_.devices()) {
      const DeviceKind kind = dev->kind();
      if (kind != DeviceKind::VoltageSource && kind != DeviceKind::Vcvs)
        continue;
      const std::vector<NodeId> terms = dev->terminals();
      if (terms.size() != 2 || terms[0] == terms[1]) continue;  // E110 case
      if (!vsets.unite(terms[0], terms[1])) {
        add(Code::VsourceLoop,
            util::format("voltage source '%s' closes a loop of ideal "
                         "voltage sources between '%s' and '%s': KVL around "
                         "the loop is overdetermined",
                         dev->name().c_str(),
                         nl_.node_name(terms[0]).c_str(),
                         nl_.node_name(terms[1]).c_str()),
            dev->name());
      }
    }
  }

  /// E105: capture the union-of-modes MNA pattern exactly as MnaSystem
  /// does (minus the gmin diagonal, which would mask missing KCL rows) and
  /// test its structural rank with an augmenting-path bipartite matching.
  /// Pattern rank < unknown count means some permutation-free zero pivot
  /// is unavoidable: the deck cannot be solved as written.
  void check_singular_pattern() {
    const int num_nodes = nl_.num_nodes();
    int branches = 0;
    for (const auto& dev : nl_.devices()) {
      dev->set_branch_base(branches);
      branches += dev->num_branches();
    }
    const size_t n = static_cast<size_t>(num_nodes + branches);
    if (n == 0) return;

    numeric::SparseMatrix pattern(n);
    numeric::Vector x0(n, 0.0);
    numeric::Vector res_scratch(n, 0.0);
    for (const circuit::AnalysisMode mode :
         {circuit::AnalysisMode::DcOp, circuit::AnalysisMode::TransientBe,
          circuit::AnalysisMode::TransientTrap}) {
      circuit::StampContext ctx;
      ctx.mode = mode;
      ctx.dt = 1e-9;  // any positive dt: only the structure matters
      ctx.x = &x0;
      ctx.num_nodes = num_nodes;
      circuit::Stamper stamper(pattern, res_scratch, num_nodes);
      for (const auto& dev : nl_.devices()) dev->stamp(ctx, stamper);
    }
    pattern.finalize();

    const std::vector<size_t>& row_ptr = pattern.row_ptr();
    const std::vector<size_t>& col_idx = pattern.col_idx();
    std::vector<int> match_col(n, -1);  // column -> matched row
    std::vector<char> visited(n, 0);
    const std::function<bool(size_t)> augment = [&](size_t row) {
      for (size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        const size_t col = col_idx[k];
        if (visited[col]) continue;
        visited[col] = 1;
        if (match_col[col] < 0 || augment(static_cast<size_t>(match_col[col]))) {
          match_col[col] = static_cast<int>(row);
          return true;
        }
      }
      return false;
    };

    std::vector<size_t> unmatched;
    for (size_t row = 0; row < n; ++row) {
      std::fill(visited.begin(), visited.end(), 0);
      if (!augment(row)) unmatched.push_back(row);
    }
    if (unmatched.empty()) return;

    constexpr size_t kMaxReported = 8;
    for (size_t i = 0; i < unmatched.size() && i < kMaxReported; ++i) {
      const size_t row = unmatched[i];
      std::string device;
      std::string node;
      std::string what;
      if (row < static_cast<size_t>(num_nodes)) {
        node = nl_.node_name(static_cast<NodeId>(row) + 1);
        what = "the KCL row of node '" + node + "'";
      } else {
        const int b = static_cast<int>(row) - num_nodes;
        for (const auto& dev : nl_.devices()) {
          if (dev->branch_base() <= b &&
              b < dev->branch_base() + dev->num_branches())
            device = dev->name();
        }
        what = "the branch row of device '" + device + "'";
      }
      add(Code::SingularPattern,
          util::format("MNA pattern is structurally singular (rank %zu of "
                       "%zu): %s has no assignable pivot",
                       n - unmatched.size(), n, what.c_str()),
          device, node);
    }
  }

  Netlist& nl_;
  const LintOptions& opt_;
  VerifyReport report_;
};

}  // namespace

VerifyReport NetlistLinter::lint(circuit::Netlist& netlist) const {
  return LintPass(netlist, opt_).run();
}

VerifyReport lint_injection(const circuit::Netlist& netlist,
                            const std::string& resistor_name,
                            circuit::NodeId expect_a,
                            circuit::NodeId expect_b) {
  VerifyReport report;
  const Device* dev = netlist.find_device(resistor_name);
  if (dev == nullptr) {
    report.add({Code::DefectUnknownDevice, Severity::Error,
                "defect placeholder '" + resistor_name +
                    "' does not exist in the netlist",
                resistor_name, {}, 0});
    return report;
  }
  if (dev->kind() != DeviceKind::Resistor) {
    report.add({Code::DefectNotResistor, Severity::Error,
                util::format("defect placeholder '%s' is a %s, not a resistor",
                             resistor_name.c_str(), to_string(dev->kind())),
                resistor_name, {}, 0});
    return report;
  }
  const auto& res = static_cast<const circuit::Resistor&>(*dev);
  const NodeId lo = std::min(res.a(), res.b());
  const NodeId hi = std::max(res.a(), res.b());
  if (lo != std::min(expect_a, expect_b) || hi != std::max(expect_a, expect_b)) {
    report.add({Code::DefectWrongNodes, Severity::Error,
                util::format("defect '%s' spans (%s, %s) but the intended "
                             "path is (%s, %s)",
                             resistor_name.c_str(),
                             netlist.node_name(res.a()).c_str(),
                             netlist.node_name(res.b()).c_str(),
                             netlist.node_name(expect_a).c_str(),
                             netlist.node_name(expect_b).c_str()),
                resistor_name, netlist.node_name(res.a()), 0});
  }
  const double ohms = res.resistance();
  if (!std::isfinite(ohms) || ohms <= 0.0) {
    report.add({Code::DefectBadValue, Severity::Error,
                util::format("defect '%s' carries a non-physical resistance "
                             "%g Ohm",
                             resistor_name.c_str(), ohms),
                resistor_name, {}, 0});
  }
  return report;
}

}  // namespace dramstress::verify
