// Wire protocol of the campaign service: a deliberately small HTTP/1.1
// subset over a local stream socket.
//
// HTTP because every language can speak it to the daemon with no client
// library; a subset because the daemon only ever needs `METHOD target`
// plus a JSON body -- no chunked transfer, no continuation lines, no
// pipelining (one request per connection, like the CGI-era servers the
// protocol tests torture).
//
// The parser is incremental (feed() bytes as they arrive off the socket)
// and total: *no* input can make it throw, overrun a limit unchecked, or
// consume unbounded memory.  Malformed input is rejected through the same
// diagnostics engine as campaign specs -- docs/LINT.md catalogues the
// codes:
//
//   E320  framing: bad request line, header without ':', bare CR, junk
//         Content-Length, unsupported transfer encoding
//   E321  limits: request line / header block / body / header count over
//         the configured ceiling (the slow-loris and zip-bomb guard)
//   E322  truncation: the peer stopped (EOF or read timeout) mid-request;
//         raised by the socket layer via `fail(...)`
//   E323  semantics: well-formed request the daemon cannot serve (unknown
//         route, wrong method, bad body) -- raised by the router
//
// Diagnostics carry the 1-based *request line number* in the Diagnostic
// `spice_line` slot (the renderer just says "line N"), so a client sees
// "error[E320] line 3: header line has no ':'" against its own bytes.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "verify/diagnostic.hpp"

namespace dramstress::service {

/// Hard ceilings of the request parser.  Defaults fit the service's real
/// traffic (campaign specs are a few KB) with headroom; every one of them
/// is load-bearing in the protocol fuzz tests.
struct ProtocolLimits {
  size_t max_request_line = 4096;
  size_t max_header_bytes = 16 * 1024;  // header block incl. request line
  int max_headers = 64;
  size_t max_body_bytes = 4ull << 20;
};

/// One parsed request.  Header names are lower-cased (HTTP is
/// case-insensitive there); values are trimmed of surrounding blanks.
struct Request {
  std::string method;
  std::string target;  // origin-form, e.g. "/status/1a2b..."
  std::map<std::string, std::string> headers;
  std::string body;
};

struct Response {
  int status = 200;
  std::string body;  // JSON document (the service speaks nothing else)
};

const char* status_reason(int status);  // 200 -> "OK", 400 -> "Bad Request"

/// Serialize `r` as an HTTP/1.1 response with Content-Length framing.
std::string serialize_response(const Response& r);

/// Serialize `req` as an HTTP/1.1 request (the client side).  A body gets
/// a Content-Length header automatically.
std::string serialize_request(const Request& req);

/// JSON error body carrying every diagnostic of `report`:
/// {"error": "<first error rendered>", "diagnostics": ["...", ...]}.
std::string error_body(const verify::VerifyReport& report);

/// Incremental, total request parser.  Feed raw bytes; the parser stops
/// consuming at the first violation and never throws on input.
class RequestParser {
public:
  enum class State { NeedMore, Done, Failed };

  explicit RequestParser(ProtocolLimits limits = {});

  /// Consume `n` bytes.  Returns the state after consumption; once Done
  /// or Failed further feeds are no-ops (one request per connection).
  State feed(const char* data, size_t n);

  /// Record an externally detected failure (EOF / timeout mid-request)
  /// as an E322 and move to Failed.  No-op once Done/Failed.
  void fail_truncated(const std::string& why);

  State state() const { return state_; }
  const Request& request() const { return req_; }  // valid once Done
  const verify::VerifyReport& report() const { return report_; }

  /// HTTP status a failed parse maps to (400 framing/semantic, 413 too
  /// large, 408 timeout); 200 when not Failed.
  int http_status() const;

private:
  void fail(verify::Code code, int line, const std::string& message);
  bool parse_head();  // buffer_ holds the full head: parse it
  void finish_body();

  ProtocolLimits limits_;
  State state_ = State::NeedMore;
  bool in_body_ = false;
  size_t body_expected_ = 0;
  std::string buffer_;  // head bytes until blank line, then body bytes
  int head_lines_ = 0;  // lines in the head (for E32x line numbers)
  Request req_;
  verify::VerifyReport report_;
};

}  // namespace dramstress::service
