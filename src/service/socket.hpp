// Local stream transport of the campaign service: unix-domain sockets.
//
// Unix sockets rather than TCP because the daemon is a *local* service:
// no port allocation races in CI, no accidental network exposure, and
// filesystem permissions are the access control.  All I/O is
// poll()-bounded -- a peer that stops sending mid-request (the slow-loris
// case) costs one connection slot for `timeout_ms`, never a hung daemon.
#pragma once

#include <cstddef>
#include <string>

namespace dramstress::service {

/// RAII connection fd with timed, signal-safe reads and writes.
class Conn {
public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  Conn(Conn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  /// Read up to `n` bytes.  > 0 bytes read; 0 on orderly EOF; -1 when
  /// `timeout_ms` elapsed without a byte; throws ModelError on a socket
  /// error.
  long read_some(char* buf, size_t n, int timeout_ms);

  /// Write all of `bytes`; false when the peer vanished or the timeout
  /// elapsed mid-write (the response is abandoned, never half-retried).
  bool write_all(const std::string& bytes, int timeout_ms);

  bool valid() const { return fd_ >= 0; }

private:
  int fd_ = -1;
};

/// Listening unix socket.  Construction unlinks a stale socket file,
/// binds and listens; destruction closes and unlinks.
class UnixListener {
public:
  explicit UnixListener(std::string path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accept one connection; invalid Conn on timeout.  Thread-safe: the
  /// service's connection threads all accept on the shared fd.
  Conn accept_conn(int timeout_ms);

  const std::string& path() const { return path_; }

private:
  int fd_ = -1;
  std::string path_;
};

/// Connect to a service socket; throws ModelError when nothing listens.
Conn unix_connect(const std::string& path, int timeout_ms);

}  // namespace dramstress::service
