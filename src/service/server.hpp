// The campaign service daemon (`dramstress serve`, docs/SERVICE.md).
//
// A long-running process that accepts campaign specs from many clients
// over a unix socket, schedules their work-unit DAGs onto one shared
// worker pool (campaign/scheduler.hpp) and answers repeated work from the
// shared result cache (campaign/cache_index.hpp) in microseconds without
// touching the simulator.
//
// Routes (one JSON request per connection; protocol.hpp):
//   POST /submit    {"client": "...", "spec": {...}}  -> session status
//   GET  /status                                      -> daemon + sessions
//   GET  /status/<id>                                 -> one session
//   GET  /report/<id>                                 -> report.json bytes
//   GET  /metrics                                     -> obs run manifest
//   POST /gc        {"max_bytes": N}                  -> disk LRU eviction
//   POST /shutdown                                    -> graceful drain
//
// Sessions are content-addressed: id = FNV-1a(client ":" spec_json), so a
// resubmit -- same client, same spec, crashed daemon or not -- lands on
// the same run directory and resumes from its journal instead of starting
// over.  Kill-and-resume therefore yields byte-identical report.json, the
// same guarantee `campaign run --resume` gives a single process.
//
// Shutdown is a graceful drain: /shutdown stops new submits, running
// campaigns finish and write their reports, buffered cache-usage records
// are flushed, then the socket is closed.  A SIGKILL instead loses
// nothing but in-flight compute: journals and the content-addressed
// store carry every completed unit across the restart.
#pragma once

#include <memory>
#include <string>

#include "dram/technology.hpp"
#include "service/protocol.hpp"

namespace dramstress::service {

struct ServerOptions {
  std::string socket_path;  // unix socket to listen on
  std::string runs_dir;     // session run directories live under here
  std::string cache_dir;    // shared content-addressed result cache
  int workers = 0;          // scheduler pool size; 0 = default_threads()
  int io_threads = 4;       // concurrent connection handlers
  size_t cache_mem_bytes = 64ull << 20;  // memory tier budget
  /// Per-read socket timeout: a peer that stalls longer mid-request gets
  /// an E322 response and the connection back (the slow-loris bound).
  int read_timeout_ms = 2000;
  ProtocolLimits limits;
};

class Server {
public:
  Server(const dram::TechnologyParams& tech, ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until shutdown() (or POST /shutdown) -- then drain: finish
  /// every accepted session, flush the cache usage journal, close the
  /// socket.  Blocking; run it on the main thread (the CLI) or a
  /// dedicated one (tests).
  void serve();

  /// Request shutdown from any thread; serve() returns after the drain.
  void shutdown();

  /// Route one parsed request (exposed for tests: the full request->
  /// response mapping without a socket).
  Response handle(const Request& req);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dramstress::service
