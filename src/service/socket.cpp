#include "service/socket.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace dramstress::service {

namespace {

using dramstress::ModelError;

std::string errno_text() { return std::strerror(errno); }

/// poll() one fd for `events`; true when ready, false on timeout.
/// Retries EINTR against the original deadline semantics (coarse: each
/// retry restarts the timeout, acceptable for a local service).
bool wait_fd(int fd, short events, int timeout_ms) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) throw ModelError("service: poll: " + errno_text());
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ModelError("service: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

long Conn::read_some(char* buf, size_t n, int timeout_ms) {
  if (!wait_fd(fd_, POLLIN, timeout_ms)) return -1;
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<long>(r);
    if (errno == EINTR) continue;
    throw ModelError("service: recv: " + errno_text());
  }
}

bool Conn::write_all(const std::string& bytes, int timeout_ms) {
  size_t off = 0;
  while (off < bytes.size()) {
    if (!wait_fd(fd_, POLLOUT, timeout_ms)) return false;
    const ssize_t r = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (r >= 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return false;
    throw ModelError("service: send: " + errno_text());
  }
  return true;
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw ModelError("service: socket: " + errno_text());
  // A stale socket file from a killed daemon blocks bind(); the service
  // owns its socket path, so unconditionally unlinking is correct.
  ::unlink(path_.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw ModelError("service: bind " + path_ + ": " + why);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string why = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw ModelError("service: listen " + path_ + ": " + why);
  }
  // Non-blocking listener: several threads accept on this fd, and a
  // blocking accept() would hang the losers of the race poll() wakes.
  ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL, 0) | O_NONBLOCK);
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

Conn UnixListener::accept_conn(int timeout_ms) {
  if (!wait_fd(fd_, POLLIN, timeout_ms)) return Conn(-1);
  for (;;) {
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c >= 0) return Conn(c);
    if (errno == EINTR) continue;
    // Raced another accepting thread to a lone connection: not an error.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
      return Conn(-1);
    throw ModelError("service: accept: " + errno_text());
  }
}

Conn unix_connect(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ModelError("service: socket: " + errno_text());
  (void)timeout_ms;  // local connect() either succeeds or fails at once
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    throw ModelError("service: connect " + path + ": " + why +
                     " (is the daemon running?)");
  }
  return Conn(fd);
}

}  // namespace dramstress::service
