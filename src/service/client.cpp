#include "service/client.hpp"

#include <chrono>
#include <thread>

#include "service/socket.hpp"
#include "util/error.hpp"

namespace dramstress::service {

using dramstress::ModelError;

namespace {

/// Read until EOF or timeout.  The daemon closes after its response
/// (Connection: close), so EOF is the normal end of an exchange.
std::string read_until_eof(Conn& conn, int timeout_ms) {
  std::string bytes;
  char buf[4096];
  for (;;) {
    const long r = conn.read_some(buf, sizeof(buf), timeout_ms);
    if (r <= 0) break;  // EOF or stalled daemon: return what arrived
    bytes.append(buf, static_cast<size_t>(r));
  }
  return bytes;
}

}  // namespace

Response parse_response(const std::string& bytes) {
  const size_t head_end = bytes.find("\r\n\r\n");
  if (head_end == std::string::npos)
    throw ModelError("service: malformed response (no header/body split)");
  const size_t line_end = bytes.find("\r\n");
  const std::string status_line = bytes.substr(0, line_end);
  // "HTTP/1.1 NNN Reason"
  const size_t sp = status_line.find(' ');
  if (status_line.rfind("HTTP/1.", 0) != 0 || sp == std::string::npos ||
      status_line.size() < sp + 4)
    throw ModelError("service: malformed response status line '" +
                     status_line + "'");
  Response r;
  r.status = std::stoi(status_line.substr(sp + 1, 3));
  r.body = bytes.substr(head_end + 4);
  // Trim to Content-Length when present (EOF framing otherwise).
  const size_t cl = bytes.find("Content-Length:");
  if (cl != std::string::npos && cl < head_end) {
    const size_t eol = bytes.find("\r\n", cl);
    const std::string len = bytes.substr(cl + 15, eol - cl - 15);
    const size_t n = static_cast<size_t>(std::stoll(len));
    if (r.body.size() > n) r.body.resize(n);
  }
  return r;
}

Response request(const std::string& socket_path, const Request& req,
                 int timeout_ms) {
  Conn conn = unix_connect(socket_path, timeout_ms);
  if (!conn.write_all(serialize_request(req), timeout_ms))
    throw ModelError("service: daemon went away mid-request");
  const std::string bytes = read_until_eof(conn, timeout_ms);
  if (bytes.empty())
    throw ModelError("service: daemon closed without a response");
  return parse_response(bytes);
}

std::string raw_exchange(const std::string& socket_path,
                         const std::string& bytes, int timeout_ms,
                         int pause_ms) {
  Conn conn = unix_connect(socket_path, timeout_ms);
  if (pause_ms > 0 && bytes.size() > 1) {
    const size_t half = bytes.size() / 2;
    if (!conn.write_all(bytes.substr(0, half), timeout_ms)) return "";
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    // The daemon may already have timed the read out and responded; a
    // failed second half is part of the scenario, not an error.
    (void)conn.write_all(bytes.substr(half), timeout_ms);
  } else {
    if (!conn.write_all(bytes, timeout_ms)) return "";
  }
  return read_until_eof(conn, timeout_ms);
}

}  // namespace dramstress::service
