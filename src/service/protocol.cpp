#include "service/protocol.hpp"

#include <algorithm>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace dramstress::service {

namespace util = dramstress::util;

namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Printable ASCII, no separators: the charset we accept for tokens
/// (method) and targets.  Everything else is framing junk.
bool token_ok(const std::string& s) {
  if (s.empty()) return false;
  for (const unsigned char c : s)
    if (c <= ' ' || c >= 0x7f) return false;
  return true;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize_response(const Response& r) {
  std::string out = util::format("HTTP/1.1 %d %s\r\n", r.status,
                                 status_reason(r.status));
  out += "Content-Type: application/json\r\n";
  out += util::format("Content-Length: %zu\r\n", r.body.size());
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

std::string serialize_request(const Request& req) {
  std::string out = req.method + " " + req.target + " HTTP/1.1\r\n";
  for (const auto& [k, v] : req.headers) out += k + ": " + v + "\r\n";
  if (!req.body.empty())
    out += util::format("Content-Length: %zu\r\n", req.body.size());
  out += "\r\n";
  out += req.body;
  return out;
}

std::string error_body(const verify::VerifyReport& report) {
  util::json::Writer w;
  w.begin_object();
  std::string first;
  for (const verify::Diagnostic& d : report.diagnostics())
    if (first.empty() && d.severity == verify::Severity::Error)
      first = d.str();
  if (first.empty() && !report.diagnostics().empty())
    first = report.diagnostics().front().str();
  w.key("error").value(first);
  w.key("diagnostics").begin_array();
  for (const verify::Diagnostic& d : report.diagnostics()) w.value(d.str());
  w.end_array();
  w.end_object();
  return w.str();
}

RequestParser::RequestParser(ProtocolLimits limits) : limits_(limits) {}

void RequestParser::fail(verify::Code code, int line,
                         const std::string& message) {
  verify::Diagnostic d;
  d.code = code;
  d.severity = verify::Severity::Error;
  d.message = message;
  d.spice_line = line;
  report_.add(d);
  state_ = State::Failed;
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void RequestParser::fail_truncated(const std::string& why) {
  if (state_ != State::NeedMore) return;
  fail(verify::Code::ProtoTimeout, std::max(1, head_lines_ + 1),
       "request truncated: " + why);
}

int RequestParser::http_status() const {
  if (state_ != State::Failed) return 200;
  for (const verify::Diagnostic& d : report_.diagnostics()) {
    if (d.code == verify::Code::ProtoLimit) return 413;
    if (d.code == verify::Code::ProtoTimeout) return 408;
  }
  return 400;
}

RequestParser::State RequestParser::feed(const char* data, size_t n) {
  if (state_ != State::NeedMore) return state_;
  size_t off = 0;
  while (off < n && state_ == State::NeedMore) {
    if (!in_body_) {
      // Accumulate head bytes up to the blank line, bounded.
      const size_t room = limits_.max_header_bytes + 4 - buffer_.size();
      const size_t take = std::min(n - off, room);
      buffer_.append(data + off, take);
      off += take;
      const size_t end = buffer_.find("\r\n\r\n");
      if (end == std::string::npos) {
        if (buffer_.size() >= limits_.max_header_bytes + 4) {
          fail(verify::Code::ProtoLimit, 1,
               util::format("header block exceeds %zu bytes",
                            limits_.max_header_bytes));
        }
        continue;  // need more head bytes (or just failed)
      }
      const std::string extra = buffer_.substr(end + 4);
      buffer_.resize(end + 2);  // keep one trailing CRLF for line splits
      if (!parse_head()) continue;  // failed: diagnostics already added
      in_body_ = true;
      buffer_ = extra;
      if (buffer_.size() > body_expected_) {
        fail(verify::Code::ProtoFraming, head_lines_ + 1,
             "bytes past the declared Content-Length");
        continue;
      }
      finish_body();
    } else {
      const size_t want = body_expected_ - buffer_.size();
      const size_t take = std::min(n - off, want);
      buffer_.append(data + off, take);
      off += take;
      if (off < n && buffer_.size() == body_expected_) {
        fail(verify::Code::ProtoFraming, head_lines_ + 1,
             "bytes past the declared Content-Length");
        continue;
      }
      finish_body();
    }
  }
  return state_;
}

void RequestParser::finish_body() {
  if (buffer_.size() < body_expected_) return;  // still NeedMore
  req_.body = std::move(buffer_);
  buffer_.clear();
  state_ = State::Done;
}

bool RequestParser::parse_head() {
  // buffer_ = request line + header lines, each "\r\n"-terminated.
  int lineno = 0;
  size_t pos = 0;
  bool saw_content_length = false;
  while (pos < buffer_.size()) {
    const size_t eol = buffer_.find("\r\n", pos);
    if (eol == std::string::npos) break;  // trailing CRLF consumed above
    const std::string line = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    ++lineno;
    head_lines_ = lineno;
    if (line.find('\r') != std::string::npos ||
        line.find('\n') != std::string::npos) {
      fail(verify::Code::ProtoFraming, lineno, "bare CR in header line");
      return false;
    }
    if (lineno == 1) {
      if (line.size() > limits_.max_request_line) {
        fail(verify::Code::ProtoLimit, 1,
             util::format("request line exceeds %zu bytes",
                          limits_.max_request_line));
        return false;
      }
      const size_t sp1 = line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          line.find(' ', sp2 + 1) != std::string::npos) {
        fail(verify::Code::ProtoFraming, 1,
             "request line is not 'METHOD target HTTP/1.1'");
        return false;
      }
      req_.method = line.substr(0, sp1);
      req_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = line.substr(sp2 + 1);
      if (!token_ok(req_.method) || !token_ok(req_.target)) {
        fail(verify::Code::ProtoFraming, 1,
             "method or target holds control or non-ASCII bytes");
        return false;
      }
      if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        fail(verify::Code::ProtoFraming, 1,
             "unsupported protocol version '" + version + "'");
        return false;
      }
      if (req_.target[0] != '/') {
        fail(verify::Code::ProtoFraming, 1,
             "target must be origin-form (start with '/')");
        return false;
      }
      continue;
    }
    // Header line.
    if (static_cast<int>(req_.headers.size()) >= limits_.max_headers) {
      fail(verify::Code::ProtoLimit, lineno,
           util::format("more than %d header lines", limits_.max_headers));
      return false;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      fail(verify::Code::ProtoFraming, lineno, "header line has no ':'");
      return false;
    }
    const std::string name = lower(line.substr(0, colon));
    if (!token_ok(name) || name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      fail(verify::Code::ProtoFraming, lineno,
           "header name holds blanks or control bytes");
      return false;
    }
    const std::string value = trim(line.substr(colon + 1));
    if (name == "content-length" && saw_content_length &&
        req_.headers["content-length"] != value) {
      fail(verify::Code::ProtoFraming, lineno,
           "conflicting Content-Length headers");
      return false;
    }
    if (name == "content-length") saw_content_length = true;
    req_.headers[name] = value;  // last wins otherwise (harmless here)
  }
  if (req_.method.empty()) {
    fail(verify::Code::ProtoFraming, 1, "empty request head");
    return false;
  }
  if (req_.headers.count("transfer-encoding") != 0) {
    fail(verify::Code::ProtoFraming, head_lines_,
         "chunked transfer encoding is not supported; send "
         "Content-Length");
    return false;
  }
  body_expected_ = 0;
  if (saw_content_length) {
    const std::string& cl = req_.headers["content-length"];
    if (cl.empty() || cl.find_first_not_of("0123456789") !=
                          std::string::npos ||
        cl.size() > 12) {
      fail(verify::Code::ProtoFraming, head_lines_,
           "Content-Length is not a plain decimal byte count");
      return false;
    }
    body_expected_ = static_cast<size_t>(std::stoll(cl));
    if (body_expected_ > limits_.max_body_bytes) {
      fail(verify::Code::ProtoLimit, head_lines_,
           util::format("declared body of %zu bytes exceeds the %zu-byte "
                        "limit",
                        body_expected_, limits_.max_body_bytes));
      return false;
    }
  }
  return true;
}

}  // namespace dramstress::service
