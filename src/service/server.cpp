#include "service/server.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/cache_index.hpp"
#include "campaign/plan.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "dram/column.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "service/socket.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace dramstress::service {

namespace fs = std::filesystem;
namespace util = dramstress::util;
using dramstress::ModelError;

namespace {

/// One-diagnostic E323 response: a well-formed request the daemon cannot
/// serve (unknown route, wrong method, missing body field).
Response semantic_error(int status, const std::string& message) {
  verify::VerifyReport report;
  verify::Diagnostic d;
  d.code = verify::Code::ProtoSemantic;
  d.severity = verify::Severity::Error;
  d.message = message;
  d.spice_line = 1;
  report.add(d);
  return Response{status, error_body(report)};
}

void append_session(util::json::Writer& w,
                    const campaign::SessionStatus& st) {
  w.begin_object();
  w.key("id").value(st.id);
  w.key("client").value(st.client);
  w.key("campaign").value(st.campaign);
  w.key("state").value(st.state);
  if (!st.error.empty()) w.key("error").value(st.error);
  w.key("total").value(st.total);
  w.key("done").value(st.done);
  w.key("cached").value(st.cached);
  w.key("quarantined").value(st.quarantined);
  w.key("skipped").value(st.skipped);
  w.key("retried").value(st.retried);
  w.key("pending").value(st.pending);
  w.key("finished").value(st.finished);
  if (!st.report_path.empty()) w.key("report").value(st.report_path);
  if (!st.failure_report_path.empty())
    w.key("failure_report").value(st.failure_report_path);
  w.end_object();
}

std::string session_body(const campaign::SessionStatus& st) {
  util::json::Writer w;
  append_session(w, st);
  return w.str();
}

/// cv over util::Mutex; opt out of the analysis locally (see scheduler).
void cv_wait_for(std::condition_variable_any& cv, util::Mutex& mu,
                 std::chrono::milliseconds d) DS_NO_THREAD_SAFETY_ANALYSIS {
  cv.wait_for(mu, d);
}

}  // namespace

struct Server::Impl {
  dram::TechnologyParams tech;
  ServerOptions opt;
  campaign::SharedCache cache;
  campaign::Scheduler sched;
  UnixListener listener;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();

  util::Mutex mu;
  std::condition_variable_any cv_shutdown;
  bool draining DS_GUARDED_BY(mu) = false;  // /shutdown or shutdown() seen
  bool closed DS_GUARDED_BY(mu) = false;    // drain done; io threads exit

  static campaign::SharedCacheOptions cache_options(
      const ServerOptions& o) {
    campaign::SharedCacheOptions co;
    co.max_memory_bytes = o.cache_mem_bytes;
    return co;
  }

  static campaign::SchedulerOptions sched_options(const ServerOptions& o) {
    campaign::SchedulerOptions so;
    so.workers = o.workers;
    return so;
  }

  Impl(const dram::TechnologyParams& t, ServerOptions o)
      : tech(t),
        opt(std::move(o)),
        cache(opt.cache_dir, cache_options(opt)),
        sched(tech, &cache, sched_options(opt)),
        listener(opt.socket_path) {
    std::error_code ec;
    fs::create_directories(opt.runs_dir, ec);
    if (ec)
      throw ModelError("service: cannot create " + opt.runs_dir + ": " +
                       ec.message());
  }

  bool is_draining() {
    util::MutexLock lock(mu);
    return draining;
  }

  void request_shutdown() {
    {
      util::MutexLock lock(mu);
      draining = true;
    }
    cv_shutdown.notify_all();
  }

  // --- routes -----------------------------------------------------------

  Response submit(const Request& req) {
    util::json::Value body;
    try {
      body = util::json::parse(req.body);
    } catch (const util::json::ParseError& e) {
      verify::VerifyReport report;
      verify::Diagnostic d;
      d.code = verify::Code::ProtoSemantic;
      d.severity = verify::Severity::Error;
      d.message = std::string("request body is not valid JSON: ") + e.what();
      d.spice_line = util::json::line_of(req.body, e.offset());
      report.add(d);
      return Response{400, error_body(report)};
    }
    if (!body.is_object())
      return semantic_error(400, "submit body must be a JSON object");
    std::string client = "default";
    if (const util::json::Value* c = body.find("client")) {
      if (!c->is_string() || c->string.empty())
        return semantic_error(400, "\"client\" must be a non-empty string");
      client = c->string;
    }
    const util::json::Value* spec_v = body.find("spec");
    if (spec_v == nullptr || !spec_v->is_object())
      return semantic_error(400, "submit body needs a \"spec\" object");

    // Canonical spec text: re-emitted through the byte-stable writer, so
    // the session id depends on spec *content*, not the client's
    // whitespace, and E30x line numbers refer to a shape the client can
    // reproduce by pretty-printing its own spec.
    util::json::Writer sw;
    util::json::append(sw, *spec_v);
    const std::string spec_text = sw.str();

    verify::VerifyReport report;
    std::optional<campaign::CampaignSpec> spec =
        campaign::parse_spec(spec_text, &report);
    if (!spec.has_value()) return Response{400, error_body(report)};

    campaign::KeyHasher h;
    h.feed(client);
    h.feed(spec_text);
    const std::string id = h.key().hex();
    const std::string run_dir = (fs::path(opt.runs_dir) / id).string();

    dram::DramColumn column(tech);
    campaign::CampaignPlan plan = campaign::expand(*spec, column);
    try {
      const campaign::SessionStatus st =
          sched.submit(client, std::move(plan), run_dir, id);
      obs::count("service.submit");
      return Response{202, session_body(st)};
    } catch (const ModelError& e) {
      return semantic_error(503, e.what());
    }
  }

  Response status_all() {
    const campaign::SchedulerStatus st = sched.status();
    const campaign::SharedCacheStats cs = cache.stats();
    util::json::Writer w;
    w.begin_object();
    w.key("workers").value(st.workers);
    w.key("accepting").value(st.accepting && !is_draining());
    w.key("dispatched").value(st.dispatched);
    w.key("deduplicated").value(st.deduplicated);
    w.key("cache").begin_object();
    w.key("mem_hits").value(cs.mem_hits);
    w.key("disk_hits").value(cs.disk_hits);
    w.key("misses").value(cs.misses);
    w.key("stores").value(cs.stores);
    w.key("evictions").value(cs.evictions);
    w.key("memory_bytes").value(cs.memory_bytes);
    w.key("memory_entries").value(cs.memory_entries);
    w.end_object();
    w.key("sessions").begin_array();
    for (const campaign::SessionStatus& s : st.sessions)
      append_session(w, s);
    w.end_array();
    w.end_object();
    return Response{200, w.str()};
  }

  Response status_one(const std::string& id) {
    const std::optional<campaign::SessionStatus> st = sched.session(id);
    if (!st.has_value())
      return semantic_error(404, "unknown session '" + id + "'");
    return Response{200, session_body(*st)};
  }

  Response report_of(const std::string& id) {
    const std::optional<campaign::SessionStatus> st = sched.session(id);
    if (!st.has_value())
      return semantic_error(404, "unknown session '" + id + "'");
    if (!st->finished || st->report_path.empty())
      return semantic_error(
          409, "session '" + id + "' has no report yet (state: " +
                   st->state + ")");
    std::ifstream f(st->report_path);
    if (!f.good())
      return semantic_error(500,
                            "cannot read report " + st->report_path);
    std::ostringstream text;
    text << f.rdbuf();
    return Response{200, text.str()};
  }

  Response metrics() {
    obs::ManifestInfo info;
    info.tool = "dramstress";
    info.command = "serve";
    info.settings_number["workers"] = sched.status().workers;
    info.settings_number["io_threads"] = opt.io_threads;
    const std::chrono::duration<double> up =
        std::chrono::steady_clock::now() - started;
    info.duration_s = up.count();
    return Response{200, obs::manifest_json(info, obs::metrics_snapshot())};
  }

  Response gc(const Request& req) {
    util::json::Value body;
    try {
      body = util::json::parse(req.body);
    } catch (const util::json::ParseError& e) {
      return semantic_error(400, std::string("gc body is not valid JSON: ") +
                                     e.what());
    }
    const util::json::Value* mb =
        body.is_object() ? body.find("max_bytes") : nullptr;
    if (mb == nullptr || !mb->is_number() || mb->number < 0)
      return semantic_error(
          400, "gc body needs a non-negative \"max_bytes\" number");
    verify::VerifyReport report;
    const int removed =
        cache.gc_lru(static_cast<size_t>(mb->number), &report);
    util::json::Writer w;
    w.begin_object();
    w.key("removed").value(removed);
    w.key("diagnostics").begin_array();
    for (const verify::Diagnostic& d : report.diagnostics())
      w.value(d.str());
    w.end_array();
    w.end_object();
    return Response{200, w.str()};
  }

  Response handle(const Request& req) {
    obs::count("service.request");
    const std::string& t = req.target;
    if (t == "/submit")
      return req.method == "POST"
                 ? submit(req)
                 : semantic_error(405, "/submit wants POST");
    if (t == "/status")
      return req.method == "GET"
                 ? status_all()
                 : semantic_error(405, "/status wants GET");
    if (t.rfind("/status/", 0) == 0)
      return req.method == "GET"
                 ? status_one(t.substr(8))
                 : semantic_error(405, "/status/<id> wants GET");
    if (t.rfind("/report/", 0) == 0)
      return req.method == "GET"
                 ? report_of(t.substr(8))
                 : semantic_error(405, "/report/<id> wants GET");
    if (t == "/metrics")
      return req.method == "GET"
                 ? metrics()
                 : semantic_error(405, "/metrics wants GET");
    if (t == "/gc")
      return req.method == "POST" ? gc(req)
                                  : semantic_error(405, "/gc wants POST");
    if (t == "/shutdown") {
      if (req.method != "POST")
        return semantic_error(405, "/shutdown wants POST");
      request_shutdown();
      obs::count("service.shutdown");
      return Response{202, "{\"draining\": true}"};
    }
    return semantic_error(404, "unknown route '" + req.method + " " + t +
                                   "'");
  }

  // --- connection handling ----------------------------------------------

  void handle_conn(Conn conn) {
    RequestParser parser(opt.limits);
    char buf[4096];
    while (parser.state() == RequestParser::State::NeedMore) {
      const long r =
          conn.read_some(buf, sizeof(buf), opt.read_timeout_ms);
      if (r < 0) {
        parser.fail_truncated("peer stalled mid-request");
        obs::count("service.slow_loris");
        break;
      }
      if (r == 0) {
        parser.fail_truncated("connection closed mid-request");
        break;
      }
      parser.feed(buf, static_cast<size_t>(r));
    }
    Response resp;
    if (parser.state() == RequestParser::State::Done) {
      try {
        resp = handle(parser.request());
      } catch (const std::exception& e) {
        resp = semantic_error(500, std::string("internal error: ") +
                                       e.what());
      }
    } else {
      resp.status = parser.http_status();
      resp.body = error_body(parser.report());
      obs::count("service.bad_request");
    }
    conn.write_all(serialize_response(resp), opt.read_timeout_ms);
  }

  void io_loop() {
    for (;;) {
      {
        util::MutexLock lock(mu);
        if (closed) return;
      }
      Conn conn = listener.accept_conn(100);
      if (!conn.valid()) continue;
      try {
        handle_conn(std::move(conn));
      } catch (const std::exception&) {
        // A connection-level socket error costs that connection only.
        obs::count("service.conn_error");
      }
    }
  }

  void serve() {
    std::vector<std::thread> io;
    io.reserve(static_cast<size_t>(opt.io_threads));
    for (int i = 0; i < opt.io_threads; ++i)
      io.emplace_back([this] { io_loop(); });
    {
      util::MutexLock lock(mu);
      while (!draining)
        cv_wait_for(cv_shutdown, mu, std::chrono::milliseconds(200));
    }
    // Drain: no new submits (the scheduler refuses them), running
    // campaigns finish and write their reports, then the cache's buffered
    // usage records land on disk.  Status queries keep working throughout.
    sched.drain();
    cache.flush_usage();
    {
      util::MutexLock lock(mu);
      closed = true;
    }
    for (std::thread& t : io) t.join();
  }
};

Server::Server(const dram::TechnologyParams& tech, ServerOptions opt)
    : impl_(std::make_unique<Impl>(tech, std::move(opt))) {}

Server::~Server() = default;

void Server::serve() { impl_->serve(); }

void Server::shutdown() { impl_->request_shutdown(); }

Response Server::handle(const Request& req) { return impl_->handle(req); }

}  // namespace dramstress::service
