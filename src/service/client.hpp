// Client side of the campaign service protocol: one request, one
// response, over a fresh unix-socket connection (the daemon speaks one
// request per connection; see protocol.hpp).
//
// Used by the CLI's `submit` / `watch` / `shutdown` verbs and by the
// service tests; the raw-bytes variant lets the protocol fuzz tests send
// deliberately malformed frames through the same transport.
#pragma once

#include <string>

#include "service/protocol.hpp"

namespace dramstress::service {

/// Send `req` to the daemon at `socket_path` and return its response.
/// Throws ModelError when the daemon is unreachable or the connection
/// dies mid-exchange; a protocol-level rejection is a *response* (4xx
/// status, E32x diagnostics in the body), not a throw.
Response request(const std::string& socket_path, const Request& req,
                 int timeout_ms = 5000);

/// Send raw bytes (possibly malformed on purpose) and return the
/// daemon's raw response bytes (empty when the daemon just closed).
/// `pause_ms` > 0 sleeps between the two halves of the payload -- the
/// slow-loris shape the protocol tests drive.
std::string raw_exchange(const std::string& socket_path,
                         const std::string& bytes, int timeout_ms = 5000,
                         int pause_ms = 0);

/// Parse an HTTP/1.1 response off the wire bytes (status line + headers +
/// body; Content-Length-framed or EOF-delimited).  Throws ModelError on
/// bytes that are not a response -- the daemon always sends well-formed
/// responses, so this is a client-side invariant, not input validation.
Response parse_response(const std::string& bytes);

}  // namespace dramstress::service
