// Shmoo plots (paper Section 2).
//
// The traditional method the paper's approach replaces: choose two
// stresses, apply a test at every grid point, record pass/fail.  We
// simulate the Shmoo on the defect-injected column, which both provides
// the baseline experiment and demonstrates its cost (one full test
// simulation per grid point, with no visibility into *why* a point fails).
#pragma once

#include <string>
#include <vector>

#include "analysis/detection.hpp"
#include "defect/defect.hpp"
#include "stress/stress.hpp"

namespace dramstress::stress {

struct ShmooOptions {
  StressAxis x_axis = StressAxis::CycleTime;
  StressAxis y_axis = StressAxis::SupplyVoltage;
  std::vector<double> x_values;  // required
  std::vector<double> y_values;  // required
  dram::SimSettings settings;
  /// Worker threads for the x*y grid; 0 = util::default_threads().  The
  /// plot is bit-identical for every thread count.
  int threads = 0;
};

struct ShmooPlot {
  StressAxis x_axis{};
  StressAxis y_axis{};
  std::vector<double> x_values;
  std::vector<double> y_values;
  /// pass[iy][ix]: true if the test passed at that corner.
  std::vector<std::vector<bool>> pass;
  /// Number of full test simulations spent (the method's cost).
  long simulations = 0;

  /// Classic ASCII rendering: '.' pass, 'X' fail.
  std::string render() const;
  /// Fraction of failing corners.
  double fail_fraction() const;
};

/// Run the test `cond` for defect `d` at resistance `r_defect` over the
/// 2-D stress grid, starting from `base` for the unswept axes.
ShmooPlot shmoo_plot(dram::DramColumn& column, const defect::Defect& d,
                     double r_defect, const analysis::DetectionCondition& cond,
                     const StressCondition& base, const ShmooOptions& opt);

}  // namespace dramstress::stress
