// Stress specification (paper Section 2).
//
// Four operational parameters ("stresses", STs) are controlled at test
// time: clock cycle time, clock duty cycle, temperature and supply
// voltage.  A StressCondition is one operating corner; a stress
// combination (SC) is the corner produced by optimizing every axis.
#pragma once

#include <string>
#include <vector>

#include "dram/command.hpp"

namespace dramstress::stress {

/// One operating corner; identical to the DRAM operating conditions.
using StressCondition = dram::OperatingConditions;

enum class StressAxis { CycleTime, DutyCycle, Temperature, SupplyVoltage };

const char* to_string(StressAxis axis);

/// The axes in the order the paper optimizes them (Sections 4.1-4.3).
std::vector<StressAxis> default_axes();

/// Read/write one axis of a condition.
double get_axis(const StressCondition& sc, StressAxis axis);
void set_axis(StressCondition& sc, StressAxis axis, double value);

/// Unit string for an axis ("s", "", "C", "V").
const char* axis_unit(StressAxis axis);

/// Nominal corner of the paper: 60 ns, 50% duty, +27 C, 2.4 V.
StressCondition nominal_condition();

/// Candidate values probed around the nominal for each axis, nominal
/// included (temperature probes all three corners because the paper shows
/// its read effect can be non-monotonic).
std::vector<double> default_candidates(StressAxis axis,
                                       const StressCondition& nominal);

/// Human-readable corner description, e.g.
/// "tcyc=55 ns duty=0.50 T=+87 C Vdd=2.10 V".
std::string describe(const StressCondition& sc);

}  // namespace dramstress::stress
