// Stress optimization methodology (paper Section 4).
//
// For each stress axis:
//   1. probe the critical write and the sense threshold at the candidate
//      values (Sections 4.1-4.3);
//   2. if the two effects agree (or one is insensitive), the direction is
//      decided from the probes alone;
//   3. if they conflict -- as for the supply voltage, which stresses the
//      write up but relaxes the read -- fall back to computing the border
//      resistance at the conflicting candidates and keep the value that
//      maximizes the failing resistance range (the Section-3 criterion).
// Finally the combined stress combination (SC) is evaluated end-to-end:
// the result planes change shape, the border resistance drops, and a new
// detection condition may be required (Section 4.4 / Fig. 6).
#pragma once

#include "analysis/border.hpp"
#include "stress/probe.hpp"

namespace dramstress::util::json {
class Writer;
}

namespace dramstress::stress {

enum class DecisionMethod {
  KeptNominal,        // no candidate stressed either effect
  ProbedDirectly,     // write/read probes agreed
  BorderComparison,   // conflicting probes resolved by BR computation
};

const char* to_string(DecisionMethod method);

struct AxisDecision {
  StressAxis axis{};
  AxisProbe probe;
  double chosen_value = 0.0;
  DecisionMethod method = DecisionMethod::KeptNominal;
  /// Human-readable direction relative to nominal: "decrease", "increase",
  /// "keep" (for temperature, e.g. "increase" means hotter).
  std::string direction() const;
  double nominal_value() const;
};

struct OptimizerOptions {
  analysis::BorderOptions border;
  dram::SimSettings settings;
  double write_tol = 5e-3;  // V
  double read_tol = 10e-3;  // V
  /// Axes to optimize (defaults to all four).
  std::vector<StressAxis> axes = default_axes();
};

struct OptimizationResult {
  defect::Defect defect;
  StressCondition nominal_sc;
  StressCondition stressed_sc;
  analysis::BorderResult nominal_border;
  analysis::BorderResult stressed_border;
  std::vector<AxisDecision> decisions;

  /// The failing-range gain in decades (stressed minus nominal).
  double coverage_gain_decades() const;
};

/// Run the full Section-4 flow for one defect.  Throws ConvergenceError if
/// the defect has no detectable fault anywhere in its sweep range at the
/// nominal condition.
OptimizationResult optimize_stresses(dram::DramColumn& column,
                                     const defect::Defect& d,
                                     const StressCondition& nominal,
                                     const OptimizerOptions& opt);

/// Same with default options.  An overload instead of `opt = {}`: GCC 12
/// -O3 raises spurious -Wmaybe-uninitialized on the default-argument
/// temporary's vector members when its cleanup is inlined into the caller.
OptimizationResult optimize_stresses(dram::DramColumn& column,
                                     const defect::Defect& d,
                                     const StressCondition& nominal);

/// Mirror a detection condition to the other bitline side (w0 <-> w1,
/// r0 <-> r1): the paper notes true/comp behaviour is identical with data
/// inverted, which this library exploits to halve Table-1 compute.
analysis::DetectionCondition mirror_condition(
    const analysis::DetectionCondition& cond);

/// Emit `r` as a JSON object (nominal/stressed corners and borders, the
/// per-axis decisions, the coverage gain) -- the campaign cache payload.
void append_json(util::json::Writer& w, const OptimizationResult& r,
                 const defect::SweepRange& range);

}  // namespace dramstress::stress
