#include "stress/shmoo.hpp"

#include <sstream>

#include "defect/sweep_context.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dramstress::stress {

std::string ShmooPlot::render() const {
  std::ostringstream out;
  out << util::format("Shmoo: %s (rows) vs %s (cols); '.' pass, 'X' fail\n",
                      to_string(y_axis), to_string(x_axis));
  for (size_t iy = y_values.size(); iy-- > 0;) {
    out << util::pad_left(util::eng(y_values[iy], axis_unit(y_axis)), 12)
        << " |";
    for (size_t ix = 0; ix < x_values.size(); ++ix)
      out << (pass[iy][ix] ? " ." : " X");
    out << '\n';
  }
  out << std::string(14, ' ');
  for (size_t ix = 0; ix < x_values.size(); ++ix) out << "--";
  out << '\n' << std::string(14, ' ');
  out << util::eng(x_values.front(), axis_unit(x_axis)) << " .. "
      << util::eng(x_values.back(), axis_unit(x_axis)) << '\n';
  return out.str();
}

double ShmooPlot::fail_fraction() const {
  long fails = 0;
  long total = 0;
  for (const auto& row : pass)
    for (bool p : row) {
      ++total;
      fails += p ? 0 : 1;
    }
  return total == 0 ? 0.0 : static_cast<double>(fails) / total;
}

ShmooPlot shmoo_plot(dram::DramColumn& column, const defect::Defect& d,
                     double r_defect, const analysis::DetectionCondition& cond,
                     const StressCondition& base, const ShmooOptions& opt) {
  OBS_SPAN("shmoo.plot");
  require(!opt.x_values.empty() && !opt.y_values.empty(),
          "shmoo_plot: empty axis grid");
  ShmooPlot plot;
  plot.x_axis = opt.x_axis;
  plot.y_axis = opt.y_axis;
  plot.x_values = opt.x_values;
  plot.y_values = opt.y_values;

  // Flat pass/fail scratch (vector<bool> bit-packs, so concurrent writes
  // to neighbouring cells of one row would race); each grid point fills
  // exactly one byte.
  const size_t nx = opt.x_values.size();
  const size_t ny = opt.y_values.size();
  std::vector<unsigned char> pass_flat(nx * ny, 0);
  const dram::TechnologyParams tech = column.tech();
  util::parallel_for_state(
      nx * ny,
      [&] {
        return defect::SweepContext(tech, d, r_defect, base, opt.settings);
      },
      [&](defect::SweepContext& ctx, size_t idx) {
        StressCondition sc = base;
        set_axis(sc, opt.x_axis, opt.x_values[idx % nx]);
        set_axis(sc, opt.y_axis, opt.y_values[idx / nx]);
        const dram::ColumnSimulator sim(ctx.column(), sc, opt.settings);
        pass_flat[idx] =
            analysis::condition_fails(sim, d.side, cond) ? 0 : 1;
      },
      {.threads = opt.threads});

  plot.simulations = static_cast<long>(nx * ny);
  plot.pass.reserve(ny);
  for (size_t iy = 0; iy < ny; ++iy) {
    std::vector<bool> row(nx);
    for (size_t ix = 0; ix < nx; ++ix) row[ix] = pass_flat[iy * nx + ix] != 0;
    plot.pass.push_back(std::move(row));
  }
  return plot;
}

}  // namespace dramstress::stress
