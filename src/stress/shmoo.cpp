#include "stress/shmoo.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::stress {

std::string ShmooPlot::render() const {
  std::ostringstream out;
  out << util::format("Shmoo: %s (rows) vs %s (cols); '.' pass, 'X' fail\n",
                      to_string(y_axis), to_string(x_axis));
  for (size_t iy = y_values.size(); iy-- > 0;) {
    out << util::pad_left(util::eng(y_values[iy], axis_unit(y_axis)), 12)
        << " |";
    for (size_t ix = 0; ix < x_values.size(); ++ix)
      out << (pass[iy][ix] ? " ." : " X");
    out << '\n';
  }
  out << std::string(14, ' ');
  for (size_t ix = 0; ix < x_values.size(); ++ix) out << "--";
  out << '\n' << std::string(14, ' ');
  out << util::eng(x_values.front(), axis_unit(x_axis)) << " .. "
      << util::eng(x_values.back(), axis_unit(x_axis)) << '\n';
  return out.str();
}

double ShmooPlot::fail_fraction() const {
  long fails = 0;
  long total = 0;
  for (const auto& row : pass)
    for (bool p : row) {
      ++total;
      fails += p ? 0 : 1;
    }
  return total == 0 ? 0.0 : static_cast<double>(fails) / total;
}

ShmooPlot shmoo_plot(dram::DramColumn& column, const defect::Defect& d,
                     double r_defect, const analysis::DetectionCondition& cond,
                     const StressCondition& base, const ShmooOptions& opt) {
  require(!opt.x_values.empty() && !opt.y_values.empty(),
          "shmoo_plot: empty axis grid");
  ShmooPlot plot;
  plot.x_axis = opt.x_axis;
  plot.y_axis = opt.y_axis;
  plot.x_values = opt.x_values;
  plot.y_values = opt.y_values;

  defect::Injection inj(column, d, r_defect);
  for (double y : opt.y_values) {
    std::vector<bool> row;
    for (double x : opt.x_values) {
      StressCondition sc = base;
      set_axis(sc, opt.x_axis, x);
      set_axis(sc, opt.y_axis, y);
      dram::ColumnSimulator sim(column, sc, opt.settings);
      row.push_back(!analysis::condition_fails(sim, d.side, cond));
      ++plot.simulations;
    }
    plot.pass.push_back(std::move(row));
  }
  return plot;
}

}  // namespace dramstress::stress
