#include "stress/variation.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace dramstress::stress {

dram::TechnologyParams perturb_technology(const dram::TechnologyParams& base,
                                          const VariationSpec& spec,
                                          numeric::Rng& rng) {
  dram::TechnologyParams t = base;
  auto jitter_mos = [&](circuit::MosfetParams& p) {
    p.vth0 += rng.gauss(0.0, spec.vth_sigma);
    p.kp_tnom *= std::max(0.2, 1.0 + rng.gauss(0.0, spec.kp_rel_sigma));
  };
  jitter_mos(t.access);
  jitter_mos(t.sense_n);
  jitter_mos(t.sense_p);
  jitter_mos(t.precharge);
  jitter_mos(t.wdriver);
  jitter_mos(t.outbuf_n);
  jitter_mos(t.outbuf_p);
  t.cs *= std::max(0.2, 1.0 + rng.gauss(0.0, spec.cs_rel_sigma));
  t.cbl *= std::max(0.2, 1.0 + rng.gauss(0.0, spec.cbl_rel_sigma));
  t.cell_leak.is_tnom *=
      std::max(0.05, 1.0 + rng.gauss(0.0, spec.leak_rel_sigma));
  t.vref_offset += rng.gauss(0.0, spec.vref_sigma);
  return t;
}

double BorderDistribution::mean() const {
  require(!borders.empty(), "BorderDistribution: no samples");
  double acc = 0.0;
  for (double b : borders) acc += b;
  return acc / static_cast<double>(borders.size());
}

double BorderDistribution::stddev() const {
  if (borders.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double b : borders) acc += (b - m) * (b - m);
  return std::sqrt(acc / static_cast<double>(borders.size() - 1));
}

double BorderDistribution::min() const {
  require(!borders.empty(), "BorderDistribution: no samples");
  return *std::min_element(borders.begin(), borders.end());
}

double BorderDistribution::max() const {
  require(!borders.empty(), "BorderDistribution: no samples");
  return *std::max_element(borders.begin(), borders.end());
}

BorderDistribution border_distribution(const defect::Defect& d,
                                       const StressCondition& sc,
                                       const analysis::DetectionCondition& cond,
                                       const dram::TechnologyParams& base,
                                       const VariationOptions& opt) {
  OBS_SPAN("variation.distribution");
  require(opt.samples >= 1, "border_distribution: need >= 1 sample");
  BorderDistribution dist;
  const auto range = defect::default_sweep_range(d.kind);

  // Draw every technology sample serially from the single seeded stream
  // (cheap), then fan the expensive border searches out over the pool.
  // Each sample writes its own slot; the in-order aggregation below keeps
  // the distribution identical for every thread count.
  numeric::Rng rng(opt.seed);
  std::vector<dram::TechnologyParams> techs;
  techs.reserve(static_cast<size_t>(opt.samples));
  for (int s = 0; s < opt.samples; ++s)
    techs.push_back(perturb_technology(base, opt.spec, rng));

  std::vector<std::optional<double>> borders(techs.size());
  util::parallel_for(
      techs.size(),
      [&](size_t s) {
        dram::DramColumn column(techs[s]);
        dram::ColumnSimulator sim(column, sc, opt.settings);
        const analysis::BorderResult br = analysis::find_border_resistance(
            column, d, sim, cond, range, opt.border);
        borders[s] = br.br;
      },
      {.threads = opt.threads});

  for (const std::optional<double>& b : borders) {
    if (b.has_value())
      dist.borders.push_back(*b);
    else
      ++dist.no_fault_samples;
  }
  return dist;
}

}  // namespace dramstress::stress
