#include "stress/stress.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::stress {

const char* to_string(StressAxis axis) {
  switch (axis) {
    case StressAxis::CycleTime: return "tcyc";
    case StressAxis::DutyCycle: return "duty";
    case StressAxis::Temperature: return "T";
    case StressAxis::SupplyVoltage: return "Vdd";
  }
  return "?";
}

std::vector<StressAxis> default_axes() {
  return {StressAxis::CycleTime, StressAxis::DutyCycle,
          StressAxis::Temperature, StressAxis::SupplyVoltage};
}

double get_axis(const StressCondition& sc, StressAxis axis) {
  switch (axis) {
    case StressAxis::CycleTime: return sc.tcyc;
    case StressAxis::DutyCycle: return sc.duty;
    case StressAxis::Temperature: return sc.temp_c;
    case StressAxis::SupplyVoltage: return sc.vdd;
  }
  throw ModelError("get_axis: unknown axis");
}

void set_axis(StressCondition& sc, StressAxis axis, double value) {
  switch (axis) {
    case StressAxis::CycleTime: sc.tcyc = value; return;
    case StressAxis::DutyCycle: sc.duty = value; return;
    case StressAxis::Temperature: sc.temp_c = value; return;
    case StressAxis::SupplyVoltage: sc.vdd = value; return;
  }
  throw ModelError("set_axis: unknown axis");
}

const char* axis_unit(StressAxis axis) {
  switch (axis) {
    case StressAxis::CycleTime: return "s";
    case StressAxis::DutyCycle: return "";
    case StressAxis::Temperature: return "C";
    case StressAxis::SupplyVoltage: return "V";
  }
  return "";
}

StressCondition nominal_condition() { return {2.4, 27.0, 60e-9, 0.5}; }

std::vector<double> default_candidates(StressAxis axis,
                                       const StressCondition& nominal) {
  switch (axis) {
    case StressAxis::CycleTime:
      // Paper Section 4.1: 60 ns vs 55 ns (plus the relaxed side).
      return {nominal.tcyc - 5e-9, nominal.tcyc, nominal.tcyc + 5e-9};
    case StressAxis::DutyCycle:
      return {nominal.duty - 0.05, nominal.duty, nominal.duty + 0.05};
    case StressAxis::Temperature:
      // Paper Section 4.2: -33, +27, +87 C.
      return {-33.0, nominal.temp_c, 87.0};
    case StressAxis::SupplyVoltage:
      // Paper Section 4.3: 2.1, 2.4, 2.7 V.
      return {nominal.vdd - 0.3, nominal.vdd, nominal.vdd + 0.3};
  }
  throw ModelError("default_candidates: unknown axis");
}

std::string describe(const StressCondition& sc) {
  return util::format("tcyc=%s duty=%.2f T=%+.0f C Vdd=%.2f V",
                      util::eng(sc.tcyc, "s").c_str(), sc.duty, sc.temp_c,
                      sc.vdd);
}

}  // namespace dramstress::stress
