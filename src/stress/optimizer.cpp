#include "stress/optimizer.hpp"

#include <cmath>

#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::stress {

using analysis::BorderResult;
using analysis::DetectionCondition;
using dram::OpKind;
using dram::Operation;

const char* to_string(DecisionMethod method) {
  switch (method) {
    case DecisionMethod::KeptNominal: return "nominal";
    case DecisionMethod::ProbedDirectly: return "probe";
    case DecisionMethod::BorderComparison: return "BR-compare";
  }
  return "?";
}

double AxisDecision::nominal_value() const {
  return probe.candidates[probe.nominal_index].value;
}

std::string AxisDecision::direction() const {
  const double nom = nominal_value();
  if (chosen_value < nom) return "decrease";
  if (chosen_value > nom) return "increase";
  return "keep";
}

double OptimizationResult::coverage_gain_decades() const {
  const auto range = defect::default_sweep_range(defect.kind);
  return stressed_border.failing_decades(range) -
         nominal_border.failing_decades(range);
}

DetectionCondition mirror_condition(const DetectionCondition& cond) {
  DetectionCondition out = cond;
  for (Operation& op : out.ops) {
    if (op.kind == OpKind::W0)
      op.kind = OpKind::W1;
    else if (op.kind == OpKind::W1)
      op.kind = OpKind::W0;
  }
  out.expected = 1 - cond.expected;
  out.init_logical = 1 - cond.init_logical;
  return out;
}

namespace {

/// BR (failing decades) of the nominal condition evaluated at corner `sc`.
/// A corner where the condition is not a valid test (it would fail healthy
/// devices) scores zero.  `hint` carries the BR of the previously evaluated
/// corner in and the BR found here out: adjacent stress values move the
/// border little, so each search warm-starts from its neighbour's answer.
double failing_decades_at(dram::DramColumn& column, const defect::Defect& d,
                          const StressCondition& sc,
                          const DetectionCondition& cond,
                          const OptimizerOptions& opt,
                          std::optional<double>* hint = nullptr,
                          std::optional<double>* slope = nullptr) {
  dram::ColumnSimulator sim(column, sc, opt.settings);
  if (!analysis::condition_valid_on_healthy(sim, d.side, cond)) return 0.0;
  const auto range = defect::default_sweep_range(d.kind);
  analysis::BorderOptions bopt = opt.border;
  if (hint != nullptr) bopt.bracket_hint = *hint;
  if (slope != nullptr) bopt.margin_slope_hint = *slope;
  const BorderResult br =
      analysis::find_border_resistance(column, d, sim, cond, range, bopt);
  if (hint != nullptr && br.br.has_value()) *hint = br.br;
  if (slope != nullptr && br.margin_slope.has_value()) *slope = br.margin_slope;
  return br.failing_decades(range);
}

}  // namespace

OptimizationResult optimize_stresses(dram::DramColumn& column,
                                     const defect::Defect& d,
                                     const StressCondition& nominal) {
  const OptimizerOptions defaults;
  return optimize_stresses(column, d, nominal, defaults);
}

OptimizationResult optimize_stresses(dram::DramColumn& column,
                                     const defect::Defect& d,
                                     const StressCondition& nominal,
                                     const OptimizerOptions& opt) {
  OBS_SPAN("optimizer.run");
  OptimizationResult result;
  result.defect = d;
  result.nominal_sc = nominal;

  // --- Section 3: nominal fault analysis ---------------------------------
  {
    dram::ColumnSimulator sim(column, nominal, opt.settings);
    result.nominal_border = analysis::analyze_defect(column, d, sim, opt.border);
  }
  if (!result.nominal_border.br.has_value()) {
    throw ConvergenceError("optimize_stresses: " + d.name() +
                           " shows no faulty behaviour at the nominal "
                           "condition anywhere in its resistance range");
  }
  const DetectionCondition& cond = result.nominal_border.condition;
  const double ref_r = *result.nominal_border.br *
                       (result.nominal_border.fault_at_high_r ? 1.3 : 0.77);
  const double vsa_sign = stressful_vsa_sign(d.side, cond.expected);

  // --- Section 4: per-axis optimization ----------------------------------
  StressCondition stressed = nominal;
  for (StressAxis axis : opt.axes) {
    AxisDecision decision;
    decision.axis = axis;
    decision.probe = probe_axis(column, d, ref_r, cond, nominal, axis,
                                opt.settings);
    const AxisProbe& p = decision.probe;

    const size_t w = p.most_stressful_write(opt.write_tol);
    const auto r = p.most_stressful_read(vsa_sign, opt.read_tol);
    const bool write_conclusive = w != p.nominal_index;

    auto decide_by_border = [&](std::vector<size_t> indices) {
      decision.method = DecisionMethod::BorderComparison;
      indices.push_back(p.nominal_index);
      double best_value = p.candidates[p.nominal_index].value;
      double best_score = -1.0;
      // Seed the first corner's search from the nominal-corner BR (and its
      // margin slope, when the surrogate found one); each later corner
      // warm-starts from the previous one's result.
      std::optional<double> hint = result.nominal_border.br;
      std::optional<double> slope = result.nominal_border.margin_slope;
      for (size_t idx : indices) {
        StressCondition sc = stressed;
        set_axis(sc, axis, p.candidates[idx].value);
        const double score =
            failing_decades_at(column, d, sc, cond, opt, &hint, &slope);
        util::log_debug(util::format(
            "BR-compare %s %s=%.4g: failing decades %.3f", d.name().c_str(),
            to_string(axis), p.candidates[idx].value, score));
        if (score > best_score) {
          best_score = score;
          best_value = p.candidates[idx].value;
        }
      }
      decision.chosen_value = best_value;
    };

    if (!write_conclusive && !r.has_value()) {
      decision.method = DecisionMethod::KeptNominal;
      decision.chosen_value = p.candidates[p.nominal_index].value;
    } else if (!r.has_value()) {
      // Read insensitive (the paper's timing case): follow the write.
      decision.method = DecisionMethod::ProbedDirectly;
      decision.chosen_value = p.candidates[w].value;
    } else if (!write_conclusive) {
      decision.method = DecisionMethod::ProbedDirectly;
      decision.chosen_value = p.candidates[*r].value;
    } else if (*r == w) {
      decision.method = DecisionMethod::ProbedDirectly;
      decision.chosen_value = p.candidates[w].value;
    } else {
      // Conflict (the paper's Vdd case, and temperature when the read is
      // non-monotonic): compare border resistances.
      decide_by_border({w, *r});
    }

    // Safety net: a probe-decided corner must still be a valid test corner
    // (e.g. a long retention pause becomes invalid when hot).
    if (decision.method == DecisionMethod::ProbedDirectly &&
        decision.chosen_value != p.candidates[p.nominal_index].value) {
      StressCondition sc = stressed;
      set_axis(sc, axis, decision.chosen_value);
      dram::ColumnSimulator check(column, sc, opt.settings);
      if (!analysis::condition_valid_on_healthy(check, d.side, cond)) {
        std::vector<size_t> indices;
        if (write_conclusive) indices.push_back(w);
        if (r.has_value()) indices.push_back(*r);
        decide_by_border(indices);
      }
    }
    set_axis(stressed, axis, decision.chosen_value);
    result.decisions.push_back(std::move(decision));
  }
  result.stressed_sc = stressed;

  // --- Section 4.4: SC evaluation ----------------------------------------
  {
    dram::ColumnSimulator sim(column, stressed, opt.settings);
    result.stressed_border =
        analysis::analyze_defect(column, d, sim, opt.border);
    if (!result.stressed_border.br.has_value() &&
        analysis::condition_valid_on_healthy(sim, d.side, cond)) {
      // The stressed corner should never *lose* the fault; if the candidate
      // derivation missed it, fall back to the nominal condition's test,
      // warm-started from where the nominal corner put the border.
      const auto range = defect::default_sweep_range(d.kind);
      analysis::BorderOptions bopt = opt.border;
      bopt.bracket_hint = result.nominal_border.br;
      bopt.margin_slope_hint = result.nominal_border.margin_slope;
      result.stressed_border = analysis::find_border_resistance(
          column, d, sim, cond, range, bopt);
    }
  }
  return result;
}

namespace {

void append_corner(util::json::Writer& w, const StressCondition& sc) {
  w.begin_object();
  w.key("vdd").value(sc.vdd);
  w.key("temp_c").value(sc.temp_c);
  w.key("tcyc").value(sc.tcyc);
  w.key("duty").value(sc.duty);
  w.end_object();
}

}  // namespace

void append_json(util::json::Writer& w, const OptimizationResult& r,
                 const defect::SweepRange& range) {
  w.begin_object();
  w.key("nominal");
  append_corner(w, r.nominal_sc);
  w.key("stressed");
  append_corner(w, r.stressed_sc);
  w.key("nominal_border");
  analysis::append_json(w, r.nominal_border, range);
  w.key("stressed_border");
  analysis::append_json(w, r.stressed_border, range);
  w.key("gain_decades").value(r.coverage_gain_decades());
  w.key("decisions");
  w.begin_array();
  for (const AxisDecision& dec : r.decisions) {
    w.begin_object();
    w.key("axis").value(to_string(dec.axis));
    w.key("nominal").value(dec.nominal_value());
    w.key("chosen").value(dec.chosen_value);
    w.key("direction").value(dec.direction());
    w.key("method").value(to_string(dec.method));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace dramstress::stress
