#include "stress/probe.hpp"

#include <cmath>

#include "analysis/vsa.hpp"

#include "util/error.hpp"

namespace dramstress::stress {

using analysis::DetectionCondition;
using dram::OpKind;

size_t AxisProbe::most_stressful_write(double tol) const {
  require(!candidates.empty(), "AxisProbe: no candidates");
  size_t best = nominal_index;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].write_residual > candidates[best].write_residual)
      best = i;
  }
  if (candidates[best].write_residual -
          candidates[nominal_index].write_residual <= tol)
    return nominal_index;
  return best;
}

std::optional<size_t> AxisProbe::most_stressful_read(double sign,
                                                     double tol) const {
  require(!candidates.empty(), "AxisProbe: no candidates");
  size_t best = nominal_index;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (sign * (candidates[i].vsa - candidates[best].vsa) > 0.0) best = i;
  }
  if (sign * (candidates[best].vsa - candidates[nominal_index].vsa) <= tol)
    return std::nullopt;
  return best;
}

double stressful_vsa_sign(dram::Side side, int expected_bit) {
  // The read of `expected_bit` gets harder when the threshold moves toward
  // the physical level that represents it.
  const double level = dram::physical_level(side, expected_bit, 1.0);
  return level > 0.5 ? +1.0 : -1.0;
}

AxisProbe probe_axis(dram::DramColumn& column, const defect::Defect& d,
                     double reference_r, const DetectionCondition& cond,
                     const StressCondition& nominal, StressAxis axis,
                     const dram::SimSettings& settings) {
  AxisProbe probe;
  probe.axis = axis;
  const std::vector<double> values = default_candidates(axis, nominal);

  // Split the condition: everything before the final read is the "write
  // prefix" whose outcome the write probe measures.
  require(!cond.ops.empty() && cond.ops.back().kind == OpKind::R,
          "probe_axis: detection condition must end with a read");
  dram::OpSequence prefix(cond.ops.begin(), cond.ops.end() - 1);
  require(!prefix.empty(), "probe_axis: detection condition has no writes");
  // Logical value of the last write in the prefix.
  int last_write = -1;
  for (auto it = prefix.rbegin(); it != prefix.rend(); ++it) {
    if (it->kind == OpKind::W0) { last_write = 0; break; }
    if (it->kind == OpKind::W1) { last_write = 1; break; }
  }
  require(last_write >= 0, "probe_axis: no write in detection condition");

  defect::Injection inj(column, d, reference_r);
  for (size_t i = 0; i < values.size(); ++i) {
    StressCondition sc = nominal;
    set_axis(sc, axis, values[i]);
    if (std::fabs(values[i] - get_axis(nominal, axis)) < 1e-15)
      probe.nominal_index = i;

    dram::ColumnSimulator sim(column, sc, settings);
    CandidateProbe cp;
    cp.value = values[i];

    const double init =
        dram::physical_level(d.side, cond.init_logical, sc.vdd);
    const dram::RunResult rr = sim.run(prefix, init, d.side);
    const double target = dram::physical_level(d.side, last_write, sc.vdd);
    cp.write_residual = std::fabs(rr.final_vc - target);

    cp.vsa = analysis::extract_vsa(sim, d.side).threshold;
    probe.candidates.push_back(cp);
  }
  return probe;
}

}  // namespace dramstress::stress
