// Targeted stress probing (paper Sections 4.1-4.3).
//
// Instead of a full fault analysis per stress value (labour- and
// compute-intensive), the paper runs a *small* number of simulations per
// stress: one critical write and one sense-threshold probe.  The write
// probe measures how far the critical write of the detection condition
// gets (its residual against the target level); the read probe measures
// how the sense threshold Vsa moves.  A stress value is "more stressful"
// for the write if the residual grows, and for the read if Vsa moves
// toward the level of the expected read value (shrinking the range in
// which that value is still detected).
#pragma once

#include <optional>

#include "analysis/border.hpp"
#include "stress/stress.hpp"

namespace dramstress::stress {

/// Result of probing one candidate value of one axis.
struct CandidateProbe {
  double value = 0.0;        // the axis value probed
  double write_residual = 0.0;  // |Vc_after_critical_write - target| (V)
  double vsa = 0.0;          // sense threshold at the reference resistance
};

struct AxisProbe {
  StressAxis axis{};
  std::vector<CandidateProbe> candidates;  // in candidate order
  size_t nominal_index = 0;

  /// Index of the candidate that stresses the write hardest.
  size_t most_stressful_write(double tol = 5e-3) const;
  /// Index of the candidate that stresses the read hardest; `sign` is +1
  /// if a larger Vsa is more stressful for the expected read value, -1
  /// otherwise.  Returns nullopt if the read is insensitive to this axis
  /// (all candidates within tol).
  std::optional<size_t> most_stressful_read(double sign, double tol = 10e-3) const;
};

/// Direction sign for the read: +1 if Vsa moving *up* makes the condition's
/// expected read harder (more stressful), -1 if moving *down* does.
double stressful_vsa_sign(dram::Side side, int expected_bit);

/// Probe one axis for the defect at `reference_r` (typically the nominal
/// border resistance) using the detection condition `cond`.
AxisProbe probe_axis(dram::DramColumn& column, const defect::Defect& d,
                     double reference_r,
                     const analysis::DetectionCondition& cond,
                     const StressCondition& nominal, StressAxis axis,
                     const dram::SimSettings& settings = {});

}  // namespace dramstress::stress
