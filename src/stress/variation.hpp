// Monte-Carlo process variation (an extension beyond the paper).
//
// The paper optimizes stresses on one nominal technology.  Production
// silicon varies: thresholds, transconductance, capacitors and leakage all
// scatter die to die.  This module perturbs the technology parameters,
// recomputes the border resistance per sample, and reports the BR
// distribution -- so a stress recommendation can be checked for robustness
// ("does the stressed corner still widen the failing range at 3 sigma?").
#pragma once

#include "analysis/border.hpp"
#include "numeric/random.hpp"
#include "stress/stress.hpp"

namespace dramstress::stress {

struct VariationSpec {
  double vth_sigma = 0.015;      // V, absolute, all MOSFET families
  double kp_rel_sigma = 0.05;    // relative
  double cs_rel_sigma = 0.04;    // storage capacitor, relative
  double cbl_rel_sigma = 0.04;   // bitline capacitance, relative
  double leak_rel_sigma = 0.30;  // junction leakage magnitude, relative
  double vref_sigma = 0.004;     // V, reference-level generator offset
};

/// One perturbed technology sample.
dram::TechnologyParams perturb_technology(const dram::TechnologyParams& base,
                                          const VariationSpec& spec,
                                          numeric::Rng& rng);

struct BorderDistribution {
  std::vector<double> borders;  // per-sample BR (samples with no fault are
                                // skipped and counted below)
  int no_fault_samples = 0;

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
};

struct VariationOptions {
  int samples = 15;
  uint64_t seed = 12345;
  VariationSpec spec;
  analysis::BorderOptions border;
  dram::SimSettings settings;
  /// Worker threads for the Monte-Carlo samples; 0 = default.  Every
  /// technology sample is drawn up front from the single seeded stream, so
  /// the distribution is identical for every thread count.
  int threads = 0;
};

/// Distribution of the border resistance of a *fixed* test `cond` for
/// defect `d` at corner `sc`, across perturbed technology samples.
BorderDistribution border_distribution(const defect::Defect& d,
                                       const StressCondition& sc,
                                       const analysis::DetectionCondition& cond,
                                       const dram::TechnologyParams& base,
                                       const VariationOptions& opt = {});

}  // namespace dramstress::stress
