// Process-wide metrics: counters, gauges and log-decade histograms.
//
// Designed for the sweep engine's threading model (util/parallel.hpp):
// every thread owns a private shard, so the hot path -- a counter bump
// inside the Newton loop -- is a thread-local hash lookup plus a relaxed
// atomic add, with no inter-thread contention.  A snapshot merges all
// live shards with the retained totals of exited worker threads, keyed by
// metric *name*, so totals are exact and deterministic once the parallel
// region has joined.
//
// Metric names must be string literals (or otherwise outlive the process):
// shards key on the pointer for speed and merge by string content.
//
// Compile-time kill switch: building with -DDRAMSTRESS_OBS_DISABLED (the
// CMake option DRAMSTRESS_OBS=OFF) turns every collection call into an
// inline no-op and snapshots into empty objects; call sites never change.
// At runtime, set_collecting(false) suspends collection (one relaxed
// atomic load per call site); the measured overhead of collection itself
// is <2% on the plane workload (bench/engine_perf, "observability").
#pragma once

#include <map>
#include <string>

namespace dramstress::obs {

/// One histogram, aggregated over shards.  Buckets are decades:
/// decade d counts observations v with 10^d <= v < 10^(d+1) (v <= 0 falls
/// into the lowest tracked decade).  Wall times and step sizes span many
/// orders of magnitude, so decades are the natural resolution.
struct HistogramSnapshot {
  long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::map<int, long> decades;

  double mean() const { return count > 0 ? sum / count : 0.0; }
};

struct MetricsSnapshot {
  std::map<std::string, long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name, 0 when absent (absent == never incremented).
  long counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

#ifndef DRAMSTRESS_OBS_DISABLED

/// True when collection is compiled in and runtime-enabled (the default).
bool collecting();
/// Suspend/resume collection process-wide (bench A/B runs, noise-free
/// reference timings).  Spans and metrics both honour it.
void set_collecting(bool on);
/// True in this build: collection code is compiled in.
constexpr bool compiled_in() { return true; }

/// Add `delta` to the named counter.
void count(const char* name, long delta = 1);
/// Set the named gauge (last write wins across a shard; merge keeps the
/// most recent write of any shard).
void gauge(const char* name, double value);
/// Record one observation into the named histogram.
void observe(const char* name, double value);

/// Merge every shard (live and retired) into one snapshot.  Exact once
/// parallel regions have joined; counters written concurrently with the
/// snapshot may or may not be included (each shard cell is atomic, so the
/// value read is always a real intermediate total).
MetricsSnapshot metrics_snapshot();

/// Zero every counter/gauge/histogram, live and retired.  Call between
/// measurement regions, not while a sweep is running.
void reset_metrics();

#else  // DRAMSTRESS_OBS_DISABLED: every call compiles away.

constexpr bool collecting() { return false; }
inline void set_collecting(bool) {}
constexpr bool compiled_in() { return false; }
inline void count(const char*, long = 1) {}
inline void gauge(const char*, double) {}
inline void observe(const char*, double) {}
inline MetricsSnapshot metrics_snapshot() { return {}; }
inline void reset_metrics() {}

#endif

}  // namespace dramstress::obs
