// Scoped spans: a hierarchical wall-time profile of the engine.
//
//   void StressFlow::optimize(...) {
//     OBS_SPAN("flow.optimize");
//     ...
//   }
//
// Each thread keeps its own span stack (a tree of nodes keyed by name);
// nesting follows the call stack, so the aggregate tree reads
// flow.optimize -> border.analyze -> column.run -> transient.run ->
// newton.solve.  Worker threads of a sweep start at their own root: their
// activity appears as top-level subtrees in the merged snapshot (a worker
// has no way to know which caller's span spawned it), merged by name
// across all threads.  Identical paths aggregate: every node carries an
// entry count and total inclusive seconds.
//
// Span names must be string literals (node identity compares pointers
// first, content at merge time).  Overhead per span is two steady_clock
// reads plus a child lookup; with DRAMSTRESS_OBS_DISABLED the macro
// compiles to nothing, and set_collecting(false) skips collection at
// runtime (spans share the switch with obs/metrics.hpp).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"  // set_collecting / collecting shared switch

namespace dramstress::obs {

/// One aggregated node of the merged span tree.
struct SpanSnapshot {
  std::string name;
  long count = 0;        // times the span was entered
  double total_s = 0.0;  // inclusive wall seconds
  std::vector<SpanSnapshot> children;

  /// Child by name; nullptr if absent.
  const SpanSnapshot* child(const std::string& n) const {
    for (const auto& c : children)
      if (c.name == n) return &c;
    return nullptr;
  }
};

#ifndef DRAMSTRESS_OBS_DISABLED

class ScopedSpan {
public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
  void* node_ = nullptr;  // SpanNode*; null when collection is off
  long long t0_ns_ = 0;
};

/// Merged roots of every thread's span tree (live and exited threads).
std::vector<SpanSnapshot> spans_snapshot();

/// Drop all recorded spans (live stacks keep their open spans: an open
/// span re-registers its path when it closes).
void reset_spans();

#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::dramstress::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)(name)

#else

class ScopedSpan {
public:
  explicit ScopedSpan(const char*) {}
};

inline std::vector<SpanSnapshot> spans_snapshot() { return {}; }
inline void reset_spans() {}

#define OBS_SPAN(name) ((void)0)

#endif

}  // namespace dramstress::obs
