#include "obs/metrics.hpp"

#ifndef DRAMSTRESS_OBS_DISABLED

#include <atomic>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/annotations.hpp"

namespace dramstress::obs {

namespace {

std::atomic<bool> g_collecting{true};

// Decade buckets cover 1e-15 s (dt_min) .. 1e6; everything outside clamps.
constexpr int kDecadeLo = -15;
constexpr int kDecadeHi = 6;
constexpr int kNumDecades = kDecadeHi - kDecadeLo + 1;

int decade_of(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN clamp to the lowest bucket
  const int d = static_cast<int>(std::floor(std::log10(v))) - kDecadeLo;
  return d < 0 ? 0 : (d >= kNumDecades ? kNumDecades - 1 : d);
}

// Cells are written only by their owning thread; the atomics exist so a
// concurrent snapshot reads a torn-free (if slightly stale) value.
struct CounterCell {
  const char* name = nullptr;
  std::atomic<long> value{0};
};

struct GaugeCell {
  const char* name = nullptr;
  std::atomic<double> value{0.0};
  std::atomic<long> seq{0};  // merge: the most recent write wins
};

struct HistCell {
  const char* name;
  std::atomic<long> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
  std::atomic<long> decades[kNumDecades];

  explicit HistCell(const char* n) : name(n) {
    for (auto& d : decades) d.store(0, std::memory_order_relaxed);
  }
};

/// Per-thread metric storage.  Only the owning thread inserts; `mu` is
/// held for inserts and by the registry while it walks the cell deques, so
/// the owner's lock-free find never races a rehash it can observe.  The
/// maps are deliberately NOT DS_GUARDED_BY(mu): the owner's hot-path find
/// is lock-free by design (single-writer discipline), which the static
/// analysis cannot express -- TSan covers the dynamic side.
/// detlint: the unordered maps are name-pointer lookup indexes only; every
/// path that feeds a snapshot walks the deques in insertion order.
struct Shard {
  util::Mutex mu;
  // detlint:allow(D501 lookup-only index, never iterated; snapshots walk the deques)
  std::unordered_map<const void*, CounterCell*> counters;
  // detlint:allow(D501 lookup-only index, never iterated)
  std::unordered_map<const void*, GaugeCell*> gauges;
  // detlint:allow(D501 lookup-only index, never iterated)
  std::unordered_map<const void*, HistCell*> hists;
  // Deques give the cells stable addresses across inserts.
  std::deque<CounterCell> counter_cells;
  std::deque<GaugeCell> gauge_cells;
  std::deque<HistCell> hist_cells;

  CounterCell& counter(const char* name) {
    if (auto it = counters.find(name); it != counters.end())
      return *it->second;
    util::MutexLock lock(mu);
    counter_cells.emplace_back();
    counter_cells.back().name = name;
    counters.emplace(name, &counter_cells.back());
    return counter_cells.back();
  }

  GaugeCell& gauge(const char* name) {
    if (auto it = gauges.find(name); it != gauges.end()) return *it->second;
    util::MutexLock lock(mu);
    gauge_cells.emplace_back();
    gauge_cells.back().name = name;
    gauges.emplace(name, &gauge_cells.back());
    return gauge_cells.back();
  }

  HistCell& hist(const char* name) {
    if (auto it = hists.find(name); it != hists.end()) return *it->second;
    util::MutexLock lock(mu);
    hist_cells.emplace_back(name);
    hists.emplace(name, &hist_cells.back());
    return hist_cells.back();
  }
};

void merge_hist(HistogramSnapshot& into, long count, double sum, double mn,
                double mx, const long* decades) {
  if (count == 0) return;
  if (into.count == 0) {
    into.min = mn;
    into.max = mx;
  } else {
    into.min = std::min(into.min, mn);
    into.max = std::max(into.max, mx);
  }
  into.count += count;
  into.sum += sum;
  for (int i = 0; i < kNumDecades; ++i)
    if (decades[i] != 0) into.decades[kDecadeLo + i] += decades[i];
}

class Registry {
public:
  static Registry& instance() {
    // Leaked singleton: thread shards deregister during thread_local
    // destruction, which may run after static destructors.
    static Registry* r = new Registry;
    return *r;
  }

  void attach(Shard* s) DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    shards_.push_back(s);
  }

  /// Fold a dying thread's totals into the retained snapshot.
  void detach(Shard* s) DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    merge_shard_locked(*s, retired_, retired_gauge_seq_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i] == s) {
        shards_[i] = shards_.back();
        shards_.pop_back();
        break;
      }
    }
  }

  MetricsSnapshot snapshot() DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    MetricsSnapshot snap = retired_;
    std::map<std::string, long> gauge_seq = retired_gauge_seq_;
    for (Shard* s : shards_) {
      util::MutexLock shard_lock(s->mu);
      merge_shard_locked(*s, snap, gauge_seq);
    }
    return snap;
  }

  void reset() DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    retired_ = {};
    retired_gauge_seq_.clear();
    for (Shard* s : shards_) {
      util::MutexLock shard_lock(s->mu);
      for (auto& c : s->counter_cells)
        c.value.store(0, std::memory_order_relaxed);
      for (auto& g : s->gauge_cells) {
        g.value.store(0.0, std::memory_order_relaxed);
        g.seq.store(0, std::memory_order_relaxed);
      }
      for (auto& h : s->hist_cells) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0.0, std::memory_order_relaxed);
        h.min.store(0.0, std::memory_order_relaxed);
        h.max.store(0.0, std::memory_order_relaxed);
        for (auto& d : h.decades) d.store(0, std::memory_order_relaxed);
      }
    }
  }

  long next_gauge_seq() {
    return gauge_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

private:
  // Caller holds mu_ (and the shard's mu when the shard is live).
  void merge_shard_locked(Shard& s, MetricsSnapshot& snap,
                          std::map<std::string, long>& gauge_seq)
      DS_REQUIRES(mu_) {
    for (const auto& c : s.counter_cells) {
      const long v = c.value.load(std::memory_order_relaxed);
      if (v != 0) snap.counters[c.name] += v;
    }
    for (const auto& g : s.gauge_cells) {
      const long seq = g.seq.load(std::memory_order_relaxed);
      if (seq == 0) continue;  // never written since reset
      auto it = gauge_seq.find(g.name);
      if (it == gauge_seq.end() || seq > it->second) {
        gauge_seq[g.name] = seq;
        snap.gauges[g.name] = g.value.load(std::memory_order_relaxed);
      }
    }
    for (const auto& h : s.hist_cells) {
      const long count = h.count.load(std::memory_order_relaxed);
      if (count == 0) continue;  // never observed (or reset since)
      long decades[kNumDecades];
      for (int i = 0; i < kNumDecades; ++i)
        decades[i] = h.decades[i].load(std::memory_order_relaxed);
      merge_hist(snap.histograms[h.name], count,
                 h.sum.load(std::memory_order_relaxed),
                 h.min.load(std::memory_order_relaxed),
                 h.max.load(std::memory_order_relaxed), decades);
    }
  }

  util::Mutex mu_;
  std::vector<Shard*> shards_ DS_GUARDED_BY(mu_);
  MetricsSnapshot retired_ DS_GUARDED_BY(mu_);
  std::map<std::string, long> retired_gauge_seq_ DS_GUARDED_BY(mu_);
  std::atomic<long> gauge_clock_{0};
};

/// RAII registration of the thread-local shard.
struct ShardHandle {
  Shard shard;
  ShardHandle() { Registry::instance().attach(&shard); }
  ~ShardHandle() { Registry::instance().detach(&shard); }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

}  // namespace

bool collecting() { return g_collecting.load(std::memory_order_relaxed); }

void set_collecting(bool on) {
  g_collecting.store(on, std::memory_order_relaxed);
}

void count(const char* name, long delta) {
  if (!collecting()) return;
  local_shard().counter(name).value.fetch_add(delta,
                                              std::memory_order_relaxed);
}

void gauge(const char* name, double value) {
  if (!collecting()) return;
  GaugeCell& g = local_shard().gauge(name);
  g.value.store(value, std::memory_order_relaxed);
  g.seq.store(Registry::instance().next_gauge_seq(),
              std::memory_order_relaxed);
}

void observe(const char* name, double value) {
  if (!collecting()) return;
  // Single-writer cell (thread-local shard): plain read-modify-write on
  // the atomics is race-free; relaxed stores keep snapshots torn-free.
  HistCell& h = local_shard().hist(name);
  const long prev = h.count.load(std::memory_order_relaxed);
  if (prev == 0) {
    h.min.store(value, std::memory_order_relaxed);
    h.max.store(value, std::memory_order_relaxed);
  } else {
    if (value < h.min.load(std::memory_order_relaxed))
      h.min.store(value, std::memory_order_relaxed);
    if (value > h.max.load(std::memory_order_relaxed))
      h.max.store(value, std::memory_order_relaxed);
  }
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  h.decades[decade_of(value)].fetch_add(1, std::memory_order_relaxed);
  h.count.store(prev + 1, std::memory_order_relaxed);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

void reset_metrics() { Registry::instance().reset(); }

}  // namespace dramstress::obs

#endif  // DRAMSTRESS_OBS_DISABLED
