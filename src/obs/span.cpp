#include "obs/span.hpp"

#ifndef DRAMSTRESS_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>

#include "util/annotations.hpp"

namespace dramstress::obs {

namespace {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Nodes are created by the owning thread (children appends guarded by the
// shard mutex against concurrent snapshot walks); count/total are atomic
// so a snapshot taken mid-run reads torn-free values.
struct SpanNode {
  const char* name = nullptr;
  SpanNode* parent = nullptr;
  std::atomic<long> count{0};
  std::atomic<long long> total_ns{0};
  std::vector<std::unique_ptr<SpanNode>> children;
};

// `mu` guards the tree *structure* (children vectors) against concurrent
// snapshot walks; `current` and the node payloads are owner-thread-only
// (single-writer discipline the static analysis cannot express).
struct SpanShard {
  util::Mutex mu;
  SpanNode root;
  SpanNode* current = &root;
};

SpanSnapshot* find_child(std::vector<SpanSnapshot>& v, const char* name) {
  for (auto& c : v)
    if (c.name == name) return &c;
  return nullptr;
}

void merge_node(const SpanNode& n, std::vector<SpanSnapshot>& siblings) {
  SpanSnapshot* s = find_child(siblings, n.name);
  if (!s) {
    siblings.push_back({});
    s = &siblings.back();
    s->name = n.name;
  }
  s->count += n.count.load(std::memory_order_relaxed);
  s->total_s += 1e-9 * static_cast<double>(
                           n.total_ns.load(std::memory_order_relaxed));
  for (const auto& c : n.children) merge_node(*c, s->children);
}

void zero_node(SpanNode& n) {
  n.count.store(0, std::memory_order_relaxed);
  n.total_ns.store(0, std::memory_order_relaxed);
  for (auto& c : n.children) zero_node(*c);
}

/// Drop aggregated entries that were never entered (after a reset, the
/// kept structure of live shards would otherwise report empty nodes).
void prune(std::vector<SpanSnapshot>& v) {
  for (auto& s : v) prune(s.children);
  std::erase_if(v, [](const SpanSnapshot& s) {
    return s.count == 0 && s.children.empty();
  });
}

class SpanRegistry {
public:
  static SpanRegistry& instance() {
    static SpanRegistry* r = new SpanRegistry;  // leaked: see obs/metrics.cpp
    return *r;
  }

  void attach(SpanShard* s) DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    shards_.push_back(s);
  }

  void detach(SpanShard* s) DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    {
      util::MutexLock shard_lock(s->mu);
      for (const auto& c : s->root.children) merge_node(*c, retired_);
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i] == s) {
        shards_[i] = shards_.back();
        shards_.pop_back();
        break;
      }
    }
  }

  std::vector<SpanSnapshot> snapshot() DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    std::vector<SpanSnapshot> out = retired_;
    for (SpanShard* s : shards_) {
      util::MutexLock shard_lock(s->mu);
      for (const auto& c : s->root.children) merge_node(*c, out);
    }
    prune(out);
    return out;
  }

  void reset() DS_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    retired_.clear();
    for (SpanShard* s : shards_) {
      util::MutexLock shard_lock(s->mu);
      zero_node(s->root);
    }
  }

private:
  util::Mutex mu_;
  std::vector<SpanShard*> shards_ DS_GUARDED_BY(mu_);
  // merged forest of exited threads
  std::vector<SpanSnapshot> retired_ DS_GUARDED_BY(mu_);
};

struct SpanShardHandle {
  SpanShard shard;
  SpanShardHandle() { SpanRegistry::instance().attach(&shard); }
  ~SpanShardHandle() { SpanRegistry::instance().detach(&shard); }
};

SpanShard& local_span_shard() {
  thread_local SpanShardHandle handle;
  return handle.shard;
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) {
  if (!collecting()) return;
  SpanShard& sh = local_span_shard();
  SpanNode* cur = sh.current;
  SpanNode* child = nullptr;
  for (const auto& c : cur->children) {
    // Pointer identity first (same literal), content as the fallback (the
    // same name used from two translation units).
    if (c->name == name || std::strcmp(c->name, name) == 0) {
      child = c.get();
      break;
    }
  }
  if (!child) {
    util::MutexLock lock(sh.mu);
    cur->children.push_back(std::make_unique<SpanNode>());
    child = cur->children.back().get();
    child->name = name;
    child->parent = cur;
  }
  sh.current = child;
  node_ = child;
  t0_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!node_) return;
  SpanNode* n = static_cast<SpanNode*>(node_);
  n->count.fetch_add(1, std::memory_order_relaxed);
  n->total_ns.fetch_add(now_ns() - t0_ns_, std::memory_order_relaxed);
  local_span_shard().current = n->parent;
}

std::vector<SpanSnapshot> spans_snapshot() {
  return SpanRegistry::instance().snapshot();
}

void reset_spans() { SpanRegistry::instance().reset(); }

}  // namespace dramstress::obs

#endif  // DRAMSTRESS_OBS_DISABLED
