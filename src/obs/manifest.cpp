#include "obs/manifest.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/version.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace dramstress::obs {

namespace {

using util::json::Value;
using util::json::Writer;

void emit_settings(Writer& w, const ManifestInfo& info) {
  // Merge the typed maps into one sorted key order so output is stable.
  std::map<std::string, char> kinds;
  for (const auto& [k, v] : info.settings_text) kinds[k] = 's';
  for (const auto& [k, v] : info.settings_number) {
    require(kinds.find(k) == kinds.end(),
            "manifest: duplicate setting key " + k);
    kinds[k] = 'n';
  }
  for (const auto& [k, v] : info.settings_flag) {
    require(kinds.find(k) == kinds.end(),
            "manifest: duplicate setting key " + k);
    kinds[k] = 'b';
  }
  w.begin_object();
  for (const auto& [k, kind] : kinds) {
    w.key(k);
    if (kind == 's')
      w.value(info.settings_text.at(k));
    else if (kind == 'n')
      w.value(info.settings_number.at(k));
    else
      w.value(info.settings_flag.at(k));
  }
  w.end_object();
}

void emit_histogram(Writer& w, const HistogramSnapshot& h) {
  w.begin_object();
  w.key("count").value(h.count);
  w.key("sum").value(h.sum);
  w.key("min").value(h.min);
  w.key("max").value(h.max);
  w.key("mean").value(h.mean());
  w.key("decades").begin_object();
  for (const auto& [decade, n] : h.decades)
    w.key(std::to_string(decade)).value(n);
  w.end_object();
  w.end_object();
}

void emit_span(Writer& w, const SpanSnapshot& s) {
  w.begin_object();
  w.key("name").value(s.name);
  w.key("count").value(s.count);
  w.key("total_s").value(s.total_s);
  w.key("children").begin_array();
  for (const auto& c : s.children) emit_span(w, c);
  w.end_array();
  w.end_object();
}

void emit_header(Writer& w, const char* version_field, int version,
                 const ManifestInfo& info) {
  w.key(version_field).value(version);
  w.key("tool").value(info.tool);
  w.key("command").value(info.command);
  w.key("git").value(git_describe());
  w.key("build_type").value(build_type());
  w.key("obs_compiled_in").value(compiled_in());
  w.key("duration_s").value(info.duration_s);
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  require(f.good(), "manifest: cannot open " + path + " for writing");
  f << text << '\n';
  f.flush();
  require(f.good(), "manifest: write failed for " + path);
}

}  // namespace

void append_metrics(util::json::Writer& w, const MetricsSnapshot& metrics) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : metrics.counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : metrics.gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : metrics.histograms) {
    w.key(name);
    emit_histogram(w, h);
  }
  w.end_object();
  w.end_object();
}

std::string manifest_json(const ManifestInfo& info,
                          const MetricsSnapshot& metrics) {
  Writer w;
  w.begin_object();
  emit_header(w, "dramstress_manifest_version", kManifestVersion, info);
  w.key("settings");
  emit_settings(w, info);
  w.key("metrics");
  append_metrics(w, metrics);
  w.end_object();
  return w.str();
}

std::string trace_json(const ManifestInfo& info,
                       const std::vector<SpanSnapshot>& spans) {
  Writer w;
  w.begin_object();
  emit_header(w, "dramstress_trace_version", kTraceVersion, info);
  w.key("spans").begin_array();
  for (const auto& s : spans) emit_span(w, s);
  w.end_array();
  w.end_object();
  return w.str();
}

void write_manifest(const std::string& path, const ManifestInfo& info) {
  write_text(path, manifest_json(info, metrics_snapshot()));
}

void write_trace(const std::string& path, const ManifestInfo& info) {
  write_text(path, trace_json(info, spans_snapshot()));
}

namespace {

bool is_integer(const Value& v) {
  return v.is_number() && v.number == static_cast<double>(
                              static_cast<long long>(v.number));
}

void check_histogram(const std::string& name, const Value& h,
                     std::vector<std::string>& errs) {
  if (!h.is_object()) {
    errs.push_back("histograms." + name + ": not an object");
    return;
  }
  for (const char* field : {"count", "sum", "min", "max", "mean"}) {
    const Value* f = h.find(field);
    if (!f || !f->is_number())
      errs.push_back("histograms." + name + "." + field +
                     ": missing or not a number");
  }
  const Value* d = h.find("decades");
  if (!d || !d->is_object()) {
    errs.push_back("histograms." + name + ".decades: missing or not an object");
    return;
  }
  for (const auto& [key, v] : d->object) {
    char* end = nullptr;
    (void)std::strtol(key.c_str(), &end, 10);
    if (end != key.c_str() + key.size())
      errs.push_back("histograms." + name + ".decades: non-integer key '" +
                     key + "'");
    if (!is_integer(v))
      errs.push_back("histograms." + name + ".decades[" + key +
                     "]: not an integer count");
  }
}

}  // namespace

std::vector<std::string> validate_manifest_json(const std::string& text) {
  std::vector<std::string> errs;
  Value root;
  try {
    root = util::json::parse(text);
  } catch (const ModelError& e) {
    errs.push_back(e.what());
    return errs;
  }
  if (!root.is_object()) {
    errs.push_back("root: not an object");
    return errs;
  }

  const Value* ver = root.find("dramstress_manifest_version");
  if (!ver || !is_integer(*ver))
    errs.push_back("dramstress_manifest_version: missing or not an integer");
  else if (static_cast<int>(ver->number) != kManifestVersion)
    errs.push_back("dramstress_manifest_version: expected " +
                   std::to_string(kManifestVersion) + ", got " +
                   std::to_string(static_cast<long>(ver->number)));

  for (const char* field : {"tool", "command", "git", "build_type"}) {
    const Value* f = root.find(field);
    if (!f || !f->is_string())
      errs.push_back(std::string(field) + ": missing or not a string");
  }
  const Value* compiled = root.find("obs_compiled_in");
  if (!compiled || !compiled->is_bool())
    errs.push_back("obs_compiled_in: missing or not a boolean");
  const Value* dur = root.find("duration_s");
  if (!dur || !dur->is_number() || dur->number < 0.0)
    errs.push_back("duration_s: missing or not a non-negative number");

  const Value* settings = root.find("settings");
  if (!settings || !settings->is_object()) {
    errs.push_back("settings: missing or not an object");
  } else {
    for (const auto& [key, v] : settings->object)
      if (!v.is_string() && !v.is_number() && !v.is_bool())
        errs.push_back("settings." + key + ": not a scalar");
  }

  const Value* metrics = root.find("metrics");
  if (!metrics || !metrics->is_object()) {
    errs.push_back("metrics: missing or not an object");
    return errs;
  }
  const Value* counters = metrics->find("counters");
  if (!counters || !counters->is_object()) {
    errs.push_back("metrics.counters: missing or not an object");
  } else {
    for (const auto& [key, v] : counters->object)
      if (!is_integer(v))
        errs.push_back("metrics.counters." + key + ": not an integer");
  }
  const Value* gauges = metrics->find("gauges");
  if (!gauges || !gauges->is_object()) {
    errs.push_back("metrics.gauges: missing or not an object");
  } else {
    for (const auto& [key, v] : gauges->object)
      if (!v.is_number())
        errs.push_back("metrics.gauges." + key + ": not a number");
  }
  const Value* hists = metrics->find("histograms");
  if (!hists || !hists->is_object()) {
    errs.push_back("metrics.histograms: missing or not an object");
  } else {
    for (const auto& [key, v] : hists->object) check_histogram(key, v, errs);
  }
  return errs;
}

}  // namespace dramstress::obs
