#include "obs/version.hpp"

#ifndef DRAMSTRESS_GIT_DESCRIBE
#define DRAMSTRESS_GIT_DESCRIBE "unknown"
#endif

#ifndef DRAMSTRESS_BUILD_TYPE
#define DRAMSTRESS_BUILD_TYPE ""
#endif

namespace dramstress::obs {

std::string git_describe() { return DRAMSTRESS_GIT_DESCRIBE; }

std::string build_type() { return DRAMSTRESS_BUILD_TYPE; }

}  // namespace dramstress::obs
