// Build identity captured into run manifests: the git revision the binary
// was configured from and the CMake build type.  Both are baked in as
// compile definitions by src/obs/CMakeLists.txt at configure time, so
// they are available without shelling out at runtime.
#pragma once

#include <string>

namespace dramstress::obs {

/// `git describe --always --dirty` at configure time ("unknown" when the
/// source tree was not a git checkout).
std::string git_describe();

/// CMAKE_BUILD_TYPE at configure time ("" for multi-config generators).
std::string build_type();

}  // namespace dramstress::obs
