// Run manifests: a versioned JSON record of one engine run -- what was
// run (tool, command, settings), on which code (git describe, build
// type), how long it took, and the full metric dump.  The schema is
// documented in docs/OBSERVABILITY.md; `validate_manifest_json` checks a
// document against it so CI can gate on manifest shape without python.
//
// Manifests are emitted by `dramstress --metrics out.json`,
// `minispice ... --metrics out.json` and bench/engine_perf; span traces
// (`--trace out.trace.json`) use the sibling trace schema.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/json.hpp"

namespace dramstress::obs {

/// Everything a manifest records besides the metrics themselves.
struct ManifestInfo {
  std::string tool;     // "dramstress" / "minispice" / "engine_perf"
  std::string command;  // subcommand + positional args as invoked

  // Effective settings of the run (threads, adaptive, lte_tol, solver
  // backend, ...), split by JSON type.  Keys must be unique across maps.
  std::map<std::string, std::string> settings_text;
  std::map<std::string, double> settings_number;
  std::map<std::string, bool> settings_flag;

  double duration_s = 0.0;  // wall time of the run being described
};

/// Current manifest schema version (the `dramstress_manifest_version`
/// field).  Bump when a field changes meaning; see docs/OBSERVABILITY.md.
inline constexpr int kManifestVersion = 1;
/// Current trace schema version (`dramstress_trace_version`).
inline constexpr int kTraceVersion = 1;

/// Serialize a manifest (schema v1) from an explicit metrics snapshot.
std::string manifest_json(const ManifestInfo& info,
                          const MetricsSnapshot& metrics);

/// Append the manifest's `metrics` object ({counters, gauges, histograms})
/// as the next value of `w` -- for embedding a metric dump in other JSON
/// documents (bench/engine_perf folds one into BENCH_engine.json).
void append_metrics(util::json::Writer& w, const MetricsSnapshot& metrics);

/// Serialize a span trace (schema v1) from an explicit span forest.
std::string trace_json(const ManifestInfo& info,
                       const std::vector<SpanSnapshot>& spans);

/// Snapshot the global registries and write the manifest / trace to
/// `path`; throws ModelError when the file cannot be written.
void write_manifest(const std::string& path, const ManifestInfo& info);
void write_trace(const std::string& path, const ManifestInfo& info);

/// Validate a JSON document against the manifest schema.  Returns an
/// empty vector when valid, otherwise one message per violation; a parse
/// failure yields a single message.
std::vector<std::string> validate_manifest_json(const std::string& text);

}  // namespace dramstress::obs
