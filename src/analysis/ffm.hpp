// Functional fault model (FFM) classification.
//
// Memory-test practice describes faulty behaviour in terms of functional
// fault models: stuck-at faults, transition faults, data-retention faults,
// read-disturb faults.  This module probes the electrically simulated
// defect with targeted operation sequences and reports which FFMs the
// defect exhibits at a given resistance and stress condition -- the bridge
// between the paper's electrical analysis and the march-test literature
// (the detection conditions of Section 3 are exactly the sensitizing
// sequences of these FFMs).
#pragma once

#include <string>
#include <vector>

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"

namespace dramstress::analysis {

enum class FaultModel {
  StuckAt0,        // cell reads 0 no matter what was written
  StuckAt1,
  TransitionUp,    // 0 -> 1 write fails (a single w1 after saturated 0)
  TransitionDown,  // 1 -> 0 write fails
  Retention1,      // a stored 1 decays away within the probe pause
  Retention0,      // a stored 0 drifts up within the probe pause
  ReadDisturb1,    // reading a full 1 returns 0
  ReadDisturb0,    // reading a full 0 returns 1
};

const char* to_string(FaultModel model);

struct FfmProbeOptions {
  int saturate_ops = 4;        // writes used to saturate a level
  double retention_time = 100e-6;
};

struct FfmReport {
  std::vector<FaultModel> models;  // in classification order, no duplicates

  bool has(FaultModel m) const;
  bool fault_free() const { return models.empty(); }
  /// e.g. "TF-up, DRF-1".
  std::string str() const;
};

/// Classify the defect currently injected into the simulator's column for
/// the addressed cell on `side`.
FfmReport classify_ffm(const dram::ColumnSimulator& sim, dram::Side side,
                       const FfmProbeOptions& opt = {});

// --- FFM maps: classification swept over defects x resistance ------------

struct FfmMapOptions {
  int num_r_points = 5;   // log-spaced grid per defect
  /// The grid starts at lo_scale * default_sweep_range(kind).lo: the very
  /// bottom of the range is pristine for opens and catastrophic for
  /// shunts, neither of which maps to an interesting FFM.
  double lo_scale = 30.0;
  FfmProbeOptions probe;
  VsaOptions vsa;
  dram::SimSettings settings;
  /// Worker threads; 0 = util::default_threads().  Entry order and values
  /// are identical for every thread count.
  int threads = 0;
};

/// Resistance grid ffm_map uses for one defect kind.
std::vector<double> ffm_map_grid(defect::DefectKind kind,
                                 const FfmMapOptions& opt = {});

struct FfmMapEntry {
  defect::Defect defect;
  double r = 0.0;
  VsaResult vsa;
  FfmReport report;
};

/// Sweep every defect over its resistance grid at corner `cond`, reporting
/// the sense threshold and the exhibited FFMs per point.  Entries are
/// ordered defect-major, R ascending.  Runs on the parallel sweep pool.
std::vector<FfmMapEntry> ffm_map(const dram::TechnologyParams& tech,
                                 const dram::OperatingConditions& cond,
                                 const std::vector<defect::Defect>& defects,
                                 const FfmMapOptions& opt = {});

}  // namespace dramstress::analysis
