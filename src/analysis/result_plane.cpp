#include "analysis/result_plane.hpp"

#include <algorithm>
#include <memory>

#include "defect/sweep_context.hpp"
#include "dram/ensemble_column.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace dramstress::analysis {

using dram::Operation;
using dram::OpKind;
using dram::OpSequence;

numeric::PiecewiseLinear ResultPlane::curve_interp(size_t curve_index) const {
  require(curve_index < curves.size(), "ResultPlane: curve index out of range");
  return numeric::PiecewiseLinear(r_values, curves[curve_index].vc);
}

numeric::PiecewiseLinear ResultPlane::vsa_interp() const {
  return numeric::PiecewiseLinear(r_values, vsa);
}

namespace {

Operation op_of(OpKind kind) {
  switch (kind) {
    case OpKind::W0: return Operation::w0();
    case OpKind::W1: return Operation::w1();
    case OpKind::R: return Operation::r();
    case OpKind::Del: break;
  }
  throw ModelError("result plane: op must be w0, w1 or r");
}

/// Worker state of the batched (ensemble) sweep: `batch` column clones
/// bound as ensemble lanes, plus the Vsa gallop seed this worker carries
/// from batch to batch (R-sweep continuation: adjacent grid points have
/// nearby thresholds, so the seed cuts the probe count; it cannot change
/// the extracted values -- see analysis/vsa.hpp).
struct BatchState {
  std::vector<defect::SweepContext> ctxs;
  std::unique_ptr<dram::EnsembleColumnSim> ens;
  VsaSeed seed;
};

void sweep_points_batched(ResultPlane& plane, const defect::Defect& d,
                          const dram::TechnologyParams& tech,
                          const dram::OperatingConditions& cond,
                          const dram::SimSettings& settings, OpKind op,
                          const PlaneOptions& opt, size_t batch) {
  const double vdd = cond.vdd;
  const size_t n_points = plane.r_values.size();
  const int n_ops = opt.ops_per_point;
  const double r_init = plane.r_values.front();
  const size_t n_batches = (n_points + batch - 1) / batch;
  util::parallel_for_state(
      n_batches,
      [&] {
        BatchState bs;
        bs.ctxs.reserve(batch);
        for (size_t k = 0; k < batch; ++k)
          bs.ctxs.emplace_back(tech, d, r_init, cond, settings);
        std::vector<dram::ColumnSimulator*> sims;
        sims.reserve(batch);
        for (auto& c : bs.ctxs) sims.push_back(&c.sim());
        bs.ens = std::make_unique<dram::EnsembleColumnSim>(std::move(sims));
        return bs;
      },
      [&](BatchState& bs, size_t bi) {
        OBS_SPAN("plane.batch");
        const size_t begin = bi * batch;
        const size_t end = std::min(begin + batch, n_points);
        const size_t lanes_used = end - begin;
        obs::count("plane.points", static_cast<long>(lanes_used));
        std::vector<char> act(batch, 0);
        for (size_t k = 0; k < lanes_used; ++k) {
          act[k] = 1;
          bs.ctxs[k].injection().set_value(plane.r_values[begin + k]);
        }

        // Vsa per lane: serve cache hits, batch-extract the misses.
        std::vector<VsaResult> vsa(batch);
        std::vector<char> miss = act;
        bool any_miss = false;
        for (size_t k = 0; k < lanes_used; ++k) {
          if (opt.vsa_cache != nullptr) {
            const auto hit = opt.vsa_cache->lookup(
                bs.ctxs[k].sim(), d, plane.r_values[begin + k], opt.vsa);
            if (hit.has_value()) {
              vsa[k] = *hit;
              miss[k] = 0;
              continue;
            }
          }
          any_miss = true;
        }
        if (any_miss) {
          const std::vector<VsaResult> extracted =
              extract_vsa_batch(*bs.ens, d.side, opt.vsa, miss, &bs.seed);
          for (size_t k = 0; k < lanes_used; ++k) {
            if (miss[k] == 0) continue;
            vsa[k] = extracted[k];
            if (opt.vsa_cache != nullptr)
              opt.vsa_cache->insert(bs.ctxs[k].sim(), d,
                                    plane.r_values[begin + k], opt.vsa,
                                    extracted[k]);
          }
        }
        for (size_t k = 0; k < lanes_used; ++k) {
          plane.vsa_raw[begin + k] = vsa[k];
          plane.vsa[begin + k] = vsa[k].threshold;
        }

        // Probe runs never record a trace and stop after the last sample;
        // the per-op cell voltages are all the plane consumes.
        if (op == OpKind::R) {
          const OpSequence reads(static_cast<size_t>(n_ops), Operation::r());
          std::vector<double> below(batch, 0.0);
          std::vector<double> above(batch, 0.0);
          for (size_t k = 0; k < lanes_used; ++k) {
            below[k] =
                std::max(0.0, vsa[k].threshold - opt.read_probe_offset);
            above[k] =
                std::min(vdd, vsa[k].threshold + opt.read_probe_offset);
          }
          const auto rb = bs.ens->run_batch(reads, d.side, below, act,
                                            /*early_stop=*/true);
          const auto ra = bs.ens->run_batch(reads, d.side, above, act,
                                            /*early_stop=*/true);
          for (size_t k = 0; k < lanes_used; ++k) {
            for (int j = 0; j < n_ops; ++j) {
              plane.curves[static_cast<size_t>(2 * j)].vc[begin + k] =
                  rb[k].ops[static_cast<size_t>(j)].vc;
              plane.curves[static_cast<size_t>(2 * j + 1)].vc[begin + k] =
                  ra[k].ops[static_cast<size_t>(j)].vc;
            }
          }
        } else {
          const int target = op == OpKind::W0 ? 0 : 1;
          const double init = dram::physical_level(d.side, 1 - target, vdd);
          const OpSequence writes(static_cast<size_t>(n_ops), op_of(op));
          const std::vector<double> inits(batch, init);
          const auto rr = bs.ens->run_batch(writes, d.side, inits, act,
                                            /*early_stop=*/true);
          for (size_t k = 0; k < lanes_used; ++k)
            for (int j = 0; j < n_ops; ++j)
              plane.curves[static_cast<size_t>(j)].vc[begin + k] =
                  rr[k].ops[static_cast<size_t>(j)].vc;
        }
      },
      {.threads = opt.threads});
}

}  // namespace

ResultPlane generate_plane(dram::DramColumn& column, const defect::Defect& d,
                           const dram::ColumnSimulator& sim, OpKind op,
                           const PlaneOptions& opt) {
  OBS_SPAN("plane.generate");
  require(opt.num_r_points >= 2, "result plane: need >= 2 R points");
  require(opt.ops_per_point >= 1, "result plane: need >= 1 op");
  const double vdd = sim.conditions().vdd;

  ResultPlane plane;
  plane.op = op;
  plane.vmp = 0.5 * vdd;
  plane.r_values = numeric::logspace(opt.r_lo, opt.r_hi, opt.num_r_points);

  const size_t n_points = plane.r_values.size();
  const int n_ops = opt.ops_per_point;
  const std::vector<double> empty_curve(n_points, 0.0);
  if (op == OpKind::R) {
    for (int k = 0; k < n_ops; ++k) {
      plane.curves.push_back({k + 1, false, empty_curve});
      plane.curves.push_back({k + 1, true, empty_curve});
    }
  } else {
    for (int k = 0; k < n_ops; ++k)
      plane.curves.push_back({k + 1, false, empty_curve});
  }
  plane.vsa.assign(n_points, 0.0);
  plane.vsa_raw.assign(n_points, VsaResult{});

  // Injection::set_value and waveform installation mutate column state, so
  // each worker sweeps its own clone; every R point writes only its own
  // pre-sized slot, keeping results bit-identical across thread counts.
  const dram::TechnologyParams tech = column.tech();
  const dram::OperatingConditions cond = sim.conditions();
  const dram::SimSettings settings = sim.settings();
  const double r_init = plane.r_values.front();
  const int batch = util::resolve_batch(opt.batch);
  if (batch >= 1) {
    sweep_points_batched(plane, d, tech, cond, settings, op, opt,
                         static_cast<size_t>(batch));
    return plane;
  }
  util::parallel_for_state(
      n_points,
      [&] { return defect::SweepContext(tech, d, r_init, cond, settings); },
      [&](defect::SweepContext& ctx, size_t i) {
        OBS_SPAN("plane.point");
        obs::count("plane.points");
        const double r = plane.r_values[i];
        ctx.injection().set_value(r);
        const VsaResult vsa =
            opt.vsa_cache ? opt.vsa_cache->get_or_extract(ctx.sim(), d, r,
                                                          opt.vsa)
                          : extract_vsa(ctx.sim(), d.side, opt.vsa);
        plane.vsa_raw[i] = vsa;
        plane.vsa[i] = vsa.threshold;

        if (op == OpKind::R) {
          // Two read walks bracketing the threshold, as in Fig. 2(c).
          const OpSequence reads(static_cast<size_t>(n_ops), Operation::r());
          const double below =
              std::max(0.0, vsa.threshold - opt.read_probe_offset);
          const double above =
              std::min(vdd, vsa.threshold + opt.read_probe_offset);
          const dram::RunResult rb = ctx.sim().run(reads, below, d.side);
          const dram::RunResult ra = ctx.sim().run(reads, above, d.side);
          for (int k = 0; k < n_ops; ++k) {
            plane.curves[static_cast<size_t>(2 * k)].vc[i] =
                rb.vc_after(static_cast<size_t>(k));
            plane.curves[static_cast<size_t>(2 * k + 1)].vc[i] =
                ra.vc_after(static_cast<size_t>(k));
          }
        } else {
          // Write walks start from the opposite rail: the w0 plane starts
          // from a stored 1, the w1 plane from a stored 0 (physical level
          // depends on the side the cell hangs on).
          const int target = op == OpKind::W0 ? 0 : 1;
          const double init = dram::physical_level(d.side, 1 - target, vdd);
          const OpSequence writes(static_cast<size_t>(n_ops), op_of(op));
          const dram::RunResult rr = ctx.sim().run(writes, init, d.side);
          for (int k = 0; k < n_ops; ++k)
            plane.curves[static_cast<size_t>(k)].vc[i] =
                rr.vc_after(static_cast<size_t>(k));
        }
      },
      {.threads = opt.threads});
  return plane;
}

PlaneSet generate_plane_set(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const PlaneOptions& opt) {
  OBS_SPAN("plane.generate_set");
  // All three planes share one Vsa(R) curve: memoize it so each point is
  // extracted once instead of once per plane.
  VsaCache local_cache;
  PlaneOptions shared = opt;
  if (!shared.vsa_cache) shared.vsa_cache = &local_cache;

  PlaneSet set;
  set.w0 = generate_plane(column, d, sim, OpKind::W0, shared);
  set.w1 = generate_plane(column, d, sim, OpKind::W1, shared);
  set.r = generate_plane(column, d, sim, OpKind::R, shared);
  return set;
}

std::optional<double> plane_border_resistance(const ResultPlane& write_plane,
                                              size_t curve_index) {
  const auto curve = write_plane.curve_interp(curve_index);
  const auto vsa = write_plane.vsa_interp();
  return numeric::first_crossing(curve, vsa, write_plane.r_values.front(),
                                 write_plane.r_values.back(), 1024);
}

namespace {

void append_doubles(util::json::Writer& w, const std::vector<double>& xs) {
  w.begin_array();
  for (const double x : xs) w.value(x);
  w.end_array();
}

}  // namespace

void append_json(util::json::Writer& w, const ResultPlane& p) {
  w.begin_object();
  w.key("op").value(dram::to_string(p.op));
  w.key("vmp").value(p.vmp);
  w.key("r_values");
  append_doubles(w, p.r_values);
  w.key("vsa");
  append_doubles(w, p.vsa);
  w.key("curves");
  w.begin_array();
  for (const PlaneCurve& c : p.curves) {
    w.begin_object();
    w.key("op_number").value(c.op_number);
    w.key("from_above").value(c.from_above);
    w.key("vc");
    append_doubles(w, c.vc);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_json(util::json::Writer& w, const PlaneSet& s) {
  w.begin_object();
  w.key("w0");
  append_json(w, s.w0);
  w.key("w1");
  append_json(w, s.w1);
  w.key("r");
  append_json(w, s.r);
  w.end_object();
}

}  // namespace dramstress::analysis
