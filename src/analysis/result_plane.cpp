#include "analysis/result_plane.hpp"

#include "util/error.hpp"

namespace dramstress::analysis {

using dram::Operation;
using dram::OpKind;
using dram::OpSequence;

numeric::PiecewiseLinear ResultPlane::curve_interp(size_t curve_index) const {
  require(curve_index < curves.size(), "ResultPlane: curve index out of range");
  return numeric::PiecewiseLinear(r_values, curves[curve_index].vc);
}

numeric::PiecewiseLinear ResultPlane::vsa_interp() const {
  return numeric::PiecewiseLinear(r_values, vsa);
}

namespace {

Operation op_of(OpKind kind) {
  switch (kind) {
    case OpKind::W0: return Operation::w0();
    case OpKind::W1: return Operation::w1();
    case OpKind::R: return Operation::r();
    case OpKind::Del: break;
  }
  throw ModelError("result plane: op must be w0, w1 or r");
}

}  // namespace

ResultPlane generate_plane(dram::DramColumn& column, const defect::Defect& d,
                           const dram::ColumnSimulator& sim, OpKind op,
                           const PlaneOptions& opt) {
  require(opt.num_r_points >= 2, "result plane: need >= 2 R points");
  require(opt.ops_per_point >= 1, "result plane: need >= 1 op");
  const double vdd = sim.conditions().vdd;

  ResultPlane plane;
  plane.op = op;
  plane.vmp = 0.5 * vdd;
  plane.r_values = numeric::logspace(opt.r_lo, opt.r_hi, opt.num_r_points);

  const int n_ops = opt.ops_per_point;
  if (op == OpKind::R) {
    for (int k = 0; k < n_ops; ++k) {
      plane.curves.push_back({k + 1, false, {}});
      plane.curves.push_back({k + 1, true, {}});
    }
  } else {
    for (int k = 0; k < n_ops; ++k) plane.curves.push_back({k + 1, false, {}});
  }

  defect::Injection inj(column, d, plane.r_values.front());
  for (double r : plane.r_values) {
    inj.set_value(r);
    const VsaResult vsa = extract_vsa(sim, d.side, opt.vsa);
    plane.vsa_raw.push_back(vsa);
    plane.vsa.push_back(vsa.threshold);

    if (op == OpKind::R) {
      // Two read walks bracketing the threshold, as in Fig. 2(c).
      const OpSequence reads(static_cast<size_t>(n_ops), Operation::r());
      const double below = std::max(0.0, vsa.threshold - opt.read_probe_offset);
      const double above = std::min(vdd, vsa.threshold + opt.read_probe_offset);
      const dram::RunResult rb = sim.run(reads, below, d.side);
      const dram::RunResult ra = sim.run(reads, above, d.side);
      for (int k = 0; k < n_ops; ++k) {
        plane.curves[static_cast<size_t>(2 * k)].vc.push_back(
            rb.vc_after(static_cast<size_t>(k)));
        plane.curves[static_cast<size_t>(2 * k + 1)].vc.push_back(
            ra.vc_after(static_cast<size_t>(k)));
      }
    } else {
      // Write walks start from the opposite rail: the w0 plane starts from
      // a stored 1, the w1 plane from a stored 0 (physical level depends on
      // the side the cell hangs on).
      const int target = op == OpKind::W0 ? 0 : 1;
      const double init = dram::physical_level(d.side, 1 - target, vdd);
      const OpSequence writes(static_cast<size_t>(n_ops), op_of(op));
      const dram::RunResult rr = sim.run(writes, init, d.side);
      for (int k = 0; k < n_ops; ++k)
        plane.curves[static_cast<size_t>(k)].vc.push_back(
            rr.vc_after(static_cast<size_t>(k)));
    }
  }
  return plane;
}

PlaneSet generate_plane_set(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const PlaneOptions& opt) {
  PlaneSet set;
  set.w0 = generate_plane(column, d, sim, OpKind::W0, opt);
  set.w1 = generate_plane(column, d, sim, OpKind::W1, opt);
  set.r = generate_plane(column, d, sim, OpKind::R, opt);
  return set;
}

std::optional<double> plane_border_resistance(const ResultPlane& write_plane,
                                              size_t curve_index) {
  const auto curve = write_plane.curve_interp(curve_index);
  const auto vsa = write_plane.vsa_interp();
  return numeric::first_crossing(curve, vsa, write_plane.r_values.front(),
                                 write_plane.r_values.back(), 1024);
}

}  // namespace dramstress::analysis
