#include "analysis/result_plane.hpp"

#include "defect/sweep_context.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace dramstress::analysis {

using dram::Operation;
using dram::OpKind;
using dram::OpSequence;

numeric::PiecewiseLinear ResultPlane::curve_interp(size_t curve_index) const {
  require(curve_index < curves.size(), "ResultPlane: curve index out of range");
  return numeric::PiecewiseLinear(r_values, curves[curve_index].vc);
}

numeric::PiecewiseLinear ResultPlane::vsa_interp() const {
  return numeric::PiecewiseLinear(r_values, vsa);
}

namespace {

Operation op_of(OpKind kind) {
  switch (kind) {
    case OpKind::W0: return Operation::w0();
    case OpKind::W1: return Operation::w1();
    case OpKind::R: return Operation::r();
    case OpKind::Del: break;
  }
  throw ModelError("result plane: op must be w0, w1 or r");
}

}  // namespace

ResultPlane generate_plane(dram::DramColumn& column, const defect::Defect& d,
                           const dram::ColumnSimulator& sim, OpKind op,
                           const PlaneOptions& opt) {
  OBS_SPAN("plane.generate");
  require(opt.num_r_points >= 2, "result plane: need >= 2 R points");
  require(opt.ops_per_point >= 1, "result plane: need >= 1 op");
  const double vdd = sim.conditions().vdd;

  ResultPlane plane;
  plane.op = op;
  plane.vmp = 0.5 * vdd;
  plane.r_values = numeric::logspace(opt.r_lo, opt.r_hi, opt.num_r_points);

  const size_t n_points = plane.r_values.size();
  const int n_ops = opt.ops_per_point;
  const std::vector<double> empty_curve(n_points, 0.0);
  if (op == OpKind::R) {
    for (int k = 0; k < n_ops; ++k) {
      plane.curves.push_back({k + 1, false, empty_curve});
      plane.curves.push_back({k + 1, true, empty_curve});
    }
  } else {
    for (int k = 0; k < n_ops; ++k)
      plane.curves.push_back({k + 1, false, empty_curve});
  }
  plane.vsa.assign(n_points, 0.0);
  plane.vsa_raw.assign(n_points, VsaResult{});

  // Injection::set_value and waveform installation mutate column state, so
  // each worker sweeps its own clone; every R point writes only its own
  // pre-sized slot, keeping results bit-identical across thread counts.
  const dram::TechnologyParams tech = column.tech();
  const dram::OperatingConditions cond = sim.conditions();
  const dram::SimSettings settings = sim.settings();
  const double r_init = plane.r_values.front();
  util::parallel_for_state(
      n_points,
      [&] { return defect::SweepContext(tech, d, r_init, cond, settings); },
      [&](defect::SweepContext& ctx, size_t i) {
        OBS_SPAN("plane.point");
        obs::count("plane.points");
        const double r = plane.r_values[i];
        ctx.injection().set_value(r);
        const VsaResult vsa =
            opt.vsa_cache ? opt.vsa_cache->get_or_extract(ctx.sim(), d, r,
                                                          opt.vsa)
                          : extract_vsa(ctx.sim(), d.side, opt.vsa);
        plane.vsa_raw[i] = vsa;
        plane.vsa[i] = vsa.threshold;

        if (op == OpKind::R) {
          // Two read walks bracketing the threshold, as in Fig. 2(c).
          const OpSequence reads(static_cast<size_t>(n_ops), Operation::r());
          const double below =
              std::max(0.0, vsa.threshold - opt.read_probe_offset);
          const double above =
              std::min(vdd, vsa.threshold + opt.read_probe_offset);
          const dram::RunResult rb = ctx.sim().run(reads, below, d.side);
          const dram::RunResult ra = ctx.sim().run(reads, above, d.side);
          for (int k = 0; k < n_ops; ++k) {
            plane.curves[static_cast<size_t>(2 * k)].vc[i] =
                rb.vc_after(static_cast<size_t>(k));
            plane.curves[static_cast<size_t>(2 * k + 1)].vc[i] =
                ra.vc_after(static_cast<size_t>(k));
          }
        } else {
          // Write walks start from the opposite rail: the w0 plane starts
          // from a stored 1, the w1 plane from a stored 0 (physical level
          // depends on the side the cell hangs on).
          const int target = op == OpKind::W0 ? 0 : 1;
          const double init = dram::physical_level(d.side, 1 - target, vdd);
          const OpSequence writes(static_cast<size_t>(n_ops), op_of(op));
          const dram::RunResult rr = ctx.sim().run(writes, init, d.side);
          for (int k = 0; k < n_ops; ++k)
            plane.curves[static_cast<size_t>(k)].vc[i] =
                rr.vc_after(static_cast<size_t>(k));
        }
      },
      {.threads = opt.threads});
  return plane;
}

PlaneSet generate_plane_set(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const PlaneOptions& opt) {
  OBS_SPAN("plane.generate_set");
  // All three planes share one Vsa(R) curve: memoize it so each point is
  // extracted once instead of once per plane.
  VsaCache local_cache;
  PlaneOptions shared = opt;
  if (!shared.vsa_cache) shared.vsa_cache = &local_cache;

  PlaneSet set;
  set.w0 = generate_plane(column, d, sim, OpKind::W0, shared);
  set.w1 = generate_plane(column, d, sim, OpKind::W1, shared);
  set.r = generate_plane(column, d, sim, OpKind::R, shared);
  return set;
}

std::optional<double> plane_border_resistance(const ResultPlane& write_plane,
                                              size_t curve_index) {
  const auto curve = write_plane.curve_interp(curve_index);
  const auto vsa = write_plane.vsa_interp();
  return numeric::first_crossing(curve, vsa, write_plane.r_values.front(),
                                 write_plane.r_values.back(), 1024);
}

namespace {

void append_doubles(util::json::Writer& w, const std::vector<double>& xs) {
  w.begin_array();
  for (const double x : xs) w.value(x);
  w.end_array();
}

}  // namespace

void append_json(util::json::Writer& w, const ResultPlane& p) {
  w.begin_object();
  w.key("op").value(dram::to_string(p.op));
  w.key("vmp").value(p.vmp);
  w.key("r_values");
  append_doubles(w, p.r_values);
  w.key("vsa");
  append_doubles(w, p.vsa);
  w.key("curves");
  w.begin_array();
  for (const PlaneCurve& c : p.curves) {
    w.begin_object();
    w.key("op_number").value(c.op_number);
    w.key("from_above").value(c.from_above);
    w.key("vc");
    append_doubles(w, c.vc);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_json(util::json::Writer& w, const PlaneSet& s) {
  w.begin_object();
  w.key("w0");
  append_json(w, s.w0);
  w.key("w1");
  append_json(w, s.w1);
  w.key("r");
  append_json(w, s.r);
  w.end_object();
}

}  // namespace dramstress::analysis
