// Surrogate-accelerated border-resistance search.
//
// The classic search (analysis/border.hpp) treats each transient as a
// boolean oracle: scan a coarse log grid, then bisect the pass/fail flip.
// That discards the continuous information every read already produces --
// the sense margin V(bt) - V(bc) at the decision sample -- and spends
// O(scan_points + log2(step/tol)) full transients per condition.
//
// This module replaces the oracle with a *model*: it root-finds the sense
// margin over ln R, maintaining a monotone cubic (PCHIP) surrogate through
// the real samples collected so far.  Divided-difference error bounds per
// interval say where the surrogate is trustworthy; new transients are spent
// only where the bounded band still straddles zero and the bracket is wider
// than the tolerance.  A cheaply calibrated FastCellModel supplies the
// prior (where to place the first probe, which candidates are worth
// searching at all); real transients always make the final call.
//
// Fallback semantics: if the collected margins violate monotonicity or the
// probe budget runs out, the search falls back to classic boolean bisection
// -- on the sign-verified bracket when one exists (cheap), on the full
// classic scan otherwise.  `surrogate.fallback` counts these.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "analysis/border.hpp"
#include "analysis/fast_model.hpp"

namespace dramstress::analysis {

/// One real probe: the condition's signed pass margin at ln(R) = log_r
/// (margin > 0 <=> the condition passes, see ConditionOutcome).
struct MarginSample {
  double log_r = 0.0;  // ln R
  double margin = 0.0;  // V
};

/// Evaluates the real (transient) margin at resistance r.
using MarginProbe = std::function<double(double r)>;

struct SurrogateSearchResult {
  /// Crossing resistance; nullopt when the condition never fails in range.
  std::optional<double> br;
  bool fails_everywhere = false;
  /// Monotonicity violation or probe budget exhausted: the caller must
  /// re-run the classic search.  When `bracket_lo/hi` are set the flip is
  /// sign-verified between them and classic bisection can start there.
  bool fell_back = false;
  std::optional<double> bracket_lo;  // ohms
  std::optional<double> bracket_hi;  // ohms
  long probes = 0;
  /// Margin slope d(margin)/d(ln R) across the final bracket, set when a
  /// crossing was found.  Fed back as `prior_slope` of the next search at
  /// a neighbouring stress point, it turns the bracketing walk into a
  /// Newton step: one probe measures the margin, the slope converts it
  /// into a distance, and the second probe usually lands on the far side
  /// of the crossing already within tolerance.
  std::optional<double> crossing_slope;
  /// All real samples taken, sorted by log_r (exposed for tests).
  std::vector<MarginSample> samples;
};

/// Root-find the margin's zero crossing over `range`, starting near
/// `prior_log_r` (ln ohms; clamp into range).  `series` selects the
/// crossing direction: series defects pass at low R and fail high
/// (margin decreasing in R), shunts the mirror image.  Pure in `probe`:
/// unit-testable against synthetic curves.
SurrogateSearchResult surrogate_root_search(const MarginProbe& probe,
                                            const defect::SweepRange& range,
                                            bool series, double prior_log_r,
                                            const SurrogateOptions& opt,
                                            std::optional<double> prior_slope =
                                                std::nullopt);

/// Fast-model prior shared by every candidate/corner search of one defect:
/// calibrated once (cheap settings from SurrogateOptions), then queried for
/// predicted margins, predicted BR and predicted failing decades at model
/// cost (microseconds, no transients).
class BorderSurrogate {
public:
  BorderSurrogate(dram::DramColumn& column, const defect::Defect& d,
                  const dram::ColumnSimulator& sim,
                  const SurrogateOptions& opt);

  struct Prediction {
    /// False when the model cannot represent the condition (aggressor /
    /// coupling operations): such candidates are always searched for real
    /// and never pruned or trusted.
    bool reliable = true;
    std::optional<double> br;
    bool fails_everywhere = false;
    double decades = 0.0;  // predicted failing_decades over the range
    /// Smallest predicted |margin| over the range when the condition is
    /// predicted to never fail: how decisively the model rules it out.
    double min_abs_margin = 0.0;  // V (model cell scale)
  };
  /// Predicted pass margin (model scale) of `cond` at resistance r.
  double margin(const DetectionCondition& cond, double r) const;
  Prediction predict(const DetectionCondition& cond,
                     const defect::SweepRange& range) const;

  const FastCellModel& model() const { return model_; }

private:
  FastCellModel model_;
  bool series_ = true;
};

/// Drop-in for find_border_resistance with the surrogate enabled: probes
/// the real margin via condition_outcome, maps the crossing to a
/// BorderResult, and handles the classic fallback internally.
/// `prior_log_r`: ln ohms of the expected BR (from BorderOptions::
/// bracket_hint or a BorderSurrogate prediction); nullopt = mid-range.
BorderResult surrogate_find_border(dram::DramColumn& column,
                                   const defect::Defect& d,
                                   const dram::ColumnSimulator& sim,
                                   const DetectionCondition& cond,
                                   const defect::SweepRange& range,
                                   const BorderOptions& opt,
                                   std::optional<double> prior_log_r =
                                       std::nullopt);

/// Surrogate analogue of analyze_defect: one shared BorderSurrogate ranks
/// and prunes the candidate conditions, priors chain from candidate to
/// candidate, and the refine iterations warm-start from the found BR.
/// Selection replicates the classic tie rule (first candidate within 0.15
/// decades of the best wins) on *measured* decades of every searched
/// candidate.
BorderResult analyze_defect_surrogate(dram::DramColumn& column,
                                      const defect::Defect& d,
                                      const dram::ColumnSimulator& sim,
                                      const BorderOptions& opt);

}  // namespace dramstress::analysis
