// Border resistance extraction (paper Section 3).
//
// The border resistance (BR) of a defect under a given test is the defect
// resistance at which the memory starts to show faulty behaviour: for
// series defects (opens) faults appear for R >= BR, for shunt defects
// (shorts/bridges) for R <= BR.  The optimization criterion of the paper
// (Section 3) is to drive each stress in the direction that moves BR so
// that the failing resistance range is maximized.
#pragma once

#include <functional>
#include <optional>

#include "analysis/detection.hpp"
#include "analysis/surrogate_options.hpp"
#include "defect/defect.hpp"

namespace dramstress::util::json {
class Writer;
}

namespace dramstress::analysis {

struct BorderOptions {
  int scan_points = 9;        // coarse log grid before bisection
  double log_tol = 0.02;      // bisection tolerance in ln(R)
  DetectionOptions detection;
  /// Iterations of (find BR -> re-derive charging count at BR).  The paper
  /// notes the detection condition itself depends on where BR lands
  /// (Fig. 6: the stressed SC needs more charging writes).
  int refine_iterations = 2;
  /// Warm start: a BR expected near the answer (the previous stress
  /// point's result -- BR moves little between adjacent stress values).
  /// The search then brackets the hint one coarse-grid step wide and
  /// expands geometrically instead of scanning the whole range, falling
  /// back to the full-range endpoints for the never-fails /
  /// fails-everywhere verdicts.  Affects probe count, not the verdict,
  /// for the monotone fail(R) predicates the detection conditions produce.
  std::optional<double> bracket_hint;
  /// Companion to bracket_hint for the surrogate path: the sense-margin
  /// slope d(margin)/d(ln R) near the hinted BR (BorderResult::margin_slope
  /// of the neighbouring search).  Lets the surrogate take a Newton step
  /// instead of a geometric walk; ignored by the classic search.
  std::optional<double> margin_slope_hint;
  /// Surrogate-accelerated search (analysis/surrogate.hpp).  When enabled
  /// (the default, see default_surrogate_enabled), find_border_resistance
  /// and analyze_defect dispatch to the margin-root-finding path; disabled,
  /// the classic scan+bisection below runs byte-identically to before the
  /// surrogate existed.
  SurrogateOptions surrogate;
};

struct BorderResult {
  /// The border resistance; nullopt if the test never fails in the range.
  std::optional<double> br;
  /// True if the faulty region is R >= br (series defect), false if R <= br.
  bool fault_at_high_r = true;
  /// The detection condition whose failing range br delimits.
  DetectionCondition condition;
  /// True if the test fails across the entire sweep range.
  bool fails_everywhere = false;
  /// Sense-margin slope d(margin)/d(ln R) at the border, reported by the
  /// surrogate search (unset on the classic path).  Feed it into the next
  /// neighbouring search's margin_slope_hint together with bracket_hint.
  /// Search-internal state, deliberately NOT serialized by append_json:
  /// the campaign payload schema is unchanged by the surrogate.
  std::optional<double> margin_slope;

  /// Width of the failing range in decades of resistance (the coverage
  /// proxy the paper's criterion maximizes); 0 when br is absent.
  double failing_decades(const defect::SweepRange& range) const;
};

/// Find the BR of `cond` for defect `d` (injection swept over `range`).
BorderResult find_border_resistance(dram::DramColumn& column,
                                    const defect::Defect& d,
                                    const dram::ColumnSimulator& sim,
                                    const DetectionCondition& cond,
                                    const defect::SweepRange& range,
                                    const BorderOptions& opt = {});

/// Full Section-3 flow: derive a detection condition at a surely-faulty
/// reference value, find its BR, then iterate the charging count at the BR
/// (refine_iterations times).  Returns nullopt in BorderResult::br if no
/// candidate condition ever fails.
BorderResult analyze_defect(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const BorderOptions& opt = {});

/// Emit `r` as a JSON object (br, fault_at_high_r, fails_everywhere,
/// condition, failing_decades over `range`) -- the campaign cache payload.
void append_json(util::json::Writer& w, const BorderResult& r,
                 const defect::SweepRange& range);

}  // namespace dramstress::analysis
