#include "analysis/vsa.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/rootfind.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace dramstress::analysis {

VsaResult extract_vsa(const dram::ColumnSimulator& sim, dram::Side side,
                      const VsaOptions& opt) {
  OBS_SPAN("vsa.extract");
  const double vdd = sim.conditions().vdd;
  const int at_zero = sim.read_of_initial(0.0, side);
  const int at_vdd = sim.read_of_initial(vdd, side);

  VsaResult out;
  if (at_zero == 1 && at_vdd == 1) {
    out.kind = VsaResult::Kind::AlwaysOne;
    out.threshold = 0.0;
    return out;
  }
  if (at_zero == 0 && at_vdd == 0) {
    out.kind = VsaResult::Kind::AlwaysZero;
    out.threshold = vdd;
    return out;
  }
  // At this point the read flips somewhere in (0, vdd).  A healthy column
  // reads 0 at 0 V and 1 at vdd; an inverted pair would indicate a
  // catastrophic defect -- treat the flip boundary as the threshold either
  // way (bisection only needs the endpoints to differ).
  out.kind = VsaResult::Kind::Normal;
  out.threshold = numeric::bisect_predicate(
      [&](double v) { return sim.read_of_initial(v, side) == at_zero; }, 0.0,
      vdd, {.x_tol = opt.tolerance});
  return out;
}

namespace {

/// Per-lane search state on the dyadic grid {0, 1, ..., M}, voltage
/// v(j) = vdd * j / M.  The invariant maintained throughout: index `lo`
/// reads `az` (the bit of the low-voltage side), index `hi` reads the
/// opposite; the threshold is the midpoint of the final flip pair
/// (hi == lo + 1), a value independent of the search path.
struct LaneSearch {
  enum class Phase {
    ProbeZero,    // unseeded: classify the 0 V endpoint
    ProbeVdd,     // unseeded: classify the vdd endpoint
    GallopFirst,  // seeded: first probe at the seed's grid index
    GallopUp,     // seeded: doubling steps towards vdd
    GallopDown,   // seeded: doubling steps towards 0
    ConfirmLow,   // gallop hit vdd uniformly: check 0 before declaring Always*
    ConfirmHigh,  // gallop hit 0 with flipped polarity: check vdd
    Bisect,       // bracket [lo, hi] established, shrink it
    Done,
  };
  Phase phase = Phase::Done;
  int az = 0;    // read bit of the low-voltage side
  int lo = 0;    // highest index known to read az
  int hi = 0;    // lowest index known to read !az
  int j = 0;     // index probed this round
  int j0 = 0;    // gallop origin (from the seed)
  int step = 1;  // current gallop stride
  VsaResult result;
};

double grid_v(int j, int m, double vdd) {
  return vdd * static_cast<double>(j) / static_cast<double>(m);
}

void finish_always(LaneSearch& s, double vdd) {
  s.result.kind = s.az == 1 ? VsaResult::Kind::AlwaysOne
                            : VsaResult::Kind::AlwaysZero;
  s.result.threshold = s.az == 1 ? 0.0 : vdd;
  s.phase = LaneSearch::Phase::Done;
}

void bisect_or_finish(LaneSearch& s, int m, double vdd) {
  if (s.hi - s.lo == 1) {
    s.result.kind = VsaResult::Kind::Normal;
    s.result.threshold =
        0.5 * (grid_v(s.lo, m, vdd) + grid_v(s.hi, m, vdd));
    s.phase = LaneSearch::Phase::Done;
    return;
  }
  s.j = (s.lo + s.hi) / 2;
  s.phase = LaneSearch::Phase::Bisect;
}

void advance(LaneSearch& s, int bit, int m, double vdd) {
  using Phase = LaneSearch::Phase;
  switch (s.phase) {
    case Phase::ProbeZero:
      s.az = bit;
      s.j = m;
      s.phase = Phase::ProbeVdd;
      break;
    case Phase::ProbeVdd:
      if (bit == s.az) {
        finish_always(s, vdd);
      } else {
        s.lo = 0;
        s.hi = m;
        bisect_or_finish(s, m, vdd);
      }
      break;
    case Phase::GallopFirst:
      s.step = 1;
      if (bit == s.az) {
        s.lo = s.j0;
        s.j = std::min(s.j0 + 1, m);
        s.phase = Phase::GallopUp;
      } else {
        s.hi = s.j0;
        s.j = std::max(s.j0 - 1, 0);
        s.phase = Phase::GallopDown;
      }
      break;
    case Phase::GallopUp:
      if (bit != s.az) {
        s.hi = s.j;
        bisect_or_finish(s, m, vdd);
      } else if (s.j == m) {
        // Uniform up to vdd; the 0 V side was never probed (the seed's
        // polarity was assumed), so confirm before declaring Always*.
        s.lo = s.j;
        s.j = 0;
        s.phase = Phase::ConfirmLow;
      } else {
        s.lo = s.j;
        s.step *= 2;
        s.j = std::min(s.j0 + s.step, m);
      }
      break;
    case Phase::GallopDown:
      if (bit == s.az) {
        s.lo = s.j;
        bisect_or_finish(s, m, vdd);
      } else if (s.j == 0) {
        // The 0 V read disagrees with the seed's polarity: adopt the
        // actual low-side bit.  Every index probed so far (up to j0) reads
        // it too, so the bracket's low end is j0; the high end is unknown.
        s.az = bit;
        s.lo = s.j0;
        s.j = m;
        s.phase = Phase::ConfirmHigh;
      } else {
        s.hi = s.j;
        s.step *= 2;
        s.j = std::max(s.j0 - s.step, 0);
      }
      break;
    case Phase::ConfirmLow:
      if (bit == s.az) {
        finish_always(s, vdd);
      } else {
        // Polarity flip at the low end: with the corrected az, every index
        // probed during the gallop (j0 and above) reads the opposite bit.
        s.az = bit;
        s.lo = 0;
        s.hi = s.j0;
        bisect_or_finish(s, m, vdd);
      }
      break;
    case Phase::ConfirmHigh:
      if (bit == s.az) {
        finish_always(s, vdd);
      } else {
        s.hi = m;
        bisect_or_finish(s, m, vdd);
      }
      break;
    case Phase::Bisect:
      if (bit == s.az)
        s.lo = s.j;
      else
        s.hi = s.j;
      bisect_or_finish(s, m, vdd);
      break;
    case Phase::Done:
      break;
  }
}

}  // namespace

std::vector<VsaResult> extract_vsa_batch(dram::EnsembleColumnSim& sim,
                                         dram::Side side,
                                         const VsaOptions& opt,
                                         const std::vector<char>& active,
                                         VsaSeed* seed) {
  OBS_SPAN("vsa.extract_batch");
  const size_t nlanes = sim.num_lanes();
  std::vector<char> act = active;
  if (act.empty()) act.assign(nlanes, 1);
  require(act.size() == nlanes,
          "extract_vsa_batch: active mask size must match lane count");
  const double vdd = sim.lane(0).conditions().vdd;
  require(opt.tolerance > 0.0, "extract_vsa_batch: tolerance must be positive");

  // Dyadic grid fine enough that a flip pair's spacing is within tolerance.
  int k = 1;
  while (vdd / static_cast<double>(1 << k) > opt.tolerance && k < 20) ++k;
  const int m = 1 << k;

  std::vector<LaneSearch> st(nlanes);
  std::vector<double> vc(nlanes, 0.0);
  std::vector<char> mask(nlanes, 0);

  const auto seed_lane = [&](LaneSearch& s, int az, double threshold) {
    s.az = az;
    s.j0 = std::clamp(
        static_cast<int>(std::lround(threshold / vdd *
                                     static_cast<double>(m))),
        1, m - 1);
    s.j = s.j0;
    s.phase = LaneSearch::Phase::GallopFirst;
  };

  // Lockstep probe rounds over `subset` until every lane in it is Done.
  const auto run_rounds = [&](const std::vector<char>& subset) {
    for (;;) {
      long probing = 0;
      for (size_t l = 0; l < nlanes; ++l) {
        const bool on =
            subset[l] != 0 && st[l].phase != LaneSearch::Phase::Done;
        mask[l] = on ? 1 : 0;
        if (on) {
          vc[l] = grid_v(st[l].j, m, vdd);
          ++probing;
        }
      }
      if (probing == 0) break;
      obs::count("vsa.batch_rounds");
      obs::count("vsa.probes", probing);
      // A probe only decides a comparator bit (BT vs BC after sensing),
      // not a waveform, so its step controller can run at a loosened LTE
      // tolerance.  The scale is a fixed constant: every probe of every
      // batch size sees the same tolerance, so batch-1 and batch-N stay
      // bit-identical; the extracted threshold can move by at most one
      // grid cell relative to a full-tolerance run, which is within the
      // Vsa tolerance contract.
      constexpr double kProbeLteScale = 4.0;
      const std::vector<int> bits = sim.read_of_initial_batch(
          vc, side, mask, /*early_stop=*/true, kProbeLteScale);
      for (size_t l = 0; l < nlanes; ++l)
        if (mask[l] != 0) advance(st[l], bits[l], m, vdd);
    }
  };

  const bool seeded = seed != nullptr && seed->valid;
  if (seeded) {
    for (size_t l = 0; l < nlanes; ++l)
      if (act[l] != 0) seed_lane(st[l], seed->at_zero, seed->threshold);
    run_rounds(act);
  } else {
    // Cold batch: every lane runs the full grid search in lockstep.  A
    // pilot-lane variant (resolve lane 0 alone, gallop-seed the rest) was
    // tried and measured slower here: thresholds move by the full Vsa
    // range across a defect-R sweep -- that spread is the paper's signal
    // -- so the gallop walks nearly as far as a cold bisection while
    // serialising the pilot's rounds.  Seeding only pays across *batches*
    // (the R-continuation path above), where the seed comes from the
    // nearest neighbour of the whole previous batch.
    for (size_t l = 0; l < nlanes; ++l) {
      if (act[l] == 0) continue;
      st[l].j = 0;
      st[l].phase = LaneSearch::Phase::ProbeZero;
    }
    run_rounds(act);
  }

  std::vector<VsaResult> out(nlanes);
  for (size_t l = 0; l < nlanes; ++l) {
    if (act[l] == 0) continue;
    out[l] = st[l].result;
    if (seed != nullptr) {
      seed->valid = true;
      seed->threshold = st[l].result.threshold;
      seed->at_zero = st[l].az;
    }
  }
  return out;
}

}  // namespace dramstress::analysis
