#include "analysis/vsa.hpp"

#include "numeric/rootfind.hpp"
#include "obs/span.hpp"

namespace dramstress::analysis {

VsaResult extract_vsa(const dram::ColumnSimulator& sim, dram::Side side,
                      const VsaOptions& opt) {
  OBS_SPAN("vsa.extract");
  const double vdd = sim.conditions().vdd;
  const int at_zero = sim.read_of_initial(0.0, side);
  const int at_vdd = sim.read_of_initial(vdd, side);

  VsaResult out;
  if (at_zero == 1 && at_vdd == 1) {
    out.kind = VsaResult::Kind::AlwaysOne;
    out.threshold = 0.0;
    return out;
  }
  if (at_zero == 0 && at_vdd == 0) {
    out.kind = VsaResult::Kind::AlwaysZero;
    out.threshold = vdd;
    return out;
  }
  // At this point the read flips somewhere in (0, vdd).  A healthy column
  // reads 0 at 0 V and 1 at vdd; an inverted pair would indicate a
  // catastrophic defect -- treat the flip boundary as the threshold either
  // way (bisection only needs the endpoints to differ).
  out.kind = VsaResult::Kind::Normal;
  out.threshold = numeric::bisect_predicate(
      [&](double v) { return sim.read_of_initial(v, side) == at_zero; }, 0.0,
      vdd, {.x_tol = opt.tolerance});
  return out;
}

}  // namespace dramstress::analysis
