#include "analysis/surrogate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numbers>

#include "numeric/interp.hpp"
#include "numeric/rootfind.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::analysis {

using defect::Injection;
using defect::SweepRange;
using dram::OpKind;
using dram::Operation;
using dram::Side;

// --- process-wide defaults (CLI-configured, see surrogate_options.hpp) -----

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<double> g_tol{0.02};
}  // namespace

bool default_surrogate_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
void set_default_surrogate_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
double default_surrogate_tol() {
  return g_tol.load(std::memory_order_relaxed);
}
void set_default_surrogate_tol(double tol) {
  require(tol > 0.0, "set_default_surrogate_tol: tolerance must be > 0");
  g_tol.store(tol, std::memory_order_relaxed);
}

// --- root search -----------------------------------------------------------

namespace {

/// Slack for the shape check: adjacent real margins may wiggle against the
/// monotone direction by up to the transient engine's voltage noise floor
/// (lte_tol-scale, about a millivolt on rail-scale nodes) without meaning
/// the predicate itself is non-monotone.
constexpr double kShapeEps = 5e-3;  // V

/// The walk's maximum hop is one classic coarse-grid step (the classic
/// scan uses scan_points = 9 over the same range).  Hops never grow past
/// that: a coarser walk could leap over a failing region narrower than a
/// grid step that the classic scan *would* have caught, and the walk's
/// range-wide verdicts (never fails / fails everywhere) must stay exactly
/// as trustworthy as the classic scan's.
constexpr int kWalkDivisions = 8;

bool margin_fails(double m) { return !(m > 0.0); }

/// Insert keeping samples sorted by log_r; drop exact-duplicate abscissae
/// (re-probing the same R returns the same margin -- the sim is
/// deterministic -- and duplicate knots would break the interpolant).
void insert_sample(std::vector<MarginSample>& samples, double x, double m) {
  auto it = std::lower_bound(
      samples.begin(), samples.end(), x,
      [](const MarginSample& s, double v) { return s.log_r < v; });
  if (it != samples.end() && it->log_r == x) return;
  samples.insert(it, MarginSample{x, m});
}

/// Expected-direction monotonicity: series margins fall with R (pass at low
/// R, fail high), shunt margins rise.  Violations beyond kShapeEps mean the
/// pass/fail predicate is not the single-crossing function the surrogate
/// assumes, so the caller must fall back to classic bisection.
bool shape_ok(const std::vector<MarginSample>& samples, bool series) {
  for (size_t i = 1; i < samples.size(); ++i) {
    const double d = samples[i].margin - samples[i - 1].margin;
    if (series ? d > kShapeEps : d < -kShapeEps) return false;
  }
  return true;
}

}  // namespace

SurrogateSearchResult surrogate_root_search(const MarginProbe& probe,
                                            const SweepRange& range,
                                            bool series, double prior_log_r,
                                            const SurrogateOptions& opt,
                                            std::optional<double> prior_slope) {
  require(range.lo > 0.0 && range.hi > range.lo,
          "surrogate_root_search: bad sweep range");
  const double lo_x = std::log(range.lo);
  const double hi_x = std::log(range.hi);
  SurrogateSearchResult out;
  long refine_probes = 0;

  auto sample_at = [&](double x) {
    ++out.probes;
    const double m = probe(std::exp(x));
    insert_sample(out.samples, x, m);
    return m;
  };
  auto give_up = [&](std::optional<double> bl, std::optional<double> bh) {
    out.fell_back = true;
    if (bl.has_value()) out.bracket_lo = std::exp(*bl);
    if (bh.has_value()) out.bracket_hi = std::exp(*bh);
    obs::count("surrogate.refine", refine_probes);
    return out;
  };
  auto margin_at = [&](double x) {
    for (const MarginSample& s : out.samples)
      if (s.log_r == x) return s.margin;
    return 0.0;
  };
  // Series margins fall with ln R, shunt margins rise: a slope hint of the
  // wrong sign (or nonsense) is discarded rather than trusted.
  auto slope_usable = [&](double s) {
    return std::isfinite(s) && (series ? s < 0.0 : s > 0.0);
  };

  // --- walk from the prior to a sign-verified bracket ---------------------
  const double x0 = std::clamp(prior_log_r, lo_x, hi_x);
  const double m0 = sample_at(x0);
  const bool start_fails = margin_fails(m0);
  // A passing start walks toward the failing extreme (high R for series
  // defects, low R for shunts); a failing start walks toward the passing
  // extreme.  Both reduce to: walk down exactly when the start verdict
  // matches the series flag.  The predicate is monotone, so reaching the
  // extreme without a sign change is a range-wide verdict, exactly like
  // the classic full scan's.
  const double target_end = start_fails == series ? lo_x : hi_x;
  const double dir = target_end >= x0 ? 1.0 : -1.0;
  const double step_max = (hi_x - lo_x) / kWalkDivisions;
  // The hop schedule grows geometrically from tolerance scale up to one
  // classic grid step.  A warm-start prior is usually within a few
  // tolerances of the crossing, and the bracket the walk leaves behind is
  // as wide as its last hop -- small early hops mean cliff-shaped margins
  // (saturated, no analog information) get a nearly-converged bracket
  // instead of a full grid step to bisect.
  double step = std::min(opt.tol, step_max);
  double slope = 0.0;
  bool have_slope = false;
  if (prior_slope.has_value() && slope_usable(*prior_slope)) {
    slope = *prior_slope;
    have_slope = true;
  }
  double prev_x = x0;
  double prev_m = m0;
  std::optional<double> flip_x;  // first sample whose verdict differs
  while (true) {
    if (std::abs(target_end - prev_x) < 1e-12) {
      // Extreme reached, no sign change anywhere along the walk.
      if (!start_fails) return out;  // never fails: br stays nullopt
      out.fails_everywhere = true;
      out.br = std::exp(target_end);
      return out;
    }
    if (out.probes >= opt.max_probes)
      return give_up(std::nullopt, std::nullopt);
    double hop = step;
    if (have_slope) {
      // Newton step off the latest sample, overshot by 25% so a good
      // slope lands the probe just past the crossing (an instant, narrow
      // bracket) instead of asymptotically short of it.  The floor keeps
      // progress when the margin is already tiny; the cap distrusts
      // slopes extrapolated far beyond where they were measured.
      const double newton = -prev_m / slope;
      if (newton * dir > 0.0)
        hop = std::clamp(1.25 * std::abs(newton), 0.5 * opt.tol, step);
    }
    double nx = prev_x + dir * hop;
    nx = dir > 0 ? std::min(nx, target_end) : std::max(nx, target_end);
    const double nm = sample_at(nx);
    if (margin_fails(nm) != start_fails) {
      flip_x = nx;
      break;
    }
    if (nx != prev_x) {
      // Only a secant with a meaningful margin change carries distance
      // information.  Two samples on a saturated plateau differ by solver
      // noise (~1e-4 V); dividing that by a small dx fabricates a tiny
      // slope whose Newton step then overshoots catastrophically.  A flat
      // stretch instead *invalidates* whatever slope was being carried:
      // the crossing is not where that slope said it was.
      const double secant = (nm - prev_m) / (nx - prev_x);
      if (std::abs(nm - prev_m) > kShapeEps) {
        if (slope_usable(secant)) {
          slope = secant;
          have_slope = true;
        }
      } else {
        have_slope = false;
      }
    }
    prev_x = nx;
    prev_m = nm;
    // Grow the schedule only when a full geometric hop was actually taken:
    // a Newton-sized creep step must not inflate the next fallback hop, or
    // one bad slope widens the eventual bracket by 4x.
    if (hop >= step) step = std::min(2.0 * step, step_max);
  }

  // Bracket in x order; `bl` and `bh` always carry opposite verdicts and
  // are adjacent knots of the sample set.
  double bl = std::min(prev_x, *flip_x);
  double bh = std::max(prev_x, *flip_x);
  const bool fails_at_high = series;  // verdict on the bh side of a bracket
  auto report_slope = [&]() {
    // Margins beyond ~1 V are clipped at the comparator rails; a secant
    // across two clipped samples measures the clip, not the crossing, and
    // a downstream Newton step off it creeps uselessly.  Cliff-shaped
    // crossings therefore report no slope -- the next search's plain
    // geometric walk beats a creeping one.
    constexpr double kAnalogMarginMax = 1.0;  // V
    const double ml = margin_at(bl);
    const double mh = margin_at(bh);
    if (std::min(std::abs(ml), std::abs(mh)) >= kAnalogMarginMax) return;
    const double s = (mh - ml) / (bh - bl);
    if (slope_usable(s)) out.crossing_slope = s;
  };

  // --- PCHIP refinement, probing only while the bracket is too wide -------
  while (bh - bl > opt.tol) {
    if (!shape_ok(out.samples, series)) return give_up(bl, bh);
    if (out.probes >= opt.max_probes) return give_up(bl, bh);

    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(out.samples.size());
    ys.reserve(out.samples.size());
    for (const MarginSample& s : out.samples) {
      xs.push_back(s.log_r);
      ys.push_back(s.margin);
    }
    const numeric::MonotoneCubic curve(std::move(xs), std::move(ys));

    // Error-bound acceptance: the cubic's truncation scale on the bracket
    // interval, divided by the local slope, bounds how far the
    // interpolant's zero can sit from the real crossing.  Once that is
    // well inside the tolerance the crossing is located without spending
    // the remaining bisection probes.  The bound is a divided-difference
    // *estimate*, so acceptance additionally requires the bracket itself
    // to be nearly converged (<= 2 tol): even a lying bound can then put
    // the answer at most one bracket width off, classic-bisection class.
    const auto knot = std::lower_bound(curve.xs().begin(), curve.xs().end(),
                                       bl) -
                      curve.xs().begin();
    const size_t ki = static_cast<size_t>(knot);
    if (out.samples.size() >= 4 && ki + 1 < curve.size() &&
        bh - bl <= 2.0 * opt.tol) {
      const double slope = (curve.ys()[ki + 1] - curve.ys()[ki]) / (bh - bl);
      const double bound = curve.interval_error_bound(ki);
      if (bound > 0.0 && std::abs(slope) > 1e-12 &&
          bound / std::abs(slope) <= 0.5 * opt.tol) {
        const std::optional<double> xz = curve.first_zero(bl, bh);
        out.br = std::exp(xz.value_or(0.5 * (bl + bh)));
        report_slope();
        obs::count("surrogate.refine", refine_probes);
        return out;
      }
    }

    // Next probe at the interpolant's zero, safeguarded to the bracket's
    // interior (a zero hugging an endpoint degenerates to no progress; the
    // midpoint keeps worst-case convergence at bisection speed).
    const std::optional<double> xz = curve.first_zero(bl, bh);
    const double w = bh - bl;
    double xn = 0.5 * (bl + bh);
    if (xz.has_value() && *xz > bl + 0.1 * w && *xz < bh - 0.1 * w) xn = *xz;
    ++refine_probes;
    const double mn = sample_at(xn);

    // A-posteriori Newton acceptance: the *measured* margin at the probe,
    // over the bracket's real secant slope, says how far the probe sits
    // from the crossing.  Inside half a tolerance, one corrected step
    // locates the crossing to second order -- and unlike the bound above,
    // a real transient made the final call.
    const double sec = (margin_at(bh) - margin_at(bl)) / (bh - bl);
    const double newton_dist = slope_usable(sec) ? -mn / sec : 2.0 * opt.tol;
    if (margin_fails(mn) == fails_at_high)
      bh = xn;
    else
      bl = xn;
    if (std::abs(newton_dist) <= 0.5 * opt.tol) {
      out.br = std::exp(std::clamp(xn + newton_dist, bl, bh));
      report_slope();
      obs::count("surrogate.refine", refine_probes);
      return out;
    }
  }

  // Same convention as numeric::bisect_predicate_log: midpoint of the
  // final log-space bracket.
  out.br = std::exp(0.5 * (bl + bh));
  report_slope();
  obs::count("surrogate.refine", refine_probes);
  return out;
}

// --- fast-model prior ------------------------------------------------------

namespace {

FastCalibOptions cheap_calibration(const SurrogateOptions& opt) {
  FastCalibOptions c;
  c.vsa_points = std::max(2, opt.vsa_knots);
  c.vsa_tol = opt.vsa_tol;
  return c;
}

}  // namespace

BorderSurrogate::BorderSurrogate(dram::DramColumn& column,
                                 const defect::Defect& d,
                                 const dram::ColumnSimulator& sim,
                                 const SurrogateOptions& opt)
    : model_(FastCellModel::calibrate(column, d, sim, cheap_calibration(opt))),
      series_(defect::is_series(d.kind)) {
  obs::count("surrogate.fit");
}

double BorderSurrogate::margin(const DetectionCondition& cond,
                               double r) const {
  FastCellModel m = model_;
  m.set_defect_resistance(r);
  const Side side = m.defect().side;
  const double vdd = m.params().vdd;
  m.set_vc(dram::physical_level(side, cond.init_logical, vdd));
  require(!cond.ops.empty() && cond.ops.back().kind == OpKind::R,
          "BorderSurrogate: condition must end in a read");
  for (size_t i = 0; i + 1 < cond.ops.size(); ++i) {
    const Operation& op = cond.ops[i];
    if (op.neighbor) continue;  // no coupling in the cell model
    switch (op.kind) {
      case OpKind::W0: m.write(0); break;
      case OpKind::W1: m.write(1); break;
      case OpKind::R: m.read(); break;
      case OpKind::Del: m.idle(op.del_seconds); break;
    }
  }
  // The final read compares Vc against the calibrated threshold; sign the
  // distance so that positive means the read returns cond.expected
  // (mirrors ConditionOutcome::margin, but on the cell-voltage scale --
  // magnitudes are not comparable across the two).
  const double th = m.vsa_threshold();
  const bool expect_high = (side == Side::True) == (cond.expected == 1);
  return expect_high ? m.vc() - th : th - m.vc();
}

BorderSurrogate::Prediction BorderSurrogate::predict(
    const DetectionCondition& cond, const SweepRange& range) const {
  Prediction p;
  for (const Operation& op : cond.ops) {
    if (op.neighbor) {
      p.reliable = false;  // the model cannot see aggressor operations
      return p;
    }
  }
  constexpr int kGrid = 33;
  const auto grid = numeric::logspace(range.lo, range.hi, kGrid);
  std::vector<double> margins(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) margins[i] = margin(cond, grid[i]);

  std::optional<size_t> edge;
  if (series_) {
    for (size_t i = 0; i < grid.size(); ++i)
      if (margin_fails(margins[i])) { edge = i; break; }
  } else {
    for (size_t i = grid.size(); i-- > 0;)
      if (margin_fails(margins[i])) { edge = i; break; }
  }
  if (!edge.has_value()) {
    p.min_abs_margin = *std::min_element(margins.begin(), margins.end());
    return p;  // predicted to never fail
  }
  const size_t e = *edge;
  if ((series_ && e == 0) || (!series_ && e == grid.size() - 1)) {
    p.fails_everywhere = true;
    p.br = series_ ? range.lo : range.hi;
    p.decades = std::log10(range.hi / range.lo);
    return p;
  }
  const double lo = series_ ? grid[e - 1] : grid[e];
  const double hi = series_ ? grid[e] : grid[e + 1];
  p.br = numeric::bisect_predicate_log(
      [&](double r) { return margin_fails(margin(cond, r)); }, lo, hi,
      {.x_tol = 0.01});
  p.decades = series_ ? std::log10(range.hi / *p.br)
                      : std::log10(*p.br / range.lo);
  return p;
}

// --- border search / analyze entry points ----------------------------------

BorderResult surrogate_find_border(dram::DramColumn& column,
                                   const defect::Defect& d,
                                   const dram::ColumnSimulator& sim,
                                   const DetectionCondition& cond,
                                   const SweepRange& range,
                                   const BorderOptions& opt,
                                   std::optional<double> prior_log_r) {
  OBS_SPAN("surrogate.find");
  BorderResult result;
  result.condition = cond;
  result.fault_at_high_r = defect::is_series(d.kind);
  const bool series = result.fault_at_high_r;

  double prior = 0.5 * (std::log(range.lo) + std::log(range.hi));
  bool prior_is_hint = false;  // neighbour's measured BR, not a model guess
  if (prior_log_r.has_value()) {
    prior = *prior_log_r;
  } else if (opt.bracket_hint.has_value() && std::isfinite(*opt.bracket_hint) &&
             *opt.bracket_hint > range.lo && *opt.bracket_hint < range.hi) {
    // Same gate as the classic path: a hint outside the sweep range is not
    // a usable prior (clamping it to an extreme would start the walk at
    // the one point whose verdict decides a range-wide claim).
    prior = std::log(*opt.bracket_hint);
    prior_is_hint = true;
  }

  SurrogateSearchResult sr;
  {
    Injection inj(column, d, range.lo);
    long probes = 0;
    const MarginProbe probe = [&](double r) {
      ++probes;
      inj.set_value(r);
      return condition_outcome(sim, d.side, cond).margin;
    };
    sr = surrogate_root_search(probe, range, series, prior, opt.surrogate,
                               opt.margin_slope_hint);
    obs::count("border.bisect.iters", probes);

    // Hint-trust check: BR moves little between the neighbouring searches
    // that supply bracket_hint, so a crossing found decades away from the
    // hint means the walk tunnelled into a different basin of a
    // non-monotone predicate (B1's delayed read has two failing regions).
    // Only the classic full scan sees the whole range; let it re-decide.
    bool implausible =
        prior_is_hint && !sr.fell_back &&
        (sr.br.has_value() && !sr.fails_everywhere
             ? std::abs(std::log10(*sr.br) - prior / std::numbers::ln10) > 1.5
             // A range-wide verdict (never fails / fails everywhere)
             // contradicts the hint's promise of a border nearby, and the
             // walk's blind stretch -- between the passing extreme and the
             // prior -- can hide a failing island the classic grid scan is
             // guaranteed to probe.  Only the full scan decides.
             : true);
    // Classic-grid audit for hint-warmed searches: the crossing's claim is
    // "everything beyond br fails", and the classic scan would have probed
    // its fixed grid there.  One probe at the nearest grid point on the
    // claimed-failing side catches a crossing that belongs to a narrow
    // failing island the grid steps over (O2's mirrored condition at
    // Vdd=2.7 V grows a passing gap right above such an island, moving the
    // classic BR a full decade).  A passing audit probe means the claim is
    // wrong at a point the classic search is guaranteed to see.
    if (prior_is_hint && !sr.fell_back && !implausible && sr.br.has_value() &&
        !sr.fails_everywhere) {
      const double lo_x = std::log(range.lo);
      const double hi_x = std::log(range.hi);
      const double g =
          (hi_x - lo_x) / static_cast<double>(std::max(2, opt.scan_points) - 1);
      const double bx = std::log(*sr.br);
      const double k = series ? std::ceil((bx - lo_x) / g + 1e-9)
                              : std::floor((bx - lo_x) / g - 1e-9);
      const double xa = std::clamp(lo_x + k * g, lo_x, hi_x);
      if (series ? xa > bx : xa < bx) {
        inj.set_value(std::exp(xa));
        obs::count("surrogate.verify");
        if (!condition_fails(sim, d.side, cond)) implausible = true;
      }
    }
    if (!sr.fell_back && !implausible) {
      result.br = sr.br;
      result.fails_everywhere = sr.fails_everywhere;
      result.margin_slope = sr.crossing_slope;
      return result;
    }
    obs::count("surrogate.fallback");
    if (!implausible && sr.bracket_lo.has_value() &&
        sr.bracket_hi.has_value() && *sr.bracket_hi > *sr.bracket_lo) {
      // The flip is sign-verified inside the bracket: classic bisection
      // can start there instead of re-scanning the whole range.
      result.br = numeric::bisect_predicate_log(
          [&](double r) {
            inj.set_value(r);
            return condition_fails(sim, d.side, cond);
          },
          *sr.bracket_lo, *sr.bracket_hi, {.x_tol = opt.log_tol});
      return result;
    }
  }
  // No usable bracket: full classic search (the injection above is gone,
  // so the classic path owns the column exclusively).
  BorderOptions classic = opt;
  classic.surrogate.enabled = false;
  classic.bracket_hint.reset();
  return find_border_resistance(column, d, sim, cond, range, classic);
}

BorderResult analyze_defect_surrogate(dram::DramColumn& column,
                                      const defect::Defect& d,
                                      const dram::ColumnSimulator& sim,
                                      const BorderOptions& opt) {
  OBS_SPAN("border.analyze");
  const SweepRange range = defect::default_sweep_range(d.kind);
  const bool series = defect::is_series(d.kind);
  const double k_reference =
      series ? std::sqrt(range.lo * range.hi) : 10e3;
  std::vector<DetectionCondition> candidates;
  {
    Injection inj(column, d, k_reference);
    candidates = candidate_conditions(sim, d.side, opt.detection);
  }

  const BorderSurrogate prior(column, d, sim, opt.surrogate);

  // Rank every candidate on the model first (no transients), so real
  // probes are spent only where the prediction says the candidate could
  // plausibly win the widest-failing-range criterion.
  std::vector<BorderSurrogate::Prediction> preds(candidates.size());
  double best_pred = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    preds[i] = prior.predict(candidates[i], range);
    if (preds[i].reliable && preds[i].br.has_value())
      best_pred = std::max(best_pred, preds[i].decades);
  }

  // Measured BR landing further than this from the model's prediction means
  // the model missed the candidate's shape entirely (e.g. a second failing
  // region the prior basin hides); the classic full scan re-decides.
  const double kPredictionTrustDecades = 1.5;
  const double kTieTolerance = 0.15;  // decades (same rule as the classic path)
  BorderOptions classic = opt;
  classic.surrogate.enabled = false;
  classic.bracket_hint.reset();
  std::optional<double> chain_prior;  // ln ohms of the last measured BR

  // Ranking pass: measure each plausible candidate's failing decades with
  // the cheap surrogate search.  These measurements pick the *winner*; the
  // winner's BR is then re-measured classically below, so the value that
  // leaves this function (and feeds the refine derivation, whose charging
  // count flips on percent-level BR shifts) is classic-exact.
  struct Ranked {
    size_t idx;
    BorderResult r;
    double decades;
    bool classic_measured;  // r already came from the classic full scan
    bool validity_checked = false;
  };
  std::vector<Ranked> measured;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const DetectionCondition& cand = candidates[i];
    const BorderSurrogate::Prediction& pred = preds[i];

    bool model_contradicted = !pred.reliable;
    if (pred.reliable && !pred.br.has_value()) {
      // Predicted to never fail.  One probe at the most-stressful extreme
      // decides (monotone predicate: pass there means pass everywhere).
      // Never drop a candidate on the model's word alone: at aggressive
      // stress corners the cheap calibration can be confidently wrong for
      // *every* candidate, and a zero-probe skip would then report the
      // defect undetectable while the classic scan finds a border.
      obs::count("surrogate.verify");
      bool endpoint_fails = false;
      {
        Injection inj(column, d, series ? range.hi : range.lo);
        endpoint_fails = condition_fails(sim, d.side, cand);
      }
      if (!endpoint_fails) continue;
      // The model ruled the candidate out but reality fails it: the model
      // knows nothing about this candidate's shape, so the surrogate's
      // single-crossing walk could lock onto the wrong failing region
      // (B1's 'w1 del r1' has two).  Only the classic full scan is safe.
      model_contradicted = true;
    }
    if (pred.reliable && pred.br.has_value() &&
        opt.surrogate.prune_margin_decades > 0.0 &&
        pred.decades < best_pred - opt.surrogate.prune_margin_decades)
      continue;  // cannot plausibly reach the tie window of the best

    BorderResult r;
    bool classic_measured = false;
    if (model_contradicted) {
      obs::count("surrogate.fallback");
      r = find_border_resistance(column, d, sim, cand, range, classic);
      classic_measured = true;
    } else {
      std::optional<double> p = chain_prior;
      if (pred.br.has_value()) p = std::log(*pred.br);
      r = surrogate_find_border(column, d, sim, cand, range, opt, p);
      if (r.br.has_value() && pred.br.has_value() &&
          std::abs(std::log10(*r.br / *pred.br)) > kPredictionTrustDecades) {
        obs::count("surrogate.fallback");
        r = find_border_resistance(column, d, sim, cand, range, classic);
        classic_measured = true;
      }
    }
    if (!r.br.has_value()) continue;
    chain_prior = std::log(*r.br);
    measured.push_back({i, std::move(r), 0.0, classic_measured});
    measured.back().decades = measured.back().r.failing_decades(range);
  }

  // Selection: the classic tie rule (first candidate, in candidate order,
  // whose decades beat the running best by more than the tolerance), then
  // a classic verification of the winner.  A winner the classic scan
  // cannot reproduce -- a failing *island* narrower than the coarse grid
  // (O3's 'w1 w1 w1 w0 r0' fails only near 500 kOhm) -- is discarded and
  // the selection repeats, which is exactly what the classic path, blind
  // to the island, would have decided.
  BorderResult result;
  result.fault_at_high_r = series;
  while (!measured.empty()) {
    size_t win = measured.size();
    double best_decades = -1.0;
    for (size_t m = 0; m < measured.size(); ++m) {
      if (measured[m].decades > best_decades + kTieTolerance) {
        best_decades = measured[m].decades;
        win = m;
      }
    }
    Ranked& w = measured[win];
    // Validity on the healthy column is checked lazily: only candidates
    // that actually win pay the probe, but the final selection is drawn
    // from exactly the valid set the classic path ranks.
    if (!w.validity_checked) {
      if (!condition_valid_on_healthy(sim, d.side, candidates[w.idx])) {
        measured.erase(measured.begin() + static_cast<long>(win));
        continue;
      }
      w.validity_checked = true;
    }
    if (w.classic_measured) {
      result = std::move(w.r);
      break;
    }
    obs::count("surrogate.verify");
    BorderResult rc = find_border_resistance(
        column, d, sim, candidates[w.idx], range, classic);
    if (!rc.br.has_value()) {
      measured.erase(measured.begin() + static_cast<long>(win));
      continue;
    }
    // Keep the surrogate's crossing slope as a warm-start hint when both
    // searches agree on the basin; a large gap means the slope belongs to
    // a different crossing of a non-monotone predicate.
    if (w.r.br.has_value() && w.r.margin_slope.has_value() &&
        std::abs(std::log10(*rc.br / *w.r.br)) < kTieTolerance)
      rc.margin_slope = w.r.margin_slope;
    // Re-enter the selection with the classic measurement: if the basin
    // the classic scan sees is narrower (B1's stressed corner), the
    // corrected decades can hand the win to a runner-up -- the decision
    // the classic path would have made.
    w.r = std::move(rc);
    w.decades = w.r.failing_decades(range);
    w.classic_measured = true;
  }
  if (!result.br.has_value()) {
    // The surrogate concluded "not detectable".  That conclusion leaned on
    // model predictions and single endpoint probes, which non-monotone
    // predicates at harsh stress corners defeat: a failing *island*
    // between two passing endpoints (O2 at tcyc=55 ns/Vdd=2.1 V fails
    // only in a mid-range band) is invisible to an endpoint probe.  Only
    // the classic grid scan is authoritative for a negative answer.
    obs::count("surrogate.fallback");
    return analyze_defect(column, d, sim, classic);
  }

  // The classic refine loop, verbatim: derive the charging count at the
  // found border and re-search classically (warm-started) until the
  // condition stabilizes.  Running it through the classic search keeps the
  // whole refine chain -- which the goldens pin -- identical to the
  // surrogate-off path.
  for (int it = 0; it < opt.refine_iterations && result.br.has_value(); ++it) {
    std::optional<DetectionCondition> refined;
    {
      Injection inj(column, d,
                    *result.br * (result.fault_at_high_r ? 1.05 : 0.95));
      refined = derive_detection_condition(sim, d.side, opt.detection);
    }
    if (refined.has_value() &&
        !condition_valid_on_healthy(sim, d.side, *refined))
      refined.reset();
    if (!refined.has_value() || refined->str() == result.condition.str())
      break;
    BorderOptions refine_opt = classic;
    refine_opt.bracket_hint = result.br;
    BorderResult again =
        find_border_resistance(column, d, sim, *refined, range, refine_opt);
    if (!again.br.has_value()) break;
    // The refined condition's crossing sits near the previous one, so the
    // previous slope stays a usable warm-start hint downstream.
    again.margin_slope = result.margin_slope;
    util::log_debug(util::format(
        "analyze_defect_surrogate(%s): refined '%s' -> '%s', BR %s -> %s",
        d.name().c_str(), result.condition.str().c_str(),
        refined->str().c_str(), util::eng(*result.br, "Ohm").c_str(),
        util::eng(*again.br, "Ohm").c_str()));
    result = again;
  }
  return result;
}

}  // namespace dramstress::analysis
