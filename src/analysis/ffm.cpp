#include "analysis/ffm.hpp"

#include <memory>

#include "numeric/interp.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dramstress::analysis {

using dram::Operation;
using dram::OpSequence;
using dram::Side;

const char* to_string(FaultModel model) {
  switch (model) {
    case FaultModel::StuckAt0: return "SAF-0";
    case FaultModel::StuckAt1: return "SAF-1";
    case FaultModel::TransitionUp: return "TF-up";
    case FaultModel::TransitionDown: return "TF-down";
    case FaultModel::Retention1: return "DRF-1";
    case FaultModel::Retention0: return "DRF-0";
    case FaultModel::ReadDisturb1: return "RDF-1";
    case FaultModel::ReadDisturb0: return "RDF-0";
  }
  return "?";
}

bool FfmReport::has(FaultModel m) const {
  for (FaultModel x : models)
    if (x == m) return true;
  return false;
}

std::string FfmReport::str() const {
  if (models.empty()) return "fault-free";
  std::vector<std::string> parts;
  parts.reserve(models.size());
  for (FaultModel m : models) parts.emplace_back(to_string(m));
  return util::join(parts, ", ");
}

namespace {

OpSequence writes(int value, int count) {
  return OpSequence(static_cast<size_t>(count),
                    value == 1 ? Operation::w1() : Operation::w0());
}

}  // namespace

FfmReport classify_ffm(const dram::ColumnSimulator& sim, Side side,
                       const FfmProbeOptions& opt) {
  OBS_SPAN("ffm.classify");
  FfmReport report;
  const double vdd = sim.conditions().vdd;
  auto add = [&report](FaultModel m) {
    if (!report.has(m)) report.models.push_back(m);
  };

  // --- stuck-at: saturated writes of x still read as ~x ------------------
  // (probed first; a stuck cell also fails the transition probes, which
  // are then redundant and skipped).
  bool stuck0 = false;
  bool stuck1 = false;
  {
    OpSequence seq = writes(1, opt.saturate_ops);
    seq.push_back(Operation::r());
    stuck0 = sim.run(seq, dram::physical_level(side, 0, vdd), side)
                 .last_read_bit() == 0;
    if (stuck0) add(FaultModel::StuckAt0);
  }
  {
    OpSequence seq = writes(0, opt.saturate_ops);
    seq.push_back(Operation::r());
    stuck1 = sim.run(seq, dram::physical_level(side, 1, vdd), side)
                 .last_read_bit() == 1;
    if (stuck1) add(FaultModel::StuckAt1);
  }

  // --- transition faults: a *single* opposing write after saturation ------
  if (!stuck0) {
    OpSequence seq = writes(0, opt.saturate_ops);
    seq.push_back(Operation::w1());
    seq.push_back(Operation::r());
    if (sim.run(seq, dram::physical_level(side, 1, vdd), side)
            .last_read_bit() == 0)
      add(FaultModel::TransitionUp);
  }
  if (!stuck1) {
    OpSequence seq = writes(1, opt.saturate_ops);
    seq.push_back(Operation::w0());
    seq.push_back(Operation::r());
    if (sim.run(seq, dram::physical_level(side, 0, vdd), side)
            .last_read_bit() == 1)
      add(FaultModel::TransitionDown);
  }

  // --- retention faults: saturated level + pause -------------------------
  if (!stuck0) {
    OpSequence seq = writes(1, opt.saturate_ops);
    seq.push_back(Operation::del(opt.retention_time));
    seq.push_back(Operation::r());
    if (sim.run(seq, dram::physical_level(side, 0, vdd), side)
            .last_read_bit() == 0)
      add(FaultModel::Retention1);
  }
  if (!stuck1) {
    OpSequence seq = writes(0, opt.saturate_ops);
    seq.push_back(Operation::del(opt.retention_time));
    seq.push_back(Operation::r());
    if (sim.run(seq, dram::physical_level(side, 1, vdd), side)
            .last_read_bit() == 1)
      add(FaultModel::Retention0);
  }

  // --- read-disturb: reading a full physical level misreads --------------
  if (!stuck0 && !report.has(FaultModel::TransitionUp)) {
    if (sim.read_of_initial(dram::physical_level(side, 1, vdd), side) == 0)
      add(FaultModel::ReadDisturb1);
  }
  if (!stuck1 && !report.has(FaultModel::TransitionDown)) {
    if (sim.read_of_initial(dram::physical_level(side, 0, vdd), side) == 1)
      add(FaultModel::ReadDisturb0);
  }
  return report;
}

std::vector<double> ffm_map_grid(defect::DefectKind kind,
                                 const FfmMapOptions& opt) {
  const auto range = defect::default_sweep_range(kind);
  return numeric::logspace(range.lo * opt.lo_scale, range.hi,
                           opt.num_r_points);
}

std::vector<FfmMapEntry> ffm_map(const dram::TechnologyParams& tech,
                                 const dram::OperatingConditions& cond,
                                 const std::vector<defect::Defect>& defects,
                                 const FfmMapOptions& opt) {
  require(opt.num_r_points >= 1, "ffm_map: need >= 1 R point");
  std::vector<FfmMapEntry> entries;
  for (const defect::Defect& d : defects)
    for (double r : ffm_map_grid(d.kind, opt)) entries.push_back({d, r, {}, {}});

  // One column clone per worker; the defect changes between entries, so
  // each entry scopes its own RAII injection on that clone.
  util::parallel_for_state(
      entries.size(),
      [&] { return std::make_unique<dram::DramColumn>(tech); },
      [&](std::unique_ptr<dram::DramColumn>& column, size_t i) {
        FfmMapEntry& e = entries[i];
        defect::Injection inj(*column, e.defect, e.r);
        const dram::ColumnSimulator sim(*column, cond, opt.settings);
        e.vsa = extract_vsa(sim, e.defect.side, opt.vsa);
        e.report = classify_ffm(sim, e.defect.side, opt.probe);
      },
      {.threads = opt.threads});
  return entries;
}

}  // namespace dramstress::analysis
