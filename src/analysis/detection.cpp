#include "analysis/detection.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::analysis {

using dram::Operation;
using dram::OpKind;
using dram::OpSequence;

std::vector<double> default_retention_times() { return {100e-6, 3e-6}; }

std::string DetectionCondition::str() const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    const char* prefix = op.neighbor ? "n:" : "";
    if (op.kind == OpKind::R && i + 1 == ops.size()) {
      parts.push_back(util::format("%sr%d", prefix, expected));
    } else if (op.kind == OpKind::Del) {
      parts.push_back(util::format("del(%s)",
                                   util::eng(op.del_seconds, "s").c_str()));
    } else {
      parts.push_back(std::string(prefix) + dram::to_string(op.kind));
    }
  }
  return util::join(parts, " ");
}

int saturation_count(const dram::ColumnSimulator& sim, dram::Side side, int x,
                     const DetectionOptions& opt) {
  require(x == 0 || x == 1, "saturation_count: x must be 0/1");
  const double vdd = sim.conditions().vdd;
  const OpSequence writes(static_cast<size_t>(opt.max_charge_ops),
                          x == 1 ? Operation::w1() : Operation::w0());
  const double init = dram::physical_level(side, 1 - x, vdd);
  const dram::RunResult rr = sim.run(writes, init, side);
  double prev = init;
  for (int k = 0; k < opt.max_charge_ops; ++k) {
    const double vc = rr.vc_after(static_cast<size_t>(k));
    if (std::fabs(vc - prev) < opt.saturation_epsilon) return std::max(1, k);
    prev = vc;
  }
  return opt.max_charge_ops;
}

bool condition_fails(const dram::ColumnSimulator& sim, dram::Side side,
                     const DetectionCondition& cond) {
  return condition_outcome(sim, side, cond).fails;
}

ConditionOutcome condition_outcome(const dram::ColumnSimulator& sim,
                                   dram::Side side,
                                   const DetectionCondition& cond) {
  const double init =
      dram::physical_level(side, cond.init_logical, sim.conditions().vdd);
  const dram::RunResult rr = sim.run(cond.ops, init, side);
  ConditionOutcome out;
  // Sign the *last read's* differential so that positive means "read what
  // was expected": a read returns 1 when bt - bc > 0, so expecting 0 flips
  // the sign.
  for (size_t i = rr.ops.size(); i-- > 0;) {
    if (!rr.ops[i].bit.has_value()) continue;
    out.fails = *rr.ops[i].bit != cond.expected;
    out.margin = cond.expected == 1 ? rr.ops[i].sense_margin
                                    : -rr.ops[i].sense_margin;
    return out;
  }
  throw ModelError("condition_outcome: sequence contains no read");
}

std::vector<DetectionCondition> candidate_conditions(
    const dram::ColumnSimulator& sim, dram::Side side,
    const DetectionOptions& opt) {
  std::vector<DetectionCondition> out;
  const int k1 = saturation_count(sim, side, 1, opt);
  const int k0 = saturation_count(sim, side, 0, opt);

  auto charge = [](int x, int k) {
    return OpSequence(static_cast<size_t>(k),
                      x == 1 ? Operation::w1() : Operation::w0());
  };

  // Transition-style: k*w(x) w(~x) r(~x).
  for (int x : {1, 0}) {
    DetectionCondition c;
    c.init_logical = 1 - x;
    c.ops = charge(x, x == 1 ? k1 : k0);
    c.ops.push_back(x == 1 ? Operation::w0() : Operation::w1());
    c.ops.push_back(Operation::r());
    c.expected = 1 - x;
    out.push_back(std::move(c));
  }
  // Immediate retention-style: k*w(x) r(x).
  for (int x : {1, 0}) {
    DetectionCondition c;
    c.init_logical = 1 - x;
    c.ops = charge(x, x == 1 ? k1 : k0);
    c.ops.push_back(Operation::r());
    c.expected = x;
    out.push_back(std::move(c));
  }
  // Coupling-style: k*w(x), aggressor writes of ~x on the neighbour,
  // optional pause, then r(x) on the victim.
  if (opt.include_coupling) {
    for (double del : {0.0, opt.retention_times.front()}) {
      for (int x : {1, 0}) {
        DetectionCondition c;
        c.init_logical = 1 - x;
        c.ops = charge(x, x == 1 ? k1 : k0);
        c.ops.push_back(x == 1 ? Operation::nw0() : Operation::nw1());
        c.ops.push_back(x == 1 ? Operation::nw0() : Operation::nw1());
        if (del > 0.0) c.ops.push_back(Operation::del(del));
        c.ops.push_back(Operation::r());
        c.expected = x;
        out.push_back(std::move(c));
      }
    }
  }

  // Delayed retention-style: k*w(x) del r(x), one candidate per pause.
  for (double del : opt.retention_times) {
    for (int x : {1, 0}) {
      DetectionCondition c;
      c.init_logical = 1 - x;
      c.ops = charge(x, x == 1 ? k1 : k0);
      c.ops.push_back(Operation::del(del));
      c.ops.push_back(Operation::r());
      c.expected = x;
      out.push_back(std::move(c));
    }
  }
  return out;
}

bool condition_valid_on_healthy(const dram::ColumnSimulator& sim,
                                dram::Side side,
                                const DetectionCondition& cond) {
  return !condition_fails(sim, side, cond);
}

std::optional<DetectionCondition> derive_detection_condition(
    const dram::ColumnSimulator& sim, dram::Side side,
    const DetectionOptions& opt) {
  for (const DetectionCondition& cand : candidate_conditions(sim, side, opt)) {
    if (condition_fails(sim, side, cand)) return cand;
  }
  return std::nullopt;
}

// NOTE: derive_detection_condition is evaluated at the *injected* defect,
// so it cannot apply the healthy-validity filter itself; analyze_defect
// re-checks validity with the defect removed before accepting a candidate.

}  // namespace dramstress::analysis
