#include "analysis/vsa_cache.hpp"

#include <cmath>
#include <tuple>

#include "obs/metrics.hpp"

namespace dramstress::analysis {

bool VsaCacheKey::operator<(const VsaCacheKey& o) const {
  return std::tie(kind, side, r, vdd, temp_c, tcyc, duty, tolerance) <
         std::tie(o.kind, o.side, o.r, o.vdd, o.temp_c, o.tcyc, o.duty,
                  o.tolerance);
}

namespace {

VsaCacheKey make_key(const dram::ColumnSimulator& sim, const defect::Defect& d,
                     double r, const VsaOptions& opt) {
  const dram::OperatingConditions& c = sim.conditions();
  return VsaCacheKey{d.kind,   d.side, r,       c.vdd,
                     c.temp_c, c.tcyc, c.duty, opt.tolerance};
}

bool key_finite(const VsaCacheKey& k) {
  return std::isfinite(k.r) && std::isfinite(k.vdd) &&
         std::isfinite(k.temp_c) && std::isfinite(k.tcyc) &&
         std::isfinite(k.duty) && std::isfinite(k.tolerance);
}

}  // namespace

std::optional<VsaResult> VsaCache::lookup(const dram::ColumnSimulator& sim,
                                          const defect::Defect& d, double r,
                                          const VsaOptions& opt) {
  const VsaCacheKey key = make_key(sim, d, r, opt);
  if (!key_finite(key)) {
    obs::count("vsa_cache.bypass");
    return std::nullopt;
  }
  util::MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  ++hits_;
  obs::count("vsa_cache.hit");
  return it->second;
}

void VsaCache::insert(const dram::ColumnSimulator& sim,
                      const defect::Defect& d, double r, const VsaOptions& opt,
                      const VsaResult& result) {
  const VsaCacheKey key = make_key(sim, d, r, opt);
  if (!key_finite(key)) return;
  util::MutexLock lock(mu_);
  ++misses_;
  obs::count("vsa_cache.miss");
  if (std::isfinite(result.threshold)) entries_.emplace(key, result);
}

VsaResult VsaCache::get_or_extract(const dram::ColumnSimulator& sim,
                                   const defect::Defect& d, double r,
                                   const VsaOptions& opt) {
  const dram::OperatingConditions& c = sim.conditions();
  const VsaCacheKey key{d.kind, d.side,  r,      c.vdd,
                        c.temp_c, c.tcyc, c.duty, opt.tolerance};
  // A non-finite key component (NaN resistance from a degenerate sweep,
  // say) breaks the map's strict weak ordering, so bypass the cache
  // entirely: extract and return without memoizing.
  if (!std::isfinite(r) || !std::isfinite(c.vdd) || !std::isfinite(c.temp_c) ||
      !std::isfinite(c.tcyc) || !std::isfinite(c.duty) ||
      !std::isfinite(opt.tolerance)) {
    obs::count("vsa_cache.bypass");
    return extract_vsa(sim, d.side, opt);
  }
  {
    util::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      obs::count("vsa_cache.hit");
      return it->second;
    }
  }
  // Extract outside the lock: the bisection is the expensive part and the
  // result is deterministic, so a duplicate race costs time, not identity.
  const VsaResult result = extract_vsa(sim, d.side, opt);
  {
    util::MutexLock lock(mu_);
    ++misses_;
    obs::count("vsa_cache.miss");
    // A non-finite threshold means the extraction ran on a broken trace
    // (e.g. truncated by a retry timeout); memoizing it would poison every
    // later lookup of the same key, so count the miss but skip the insert.
    if (std::isfinite(result.threshold)) entries_.emplace(key, result);
  }
  return result;
}

size_t VsaCache::hits() const {
  util::MutexLock lock(mu_);
  return hits_;
}

size_t VsaCache::misses() const {
  util::MutexLock lock(mu_);
  return misses_;
}

size_t VsaCache::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

void VsaCache::clear() {
  util::MutexLock lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace dramstress::analysis
