// Result planes (paper Section 3, Figs. 2 and 6).
//
// A result plane describes, per defect resistance R, the stored cell
// voltage after each of a sequence of identical operations:
//   * the w0 plane starts from a cell initialized to vdd and applies
//     successive w0 operations;
//   * the w1 plane starts from ground and applies successive w1 operations;
//   * the r plane establishes Vsa(R) first, then applies successive reads
//     starting slightly below and slightly above it.
// The plane also carries the Vsa(R) curve and the mid-point voltage Vmp.
#pragma once

#include <vector>

#include "analysis/vsa.hpp"
#include "analysis/vsa_cache.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"
#include "numeric/interp.hpp"

namespace dramstress::util::json {
class Writer;
}

namespace dramstress::analysis {

struct PlaneOptions {
  int num_r_points = 15;     // log-spaced resistance grid size
  int ops_per_point = 4;     // successive operations recorded per R
  double r_lo = 1e3;         // grid bounds (Ohm)
  double r_hi = 10e6;
  double read_probe_offset = 0.2;  // V around Vsa for the r plane
  VsaOptions vsa;
  /// Worker threads for the R sweep; 0 = util::default_threads().  Results
  /// are bit-identical for every thread count.
  int threads = 0;
  /// Ensemble batch: lanes simulated together per worker.  0 consults
  /// util::resolve_batch (the --batch flag / DRAMSTRESS_BATCH variable,
  /// default scalar engine).  Any batch size >= 1 uses the batched engine
  /// and produces bit-identical results for every batch size and thread
  /// count; batched results may differ from the scalar engine's within the
  /// documented solver tolerances (docs/ENGINE.md).
  int batch = 0;
  /// Optional Vsa(R) memoization shared across planes of the same defect
  /// and corner (generate_plane_set supplies one automatically).
  VsaCache* vsa_cache = nullptr;
};

/// One curve of the plane: Vc after the (op_number)-th operation vs R.
struct PlaneCurve {
  int op_number = 1;        // 1-based, as in the paper's "(2) w0" labels
  bool from_above = false;  // r plane only: started above (true) / below Vsa
  std::vector<double> vc;   // one entry per R grid point
};

struct ResultPlane {
  dram::OpKind op = dram::OpKind::W0;
  std::vector<double> r_values;
  std::vector<PlaneCurve> curves;
  std::vector<double> vsa;       // clamped threshold per R
  std::vector<VsaResult> vsa_raw;
  double vmp = 0.0;              // mid-point voltage (stored 0/1 boundary)

  /// Piecewise-linear view of a curve / the Vsa curve over R (x = R).
  numeric::PiecewiseLinear curve_interp(size_t curve_index) const;
  numeric::PiecewiseLinear vsa_interp() const;
};

/// Generate the plane for `op` (W0, W1 or R) for the defect currently
/// injected via `defect` (the injection value is swept internally).
ResultPlane generate_plane(dram::DramColumn& column, const defect::Defect& d,
                           const dram::ColumnSimulator& sim, dram::OpKind op,
                           const PlaneOptions& opt = {});

/// Convenience: all three planes of Fig. 2 / Fig. 6.
struct PlaneSet {
  ResultPlane w0;
  ResultPlane w1;
  ResultPlane r;
};
PlaneSet generate_plane_set(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const PlaneOptions& opt = {});

/// The paper's graphical border-resistance estimate: smallest R at which
/// the selected write curve crosses the Vsa curve.  Returns nullopt if the
/// curves do not cross inside the grid.
std::optional<double> plane_border_resistance(const ResultPlane& write_plane,
                                              size_t curve_index);

/// Emit a plane / plane set as a JSON object -- the campaign cache payload.
void append_json(util::json::Writer& w, const ResultPlane& p);
void append_json(util::json::Writer& w, const PlaneSet& s);

}  // namespace dramstress::analysis
