// Sense-amplifier threshold voltage extraction (paper Section 3).
//
// Vsa is the stored cell voltage above which a read returns 1 and below
// which it returns 0, for the current defect value and stress condition.
// The paper brackets it with +-0.2 V probe reads; we extract it to a
// configurable tolerance by bisection on the read outcome.
//
// The batched variant extracts N lanes at once on a fixed dyadic voltage
// grid: every probe round is one ensemble read, and a per-worker seed
// (the previous extraction's threshold) lets lanes gallop to the flip
// pair in a handful of probes instead of a full-range bisection.  The
// grid pins the result to the flip pair itself, so the extracted value
// does not depend on the seed or the search path as long as the read
// outcome is monotone in the initial cell voltage (which the sense
// operation is); a seed only changes how many probes the search takes.
#pragma once

#include <vector>

#include "dram/column_sim.hpp"
#include "dram/ensemble_column.hpp"

namespace dramstress::analysis {

struct VsaResult {
  enum class Kind {
    Normal,      // a genuine threshold inside (0, vdd)
    AlwaysZero,  // every initial voltage reads 0 (threshold above vdd)
    AlwaysOne,   // every initial voltage reads 1 (threshold below ground)
  };
  Kind kind = Kind::Normal;
  /// The threshold, clamped to vdd for AlwaysZero and 0 for AlwaysOne so it
  /// can be plotted as the paper's bold Vsa curve.
  double threshold = 0.0;

  bool always_zero() const { return kind == Kind::AlwaysZero; }
  bool always_one() const { return kind == Kind::AlwaysOne; }
};

struct VsaOptions {
  double tolerance = 3e-3;  // V
};

/// Extract Vsa under the simulator's current conditions for the addressed
/// cell on `side` (with whatever defect is currently injected).
VsaResult extract_vsa(const dram::ColumnSimulator& sim, dram::Side side,
                      const VsaOptions& opt = {});

/// Carried between batched extractions by one worker: the previous
/// threshold seeds the next gallop.  Affects probe count only, never the
/// extracted values (see the file comment).
struct VsaSeed {
  bool valid = false;
  double threshold = 0.0;
  int at_zero = 0;  // read bit of a 0 V cell at the seeding point
};

/// Batched Vsa extraction over the ensemble's lanes (inactive lanes get a
/// default result).  Every probe round is one batched read; lanes retire
/// as their flip pair is bracketed.  `seed`, if non-null, is consumed to
/// warm-start the search and updated with the last active lane's result.
std::vector<VsaResult> extract_vsa_batch(dram::EnsembleColumnSim& sim,
                                         dram::Side side,
                                         const VsaOptions& opt = {},
                                         const std::vector<char>& active = {},
                                         VsaSeed* seed = nullptr);

}  // namespace dramstress::analysis
