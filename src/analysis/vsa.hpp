// Sense-amplifier threshold voltage extraction (paper Section 3).
//
// Vsa is the stored cell voltage above which a read returns 1 and below
// which it returns 0, for the current defect value and stress condition.
// The paper brackets it with +-0.2 V probe reads; we extract it to a
// configurable tolerance by bisection on the read outcome.
#pragma once

#include "dram/column_sim.hpp"

namespace dramstress::analysis {

struct VsaResult {
  enum class Kind {
    Normal,      // a genuine threshold inside (0, vdd)
    AlwaysZero,  // every initial voltage reads 0 (threshold above vdd)
    AlwaysOne,   // every initial voltage reads 1 (threshold below ground)
  };
  Kind kind = Kind::Normal;
  /// The threshold, clamped to vdd for AlwaysZero and 0 for AlwaysOne so it
  /// can be plotted as the paper's bold Vsa curve.
  double threshold = 0.0;

  bool always_zero() const { return kind == Kind::AlwaysZero; }
  bool always_one() const { return kind == Kind::AlwaysOne; }
};

struct VsaOptions {
  double tolerance = 3e-3;  // V
};

/// Extract Vsa under the simulator's current conditions for the addressed
/// cell on `side` (with whatever defect is currently injected).
VsaResult extract_vsa(const dram::ColumnSimulator& sim, dram::Side side,
                      const VsaOptions& opt = {});

}  // namespace dramstress::analysis
