// Calibrated behavioural cell model.
//
// Full SPICE runs cost milliseconds per memory cycle; Shmoo plots and march
// tests over whole (simulated) memories need millions of operations.  This
// model reduces the defective cell to first-order dynamics whose constants
// are calibrated against the electrical column:
//   * writes move Vc exponentially toward a target with a time constant
//     (R_defect + r_series) * Cs over an effective window t_w;
//   * shunt defects add a resistive divider/decay toward their far node;
//   * reads compare Vc against the calibrated Vsa(R) curve and restore;
//   * idle time applies junction leakage and shunt decay.
// The ablation bench (bench/ablation_fast_model) quantifies the BR error
// of this model against the full electrical simulation.
#pragma once

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"
#include "numeric/interp.hpp"

namespace dramstress::analysis {

struct FastCalibOptions {
  double r1 = 100e3;  // series-fit probe resistances
  double r2 = 400e3;
  int vsa_points = 5;       // samples of the Vsa(R) curve (series defects)
  double vsa_tol = 3e-3;    // V, Vsa extraction tolerance per sample
  double leak_probe = 20e-6;  // s, idle window used to measure leakage
};

/// Calibrated parameters (exposed for inspection/testing).
struct FastModelParams {
  double vdd = 2.4;
  double vbl = 1.2;
  double cs = 150e-15;
  double r_series = 0.0;   // effective healthy series resistance of the path
  double t_write = 0.0;    // effective write window, s
  double v1_target = 0.0;  // settlement level of a physical-high write
  double leak_current = 0.0;  // A, pulls Vc down during idle
  /// Vsa as a function of log10(R) for series defects; constant for shunts.
  numeric::PiecewiseLinear vsa_vs_log10r;
  double vsa_const = 0.0;
  bool vsa_varies = false;
};

class FastCellModel {
public:
  /// Calibrate against the electrical column for `d` under the simulator's
  /// conditions.  The column's injected state is restored afterwards.
  static FastCellModel calibrate(dram::DramColumn& column,
                                 const defect::Defect& d,
                                 const dram::ColumnSimulator& sim,
                                 const FastCalibOptions& opt = {});

  /// Construct directly from parameters (tests, custom models).
  FastCellModel(const defect::Defect& d, FastModelParams params);

  // --- behavioural operations ------------------------------------------
  void set_defect_resistance(double ohms);
  double defect_resistance() const { return r_defect_; }

  void set_vc(double volts) { vc_ = volts; }
  double vc() const { return vc_; }

  /// Write logical x (one cycle): exponential move toward the physical
  /// target including the shunt divider.
  void write(int logical);
  /// Read: threshold against Vsa(R), then restore the read value.
  int read();
  /// Quiet time: leakage plus shunt decay.
  void idle(double seconds);

  /// Sense threshold at the current defect resistance (the calibrated
  /// Vsa(R) curve for series defects, a constant for shunts).  Public so
  /// the surrogate border search can form a model-scale pass margin
  /// (vc - threshold) without round-tripping through read().
  double vsa_threshold() const;

  const FastModelParams& params() const { return params_; }
  const defect::Defect& defect() const { return d_; }

private:
  /// Shunt far-node voltage (Sg -> 0, Sv -> vdd, B1 -> vbl, B2 -> 0).
  double shunt_level() const;
  void exponential_write(double target, double tau_extra_r);

  defect::Defect d_;
  FastModelParams params_;
  double r_defect_ = 1e15;
  double vc_ = 0.0;
};

}  // namespace dramstress::analysis
