// Knobs for the surrogate-accelerated border search (analysis/surrogate.hpp),
// split into their own header so BorderOptions can embed them without
// border.hpp depending on the surrogate module itself.
#pragma once

namespace dramstress::analysis {

/// Process-wide defaults, set once by the CLI (--surrogate / --no-surrogate /
/// --surrogate-tol) before any work starts.  They exist so every
/// BorderOptions constructed anywhere in the flow -- optimizer probes,
/// campaign units, tools -- picks the session's choice up without threading
/// a flag through each call site.  Reading them is lock-free; setting them
/// after analyses started is a race and unsupported.
bool default_surrogate_enabled();
void set_default_surrogate_enabled(bool on);
double default_surrogate_tol();
void set_default_surrogate_tol(double tol);

struct SurrogateOptions {
  /// Master switch.  Off reproduces the classic scan+bisection search
  /// byte-for-byte (the surrogate code is never entered).
  bool enabled = default_surrogate_enabled();
  /// Bracket tolerance on ln(R) for the surrogate root refinement -- the
  /// same quantity (and default) as BorderOptions::log_tol, kept separate
  /// so the two searches can be tightened independently.
  double tol = default_surrogate_tol();
  /// Hard cap of real transient probes per border search before the
  /// search declares itself lost and falls back to the classic path.
  int max_probes = 24;
  /// Candidate pruning (analyze path): a candidate whose *predicted*
  /// failing range lies more than this many decades below the predicted
  /// best is not searched with real transients.  Must stay well above the
  /// 0.15-decade measured tie window so a mispredicted near-tie cannot be
  /// pruned; <= 0 disables pruning.
  double prune_margin_decades = 0.5;
  /// Cheap-calibration overrides for the fast-model prior: fewer Vsa(R)
  /// knots and a coarser extraction tolerance than the model's analysis
  /// defaults, because the prior only has to land the first probe within
  /// about one coarse-grid step of the answer.
  int vsa_knots = 2;
  double vsa_tol = 0.05;  // V
};

}  // namespace dramstress::analysis
