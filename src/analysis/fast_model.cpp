#include "analysis/fast_model.hpp"

#include <cmath>

#include "numeric/rootfind.hpp"
#include "util/error.hpp"

namespace dramstress::analysis {

using defect::Defect;
using defect::DefectKind;
using dram::Operation;
using dram::OpSequence;
using dram::Side;

FastCellModel::FastCellModel(const Defect& d, FastModelParams params)
    : d_(d), params_(std::move(params)) {}

FastCellModel FastCellModel::calibrate(dram::DramColumn& column,
                                       const Defect& d,
                                       const dram::ColumnSimulator& sim,
                                       const FastCalibOptions& opt) {
  const auto& cond = sim.conditions();
  FastModelParams p;
  p.vdd = cond.vdd;
  p.vbl = column.tech().vbl_frac * cond.vdd;
  p.cs = column.tech().cs;

  // --- write-path fit: two w0 runs through the generic series path --------
  // (the write path is the same for every defect kind; O3 is the knob).
  {
    const Defect probe{DefectKind::O3, d.side};
    defect::Injection inj(column, probe, opt.r1);
    // Use the physical-high -> physical-low transition on this side (w0 on
    // a true-side cell, w1 on a comp-side cell).
    const double init_high = cond.vdd;
    const dram::RunResult r1 = sim.run(
        {d.side == Side::True ? Operation::w0() : Operation::w1()}, init_high,
        d.side);
    inj.set_value(opt.r2);
    const dram::RunResult r2 = sim.run(
        {d.side == Side::True ? Operation::w0() : Operation::w1()}, init_high,
        d.side);
    const double f1 = std::max(1e-6, r1.vc_after(0) / init_high);
    const double f2 = std::max(1e-6, r2.vc_after(0) / init_high);
    // f_i = exp(-tw / ((Ri + rs) cs))  =>  ln f1 / ln f2 = (R2+rs)/(R1+rs).
    const double q = std::log(f1) / std::log(f2);
    double rs = (opt.r2 - q * opt.r1) / (q - 1.0);
    if (!(rs > 0.0 && rs < 10.0 * opt.r1)) rs = 20e3;  // guarded fallback
    p.r_series = rs;
    p.t_write = -std::log(f1) * (opt.r1 + rs) * p.cs;

    // Settlement of a physical-high write at a moderate defect value.
    inj.set_value(opt.r1);
    const OpSequence w1s(6, d.side == Side::True ? Operation::w1()
                                                 : Operation::w0());
    const dram::RunResult rset = sim.run(w1s, 0.0, d.side);
    // Invert the exponential settle to get the asymptotic target.
    const double tau = (opt.r1 + rs) * p.cs;
    const double a = 1.0 - std::exp(-p.t_write / tau);
    const double step0 = rset.vc_after(0);
    p.v1_target = a > 1e-6 ? std::min(cond.vdd, step0 / a) : cond.vdd;
  }

  // --- Vsa(R) ------------------------------------------------------------
  if (defect::is_series(d.kind)) {
    const auto range = defect::default_sweep_range(d.kind);
    const auto rs = numeric::logspace(range.lo, range.hi, opt.vsa_points);
    std::vector<double> xs;
    std::vector<double> ys;
    defect::Injection inj(column, d, rs.front());
    VsaOptions vopt;
    vopt.tolerance = opt.vsa_tol;
    for (double r : rs) {
      inj.set_value(r);
      xs.push_back(std::log10(r));
      ys.push_back(extract_vsa(sim, d.side, vopt).threshold);
    }
    p.vsa_vs_log10r = numeric::PiecewiseLinear(xs, ys);
    p.vsa_varies = true;
  } else {
    VsaOptions vopt;
    vopt.tolerance = opt.vsa_tol;
    p.vsa_const = extract_vsa(sim, d.side, vopt).threshold;
    p.vsa_varies = false;
  }

  // --- leakage: pure hold on the pristine cell ---------------------------
  {
    const dram::RunResult hold =
        sim.run({Operation::del(opt.leak_probe)}, cond.vdd, d.side);
    const double dv = cond.vdd - hold.final_vc;
    p.leak_current = std::max(0.0, dv * p.cs / opt.leak_probe);
  }

  return FastCellModel(d, p);
}

double FastCellModel::vsa_threshold() const {
  if (!params_.vsa_varies) return params_.vsa_const;
  return params_.vsa_vs_log10r(std::log10(std::max(1.0, r_defect_)));
}

double FastCellModel::shunt_level() const {
  switch (d_.kind) {
    case DefectKind::Sg: return 0.0;
    case DefectKind::Sv: return params_.vdd;
    case DefectKind::B1: return params_.vbl;
    case DefectKind::B2: return 0.0;  // wordline rests low
    default: return 0.0;
  }
}

void FastCellModel::set_defect_resistance(double ohms) {
  require(ohms > 0.0, "FastCellModel: resistance must be positive");
  r_defect_ = ohms;
}

void FastCellModel::exponential_write(double target, double extra_series) {
  const double rs = params_.r_series + extra_series;
  if (defect::is_series(d_.kind)) {
    const double tau = (rs + r_defect_) * params_.cs;
    vc_ = target + (vc_ - target) * std::exp(-params_.t_write / tau);
    return;
  }
  // Shunt: driver toward `target` through rs, shunt toward its level
  // through r_defect_.  First-order: settle toward the divider.
  const double g1 = 1.0 / rs;
  const double g2 = 1.0 / r_defect_;
  const double vss = (target * g1 + shunt_level() * g2) / (g1 + g2);
  const double tau = params_.cs / (g1 + g2);
  vc_ = vss + (vc_ - vss) * std::exp(-params_.t_write / tau);
}

void FastCellModel::write(int logical) {
  require(logical == 0 || logical == 1, "FastCellModel: logical must be 0/1");
  double target = dram::physical_level(d_.side, logical, params_.vdd);
  // Physical-high writes settle below vdd (wordline-boost limit).
  if (target > 0.0) target = std::min(target, params_.v1_target);
  exponential_write(target, 0.0);
}

int FastCellModel::read() {
  const double th = vsa_threshold();
  const bool high = vc_ > th;
  const int bit = (d_.side == Side::True) == high ? 1 : 0;
  // Destructive read + restore of the *sensed* value.
  double target = dram::physical_level(d_.side, bit, params_.vdd);
  if (target > 0.0) target = std::min(target, params_.v1_target);
  exponential_write(target, 0.0);
  return bit;
}

void FastCellModel::idle(double seconds) {
  require(seconds >= 0.0, "FastCellModel: idle time must be >= 0");
  if (seconds == 0.0) return;
  // Junction leakage (constant current toward ground, floor at 0).
  vc_ -= params_.leak_current * seconds / params_.cs;
  if (vc_ < 0.0) vc_ = 0.0;
  // Shunt decay toward the far node.
  if (!defect::is_series(d_.kind)) {
    const double tau = r_defect_ * params_.cs;
    const double lvl = shunt_level();
    vc_ = lvl + (vc_ - lvl) * std::exp(-seconds / tau);
  }
}

}  // namespace dramstress::analysis
