// Detection conditions and their derivation (paper Section 3 & Fig. 6).
//
// A detection condition is the operation recipe a memory test must contain
// to expose a defect: e.g. "w1 w1 w0 r0" for the cell open (charge the cell
// with enough w1 operations, then write 0, then read expecting 0 -- the
// defect makes the read return 1).  The derivation is algorithmic:
//   * transition-style candidates k*w(x) w(~x) r(~x) target defects that
//     impede writing one level after the cell held the other;
//   * retention-style candidates k*w(x) [del] r(x) target defects that leak
//     a stored level away.
// The number of charging writes k is the saturation count observed in the
// w-plane (the paper: "two w1 operations are necessary to charge up fully
// ... when R has a value close to BR").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dram/column_sim.hpp"

namespace dramstress::analysis {

struct DetectionCondition {
  dram::OpSequence ops;
  int expected = 0;     // expected value of the final read
  int init_logical = 0; // logical value the cell holds before the sequence

  /// Paper-style rendering, e.g. "w1 w1 w0 r0".
  std::string str() const;
};

/// Default delays for retention-style candidates (longest first).  An
/// out-of-line factory (cf. stress::default_axes) rather than a braced
/// member initializer: GCC 12 -O3 emits spurious -Wmaybe-uninitialized
/// when the inline vector construction of a defaulted options temporary
/// is folded into the caller.
std::vector<double> default_retention_times();

struct DetectionOptions {
  int max_charge_ops = 6;
  /// A charging write that moves Vc by less than this is "saturated".
  double saturation_epsilon = 0.1;  // V
  /// Delays used by retention-style candidates (longest first).  Several
  /// durations are offered because a long pause is not *valid* at every
  /// corner: at +87 C the healthy junction leakage alone empties a cell
  /// over 100 us, so only a shorter pause separates defective from healthy.
  std::vector<double> retention_times = default_retention_times();
  /// Also offer coupling-style candidates that write the *neighbouring*
  /// cell between the victim's write and read (needed for inter-cell
  /// bridges such as B3).  Off by default: the paper's Table 1 set does
  /// not need aggressor operations.
  bool include_coupling = false;
};

/// Number of w(x) operations needed to saturate the cell starting from the
/// opposite logical level, under the current injection.  At least 1.
int saturation_count(const dram::ColumnSimulator& sim, dram::Side side, int x,
                     const DetectionOptions& opt = {});

/// Evaluate: does the condition's final read return the wrong value under
/// the current injection?
bool condition_fails(const dram::ColumnSimulator& sim, dram::Side side,
                     const DetectionCondition& cond);

/// Boolean verdict plus the continuous sense margin behind it, from the
/// same single transient.  `margin` is the final read's bitline
/// differential signed so that margin > 0 <=> the read agrees with
/// cond.expected (the condition passes); its magnitude says how far the
/// sense decision was from flipping.  The surrogate border search
/// (analysis/surrogate.hpp) root-finds on this margin over R instead of
/// bisecting the boolean, which is where its probe savings come from.
struct ConditionOutcome {
  bool fails = false;
  double margin = 0.0;  // V, bitline differential
};
ConditionOutcome condition_outcome(const dram::ColumnSimulator& sim,
                                   dram::Side side,
                                   const DetectionCondition& cond);

/// A condition is a valid test only if it *passes* on the defect-free
/// column under the same stress condition (otherwise it flags healthy
/// devices).  Call with no defect injected.
bool condition_valid_on_healthy(const dram::ColumnSimulator& sim,
                                dram::Side side,
                                const DetectionCondition& cond);

/// Build the candidate list (transition candidates first, then immediate
/// retention, then delayed retention), with k derived at the current
/// injection value.
std::vector<DetectionCondition> candidate_conditions(
    const dram::ColumnSimulator& sim, dram::Side side,
    const DetectionOptions& opt = {});

/// First candidate that fails under the current injection.
std::optional<DetectionCondition> derive_detection_condition(
    const dram::ColumnSimulator& sim, dram::Side side,
    const DetectionOptions& opt = {});

}  // namespace dramstress::analysis
