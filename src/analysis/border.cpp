#include "analysis/border.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/surrogate.hpp"

#include "numeric/interp.hpp"
#include "numeric/rootfind.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dramstress::analysis {

double BorderResult::failing_decades(const defect::SweepRange& range) const {
  if (!br.has_value()) return fails_everywhere
                                  ? std::log10(range.hi / range.lo)
                                  : 0.0;
  return fault_at_high_r ? std::log10(range.hi / *br)
                         : std::log10(*br / range.lo);
}

BorderResult find_border_resistance(dram::DramColumn& column,
                                    const defect::Defect& d,
                                    const dram::ColumnSimulator& sim,
                                    const DetectionCondition& cond,
                                    const defect::SweepRange& range,
                                    const BorderOptions& opt) {
  if (opt.surrogate.enabled)
    return surrogate_find_border(column, d, sim, cond, range, opt);
  OBS_SPAN("border.find");
  require(opt.scan_points >= 3, "find_border_resistance: need >= 3 scan points");
  BorderResult result;
  result.condition = cond;
  result.fault_at_high_r = defect::is_series(d.kind);

  const bool series = result.fault_at_high_r;

  defect::Injection inj(column, d, range.lo);
  long probes = 0;
  auto fails_at = [&](double r) {
    ++probes;
    inj.set_value(r);
    return condition_fails(sim, d.side, cond);
  };
  // Every exit reports how many transient probes the search spent -- the
  // quantity the warm start below exists to shrink.
  auto finish = [&]() -> BorderResult {
    obs::count("border.bisect.iters", probes);
    return result;
  };

  // Warm start: when the caller supplies a hint (typically the BR of the
  // neighbouring stress point), bracket it one coarse-grid step wide and
  // expand geometrically on a miss instead of scanning the whole range.
  // The detection predicates are monotone in R (faulty for R >= BR on
  // series defects, R <= BR on shunts), so the expansion reaches the same
  // bracket -- and the same range-endpoint verdicts -- as the full scan,
  // just in fewer probes.
  if (opt.bracket_hint.has_value() && std::isfinite(*opt.bracket_hint) &&
      *opt.bracket_hint > range.lo && *opt.bracket_hint < range.hi) {
    const double step =
        std::pow(range.hi / range.lo, 1.0 / (opt.scan_points - 1));
    double lo = std::max(range.lo, *opt.bracket_hint / step);
    double hi = std::min(range.hi, *opt.bracket_hint * step);
    // A valid bracket behaves healthy at the low end of a series sweep
    // (fails_at == false == !series) and faulty at its high end, and the
    // mirror image for shunts: the "correct side" test is fails_at == series
    // for the high end, != series for the low end.  Widen whichever end
    // landed on the wrong side, doubling the log-width per miss.
    double widen = step;
    if (fails_at(lo) == series) {
      // The boundary, if any, lies below the hint bracket: walk down.
      obs::count("border.bracket.miss");
      while (true) {
        if (lo <= range.lo * (1.0 + 1e-12)) {
          if (series) {  // fails all the way down to range.lo
            result.fails_everywhere = true;
            result.br = range.lo;
          }  // shunt passing at range.lo: never fails, br stays nullopt
          return finish();
        }
        hi = lo;
        lo = std::max(range.lo, lo / widen);
        widen *= widen;
        if (fails_at(lo) != series) break;
      }
    } else if (fails_at(hi) != series) {
      // The boundary lies above the hint bracket: walk up.
      obs::count("border.bracket.miss");
      while (true) {
        if (hi >= range.hi * (1.0 - 1e-12)) {
          if (!series) {  // shunt fails all the way up to range.hi
            result.fails_everywhere = true;
            result.br = range.hi;
          }  // series passing at range.hi: never fails, br stays nullopt
          return finish();
        }
        lo = hi;
        hi = std::min(range.hi, hi * widen);
        widen *= widen;
        if (fails_at(hi) == series) break;
      }
    }
    result.br = numeric::bisect_predicate_log(
        [&](double r) { return fails_at(r); }, lo, hi, {.x_tol = opt.log_tol});
    return finish();
  }

  // Coarse scan, then refine the transition adjacent to the faulty side.
  const auto grid = numeric::logspace(range.lo, range.hi, opt.scan_points);
  std::vector<bool> fail(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) fail[i] = fails_at(grid[i]);

  // Locate the boundary: for series defects, the *first* failing point
  // scanning up; for shunts, the *last* failing point.
  std::optional<size_t> edge;
  if (result.fault_at_high_r) {
    for (size_t i = 0; i < grid.size(); ++i)
      if (fail[i]) { edge = i; break; }
  } else {
    for (size_t i = grid.size(); i-- > 0;)
      if (fail[i]) { edge = i; break; }
  }
  if (!edge.has_value()) {
    result.br = std::nullopt;
    return finish();  // never fails
  }

  const size_t e = *edge;
  const bool whole_range_faulty =
      (result.fault_at_high_r && e == 0) ||
      (!result.fault_at_high_r && e == grid.size() - 1);
  if (whole_range_faulty) {
    result.fails_everywhere = true;
    result.br = result.fault_at_high_r ? range.lo : range.hi;
    return finish();
  }

  const double lo = result.fault_at_high_r ? grid[e - 1] : grid[e];
  const double hi = result.fault_at_high_r ? grid[e] : grid[e + 1];
  result.br = numeric::bisect_predicate_log(
      [&](double r) { return fails_at(r); }, lo, hi, {.x_tol = opt.log_tol});
  return finish();
}

BorderResult analyze_defect(dram::DramColumn& column, const defect::Defect& d,
                            const dram::ColumnSimulator& sim,
                            const BorderOptions& opt) {
  if (opt.surrogate.enabled) return analyze_defect_surrogate(column, d, sim, opt);
  OBS_SPAN("border.analyze");
  const defect::SweepRange range = defect::default_sweep_range(d.kind);
  // Construct the candidate conditions at a mid-range reference (their
  // charging counts need a representative, not extreme, resistance), then
  // apply the paper's criterion: keep the condition whose failing
  // resistance range is widest.  Candidate order breaks near-ties
  // deterministically (transition conditions first).
  const double k_reference = defect::is_series(d.kind)
                                 ? std::sqrt(range.lo * range.hi)
                                 : 10e3;
  std::vector<DetectionCondition> candidates;
  {
    defect::Injection inj(column, d, k_reference);
    candidates = candidate_conditions(sim, d.side, opt.detection);
  }

  BorderResult result;
  result.fault_at_high_r = defect::is_series(d.kind);
  double best_decades = -1.0;
  const double kTieTolerance = 0.15;  // decades
  for (const DetectionCondition& cand : candidates) {
    // A valid test must pass on the healthy column at this corner
    // (e.g. a 100 us retention pause falsely fails everything at +87 C).
    if (!condition_valid_on_healthy(sim, d.side, cand)) continue;
    const BorderResult r =
        find_border_resistance(column, d, sim, cand, range, opt);
    if (!r.br.has_value()) continue;
    const double decades = r.failing_decades(range);
    if (decades > best_decades + kTieTolerance) {
      best_decades = decades;
      result = r;
    }
  }
  if (!result.br.has_value()) return result;  // not detectable by any candidate
  // Iterate: the charging count that saturates the cell depends on the
  // resistance; re-derive it at the found border.
  for (int it = 0; it < opt.refine_iterations && result.br.has_value(); ++it) {
    std::optional<DetectionCondition> refined;
    {
      defect::Injection inj(column, d, *result.br * (result.fault_at_high_r
                                                         ? 1.05
                                                         : 0.95));
      refined = derive_detection_condition(sim, d.side, opt.detection);
    }
    if (refined.has_value() &&
        !condition_valid_on_healthy(sim, d.side, *refined))
      refined.reset();
    if (!refined.has_value() || refined->str() == result.condition.str()) break;
    // The refined condition's BR lands near the current one: warm-start.
    BorderOptions refine_opt = opt;
    refine_opt.bracket_hint = result.br;
    const BorderResult again =
        find_border_resistance(column, d, sim, *refined, range, refine_opt);
    if (!again.br.has_value()) break;
    util::log_debug(util::format("analyze_defect(%s): refined '%s' -> '%s', "
                                 "BR %s -> %s",
                                 d.name().c_str(), result.condition.str().c_str(),
                                 refined->str().c_str(),
                                 util::eng(*result.br, "Ohm").c_str(),
                                 util::eng(*again.br, "Ohm").c_str()));
    result = again;
  }
  return result;
}

void append_json(util::json::Writer& w, const BorderResult& r,
                 const defect::SweepRange& range) {
  w.begin_object();
  w.key("br");
  if (r.br.has_value())
    w.value(*r.br);
  else
    w.null();
  w.key("fault_at_high_r").value(r.fault_at_high_r);
  w.key("fails_everywhere").value(r.fails_everywhere);
  w.key("condition").value(r.condition.str());
  w.key("failing_decades").value(r.failing_decades(range));
  w.end_object();
}

}  // namespace dramstress::analysis
