// Memoized Vsa(R) extraction.
//
// generate_plane_set extracts the identical Vsa(R) curve once per op
// plane -- three bisections (a dozen read simulations each) per R point
// where one suffices.  The threshold is fully determined by the defect,
// its resistance, the addressed side, the operating corner and the
// bisection tolerance, so a cache keyed on exactly that tuple returns
// bit-identical results to a fresh extraction.  The cache is thread-safe:
// parallel plane workers share one instance.  Two workers racing on the
// same missing key may both run the extraction, but they store the same
// deterministic value, so the first insert wins harmlessly.
#pragma once

#include <cstddef>
#include <map>
#include <optional>

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "util/annotations.hpp"

namespace dramstress::analysis {

/// Everything extract_vsa's result depends on, with exact (bitwise) double
/// comparison -- sweep grids revisit the very same values.
struct VsaCacheKey {
  defect::DefectKind kind{};
  dram::Side side{};
  double r = 0.0;
  double vdd = 0.0;
  double temp_c = 0.0;
  double tcyc = 0.0;
  double duty = 0.0;
  double tolerance = 0.0;

  bool operator<(const VsaCacheKey& o) const;
};

class VsaCache {
public:
  /// Return the cached threshold for (d, r) under the simulator's corner,
  /// or run extract_vsa and remember it.  The simulator's column must
  /// already have `d` injected at resistance `r`.
  VsaResult get_or_extract(const dram::ColumnSimulator& sim,
                           const defect::Defect& d, double r,
                           const VsaOptions& opt = {}) DS_EXCLUDES(mu_);

  /// Cache probe without extraction, for callers that batch their misses
  /// (the ensemble plane sweep).  Returns nullopt on a miss or when the
  /// key has a non-finite component (bypass).
  std::optional<VsaResult> lookup(const dram::ColumnSimulator& sim,
                                  const defect::Defect& d, double r,
                                  const VsaOptions& opt = {})
      DS_EXCLUDES(mu_);

  /// Store an externally extracted result under the same key lookup uses.
  /// Counted as a miss; non-finite keys/thresholds are skipped, as in
  /// get_or_extract.
  void insert(const dram::ColumnSimulator& sim, const defect::Defect& d,
              double r, const VsaOptions& opt, const VsaResult& result)
      DS_EXCLUDES(mu_);

  size_t hits() const DS_EXCLUDES(mu_);
  size_t misses() const DS_EXCLUDES(mu_);
  size_t size() const DS_EXCLUDES(mu_);
  void clear() DS_EXCLUDES(mu_);

private:
  mutable util::Mutex mu_;
  std::map<VsaCacheKey, VsaResult> entries_ DS_GUARDED_BY(mu_);
  size_t hits_ DS_GUARDED_BY(mu_) = 0;
  size_t misses_ DS_GUARDED_BY(mu_) = 0;
};

}  // namespace dramstress::analysis
