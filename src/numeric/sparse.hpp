// Sparse (CSR) matrix storage and a pattern-reusing sparse LU solver.
//
// The folded-bitline MNA Jacobian is ~95% structural zeros and its pattern
// never changes between Newton iterations or time steps (defect injection
// only rewrites resistor values).  The solver exploits that: `factor`
// chooses a pivot order once (dense partial pivoting on the first numeric
// matrix) and computes the structural fill of L and U for that order;
// every subsequent `refactor` replays only the numeric elimination over
// the recorded structure -- no pivot search, no pattern discovery, no
// dense O(n^3) sweep.  A pivot that degrades past the threshold during a
// refactorization triggers an automatic fresh `factor` (new pivot order),
// so accuracy never depends on the staleness of the recorded order.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"

namespace dramstress::numeric {

/// Compressed-sparse-row matrix with a two-phase life cycle:
///   1. pattern capture: `add` records structural positions (values are
///      ignored) until `finalize` sorts and dedups them into CSR;
///   2. assembly: `zero` + `add` accumulate values into the fixed slots.
/// Adding a value at a non-structural position after finalize throws --
/// the stamp pattern is a construction-time contract.
class SparseMatrix {
public:
  SparseMatrix() = default;
  explicit SparseMatrix(size_t n) : n_(n), row_entries_(n) {}

  size_t size() const { return n_; }
  bool finalized() const { return finalized_; }
  size_t nnz() const { return col_idx_.size(); }

  /// Pattern phase: record the structural entry (r, c).  Assembly phase:
  /// accumulate v into slot (r, c); throws ModelError if (r, c) is not
  /// structural.
  void add(size_t r, size_t c, double v);

  /// Freeze the captured pattern into CSR storage.  Idempotent.
  void finalize();

  /// Set every stored value to zero (pattern unchanged).
  void zero();

  /// Stored value at (r, c); 0.0 for non-structural positions.
  double at(size_t r, size_t c) const;

  /// Dense copy (equivalence tests, fallback paths).
  Matrix to_dense() const;

  // CSR internals, for the solver.
  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Slot of (r, c) in values(), or SIZE_MAX for non-structural positions.
  /// Exposed so the ensemble engine can compile stamp sequences into flat
  /// slot programs once instead of binary-searching on every assembly.
  size_t slot(size_t r, size_t c) const;

  /// Mutable value storage (finalized matrices only): the ensemble engine
  /// scatters lane values straight into the CSR slots it compiled.
  double* values_data() { return values_.data(); }

private:
  size_t n_ = 0;
  bool finalized_ = false;
  std::vector<std::vector<size_t>> row_entries_;  // capture phase only
  std::vector<size_t> row_ptr_;                   // n_ + 1
  std::vector<size_t> col_idx_;                   // sorted within each row
  std::vector<double> values_;
};

/// LU factorization of a SparseMatrix that amortizes all structural work.
///
///   factor(A):   dense partial-pivot LU picks the row permutation, then a
///                boolean elimination of the permuted pattern computes the
///                fill structure of L and U, which is compiled into
///                column-major slot lists.  O(n^3) but run once per
///                pattern (and on pivot-degradation fallback).
///   refactor(A): numeric left-looking elimination over the recorded
///                structure: per column, scatter A's column, replay the
///                recorded updates, divide by the recorded pivot position.
///                O(flops over structural fill) -- for MNA-sized systems
///                an order of magnitude cheaper than the dense sweep.
class SparseLuSolver {
public:
  /// The ensemble engine's lane-batched refactorization (EnsembleLu) runs
  /// the recorded elimination for several solvers in one structure walk;
  /// it needs the recorded structure and the value arrays.
  friend class EnsembleLu;

  /// Full factorization: pivot order + fill pattern + numeric values.
  void factor(const SparseMatrix& a, double pivot_tol = 1e-13);

  /// Numeric-only refactorization over the recorded structure.  Falls back
  /// to factor() (fresh pivot order) if any pivot falls below
  /// pivot_tol * max|column|; calls factor() outright if no structure has
  /// been recorded or the size changed.
  void refactor(const SparseMatrix& a, double pivot_tol = 1e-13);

  /// Solve A x = b with the last factorization.
  void solve_into(const Vector& b, Vector& x) const;
  Vector solve(const Vector& b) const;

  size_t size() const { return n_; }
  bool analyzed() const { return analyzed_; }
  /// Structural nonzeros of L + U (diagnostics; includes fill-in).
  size_t factor_nnz() const { return lrow_.size() + urow_.size() + n_; }

  // Counters for tests and the perf bench.
  long factor_count() const { return factor_count_; }
  long refactor_count() const { return refactor_count_; }
  long fallback_count() const { return fallback_count_; }

private:
  /// Boolean elimination of the permuted pattern; fills the column-major
  /// L/U structure and the per-column A-scatter lists.
  void analyze_pattern(const SparseMatrix& a);

  size_t n_ = 0;
  bool analyzed_ = false;
  std::vector<size_t> perm_;  // perm_[i] = original row at permuted position i
  std::vector<size_t> pinv_;  // pinv_[perm_[i]] = i

  // Column-major unit-lower L (diagonal implicit) and strict-upper U.
  std::vector<size_t> lcol_ptr_, lrow_;  // rows > j per column j
  std::vector<double> lval_;
  std::vector<size_t> ucol_ptr_, urow_;  // rows < j per column j, ascending
  std::vector<double> uval_;
  std::vector<double> diag_;

  // Scatter lists: for column j of A, (permuted row, slot in A.values()).
  std::vector<size_t> acol_ptr_;
  std::vector<std::pair<size_t, size_t>> ascatter_;

  // Union of structural rows per column (zeroing list for the work vector).
  std::vector<size_t> colpat_ptr_, colpat_row_;

  std::vector<double> work_;

  long factor_count_ = 0;
  long refactor_count_ = 0;
  long fallback_count_ = 0;
};

}  // namespace dramstress::numeric
