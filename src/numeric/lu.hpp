// LU decomposition with partial pivoting, the linear-solve core of the
// MNA Newton iteration.
#pragma once

#include "numeric/matrix.hpp"

namespace dramstress::numeric {

/// In-place LU factorization of a square matrix with partial pivoting.
/// Reuses its internal storage between factorizations of equally-sized
/// matrices, which matters because the transient loop refactors every
/// Newton iteration.
class LuSolver {
public:
  /// Factor A (copied internally).  Throws ConvergenceError if A is
  /// numerically singular (pivot below `pivot_tol` * max|A|).
  void factor(const Matrix& a, double pivot_tol = 1e-13);

  /// Solve A x = b using the last factorization.
  Vector solve(const Vector& b) const;

  /// Solve in place into `x` (must be pre-sized to n).
  void solve_into(const Vector& b, Vector& x) const;

  size_t size() const { return n_; }

  /// Address of the internal factor storage; exposed so tests can assert
  /// that same-sized refactorizations reuse it instead of reallocating.
  const double* lu_storage() const { return lu_.data(); }

private:
  size_t n_ = 0;
  Matrix lu_;
  std::vector<size_t> perm_;
};

/// One-shot convenience: solve A x = b.
Vector lu_solve(const Matrix& a, const Vector& b);

}  // namespace dramstress::numeric
