#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dramstress::numeric {

PiecewiseLinear::PiecewiseLinear(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  require(x_.size() == y_.size(), "PiecewiseLinear: size mismatch");
  require(x_.size() >= 1, "PiecewiseLinear: need at least one point");
  for (size_t i = 1; i < x_.size(); ++i)
    require(x_[i] > x_[i - 1], "PiecewiseLinear: x must be strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  require(!x_.empty(), "PiecewiseLinear: empty curve");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  // Binary search for the segment containing x.
  size_t lo = 0;
  size_t hi = x_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (x_[mid] <= x)
      lo = mid;
    else
      hi = mid;
  }
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] + t * (y_[hi] - y_[lo]);
}

MonotoneCubic::MonotoneCubic(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  require(x_.size() == y_.size(), "MonotoneCubic: size mismatch");
  require(x_.size() >= 2, "MonotoneCubic: need at least two knots");
  for (size_t i = 1; i < x_.size(); ++i)
    require(x_[i] > x_[i - 1], "MonotoneCubic: x must be strictly increasing");

  const size_t n = x_.size();
  std::vector<double> h(n - 1);
  std::vector<double> s(n - 1);  // secant slopes
  for (size_t i = 0; i + 1 < n; ++i) {
    h[i] = x_[i + 1] - x_[i];
    s[i] = (y_[i + 1] - y_[i]) / h[i];
  }

  d_.assign(n, 0.0);
  if (n == 2) {
    d_[0] = d_[1] = s[0];
  } else {
    // Interior slopes: Fritsch-Carlson weighted harmonic mean; zero at
    // local extrema (secants of opposite sign) so no interval overshoots.
    for (size_t i = 1; i + 1 < n; ++i) {
      if (s[i - 1] == 0.0 || s[i] == 0.0 || (s[i - 1] > 0.0) != (s[i] > 0.0)) {
        d_[i] = 0.0;
      } else {
        const double w1 = 2.0 * h[i] + h[i - 1];
        const double w2 = h[i] + 2.0 * h[i - 1];
        d_[i] = (w1 + w2) / (w1 / s[i - 1] + w2 / s[i]);
      }
    }
    // Endpoint slopes: one-sided three-point estimate, clipped to keep the
    // first/last interval shape-preserving.
    auto endpoint = [](double h0, double h1, double s0, double s1) {
      double d = ((2.0 * h0 + h1) * s0 - h0 * s1) / (h0 + h1);
      if ((d > 0.0) != (s0 > 0.0) || s0 == 0.0) d = 0.0;
      else if ((s0 > 0.0) != (s1 > 0.0) && std::fabs(d) > 3.0 * std::fabs(s0))
        d = 3.0 * s0;
      return d;
    };
    d_[0] = endpoint(h[0], h[1], s[0], s[1]);
    d_[n - 1] = endpoint(h[n - 2], h[n - 3], s[n - 2], s[n - 3]);
  }
}

double MonotoneCubic::operator()(double x) const {
  require(!x_.empty(), "MonotoneCubic: empty curve");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  size_t lo = 0;
  size_t hi = x_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (x_[mid] <= x)
      lo = mid;
    else
      hi = mid;
  }
  const double h = x_[hi] - x_[lo];
  const double t = (x - x_[lo]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[lo] + h10 * h * d_[lo] + h01 * y_[hi] + h11 * h * d_[hi];
}

std::optional<double> MonotoneCubic::first_zero(double lo, double hi) const {
  lo = std::max(lo, x_.front());
  hi = std::min(hi, x_.back());
  if (!(lo < hi)) return std::nullopt;
  for (size_t i = 0; i + 1 < x_.size(); ++i) {
    const double a = std::max(lo, x_[i]);
    const double b = std::min(hi, x_[i + 1]);
    if (!(a < b)) continue;
    double fa = (*this)(a);
    double fb = (*this)(b);
    if (fa == 0.0) return a;
    if (fb == 0.0 && b == hi) return b;
    if ((fa > 0.0) == (fb > 0.0)) continue;
    // Bisect the interpolant inside the sign-changing span.
    double xa = a;
    double xb = b;
    for (int it = 0; it < 60 && xb - xa > 1e-12 * (1.0 + std::fabs(xa));
         ++it) {
      const double xm = 0.5 * (xa + xb);
      const double fm = (*this)(xm);
      if (fm == 0.0) return xm;
      if ((fm > 0.0) == (fa > 0.0)) {
        xa = xm;
        fa = fm;
      } else {
        xb = xm;
      }
    }
    return 0.5 * (xa + xb);
  }
  return std::nullopt;
}

bool MonotoneCubic::data_monotone(double eps) const {
  double up = 0.0;    // largest rise between consecutive knots
  double down = 0.0;  // largest drop
  for (size_t i = 1; i < y_.size(); ++i) {
    const double step = y_[i] - y_[i - 1];
    up = std::max(up, step);
    down = std::max(down, -step);
  }
  // Monotone up to eps: the counter-direction excursion stays below eps.
  return std::min(up, down) <= eps;
}

double MonotoneCubic::interval_error_bound(size_t i) const {
  require(i + 1 < x_.size(), "MonotoneCubic: interval index out of range");
  const size_t n = x_.size();
  if (n < 4) return 0.0;
  // Third divided difference over knots [j, j+3].
  auto dd3 = [&](size_t j) {
    double f01 = (y_[j + 1] - y_[j]) / (x_[j + 1] - x_[j]);
    double f12 = (y_[j + 2] - y_[j + 1]) / (x_[j + 2] - x_[j + 1]);
    double f23 = (y_[j + 3] - y_[j + 2]) / (x_[j + 3] - x_[j + 2]);
    double f012 = (f12 - f01) / (x_[j + 2] - x_[j]);
    double f123 = (f23 - f12) / (x_[j + 3] - x_[j + 1]);
    return (f123 - f012) / (x_[j + 3] - x_[j]);
  };
  double worst = 0.0;
  // Stencils [j, j+3] touching interval [i, i+1]: j in [i-2, i+1], clamped.
  const size_t j_lo = i >= 2 ? i - 2 : 0;
  const size_t j_hi = std::min(i + 1, n - 4);
  for (size_t j = j_lo; j <= j_hi; ++j) worst = std::max(worst, std::fabs(dd3(j)));
  const double h = x_[i + 1] - x_[i];
  return h * h * h * worst;
}

std::optional<double> first_crossing(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b, double x_lo,
                                     double x_hi, int samples) {
  require(samples >= 2, "first_crossing: need >= 2 samples");
  require(x_lo < x_hi, "first_crossing: x_lo must be < x_hi");
  double prev_x = x_lo;
  double prev_d = a(x_lo) - b(x_lo);
  for (int i = 1; i < samples; ++i) {
    const double x = x_lo + (x_hi - x_lo) * i / (samples - 1);
    const double d = a(x) - b(x);
    if (prev_d == 0.0) return prev_x;
    if ((d > 0.0) != (prev_d > 0.0)) {
      // Linear interpolation of the sign change.
      const double t = prev_d / (prev_d - d);
      return prev_x + t * (x - prev_x);
    }
    prev_x = x;
    prev_d = d;
  }
  return std::nullopt;
}

std::vector<double> linspace(double lo, double hi, int n) {
  require(n >= 2, "linspace: need n >= 2");
  std::vector<double> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    out[static_cast<size_t>(i)] = lo + (hi - lo) * i / (n - 1);
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  require(lo > 0.0 && hi > lo, "logspace: need 0 < lo < hi");
  require(n >= 2, "logspace: need n >= 2");
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  std::vector<double> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    out[static_cast<size_t>(i)] = std::pow(10.0, llo + (lhi - llo) * i / (n - 1));
  return out;
}

}  // namespace dramstress::numeric
