#include "numeric/interp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dramstress::numeric {

PiecewiseLinear::PiecewiseLinear(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  require(x_.size() == y_.size(), "PiecewiseLinear: size mismatch");
  require(x_.size() >= 1, "PiecewiseLinear: need at least one point");
  for (size_t i = 1; i < x_.size(); ++i)
    require(x_[i] > x_[i - 1], "PiecewiseLinear: x must be strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  require(!x_.empty(), "PiecewiseLinear: empty curve");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  // Binary search for the segment containing x.
  size_t lo = 0;
  size_t hi = x_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (x_[mid] <= x)
      lo = mid;
    else
      hi = mid;
  }
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] + t * (y_[hi] - y_[lo]);
}

std::optional<double> first_crossing(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b, double x_lo,
                                     double x_hi, int samples) {
  require(samples >= 2, "first_crossing: need >= 2 samples");
  require(x_lo < x_hi, "first_crossing: x_lo must be < x_hi");
  double prev_x = x_lo;
  double prev_d = a(x_lo) - b(x_lo);
  for (int i = 1; i < samples; ++i) {
    const double x = x_lo + (x_hi - x_lo) * i / (samples - 1);
    const double d = a(x) - b(x);
    if (prev_d == 0.0) return prev_x;
    if ((d > 0.0) != (prev_d > 0.0)) {
      // Linear interpolation of the sign change.
      const double t = prev_d / (prev_d - d);
      return prev_x + t * (x - prev_x);
    }
    prev_x = x;
    prev_d = d;
  }
  return std::nullopt;
}

std::vector<double> linspace(double lo, double hi, int n) {
  require(n >= 2, "linspace: need n >= 2");
  std::vector<double> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    out[static_cast<size_t>(i)] = lo + (hi - lo) * i / (n - 1);
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  require(lo > 0.0 && hi > lo, "logspace: need 0 < lo < hi");
  require(n >= 2, "logspace: need n >= 2");
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  std::vector<double> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    out[static_cast<size_t>(i)] = std::pow(10.0, llo + (lhi - llo) * i / (n - 1));
  return out;
}

}  // namespace dramstress::numeric
