#include "numeric/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dramstress::numeric {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply dimension mismatch");
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot dimension mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

Vector subtract(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "subtract dimension mismatch");
  Vector r(a.size());
  for (size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void axpy(Vector& a, double s, const Vector& b) {
  require(a.size() == b.size(), "axpy dimension mismatch");
  for (size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace dramstress::numeric
