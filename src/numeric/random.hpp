// Small deterministic RNG (xorshift64* + Box-Muller) so Monte-Carlo
// results are bit-reproducible across platforms and standard-library
// versions (std::normal_distribution is implementation-defined).
#pragma once

#include <cstdint>

namespace dramstress::numeric {

class Rng {
public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed ? seed : 1u) {}

  /// Uniform in [0, 1).
  double uniform() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const uint64_t x = state_ * 0x2545f4914f6cdd1dull;
    return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal (Box-Muller; one value per call, spare cached).
  double gauss();

  /// Normal with mean/sigma.
  double gauss(double mean, double sigma) { return mean + sigma * gauss(); }

private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dramstress::numeric
