// Piecewise-linear interpolation and curve-intersection helpers used by the
// result-plane analysis (finding where a write curve crosses the Vsa curve).
#pragma once

#include <optional>
#include <vector>

namespace dramstress::numeric {

/// Piecewise-linear curve y(x) over strictly increasing sample points.
class PiecewiseLinear {
public:
  PiecewiseLinear() = default;
  PiecewiseLinear(std::vector<double> x, std::vector<double> y);

  /// Evaluate with flat extrapolation beyond the sample range.
  double operator()(double x) const;

  size_t size() const { return x_.size(); }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }

  bool empty() const { return x_.empty(); }

private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Monotone shape-preserving cubic Hermite interpolant (PCHIP with the
/// Fritsch-Carlson slope limiter).  Where the sample data is monotone the
/// interpolant is monotone too -- no overshoot, no spurious extrema -- so a
/// sign change of the interpolant between two knots implies a sign change
/// of the data, which is what the surrogate border search relies on when it
/// turns a fitted curve into a bracket (analysis/surrogate.hpp).
class MonotoneCubic {
public:
  MonotoneCubic() = default;
  /// x strictly increasing, sizes equal and >= 2 (2 knots = linear).
  MonotoneCubic(std::vector<double> x, std::vector<double> y);

  /// Evaluate with flat extrapolation beyond the sample range.
  double operator()(double x) const;

  /// Smallest zero of the interpolant in [lo, hi] (clamped to the sample
  /// range): scans knot intervals for a sign change of the knot values and
  /// bisects the interpolant inside the first changing interval.  Returns
  /// nullopt when no knot interval changes sign.
  std::optional<double> first_zero(double lo, double hi) const;

  /// True when the knot values are monotone (either direction) up to
  /// `eps`: every consecutive step against the dominant direction is
  /// smaller than eps.  The surrogate's shape check.
  bool data_monotone(double eps = 0.0) const;

  /// Interpolation-error scale of interval i (between knots i and i+1):
  /// h_i^3 * max |third divided difference| over the stencils touching the
  /// interval -- the magnitude the cubic's truncation term grows with.
  /// Zero when fewer than 4 knots exist.
  double interval_error_bound(size_t i) const;

  size_t size() const { return x_.size(); }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }
  bool empty() const { return x_.empty(); }

private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> d_;  // limited knot slopes
};

/// First x (smallest) where curves a and b cross, i.e. where
/// a(x) - b(x) changes sign, scanning the union of their sample ranges on a
/// uniform grid of `samples` points between x_lo and x_hi.  Returns nullopt
/// if no crossing is found.
std::optional<double> first_crossing(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b, double x_lo,
                                     double x_hi, int samples = 512);

/// Uniformly spaced grid of n points from lo to hi inclusive.
std::vector<double> linspace(double lo, double hi, int n);

/// Log-spaced grid of n points from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

}  // namespace dramstress::numeric
