// Piecewise-linear interpolation and curve-intersection helpers used by the
// result-plane analysis (finding where a write curve crosses the Vsa curve).
#pragma once

#include <optional>
#include <vector>

namespace dramstress::numeric {

/// Piecewise-linear curve y(x) over strictly increasing sample points.
class PiecewiseLinear {
public:
  PiecewiseLinear() = default;
  PiecewiseLinear(std::vector<double> x, std::vector<double> y);

  /// Evaluate with flat extrapolation beyond the sample range.
  double operator()(double x) const;

  size_t size() const { return x_.size(); }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }

  bool empty() const { return x_.empty(); }

private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// First x (smallest) where curves a and b cross, i.e. where
/// a(x) - b(x) changes sign, scanning the union of their sample ranges on a
/// uniform grid of `samples` points between x_lo and x_hi.  Returns nullopt
/// if no crossing is found.
std::optional<double> first_crossing(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b, double x_lo,
                                     double x_hi, int samples = 512);

/// Uniformly spaced grid of n points from lo to hi inclusive.
std::vector<double> linspace(double lo, double hi, int n);

/// Log-spaced grid of n points from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

}  // namespace dramstress::numeric
