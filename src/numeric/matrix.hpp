// Dense matrix / vector types sized for MNA systems (tens of unknowns).
#pragma once

#include <cstddef>
#include <vector>

namespace dramstress::numeric {

using Vector = std::vector<double>;

/// Row-major dense matrix.  MNA matrices here are ~20-40 unknowns, so a
/// dense representation with partial-pivot LU is both simplest and fastest.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Set every entry to zero (keeps dimensions).
  void zero();

  /// y = A * x ; x.size() must equal cols().
  Vector multiply(const Vector& x) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// --- small vector helpers ----------------------------------------------------
double dot(const Vector& a, const Vector& b);
double norm_inf(const Vector& v);
/// r = a - b
Vector subtract(const Vector& a, const Vector& b);
/// a += s * b
void axpy(Vector& a, double s, const Vector& b);

}  // namespace dramstress::numeric
