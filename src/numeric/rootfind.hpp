// 1-D root finding used throughout the fault analysis:
//  * bisection on monotone pass/fail predicates (Vsa extraction: "does a read
//    of initial cell voltage V return 1?"),
//  * bracketed scalar root finding (border-resistance extraction: zero of
//    Vc_after_sequence(R) - Vsa(R)).
#pragma once

#include <functional>

namespace dramstress::numeric {

struct BisectOptions {
  double x_tol = 1e-3;   // absolute tolerance on x
  int max_iter = 80;
};

/// Bisection on a boolean predicate assumed monotone over [lo, hi]:
/// pred(lo) and pred(hi) must differ.  Returns the boundary x where the
/// predicate flips (midpoint of the final bracket).
/// Throws ConvergenceError if pred(lo) == pred(hi).
double bisect_predicate(const std::function<bool(double)>& pred, double lo,
                        double hi, const BisectOptions& opt = {});

/// Like bisect_predicate, but returns the final bracket [lo, hi] instead of
/// the midpoint; useful for reporting uncertainty intervals.
struct Bracket {
  double lo = 0.0;
  double hi = 0.0;
  double mid() const { return 0.5 * (lo + hi); }
  double width() const { return hi - lo; }
};
Bracket bisect_predicate_bracket(const std::function<bool(double)>& pred,
                                 double lo, double hi,
                                 const BisectOptions& opt = {});

/// Classic bisection for f(x) = 0 with f(lo), f(hi) of opposite sign.
double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, const BisectOptions& opt = {});

/// Bisection in log-space for quantities spanning decades (defect
/// resistance).  lo and hi must be positive and bracket the flip.
double bisect_predicate_log(const std::function<bool(double)>& pred, double lo,
                            double hi, const BisectOptions& opt = {});

}  // namespace dramstress::numeric
