#include "numeric/ensemble.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dramstress::numeric {

namespace {

/// Everything the elimination needs, as raw pointers: the recorded
/// structure of the group's base solver plus per-lane value arrays.
struct BatchArgs {
  size_t n = 0;
  const size_t* colpat_ptr = nullptr;
  const size_t* colpat_row = nullptr;
  const size_t* acol_ptr = nullptr;
  const std::pair<size_t, size_t>* ascatter = nullptr;
  const size_t* ucol_ptr = nullptr;
  const size_t* urow = nullptr;
  const size_t* lcol_ptr = nullptr;
  const size_t* lrow = nullptr;
  const double* const* av = nullptr;  // [lane] -> A values
  double* const* lvp = nullptr;       // [lane] -> solver lval_
  double* const* uvp = nullptr;       // [lane] -> solver uval_
  double* const* dgp = nullptr;       // [lane] -> solver diag_
  double* x = nullptr;                // n x W lane-major work
  double* lvb = nullptr;              // L values, lane-major (hot reads)
  double* dinv = nullptr;             // [lane]
  double* colmax = nullptr;           // [lane] pivot-guard scratch
  char* failed = nullptr;             // [lane]
  double pivot_tol = 0.0;
};

/// One left-looking elimination pass over the shared structure with a
/// lane-wide inner loop.  KW == 0 runs with the runtime width; a nonzero
/// KW makes the lane loops constant-trip so the compiler unrolls and
/// vectorizes them.  Per lane this performs exactly the operation
/// sequence of SparseLuSolver::refactor (see the header for the one
/// sign-of-zero caveat), so results are bit-identical to the scalar path.
template <size_t KW>
void eliminate(const BatchArgs& a, size_t runtime_w) {
  const size_t W = KW == 0 ? runtime_w : KW;
  for (size_t j = 0; j < a.n; ++j) {
    for (size_t p = a.colpat_ptr[j]; p < a.colpat_ptr[j + 1]; ++p) {
      double* xr = a.x + a.colpat_row[p] * W;
      for (size_t g = 0; g < W; ++g) xr[g] = 0.0;
    }
    for (size_t p = a.acol_ptr[j]; p < a.acol_ptr[j + 1]; ++p) {
      double* xr = a.x + a.ascatter[p].first * W;
      const size_t slot = a.ascatter[p].second;
      for (size_t g = 0; g < W; ++g) xr[g] += a.av[g][slot];
    }

    for (size_t t = a.ucol_ptr[j]; t < a.ucol_ptr[j + 1]; ++t) {
      const size_t k = a.urow[t];
      const double* xk = a.x + k * W;
      bool any = false;
      for (size_t g = 0; g < W; ++g) {
        a.uvp[g][t] = xk[g];
        any = any || xk[g] != 0.0;
      }
      if (!any) continue;
      for (size_t s = a.lcol_ptr[k]; s < a.lcol_ptr[k + 1]; ++s) {
        const double* lv = a.lvb + s * W;
        double* xr = a.x + a.lrow[s] * W;
        for (size_t g = 0; g < W; ++g) xr[g] -= lv[g] * xk[g];
      }
    }

    // Per-lane pivot guard, identical to the scalar fallback condition
    // (max is order-independent, so the row-outer scan decides the same).
    // A tripped lane keeps running (its results are discarded by the
    // caller); its scalar refactorization re-derives the trip and falls
    // back to a fresh factor() for that lane alone.
    const double* xj = a.x + j * W;
    for (size_t g = 0; g < W; ++g) a.colmax[g] = std::fabs(xj[g]);
    for (size_t s = a.lcol_ptr[j]; s < a.lcol_ptr[j + 1]; ++s) {
      const double* xr = a.x + a.lrow[s] * W;
      for (size_t g = 0; g < W; ++g)
        a.colmax[g] = std::max(a.colmax[g], std::fabs(xr[g]));
    }
    for (size_t g = 0; g < W; ++g) {
      if (std::fabs(xj[g]) < a.pivot_tol * std::max(a.colmax[g], 1.0))
        a.failed[g] = 1;
      a.dgp[g][j] = xj[g];
      a.dinv[g] = 1.0 / xj[g];
    }
    for (size_t s = a.lcol_ptr[j]; s < a.lcol_ptr[j + 1]; ++s) {
      double* lvs = a.lvb + s * W;
      const double* xr = a.x + a.lrow[s] * W;
      for (size_t g = 0; g < W; ++g) lvs[g] = xr[g] * a.dinv[g];
      for (size_t g = 0; g < W; ++g) a.lvp[g][s] = lvs[g];
    }
  }
}

/// Substitution counterpart of `eliminate`: forward/back solves over the
/// shared structure.  The per-lane `xk != 0` guards reproduce the scalar
/// solve_into skip exactly, so every lane's value path is the scalar one.
struct SolveArgs {
  size_t n = 0;
  const size_t* perm = nullptr;
  const size_t* lcol_ptr = nullptr;
  const size_t* lrow = nullptr;
  const size_t* ucol_ptr = nullptr;
  const size_t* urow = nullptr;
  const double* const* lv = nullptr;  // [lane] -> lval_
  const double* const* uv = nullptr;  // [lane] -> uval_
  const double* const* dg = nullptr;  // [lane] -> diag_
  const double* const* b = nullptr;   // [lane] -> rhs
  double* const* out = nullptr;       // [lane] -> solution
  double* x = nullptr;                // n x W lane-major work
};

template <size_t KW>
void substitute(const SolveArgs& a, size_t runtime_w) {
  const size_t W = KW == 0 ? runtime_w : KW;
  for (size_t i = 0; i < a.n; ++i) {
    double* xr = a.x + i * W;
    const size_t pi = a.perm[i];
    for (size_t g = 0; g < W; ++g) xr[g] = a.b[g][pi];
  }
  // Per column, classify the lanes once: if every lane's pivot value is
  // nonzero (the common case) the unguarded loop performs exactly the
  // guarded loop's operations, and the compiler can unroll it; if none
  // is, skipping the column matches every guard failing.  Only the mixed
  // case pays the per-element branch.
  for (size_t k = 0; k < a.n; ++k) {
    const double* xk = a.x + k * W;
    size_t nz = 0;
    for (size_t g = 0; g < W; ++g) nz += xk[g] != 0.0 ? 1 : 0;
    if (nz == 0) continue;
    if (nz == W) {
      for (size_t s = a.lcol_ptr[k]; s < a.lcol_ptr[k + 1]; ++s) {
        double* xr = a.x + a.lrow[s] * W;
        for (size_t g = 0; g < W; ++g) xr[g] -= a.lv[g][s] * xk[g];
      }
    } else {
      for (size_t s = a.lcol_ptr[k]; s < a.lcol_ptr[k + 1]; ++s) {
        double* xr = a.x + a.lrow[s] * W;
        for (size_t g = 0; g < W; ++g) {
          if (xk[g] != 0.0) xr[g] -= a.lv[g][s] * xk[g];
        }
      }
    }
  }
  for (size_t jj = a.n; jj-- > 0;) {
    double* xj = a.x + jj * W;
    for (size_t g = 0; g < W; ++g) xj[g] /= a.dg[g][jj];
    size_t nz = 0;
    for (size_t g = 0; g < W; ++g) nz += xj[g] != 0.0 ? 1 : 0;
    if (nz == 0) continue;
    if (nz == W) {
      for (size_t t = a.ucol_ptr[jj]; t < a.ucol_ptr[jj + 1]; ++t) {
        double* xr = a.x + a.urow[t] * W;
        for (size_t g = 0; g < W; ++g) xr[g] -= a.uv[g][t] * xj[g];
      }
    } else {
      for (size_t t = a.ucol_ptr[jj]; t < a.ucol_ptr[jj + 1]; ++t) {
        double* xr = a.x + a.urow[t] * W;
        for (size_t g = 0; g < W; ++g) {
          if (xj[g] != 0.0) xr[g] -= a.uv[g][t] * xj[g];
        }
      }
    }
  }
  for (size_t i = 0; i < a.n; ++i) {
    const double* xr = a.x + i * W;
    for (size_t g = 0; g < W; ++g) a.out[g][i] = xr[g];
  }
}

}  // namespace

int EnsembleLu::refactor_batch(SparseLuSolver* const* solvers,
                               const SparseMatrix* const* mats, size_t count,
                               char* done, double pivot_tol) {
  for (size_t i = 0; i < count; ++i) done[i] = 0;

  const SparseLuSolver* base = nullptr;
  group_.clear();
  for (size_t i = 0; i < count; ++i) {
    const SparseLuSolver& s = *solvers[i];
    if (!s.analyzed_ || mats[i]->size() != s.n_) continue;
    if (base == nullptr) {
      base = &s;
      group_.push_back(i);
    } else if (s.n_ == base->n_ && s.perm_ == base->perm_) {
      group_.push_back(i);
    }
  }
  if (group_.size() < 2) return 0;
  const size_t W = group_.size();
  const size_t n = base->n_;

  // Equal pivot order over the shared pattern implies equal fill
  // (analyze_pattern is a function of pattern and order); the size checks
  // guard that invariant.
  for (const size_t i : group_) {
    require(solvers[i]->lrow_.size() == base->lrow_.size() &&
                solvers[i]->urow_.size() == base->urow_.size(),
            "EnsembleLu: equal pivot order but unequal fill");
  }

  x_.resize(n * W);
  lvb_.resize(base->lrow_.size() * W);
  av_.resize(W);
  lvp_.resize(W);
  uvp_.resize(W);
  dgp_.resize(W);
  dinv_.assign(W, 0.0);
  colmax_.assign(W, 0.0);
  failed_.assign(W, 0);
  for (size_t g = 0; g < W; ++g) {
    SparseLuSolver& s = *solvers[group_[g]];
    av_[g] = mats[group_[g]]->values().data();
    lvp_[g] = s.lval_.data();
    uvp_[g] = s.uval_.data();
    dgp_[g] = s.diag_.data();
  }

  BatchArgs a;
  a.n = n;
  a.colpat_ptr = base->colpat_ptr_.data();
  a.colpat_row = base->colpat_row_.data();
  a.acol_ptr = base->acol_ptr_.data();
  a.ascatter = base->ascatter_.data();
  a.ucol_ptr = base->ucol_ptr_.data();
  a.urow = base->urow_.data();
  a.lcol_ptr = base->lcol_ptr_.data();
  a.lrow = base->lrow_.data();
  a.av = av_.data();
  a.lvp = lvp_.data();
  a.uvp = uvp_.data();
  a.dgp = dgp_.data();
  a.x = x_.data();
  a.lvb = lvb_.data();
  a.dinv = dinv_.data();
  a.colmax = colmax_.data();
  a.failed = failed_.data();
  a.pivot_tol = pivot_tol;

  switch (W) {
    case 2: eliminate<2>(a, W); break;
    case 3: eliminate<3>(a, W); break;
    case 4: eliminate<4>(a, W); break;
    case 5: eliminate<5>(a, W); break;
    case 6: eliminate<6>(a, W); break;
    case 7: eliminate<7>(a, W); break;
    case 8: eliminate<8>(a, W); break;
    case 10: eliminate<10>(a, W); break;
    case 12: eliminate<12>(a, W); break;
    case 14: eliminate<14>(a, W); break;
    case 16: eliminate<16>(a, W); break;
    default: eliminate<0>(a, W); break;
  }

  int batched = 0;
  for (size_t g = 0; g < W; ++g) {
    if (failed_[g] != 0) continue;
    done[group_[g]] = 1;
    ++solvers[group_[g]]->refactor_count_;
    ++batched;
  }
  if (batched > 0) {
    obs::count("sparse.refactor", batched);
    obs::count("ensemble.lu_batch");
    obs::count("ensemble.lu_lanes", batched);
  }
  return batched;
}

int EnsembleLu::solve_batch(SparseLuSolver* const* solvers,
                            const Vector* const* bs, Vector* const* xs,
                            size_t count, char* done) {
  for (size_t i = 0; i < count; ++i) done[i] = 0;

  const SparseLuSolver* base = nullptr;
  group_.clear();
  for (size_t i = 0; i < count; ++i) {
    const SparseLuSolver& s = *solvers[i];
    if (!s.analyzed_ || bs[i]->size() != s.n_ || xs[i]->size() != s.n_)
      continue;
    if (base == nullptr) {
      base = &s;
      group_.push_back(i);
    } else if (s.n_ == base->n_ && s.perm_ == base->perm_) {
      group_.push_back(i);
    }
  }
  if (group_.size() < 2) return 0;
  const size_t W = group_.size();
  const size_t n = base->n_;

  x_.resize(n * W);
  lvp_.resize(W);
  uvp_.resize(W);
  dgp_.resize(W);
  bp_.resize(W);
  xp_.resize(W);
  for (size_t g = 0; g < W; ++g) {
    SparseLuSolver& s = *solvers[group_[g]];
    lvp_[g] = s.lval_.data();
    uvp_[g] = s.uval_.data();
    dgp_[g] = s.diag_.data();
    bp_[g] = bs[group_[g]]->data();
    xp_[g] = xs[group_[g]]->data();
  }

  SolveArgs a;
  a.n = n;
  a.perm = base->perm_.data();
  a.lcol_ptr = base->lcol_ptr_.data();
  a.lrow = base->lrow_.data();
  a.ucol_ptr = base->ucol_ptr_.data();
  a.urow = base->urow_.data();
  a.lv = lvp_.data();
  a.uv = uvp_.data();
  a.dg = dgp_.data();
  a.b = bp_.data();
  a.out = xp_.data();
  a.x = x_.data();

  switch (W) {
    case 2: substitute<2>(a, W); break;
    case 3: substitute<3>(a, W); break;
    case 4: substitute<4>(a, W); break;
    case 5: substitute<5>(a, W); break;
    case 6: substitute<6>(a, W); break;
    case 7: substitute<7>(a, W); break;
    case 8: substitute<8>(a, W); break;
    case 10: substitute<10>(a, W); break;
    case 12: substitute<12>(a, W); break;
    case 14: substitute<14>(a, W); break;
    case 16: substitute<16>(a, W); break;
    default: substitute<0>(a, W); break;
  }

  for (size_t g = 0; g < W; ++g) done[group_[g]] = 1;
  obs::count("ensemble.solve_batch");
  obs::count("ensemble.solve_lanes", static_cast<long>(W));
  return static_cast<int>(W);
}

}  // namespace dramstress::numeric
