#include "numeric/lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::numeric {

void LuSolver::factor(const Matrix& a, double pivot_tol) {
  require(a.rows() == a.cols(), "LuSolver: matrix must be square");
  n_ = a.rows();
  // The transient loop refactors a same-sized Jacobian every Newton
  // iteration: copy into the existing storage instead of reallocating.
  if (lu_.rows() != n_ || lu_.cols() != n_) lu_ = Matrix(n_, n_);
  std::copy(a.data(), a.data() + n_ * n_, lu_.data());
  if (perm_.size() != n_) perm_.resize(n_);
  for (size_t i = 0; i < n_; ++i) perm_[i] = i;

  double amax = 0.0;
  for (size_t i = 0; i < n_ * n_; ++i) amax = std::max(amax, std::fabs(lu_.data()[i]));
  const double tiny = std::max(amax, 1.0) * pivot_tol;

  for (size_t k = 0; k < n_; ++k) {
    // Partial pivot: find the largest entry in column k at/below the diagonal.
    size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (size_t r = k + 1; r < n_; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < tiny) {
      throw ConvergenceError(util::format(
          "LU: singular matrix (pivot %.3e at column %zu)", best, k));
    }
    if (piv != k) {
      std::swap(perm_[piv], perm_[k]);
      for (size_t c = 0; c < n_; ++c) std::swap(lu_(piv, c), lu_(k, c));
    }
    const double dinv = 1.0 / lu_(k, k);
    for (size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * dinv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

void LuSolver::solve_into(const Vector& b, Vector& x) const {
  require(b.size() == n_, "LuSolver::solve dimension mismatch");
  require(x.size() == n_, "LuSolver::solve output not pre-sized");
  // Forward substitution with permutation.
  for (size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
}

Vector LuSolver::solve(const Vector& b) const {
  Vector x(n_, 0.0);
  solve_into(b, x);
  return x;
}

Vector lu_solve(const Matrix& a, const Vector& b) {
  LuSolver s;
  s.factor(a);
  return s.solve(b);
}

}  // namespace dramstress::numeric
