#include "numeric/rootfind.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::numeric {

Bracket bisect_predicate_bracket(const std::function<bool(double)>& pred,
                                 double lo, double hi,
                                 const BisectOptions& opt) {
  require(lo < hi, "bisect: lo must be < hi");
  const bool plo = pred(lo);
  const bool phi = pred(hi);
  if (plo == phi) {
    throw ConvergenceError(util::format(
        "bisect_predicate: predicate does not flip over [%g, %g] (both %s)",
        lo, hi, plo ? "true" : "false"));
  }
  for (int i = 0; i < opt.max_iter && (hi - lo) > opt.x_tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (pred(mid) == plo)
      lo = mid;
    else
      hi = mid;
  }
  return Bracket{lo, hi};
}

double bisect_predicate(const std::function<bool(double)>& pred, double lo,
                        double hi, const BisectOptions& opt) {
  return bisect_predicate_bracket(pred, lo, hi, opt).mid();
}

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, const BisectOptions& opt) {
  require(lo < hi, "bisect_root: lo must be < hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw ConvergenceError(util::format(
        "bisect_root: f does not change sign over [%g, %g] (f=%g, %g)", lo, hi,
        flo, fhi));
  }
  for (int i = 0; i < opt.max_iter && (hi - lo) > opt.x_tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double bisect_predicate_log(const std::function<bool(double)>& pred, double lo,
                            double hi, const BisectOptions& opt) {
  require(lo > 0.0 && hi > lo, "bisect_predicate_log: need 0 < lo < hi");
  auto pred_log = [&](double u) { return pred(std::exp(u)); };
  BisectOptions log_opt = opt;
  // Interpret x_tol as a relative tolerance in log-space.
  log_opt.x_tol = opt.x_tol;
  const double u = bisect_predicate(pred_log, std::log(lo), std::log(hi), log_opt);
  return std::exp(u);
}

}  // namespace dramstress::numeric
