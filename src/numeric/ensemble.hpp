// Lane-batched numeric refactorization for the ensemble engine.
//
// An ensemble solves N parameter variants ("lanes") of one circuit whose
// sparsity pattern is shared, and every lane (re)factors its Jacobian at
// the first iteration of every lockstep Newton solve.  When lanes also
// share a recorded pivot order -- the common case, since their matrices
// differ only in a few element values -- the left-looking elimination
// walks identical structure arrays for every lane.  EnsembleLu runs that
// elimination once with a lane-wide inner loop over lane-major values
// (entry s of lane l lives at data[s * W + l]): the column/row index
// traffic that dominates a scalar refactorization of these small MNA
// systems is paid once per batch instead of once per lane.
//
// Determinism: each lane's value path performs exactly the operations of
// SparseLuSolver::refactor in exactly the same order -- the lane loop only
// interleaves independent lanes -- so a batched refactorization is
// bit-identical to the scalar one, and batch-size-1 results equal
// batch-size-N results.  (The lone semantic difference: the scalar code
// skips a column update when its multiplier is zero.  The batched kernel
// skips only when the multiplier is zero in every lane; a lane-wise
// fused-in zero update can flip the sign of a zero, which compares equal
// and cannot steer any downstream branch.)
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/sparse.hpp"

namespace dramstress::numeric {

class EnsembleLu {
public:
  /// Numeric-only batched refactorization.  solvers[i] is refactored from
  /// mats[i] for every i in the largest group that shares the first
  /// analyzed solver's size and recorded pivot order; done[i] is set to 1
  /// for each solver the batch completed.  Solvers outside the group, a
  /// group of fewer than two lanes, and lanes whose pivot degrades past
  /// pivot_tol (the scalar fallback-to-factor condition) are left
  /// untouched with done[i] == 0 -- the caller runs their scalar path,
  /// which reproduces the fallback behaviour exactly.  Returns the number
  /// of solvers refactored in the batch.
  int refactor_batch(SparseLuSolver* const* solvers,
                     const SparseMatrix* const* mats, size_t count,
                     char* done, double pivot_tol = 1e-13);

  /// Lane-batched triangular solves: xs[i] = solvers[i]^-1 bs[i] for every
  /// i in the largest group sharing the first analyzed solver's size and
  /// pivot order, walking the substitution structure once.  Unlike the
  /// refactorization, each lane keeps the scalar path's per-lane zero
  /// skips, so the solutions are bit-identical to solve_into -- no
  /// sign-of-zero caveat on values that reach the outside world.  done[i]
  /// is set to 1 for lanes solved here; the caller runs solve_into for the
  /// rest.  Returns the number of lanes solved.
  int solve_batch(SparseLuSolver* const* solvers, const Vector* const* bs,
                  Vector* const* xs, size_t count, char* done);

private:
  std::vector<double> x_;    // n x W lane-major elimination work
  std::vector<double> lvb_;  // L values, lane-major (hot update reads)
  std::vector<size_t> group_;
  std::vector<const double*> av_;  // per-lane A values
  std::vector<double*> lvp_, uvp_, dgp_;  // per-lane result arrays
  std::vector<const double*> bp_;         // per-lane right-hand sides
  std::vector<double*> xp_;               // per-lane solution vectors
  std::vector<double> dinv_;
  std::vector<double> colmax_;  // per-lane pivot-guard scratch
  std::vector<char> failed_;
};

}  // namespace dramstress::numeric
