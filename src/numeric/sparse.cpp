#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::numeric {

namespace {
constexpr size_t kNpos = std::numeric_limits<size_t>::max();
}  // namespace

// ------------------------------------------------------------ SparseMatrix

void SparseMatrix::add(size_t r, size_t c, double v) {
  if (!finalized_) {
    require(r < n_ && c < n_, "SparseMatrix: entry out of range");
    row_entries_[r].push_back(c);
    return;
  }
  const size_t s = slot(r, c);
  if (s == kNpos) {
    throw ModelError(util::format(
        "SparseMatrix: (%zu, %zu) is not a structural entry", r, c));
  }
  values_[s] += v;
}

void SparseMatrix::finalize() {
  if (finalized_) return;
  row_ptr_.assign(n_ + 1, 0);
  for (size_t r = 0; r < n_; ++r) {
    auto& cols = row_entries_[r];
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    row_ptr_[r + 1] = row_ptr_[r] + cols.size();
  }
  col_idx_.reserve(row_ptr_[n_]);
  for (size_t r = 0; r < n_; ++r)
    col_idx_.insert(col_idx_.end(), row_entries_[r].begin(),
                    row_entries_[r].end());
  values_.assign(col_idx_.size(), 0.0);
  row_entries_.clear();
  row_entries_.shrink_to_fit();
  finalized_ = true;
}

void SparseMatrix::zero() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

size_t SparseMatrix::slot(size_t r, size_t c) const {
  const auto first = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return kNpos;
  return static_cast<size_t>(it - col_idx_.begin());
}

double SparseMatrix::at(size_t r, size_t c) const {
  require(finalized_, "SparseMatrix::at: not finalized");
  const size_t s = slot(r, c);
  return s == kNpos ? 0.0 : values_[s];
}

Matrix SparseMatrix::to_dense() const {
  require(finalized_, "SparseMatrix::to_dense: not finalized");
  Matrix m(n_, n_);
  for (size_t r = 0; r < n_; ++r)
    for (size_t s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
      m(r, col_idx_[s]) = values_[s];
  return m;
}

// ---------------------------------------------------------- SparseLuSolver

void SparseLuSolver::factor(const SparseMatrix& a, double pivot_tol) {
  require(a.finalized(), "SparseLuSolver: matrix not finalized");
  n_ = a.size();
  ++factor_count_;
  obs::count("sparse.factor");

  // Dense partial-pivot LU chooses the row permutation and provides the
  // numeric values of this factorization in one pass.
  Matrix w = a.to_dense();
  perm_.resize(n_);
  for (size_t i = 0; i < n_; ++i) perm_[i] = i;
  double amax = 0.0;
  for (size_t i = 0; i < n_ * n_; ++i)
    amax = std::max(amax, std::fabs(w.data()[i]));
  const double tiny = std::max(amax, 1.0) * pivot_tol;
  for (size_t k = 0; k < n_; ++k) {
    size_t piv = k;
    double best = std::fabs(w(k, k));
    for (size_t r = k + 1; r < n_; ++r) {
      const double v = std::fabs(w(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < tiny) {
      throw ConvergenceError(util::format(
          "SparseLU: singular matrix (pivot %.3e at column %zu)", best, k));
    }
    if (piv != k) {
      std::swap(perm_[piv], perm_[k]);
      for (size_t c = 0; c < n_; ++c) std::swap(w(piv, c), w(k, c));
    }
    const double dinv = 1.0 / w(k, k);
    for (size_t r = k + 1; r < n_; ++r) {
      const double m = w(r, k) * dinv;
      w(r, k) = m;
      if (m == 0.0) continue;
      for (size_t c = k + 1; c < n_; ++c) w(r, c) -= m * w(k, c);
    }
  }
  pinv_.resize(n_);
  for (size_t i = 0; i < n_; ++i) pinv_[perm_[i]] = i;

  analyze_pattern(a);

  // Load the numeric values of this factorization from the dense factors.
  for (size_t j = 0; j < n_; ++j) {
    diag_[j] = w(j, j);
    for (size_t s = lcol_ptr_[j]; s < lcol_ptr_[j + 1]; ++s)
      lval_[s] = w(lrow_[s], j);
    for (size_t t = ucol_ptr_[j]; t < ucol_ptr_[j + 1]; ++t)
      uval_[t] = w(urow_[t], j);
  }
  work_.assign(n_, 0.0);
  analyzed_ = true;
}

void SparseLuSolver::analyze_pattern(const SparseMatrix& a) {
  // Boolean elimination of the permuted structural pattern.  The fill is a
  // superset of every numeric nonzero any future refactorization with this
  // pivot order can produce, so slots computed here never need to grow.
  std::vector<std::vector<bool>> b(n_, std::vector<bool>(n_, false));
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  for (size_t r = 0; r < n_; ++r)
    for (size_t s = row_ptr[r]; s < row_ptr[r + 1]; ++s)
      b[pinv_[r]][col_idx[s]] = true;
  for (size_t j = 0; j < n_; ++j) b[j][j] = true;  // pivots are nonzero
  for (size_t k = 0; k < n_; ++k) {
    for (size_t i = k + 1; i < n_; ++i) {
      if (!b[i][k]) continue;
      for (size_t c = k + 1; c < n_; ++c)
        if (b[k][c]) b[i][c] = true;
    }
  }

  lcol_ptr_.assign(n_ + 1, 0);
  ucol_ptr_.assign(n_ + 1, 0);
  lrow_.clear();
  urow_.clear();
  colpat_ptr_.assign(n_ + 1, 0);
  colpat_row_.clear();
  for (size_t j = 0; j < n_; ++j) {
    for (size_t k = 0; k < j; ++k) {
      if (b[k][j]) {
        urow_.push_back(k);
        colpat_row_.push_back(k);
      }
    }
    colpat_row_.push_back(j);
    for (size_t i = j + 1; i < n_; ++i) {
      if (b[i][j]) {
        lrow_.push_back(i);
        colpat_row_.push_back(i);
      }
    }
    ucol_ptr_[j + 1] = urow_.size();
    lcol_ptr_[j + 1] = lrow_.size();
    colpat_ptr_[j + 1] = colpat_row_.size();
  }
  lval_.assign(lrow_.size(), 0.0);
  uval_.assign(urow_.size(), 0.0);
  diag_.assign(n_, 0.0);

  // Column-wise scatter lists into A's CSR value slots.
  acol_ptr_.assign(n_ + 1, 0);
  for (size_t s = 0; s < col_idx.size(); ++s) ++acol_ptr_[col_idx[s] + 1];
  for (size_t j = 0; j < n_; ++j) acol_ptr_[j + 1] += acol_ptr_[j];
  ascatter_.resize(col_idx.size());
  std::vector<size_t> fill = acol_ptr_;
  for (size_t r = 0; r < n_; ++r)
    for (size_t s = row_ptr[r]; s < row_ptr[r + 1]; ++s)
      ascatter_[fill[col_idx[s]]++] = {pinv_[r], s};
}

void SparseLuSolver::refactor(const SparseMatrix& a, double pivot_tol) {
  if (!analyzed_ || a.size() != n_) {
    factor(a, pivot_tol);
    return;
  }
  const auto& avals = a.values();
  double* x = work_.data();
  for (size_t j = 0; j < n_; ++j) {
    for (size_t p = colpat_ptr_[j]; p < colpat_ptr_[j + 1]; ++p)
      x[colpat_row_[p]] = 0.0;
    for (size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p)
      x[ascatter_[p].first] += avals[ascatter_[p].second];
    // Left-looking update: ascending U rows k of this column; every row the
    // inner loop touches is structural in column j by the fill closure.
    for (size_t t = ucol_ptr_[j]; t < ucol_ptr_[j + 1]; ++t) {
      const size_t k = urow_[t];
      const double xk = x[k];
      uval_[t] = xk;
      if (xk == 0.0) continue;
      for (size_t s = lcol_ptr_[k]; s < lcol_ptr_[k + 1]; ++s)
        x[lrow_[s]] -= lval_[s] * xk;
    }
    const double pivot = x[j];
    double colmax = std::fabs(pivot);
    for (size_t s = lcol_ptr_[j]; s < lcol_ptr_[j + 1]; ++s)
      colmax = std::max(colmax, std::fabs(x[lrow_[s]]));
    if (std::fabs(pivot) < pivot_tol * std::max(colmax, 1.0)) {
      // The recorded pivot order degraded for these values: pick a fresh
      // order.  factor() throws if the matrix is genuinely singular.
      ++fallback_count_;
      obs::count("sparse.pivot_fallback");
      factor(a, pivot_tol);
      return;
    }
    diag_[j] = pivot;
    const double dinv = 1.0 / pivot;
    for (size_t s = lcol_ptr_[j]; s < lcol_ptr_[j + 1]; ++s)
      lval_[s] = x[lrow_[s]] * dinv;
  }
  ++refactor_count_;
  obs::count("sparse.refactor");
}

void SparseLuSolver::solve_into(const Vector& b, Vector& x) const {
  require(analyzed_, "SparseLuSolver::solve: no factorization");
  require(b.size() == n_, "SparseLuSolver::solve dimension mismatch");
  require(x.size() == n_, "SparseLuSolver::solve output not pre-sized");
  for (size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  for (size_t k = 0; k < n_; ++k) {
    const double xk = x[k];
    if (xk == 0.0) continue;
    for (size_t s = lcol_ptr_[k]; s < lcol_ptr_[k + 1]; ++s)
      x[lrow_[s]] -= lval_[s] * xk;
  }
  for (size_t jj = n_; jj-- > 0;) {
    x[jj] /= diag_[jj];
    const double xj = x[jj];
    if (xj == 0.0) continue;
    for (size_t t = ucol_ptr_[jj]; t < ucol_ptr_[jj + 1]; ++t)
      x[urow_[t]] -= uval_[t] * xj;
  }
}

Vector SparseLuSolver::solve(const Vector& b) const {
  Vector x(n_, 0.0);
  solve_into(b, x);
  return x;
}

}  // namespace dramstress::numeric
