#include "util/strings.hpp"

#include <cmath>

namespace dramstress::util {

std::string eng(double value, const char* unit) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  if (value == 0.0) return format("0 %s", unit);
  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      const double scaled = value / p.scale;
      // Use enough digits to distinguish e.g. 185 kOhm from 180 kOhm.
      if (std::fabs(scaled) >= 100.0)
        return format("%.0f %s%s", scaled, p.name, unit);
      if (std::fabs(scaled) >= 10.0)
        return format("%.1f %s%s", scaled, p.name, unit);
      return format("%.2f %s%s", scaled, p.name, unit);
    }
  }
  return format("%g %s", value, unit);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_right(const std::string& s, size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace dramstress::util
