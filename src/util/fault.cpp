#include "util/fault.hpp"

#include <csignal>
#include <cstdlib>
#include <vector>

#include "util/annotations.hpp"
#include "util/strings.hpp"

namespace dramstress::util::fault {

namespace {

struct Entry {
  std::string point;
  Action action = Action::Throw;
  int fire_at = 1;  // 1-based hit index this entry fires on
  int hits = 0;     // hits of the point seen by this entry so far
  bool fired = false;
};

util::Mutex g_mu;
std::vector<Entry> g_entries DS_GUARDED_BY(g_mu);

Action parse_action(const std::string& s) {
  if (s == "throw") return Action::Throw;
  if (s == "kill") return Action::Kill;
  if (s == "tear") return Action::Tear;
  if (s == "corrupt") return Action::Corrupt;
  throw ModelError("fault spec: unknown action \"" + s +
                   "\" (throw|kill|tear|corrupt)");
}

Entry parse_entry(const std::string& item) {
  const size_t eq = item.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ModelError("fault spec: expected point=action[@N], got \"" + item +
                     "\"");
  Entry e;
  e.point = item.substr(0, eq);
  std::string action = item.substr(eq + 1);
  const size_t at = action.find('@');
  if (at != std::string::npos) {
    const std::string count = action.substr(at + 1);
    action = action.substr(0, at);
    char* end = nullptr;
    const long n = std::strtol(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || n < 1)
      throw ModelError("fault spec: bad hit index \"" + count + "\" in \"" +
                       item + "\"");
    e.fire_at = static_cast<int>(n);
  }
  e.action = parse_action(action);
  return e;
}

}  // namespace

namespace detail {

bool g_armed = false;

Action hit_armed(const char* point) {
  Action pending = Action::None;
  {
    util::MutexLock lock(g_mu);
    for (Entry& e : g_entries) {
      if (e.point != point) continue;
      ++e.hits;
      if (!e.fired && e.hits >= e.fire_at) {
        e.fired = true;
        pending = e.action;
        break;
      }
    }
  }
  switch (pending) {
    case Action::None:
    case Action::Tear:
    case Action::Corrupt:
      return pending;  // data faults are applied by the planting site
    case Action::Throw:
      throw Injected(util::format("fault injected at %s", point));
    case Action::Kill:
      std::raise(SIGKILL);
      return Action::None;  // unreachable
  }
  return Action::None;
}

}  // namespace detail

void arm(const std::string& spec) {
  std::vector<Entry> entries;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) entries.push_back(parse_entry(item));
    pos = comma + 1;
  }
  {
    util::MutexLock lock(g_mu);
    g_entries = std::move(entries);
  }
  detail::g_armed = !spec.empty();
}

void arm_from_env() {
  // Gates failure *injection*, never configuration: results are only
  // affected when a test or the CI service job armed the process on
  // purpose, so the manifest-capture rationale of D505 does not apply.
  // detlint:allow(D505 test-only fault arming, not run configuration)
  const char* spec = std::getenv("DRAMSTRESS_FAULTS");
  if (spec != nullptr && spec[0] != '\0') arm(spec);
}

void disarm() { arm(""); }

}  // namespace dramstress::util::fault
