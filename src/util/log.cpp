#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dramstress::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DRAMSTRESS_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

LogLevel g_level = level_from_env();
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace dramstress::util
