#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/annotations.hpp"

namespace dramstress::util {
namespace {

LogLevel level_from_env() {
  // Option-resolution layer: the one place log configuration may read the
  // environment (detlint D505).
  const char* env = std::getenv("DRAMSTRESS_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

// Read on every log call without the stream lock; atomic so a concurrent
// set_log_level (a test toggling verbosity around a sweep) is a race-free
// level change and not UB.
std::atomic<LogLevel> g_level{level_from_env()};

// Serializes stderr emission so interleaved worker logs stay line-atomic.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace dramstress::util
