// Physical constants and unit helpers.
//
// All library quantities are in SI units: volts, amperes, ohms, farads,
// seconds, kelvin.  Temperatures in user-facing APIs are degrees Celsius
// (as in the paper: -33 C ... +87 C) and converted at the boundary.
#pragma once

namespace dramstress::units {

// --- physical constants -----------------------------------------------------
inline constexpr double kBoltzmann = 1.380649e-23;   // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kZeroCelsiusInKelvin = 273.15;
inline constexpr double kSiliconBandgapEv = 1.12;    // eV, approx at 300 K

/// Thermal voltage kT/q at temperature `kelvin`.
inline constexpr double thermal_voltage(double kelvin) {
  return kBoltzmann * kelvin / kElectronCharge;
}

inline constexpr double celsius_to_kelvin(double celsius) {
  return celsius + kZeroCelsiusInKelvin;
}

inline constexpr double kelvin_to_celsius(double kelvin) {
  return kelvin - kZeroCelsiusInKelvin;
}

// --- unit suffix helpers ----------------------------------------------------
// Usage: 60.0 * units::ns, 200.0 * units::kOhm, 30.0 * units::fF.
inline constexpr double ps = 1e-12;
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

inline constexpr double fF = 1e-15;
inline constexpr double pF = 1e-12;

inline constexpr double Ohm = 1.0;
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;
inline constexpr double GOhm = 1e9;

inline constexpr double mV = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double pA = 1e-12;

}  // namespace dramstress::units
