// Minimal JSON writer and reader (no external dependencies).
//
// The observability layer emits run manifests and span traces as JSON so
// perf numbers are self-describing across PRs; the reader exists so the
// same binary can validate a manifest against the documented schema
// (docs/OBSERVABILITY.md) without shelling out to python.  The writer is
// a streaming builder with a state stack (commas and indentation are
// handled automatically); the reader is a strict recursive-descent parser
// over the JSON grammar -- no extensions, no comments.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dramstress::util::json {

/// Parse failure: a ModelError that additionally carries the byte offset
/// the parser stopped at, so callers (the campaign spec loader) can turn
/// it into a line-numbered diagnostic instead of string-matching the what().
class ParseError : public ModelError {
public:
  ParseError(const std::string& what, size_t offset)
      : ModelError(what), offset_(offset) {}
  size_t offset() const { return offset_; }

private:
  size_t offset_ = 0;
};

/// 1-based line number of byte `offset` in `text` (clamped to the last
/// line when offset is past the end).
int line_of(const std::string& text, size_t offset);

/// Escape a string body per JSON rules (quotes not included).
std::string escape(const std::string& s);

/// Streaming JSON builder.  Usage:
///   Writer w;
///   w.begin_object().key("a").value(1).key("b").begin_array()
///    .value("x").end_array().end_object();
///   w.str();
/// Structural misuse (a key outside an object, unbalanced end_*) throws
/// ModelError.  Output is pretty-printed with two-space indentation.
class Writer {
public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(const std::string& k);
  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);
  Writer& value(long v);
  Writer& value(int v) { return value(static_cast<long>(v)); }
  Writer& value(size_t v) { return value(static_cast<long>(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Finished document; throws if objects/arrays are still open.
  const std::string& str() const;

private:
  enum class Frame { Object, Array };
  void begin_value();  // comma/indent bookkeeping before any value/begin
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // per frame: already holds an element
  bool expect_value_ = false;    // a key was just written
  bool done_ = false;            // a root value has been emitted
};

/// Parsed JSON value.  Objects preserve insertion order (and the parser
/// rejects duplicate keys, which the manifest schema forbids).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
  /// Byte offset of the value's first character in the parsed document
  /// (0 for values built programmatically); line_of() maps it to a line.
  size_t offset = 0;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Member of an object by key; nullptr if absent or not an object.
  const Value* find(const std::string& k) const;
};

/// Parse a complete JSON document; throws ParseError (a ModelError with
/// the failing byte offset) on malformed input or trailing garbage.
Value parse(const std::string& text);

/// Re-emit a parsed Value as the next value of `w` (object key order is
/// preserved).  Numbers round-trip bit-exactly through Writer's %.17g
/// fallback, so parse + append is byte-stable -- the campaign report
/// embeds cached result payloads this way.
void append(Writer& w, const Value& v);

}  // namespace dramstress::util::json
