// Clang thread-safety annotations and the annotated locking primitives.
//
// The engine's headline property -- byte-identical plane/campaign output
// at any thread count and batch width -- rests on a small set of
// concurrency invariants: sweeps write only to pre-sized slots, shared
// mutable state (metric shards, the Vsa cache, the campaign journal) is
// mutex-guarded, and everything else is thread-confined.  Those
// invariants were enforced dynamically (diff tests, TSan); this header
// makes them *static*: every guarded field names its mutex, every
// must-hold helper names its precondition, and Clang's -Wthread-safety
// analysis (the lint CI job) rejects an unguarded access at compile time.
// On GCC (which has no such analysis) every macro expands to nothing, so
// the annotations are zero-cost documentation.
//
// Conventions (docs/LINT.md "Thread-safety annotations"):
//   * Shared mutable state uses util::Mutex (never a bare std::mutex --
//     the standard type carries no capability attribute, so the analysis
//     cannot see it) and declares its guard with DS_GUARDED_BY.
//   * Scope-locked sections use util::MutexLock (an annotated
//     lock_guard); helpers that assume the lock say DS_REQUIRES(mu).
//   * Thread-confined state (worker-local SweepContext clones, the
//     ensemble engine's lane arrays) is NOT annotated -- confinement is
//     documented at the owning class instead, and detlint/TSan cover the
//     dynamic side.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DS_THREAD_ANNOTATION
#define DS_THREAD_ANNOTATION(x)  // no-op: not Clang, or no analysis support
#endif

#define DS_CAPABILITY(x) DS_THREAD_ANNOTATION(capability(x))
#define DS_SCOPED_CAPABILITY DS_THREAD_ANNOTATION(scoped_lockable)
#define DS_GUARDED_BY(x) DS_THREAD_ANNOTATION(guarded_by(x))
#define DS_PT_GUARDED_BY(x) DS_THREAD_ANNOTATION(pt_guarded_by(x))
#define DS_REQUIRES(...) \
  DS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DS_ACQUIRE(...) DS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DS_RELEASE(...) DS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DS_TRY_ACQUIRE(...) \
  DS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DS_EXCLUDES(...) DS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DS_ACQUIRED_BEFORE(...) \
  DS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DS_ACQUIRED_AFTER(...) \
  DS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define DS_RETURN_CAPABILITY(x) DS_THREAD_ANNOTATION(lock_returned(x))
#define DS_NO_THREAD_SAFETY_ANALYSIS \
  DS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dramstress::util {

/// std::mutex wrapped with the `capability` attribute so Clang's analysis
/// can track it.  Drop-in: same lock/unlock surface, zero overhead.
class DS_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DS_ACQUIRE() { mu_.lock(); }
  void unlock() DS_RELEASE() { mu_.unlock(); }
  bool try_lock() DS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  std::mutex mu_;
};

/// Annotated scope lock over util::Mutex (std::lock_guard carries no
/// scoped_lockable attribute, so the analysis would not credit it).
class DS_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) DS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex& mu_;
};

}  // namespace dramstress::util
