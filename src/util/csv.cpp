#include "util/csv.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::util {

CsvTable::CsvTable(std::vector<std::string> column_names)
    : names_(std::move(column_names)) {
  require(!names_.empty(), "CsvTable needs at least one column");
}

void CsvTable::add_row(const std::vector<double>& row) {
  require(row.size() == names_.size(),
          format("CsvTable row has %zu values, expected %zu", row.size(),
                 names_.size()));
  rows_.push_back(row);
}

std::string CsvTable::to_csv() const {
  std::ostringstream out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i != 0) out << ',';
    out << names_[i];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << format("%.9g", row[i]);
    }
    out << '\n';
  }
  return out.str();
}

void CsvTable::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open for writing: " + path);
  const std::string text = to_csv();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) throw Error("short write to " + path);
}

}  // namespace dramstress::util
