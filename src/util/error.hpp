// Error types shared by all dramstress modules.
#pragma once

#include <stdexcept>
#include <string>

namespace dramstress {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a numerical algorithm fails to converge
/// (Newton iteration, bisection bracket, LU on a singular matrix, ...).
class ConvergenceError : public Error {
public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Raised on malformed netlists, bad node references, invalid parameters.
class ModelError : public Error {
public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Internal invariant check that throws instead of aborting, so tests can
/// assert on misuse of the API.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw ModelError(msg);
}

}  // namespace dramstress
