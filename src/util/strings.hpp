// Small string formatting helpers (printf-style, type-checked at runtime).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dramstress::util {

/// printf-style formatting into a std::string.
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) return {};
  std::string out(static_cast<size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

/// Render an engineering-notation value with a unit, e.g. 2e5 -> "200 kOhm".
std::string eng(double value, const char* unit);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left/right pad a string with spaces to `width` (no-op if already wider).
std::string pad_right(const std::string& s, size_t width);
std::string pad_left(const std::string& s, size_t width);

}  // namespace dramstress::util
