// Test-only fault-injection points (docs/SERVICE.md "Failure semantics").
//
// The campaign service's resilience claims -- a worker killed mid-unit, a
// journal line torn mid-write, a cache object silently corrupted on disk --
// are only claims until a test can *cause* each failure on demand.  This
// layer provides named fault points that production code plants at the
// spots where those failures would bite:
//
//   switch (util::fault::hit("campaign.journal.append")) { ... }
//
// A point is inert until the process is armed, either programmatically
// (tests call `arm("point=action@N")`) or through the DRAMSTRESS_FAULTS
// environment variable (the CI service job kills a live daemon this way).
// Disarmed cost is one branch on a plain global flag -- no lock, no lookup,
// nothing allocated -- so the hooks can sit on hot paths permanently.
//
// Spec grammar (comma-separated):   point=action[@N]
//   * `point`  the fault-point name as planted in the code;
//   * `action` one of
//       throw    throw util::fault::Injected at the point (a failing
//                computation attempt: exercises retry/quarantine),
//       kill     raise(SIGKILL): the process dies exactly there (exercises
//                crash-resume; the CI job restarts the daemon),
//       tear     returned to the caller, which applies the fault to its
//                data (Journal::append writes half a record, then throws),
//       corrupt  returned to the caller (ResultCache::store writes a
//                damaged object and reports success);
//   * `@N`     fire on the N-th hit of the point (1-based, default 1);
//              each entry fires exactly once.
//
// Arming is not thread-safe against concurrently running fault points:
// arm before the workers start, disarm after they join (the tests' and the
// CLI's natural order).
#pragma once

#include <string>

#include "util/error.hpp"

namespace dramstress::util::fault {

/// Thrown by `throw`-action points; derives from Error so the campaign
/// retry loop treats it exactly like a real ConvergenceError.
class Injected : public Error {
public:
  explicit Injected(const std::string& what) : Error(what) {}
};

/// What a firing fault point asks of its caller.  Throw/Kill never reach
/// the caller (hit() throws / dies); Tear and Corrupt are data faults the
/// planting site applies itself.
enum class Action { None, Throw, Kill, Tear, Corrupt };

namespace detail {
extern bool g_armed;  // true while any entry is armed (set before workers
                      // start, cleared after they join)
Action hit_armed(const char* point);
}  // namespace detail

/// The fault point: returns the pending data-fault action for `point`
/// (None when disarmed or not matched), throws Injected for a `throw`
/// entry, dies for a `kill` entry.
inline Action hit(const char* point) {
  return detail::g_armed ? detail::hit_armed(point) : Action::None;
}

/// Arm the process with a fault spec ("" disarms).  Replaces any previous
/// arming; throws ModelError on a malformed spec.
void arm(const std::string& spec);

/// Arm from the DRAMSTRESS_FAULTS environment variable (no-op when unset
/// or empty).  Called once at CLI startup, before any worker exists.
void arm_from_env();

/// Disarm every entry (equivalent to arm("")).
void disarm();

}  // namespace dramstress::util::fault
