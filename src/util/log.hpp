// Minimal leveled logger.
//
// The simulator sweeps run thousands of transient analyses; logging defaults
// to Warn so benches stay readable.  Set DRAMSTRESS_LOG=debug|info|warn|error
// in the environment or call set_level() to change.
#pragma once

#include <string>

namespace dramstress::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit `msg` at `level` to stderr if the current level permits.
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::Debug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::Info, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::Warn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::Error, msg); }

}  // namespace dramstress::util
