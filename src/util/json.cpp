#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::util::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

// --- Writer ----------------------------------------------------------------

void Writer::indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void Writer::begin_value() {
  require(!done_, "json::Writer: document already complete");
  if (stack_.empty()) return;  // root value
  if (expect_value_) {
    expect_value_ = false;  // value follows its key on the same line
    return;
  }
  require(stack_.back() == Frame::Array,
          "json::Writer: value inside an object requires a key");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
}

Writer& Writer::begin_object() {
  begin_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  require(!stack_.empty() && stack_.back() == Frame::Object && !expect_value_,
          "json::Writer: end_object without matching begin_object");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  begin_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  require(!stack_.empty() && stack_.back() == Frame::Array,
          "json::Writer: end_array without matching begin_array");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) indent();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::key(const std::string& k) {
  require(!stack_.empty() && stack_.back() == Frame::Object && !expect_value_,
          "json::Writer: key is only valid directly inside an object");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  expect_value_ = true;
  return *this;
}

Writer& Writer::value(const std::string& v) {
  begin_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  begin_value();
  if (std::isfinite(v)) {
    // %.17g round-trips every double; trim to %g when it is exact enough.
    std::string s = format("%.17g", v);
    const std::string shorter = format("%g", v);
    if (std::strtod(shorter.c_str(), nullptr) == v) s = shorter;
    out_ += s;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(long v) {
  begin_value();
  out_ += format("%ld", v);
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::null() {
  begin_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& Writer::str() const {
  require(done_ && stack_.empty(),
          "json::Writer: document incomplete (unbalanced begin/end)");
  return out_;
}

// --- Value / parser --------------------------------------------------------

const Value* Value::find(const std::string& k) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [key, val] : object)
    if (key == k) return &val;
  return nullptr;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(format("json: %s at offset %zu", msg.c_str(), pos_),
                     pos_);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(format("expected '%c'", c));
    ++pos_;
  }

  bool literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const size_t start = pos_;
    Value v = parse_value_body();
    v.offset = start;
    return v;
  }

  Value parse_value_body() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        if (literal("true")) {
          v.boolean = true;
          return v;
        }
        if (!literal("false")) fail("bad literal");
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (v.find(key) != nullptr) fail("duplicate object key " + key);
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20)
          fail("raw control character in string");
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs are not needed for the ASCII
          // manifests this reader exists for, but BMP points are handled).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  Value parse_number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size())
      fail("malformed number '" + tok + "'");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = d;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

int line_of(const std::string& text, size_t offset) {
  int line = 1;
  const size_t end = std::min(offset, text.size());
  for (size_t i = 0; i < end; ++i)
    if (text[i] == '\n') ++line;
  return line;
}

void append(Writer& w, const Value& v) {
  switch (v.kind) {
    case Value::Kind::Null: w.null(); break;
    case Value::Kind::Bool: w.value(v.boolean); break;
    case Value::Kind::Number: w.value(v.number); break;
    case Value::Kind::String: w.value(v.string); break;
    case Value::Kind::Array:
      w.begin_array();
      for (const Value& e : v.array) append(w, e);
      w.end_array();
      break;
    case Value::Kind::Object:
      w.begin_object();
      for (const auto& [key, val] : v.object) {
        w.key(key);
        append(w, val);
      }
      w.end_object();
      break;
  }
}

}  // namespace dramstress::util::json
