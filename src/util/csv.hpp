// CSV table writer used by the benchmark harness to dump figure data.
#pragma once

#include <string>
#include <vector>

namespace dramstress::util {

/// Column-oriented numeric table with a header row; writes RFC-4180-ish CSV.
class CsvTable {
public:
  explicit CsvTable(std::vector<std::string> column_names);

  /// Append one row; must match the number of columns.
  void add_row(const std::vector<double>& row);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& row(size_t i) const { return rows_.at(i); }

  /// Render the whole table as CSV text.
  std::string to_csv() const;

  /// Write to a file; throws dramstress::Error on I/O failure.
  void write_file(const std::string& path) const;

private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace dramstress::util
