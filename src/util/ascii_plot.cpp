#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dramstress::util {
namespace {

double transform_x(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-300)) : x;
}

}  // namespace

std::string ascii_plot(const std::vector<Series>& series, const PlotOptions& opt) {
  require(opt.width >= 16 && opt.height >= 8, "plot area too small");

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    require(s.x.size() == s.y.size(), "series x/y size mismatch: " + s.name);
    for (size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform_x(s.x[i], opt.log_x);
      if (!std::isfinite(tx) || !std::isfinite(s.y[i])) continue;
      any = true;
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  if (!any) return "(empty plot: " + opt.title + ")\n";
  if (xmax - xmin < 1e-12) { xmax += 1.0; xmin -= 1.0; }
  if (ymax - ymin < 1e-12) { ymax += 1.0; ymin -= 1.0; }
  // Small margin so extreme points are visible.
  const double ypad = 0.04 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(static_cast<size_t>(opt.height),
                                std::string(static_cast<size_t>(opt.width), ' '));
  for (const auto& s : series) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform_x(s.x[i], opt.log_x);
      if (!std::isfinite(tx) || !std::isfinite(s.y[i])) continue;
      int col = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) * (opt.width - 1)));
      int row = static_cast<int>(std::lround((ymax - s.y[i]) / (ymax - ymin) * (opt.height - 1)));
      col = std::clamp(col, 0, opt.width - 1);
      row = std::clamp(row, 0, opt.height - 1);
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = s.glyph;
    }
  }

  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << '\n';
  const std::string ytop = format("%.3g", ymax);
  const std::string ybot = format("%.3g", ymin);
  const size_t label_w = std::max(ytop.size(), ybot.size());
  for (int r = 0; r < opt.height; ++r) {
    std::string label;
    if (r == 0) label = ytop;
    else if (r == opt.height - 1) label = ybot;
    else if (r == opt.height / 2 && !opt.y_label.empty()) label = opt.y_label;
    out << pad_left(label, label_w) << " |" << grid[static_cast<size_t>(r)] << '\n';
  }
  out << std::string(label_w + 1, ' ') << '+' << std::string(static_cast<size_t>(opt.width), '-') << '\n';
  const std::string xl = opt.log_x ? format("%.3g", std::pow(10.0, xmin)) : format("%.3g", xmin);
  const std::string xr = opt.log_x ? format("%.3g", std::pow(10.0, xmax)) : format("%.3g", xmax);
  std::string xaxis = xl;
  std::string mid = opt.x_label + (opt.log_x ? " (log)" : "");
  const int gap = opt.width - static_cast<int>(xl.size() + xr.size() + mid.size());
  if (gap >= 2) {
    xaxis += std::string(static_cast<size_t>(gap / 2), ' ') + mid +
             std::string(static_cast<size_t>(gap - gap / 2), ' ') + xr;
  } else {
    xaxis += " ... " + xr + "  " + mid;
  }
  out << std::string(label_w + 2, ' ') << xaxis << '\n';
  for (const auto& s : series) {
    out << "  " << s.glyph << " = " << s.name << '\n';
  }
  return out.str();
}

}  // namespace dramstress::util
