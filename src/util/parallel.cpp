#include "util/parallel.hpp"

#include <cstdlib>

namespace dramstress::util {

namespace {

// 0 = no explicit override; resolution falls through to the environment
// and then to the hardware.
std::atomic<int> g_default_threads{0};

int env_threads() {
  const char* s = std::getenv("DRAMSTRESS_THREADS");
  if (!s || !*s) return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_threads() {
  const int overridden = g_default_threads.load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  const int env = env_threads();
  if (env > 0) return env;
  return hardware_threads();
}

void set_default_threads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int resolve_threads(int requested) {
  return requested > 0 ? requested : default_threads();
}

namespace {

std::atomic<int> g_default_batch{0};

int env_batch() {
  const char* s = std::getenv("DRAMSTRESS_BATCH");
  if (!s || !*s) return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 1024) return 0;
  return static_cast<int>(v);
}

}  // namespace

int default_batch() {
  const int overridden = g_default_batch.load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  return env_batch();
}

void set_default_batch(int n) {
  g_default_batch.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int resolve_batch(int requested) {
  return requested > 0 ? requested : default_batch();
}

}  // namespace dramstress::util
