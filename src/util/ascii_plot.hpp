// ASCII XY plotting for reproducing the paper's figures in terminal output.
//
// Benches print each figure both as CSV (machine-readable, written next to
// the binary) and as an ASCII plot so a reader can eyeball curve shapes
// (e.g. the w0 result-plane curves crossing the Vsa threshold).
#pragma once

#include <string>
#include <vector>

namespace dramstress::util {

/// One named series of (x, y) points drawn with a single glyph.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;       // plot area columns
  int height = 24;      // plot area rows
  bool log_x = false;   // logarithmic x axis
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Render series onto a character grid with axes and a legend.
std::string ascii_plot(const std::vector<Series>& series, const PlotOptions& opt);

}  // namespace dramstress::util
