// Fork-join task pool for embarrassingly parallel sweeps.
//
// Every experiment of the flow -- result planes, shmoo grids, FFM maps,
// Monte-Carlo variation -- is a loop over independent points.  parallel_for
// runs such a loop on a worker team with chunked work stealing off a shared
// atomic counter.  Determinism contract: the body writes only to its own
// pre-sized slot(s), so results are identical for every thread count.
//
// Thread-count resolution, in priority order:
//   1. ParallelOptions::threads (> 0) at the call site,
//   2. set_default_threads()        (the CLI --threads override),
//   3. the DRAMSTRESS_THREADS environment variable,
//   4. std::thread::hardware_concurrency().
//
// Exceptions thrown by the body abort the sweep (other workers stop at
// their next chunk boundary) and the first exception is rethrown on the
// calling thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace dramstress::util {

/// First-exception-wins capture shared by a worker team.  Workers call
/// capture() from their catch-all; the pool rethrows on the calling thread
/// after the join.  The `failed` flag is read on every chunk boundary, so
/// it stays a lock-free atomic while the exception itself is guarded.
class ExceptionSlot {
public:
  /// Record `e` if no earlier exception was captured, and raise `failed`.
  void capture(std::exception_ptr e) DS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!error_) error_ = e;
    failed_.store(true, std::memory_order_relaxed);
  }

  /// True once any worker captured; workers poll this to stop early.
  bool failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Rethrow the first captured exception, if any.  Call after the join
  /// (no concurrent capture), on the thread that owns the pool.
  void rethrow_if_failed() DS_EXCLUDES(mu_) {
    std::exception_ptr e;
    {
      MutexLock lock(mu_);
      e = error_;
    }
    if (e) std::rethrow_exception(e);
  }

private:
  mutable Mutex mu_;
  std::exception_ptr error_ DS_GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

struct ParallelOptions {
  int threads = 0;      // 0 = default_threads()
  size_t min_chunk = 1; // smallest index range a worker grabs at once
};

/// std::thread::hardware_concurrency(), never less than 1.
int hardware_threads();

/// The team size parallel_for uses when the call site does not override it.
int default_threads();

/// Process-wide override (the CLI --threads flag); n <= 0 restores the
/// automatic DRAMSTRESS_THREADS / hardware_concurrency resolution.
void set_default_threads(int n);

/// requested > 0 ? requested : default_threads().
int resolve_threads(int requested);

// --- ensemble batch size (lanes per worker) -------------------------------
// Resolution mirrors threads: call-site override, then set_default_batch()
// (the CLI --batch flag), then the DRAMSTRESS_BATCH environment variable.
// Unlike threads there is no hardware fallback: an unresolved batch is 0,
// which keeps the scalar (non-ensemble) engine -- batching is opt-in.

/// The lane count batched sweeps use when the call site does not override
/// it; 0 = ensemble batching disabled (scalar engine).
int default_batch();

/// Process-wide override (the CLI --batch flag); n <= 0 restores the
/// automatic DRAMSTRESS_BATCH resolution.
void set_default_batch(int n);

/// requested > 0 ? requested : default_batch().
int resolve_batch(int requested);

/// parallel_for_state(n, make_state, body): run body(state, i) for every
/// i in [0, n).  make_state() is invoked once per worker thread (on that
/// thread) to build worker-local scratch -- e.g. a cloned DRAM column --
/// and must be safe to call concurrently.
template <class MakeState, class Body>
void parallel_for_state(size_t n, MakeState&& make_state, Body&& body,
                        const ParallelOptions& opt = {}) {
  if (n == 0) return;
  const int team = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(resolve_threads(opt.threads)), n));
  if (team <= 1) {
    auto state = make_state();
    for (size_t i = 0; i < n; ++i) body(state, i);
    return;
  }

  const size_t chunk = std::max<size_t>(
      std::max<size_t>(opt.min_chunk, 1),
      n / (static_cast<size_t>(team) * 4));
  std::atomic<size_t> next{0};
  ExceptionSlot errors;

  auto worker = [&]() {
    try {
      auto state = make_state();
      for (;;) {
        if (errors.failed()) return;
        const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) body(state, i);
      }
    } catch (...) {
      errors.capture(std::current_exception());
    }
  };

  std::vector<std::thread> team_threads;
  team_threads.reserve(static_cast<size_t>(team) - 1);
  for (int t = 1; t < team; ++t) team_threads.emplace_back(worker);
  worker();  // the calling thread is a team member too
  for (std::thread& t : team_threads) t.join();
  errors.rethrow_if_failed();
}

/// Stateless variant: body(i) for every i in [0, n).
template <class Body>
void parallel_for(size_t n, Body&& body, const ParallelOptions& opt = {}) {
  parallel_for_state(
      n, [] { return 0; }, [&](int&, size_t i) { body(i); }, opt);
}

}  // namespace dramstress::util
