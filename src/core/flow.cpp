#include "core/flow.hpp"

#include <sstream>

#include "obs/span.hpp"

#include "util/strings.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/preflight.hpp"

namespace dramstress::core {

using analysis::BorderResult;
using defect::Defect;
using stress::AxisDecision;
using stress::DecisionMethod;
using stress::OptimizationResult;
using stress::StressAxis;

namespace {

std::string direction_marker(const AxisDecision& d) {
  std::string dir = d.direction();
  if (dir == "decrease") dir = "dec";
  if (dir == "increase") dir = "inc";
  if (d.method == DecisionMethod::BorderComparison) dir += "*";
  return dir;
}

std::string br_text(const std::optional<double>& br, bool fails_everywhere) {
  if (!br.has_value()) return "none";
  std::string s = dramstress::util::eng(*br, "Ohm");
  if (fails_everywhere) s += "!";
  return s;
}

}  // namespace

std::string Table1::render() const {
  std::ostringstream out;
  out << "ST optimization results (cf. paper Table 1); nominal "
      << stress::describe(nominal) << "\n";
  out << "  ('*' = direction decided by border-resistance comparison)\n";
  const char* fmt = "%-10s | %-11s | %-4s %-4s %-4s %-4s | %-11s | %s\n";
  out << util::format(fmt, "Defect", "Nom. border", "tcyc", "duty", "T",
                      "Vdd", "Str. border", "Str. detection condition");
  out << std::string(100, '-') << '\n';
  for (const Table1Row& row : rows) {
    out << util::format(fmt, row.defect.name().c_str(),
                        br_text(row.nominal_br, false).c_str(),
                        row.dir_tcyc.c_str(), row.dir_duty.c_str(),
                        row.dir_temp.c_str(), row.dir_vdd.c_str(),
                        br_text(row.stressed_br, false).c_str(),
                        row.stressed_condition.c_str());
  }
  return out.str();
}

StressFlow::StressFlow()
    : tech_(dram::default_technology()),
      column_(tech_),
      nominal_(stress::nominal_condition()),
      options_() {}

StressFlow::StressFlow(const dram::TechnologyParams& tech,
                       const stress::StressCondition& nominal,
                       const stress::OptimizerOptions& options)
    : tech_(tech), column_(tech), nominal_(nominal), options_(options) {}

verify::VerifyReport StressFlow::verify() {
  verify::VerifyReport report = column_.verify();
  for (const Defect& d : defect::extended_defect_set()) {
    const auto [seg_a, seg_b] = defect::expected_terminals(column_, d);
    report.merge(verify::lint_injection(column_.netlist(), d.device_name(),
                                        seg_a, seg_b));
  }
  // Numeric pre-flight (E4xx) under the stepping configuration the flow
  // will actually run with, so --verify=strict vouches for the settings
  // pair (deck, SimSettings), not the deck alone.
  const dram::SimSettings& s = options_.settings;
  verify::PreflightOptions pre;
  pre.adaptive = s.adaptive;
  pre.dt_min = s.dt_min;
  pre.lte_tol = s.lte_tol;
  pre.integrator = s.integrator;
  report.merge(verify::preflight_numeric(column_.netlist(), pre));
  return report;
}

BorderResult StressFlow::analyze(const Defect& d) {
  OBS_SPAN("flow.analyze");
  dram::ColumnSimulator sim(column_, nominal_, options_.settings);
  return analysis::analyze_defect(column_, d, sim, options_.border);
}

BorderResult StressFlow::analyze_at(const Defect& d,
                                    const stress::StressCondition& sc) {
  OBS_SPAN("flow.analyze");
  dram::ColumnSimulator sim(column_, sc, options_.settings);
  return analysis::analyze_defect(column_, d, sim, options_.border);
}

OptimizationResult StressFlow::optimize(const Defect& d) {
  OBS_SPAN("flow.optimize");
  return stress::optimize_stresses(column_, d, nominal_, options_);
}

BorderResult StressFlow::mirrored_border(
    const Defect& comp_defect,
    const analysis::DetectionCondition& true_condition,
    const stress::StressCondition& sc, std::optional<double> hint,
    std::optional<double> slope) {
  dram::ColumnSimulator sim(column_, sc, options_.settings);
  const auto range = defect::default_sweep_range(comp_defect.kind);
  analysis::BorderOptions bopt = options_.border;
  // The classic search honours bracket_hint too, but historically ran
  // un-hinted here; apply the warm start only on the surrogate path so
  // --no-surrogate stays byte-identical with the pre-surrogate flow.
  if (bopt.surrogate.enabled) {
    bopt.bracket_hint = hint;
    bopt.margin_slope_hint = slope;
  }
  return analysis::find_border_resistance(
      column_, comp_defect, sim, stress::mirror_condition(true_condition),
      range, bopt);
}

Table1 StressFlow::table1(const std::vector<defect::DefectKind>& kinds) {
  OBS_SPAN("flow.table1");
  Table1 table;
  table.nominal = nominal_;
  for (defect::DefectKind kind : kinds) {
    const Defect dt{kind, dram::Side::True};
    OptimizationResult r = optimize(dt);

    Table1Row row;
    row.defect = dt;
    row.nominal_br = r.nominal_border.br;
    row.stressed_br = r.stressed_border.br;
    row.nominal_condition = r.nominal_border.condition.str();
    row.stressed_condition = r.stressed_border.condition.str();
    for (const AxisDecision& d : r.decisions) {
      const std::string marker = direction_marker(d);
      switch (d.axis) {
        case StressAxis::CycleTime: row.dir_tcyc = marker; break;
        case StressAxis::DutyCycle: row.dir_duty = marker; break;
        case StressAxis::Temperature: row.dir_temp = marker; break;
        case StressAxis::SupplyVoltage: row.dir_vdd = marker; break;
      }
    }
    row.gain_decades = r.coverage_gain_decades();
    table.rows.push_back(row);

    // Comp-side row: mirrored conditions, same stressed corner.
    const Defect dc{kind, dram::Side::Comp};
    Table1Row comp = row;
    comp.defect = dc;
    const BorderResult nom_c =
        mirrored_border(dc, r.nominal_border.condition, nominal_,
                        r.nominal_border.br, r.nominal_border.margin_slope);
    const BorderResult str_c =
        mirrored_border(dc, r.stressed_border.condition, r.stressed_sc,
                        r.stressed_border.br, r.stressed_border.margin_slope);
    comp.nominal_br = nom_c.br;
    comp.stressed_br = str_c.br;
    comp.nominal_condition =
        stress::mirror_condition(r.nominal_border.condition).str();
    comp.stressed_condition =
        stress::mirror_condition(r.stressed_border.condition).str();
    const auto range = defect::default_sweep_range(kind);
    comp.gain_decades =
        str_c.failing_decades(range) - nom_c.failing_decades(range);
    table.rows.push_back(comp);
  }
  return table;
}

}  // namespace dramstress::core
