// Top-level public API: the paper's complete flow.
//
// StressFlow wires the substrates together: it owns the DRAM column,
// runs the Section-3 fault analysis and the Section-4 stress optimization
// per defect, exploits the true/comp symmetry the paper notes in
// Section 5.2, and renders the equivalent of the paper's Table 1.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::StressFlow flow;                       // calibrated default DRAM
//   auto result = flow.optimize({defect::DefectKind::O3, dram::Side::True});
//   std::cout << result.stressed_border.condition.str();
//   auto table = flow.table1();
//   std::cout << table.render();
#pragma once

#include <memory>

#include "memtest/coverage.hpp"
#include "stress/optimizer.hpp"
#include "stress/shmoo.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::core {

struct Table1Row {
  defect::Defect defect;
  std::optional<double> nominal_br;
  std::optional<double> stressed_br;
  std::string nominal_condition;
  std::string stressed_condition;
  /// Direction markers per stress axis: "dec", "inc" or "keep"; a '*'
  /// suffix marks a decision that needed the border-resistance comparison.
  std::string dir_tcyc;
  std::string dir_duty;
  std::string dir_temp;
  std::string dir_vdd;
  double gain_decades = 0.0;
};

struct Table1 {
  stress::StressCondition nominal;
  std::vector<Table1Row> rows;
  std::string render() const;
};

class StressFlow {
public:
  /// Calibrated default DRAM column at the nominal corner with default
  /// optimizer options.  A dedicated constructor instead of defaulted
  /// arguments: GCC 12 -O3 raises spurious -Wmaybe-uninitialized on the
  /// vector members of default-argument temporaries inlined into callers.
  StressFlow();

  explicit StressFlow(const dram::TechnologyParams& tech,
                      const stress::StressCondition& nominal,
                      const stress::OptimizerOptions& options);

  dram::DramColumn& column() { return column_; }
  const stress::StressCondition& nominal() const { return nominal_; }
  const stress::OptimizerOptions& options() const { return options_; }

  /// Static verification of the flow's column netlist plus the injection
  /// sanity of every defect in the extended set (each placeholder must
  /// span the path its taxonomy entry advertises).  `dramstress
  /// --verify[=strict]` is a thin wrapper around this.
  verify::VerifyReport verify();

  /// Section-3 fault analysis at the nominal corner.
  analysis::BorderResult analyze(const defect::Defect& d);

  /// Section-3 fault analysis at an arbitrary corner (campaign stress
  /// points, Fig. 5 BR-vs-Vdd trends); analyze() is the nominal case.
  analysis::BorderResult analyze_at(const defect::Defect& d,
                                    const stress::StressCondition& sc);

  /// Section-4 stress optimization for one defect.
  stress::OptimizationResult optimize(const defect::Defect& d);

  /// The paper's Table 1: every defect kind on both bitlines.  True-side
  /// rows run the full optimization; comp-side rows reuse the mirrored
  /// detection conditions and the true side's stressed corner (the paper:
  /// identical borders and directions, data inverted).
  Table1 table1(const std::vector<defect::DefectKind>& kinds = {
                    defect::DefectKind::O1, defect::DefectKind::O2,
                    defect::DefectKind::O3, defect::DefectKind::Sg,
                    defect::DefectKind::Sv, defect::DefectKind::B1,
                    defect::DefectKind::B2});

  /// Border resistance of a mirrored condition on the comp side under an
  /// arbitrary corner (used by table1; exposed for tests).  `hint`/`slope`
  /// warm-start the search from the true-side result: the comp cell is the
  /// electrical mirror, so its border lands within a step of the true
  /// side's (see BorderOptions::bracket_hint / margin_slope_hint).
  analysis::BorderResult mirrored_border(
      const defect::Defect& comp_defect,
      const analysis::DetectionCondition& true_condition,
      const stress::StressCondition& sc,
      std::optional<double> hint = std::nullopt,
      std::optional<double> slope = std::nullopt);

private:
  dram::TechnologyParams tech_;
  dram::DramColumn column_;
  stress::StressCondition nominal_;
  stress::OptimizerOptions options_;
};

}  // namespace dramstress::core
