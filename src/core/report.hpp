// Markdown diagnostic reports.
//
// The deliverable a product engineer circulates after running the flow:
// one self-contained document per defect with the fault classification,
// the sense-threshold table, the border resistance, the per-stress probe
// evidence and the final recommendation.  Rendered as plain markdown so it
// drops into issue trackers and wikis.
#pragma once

#include <string>

#include "analysis/ffm.hpp"
#include "stress/optimizer.hpp"

namespace dramstress::core {

struct ReportOptions {
  /// Resistance sample count for the Vsa / FFM tables.
  int r_samples = 5;
  analysis::FfmProbeOptions ffm;
};

/// Characterization-only report (paper Section 3) at one corner.
std::string characterization_report(dram::DramColumn& column,
                                    const defect::Defect& defect,
                                    const dram::ColumnSimulator& sim,
                                    const analysis::BorderResult& border,
                                    const ReportOptions& opt = {});

/// Full optimization report (paper Sections 3+4) from an optimizer result.
std::string optimization_report(dram::DramColumn& column,
                                const stress::OptimizationResult& result,
                                const ReportOptions& opt = {});

}  // namespace dramstress::core
