#include "core/report.hpp"

#include <sstream>

#include "analysis/vsa.hpp"
#include "util/strings.hpp"

namespace dramstress::core {

using analysis::BorderResult;
using defect::Defect;
using util::eng;
using util::format;

namespace {

void vsa_and_ffm_table(std::ostringstream& out, dram::DramColumn& column,
                       const Defect& d, const dram::ColumnSimulator& sim,
                       const ReportOptions& opt) {
  analysis::FfmMapOptions mopt;
  mopt.num_r_points = opt.r_samples;
  mopt.probe = opt.ffm;
  mopt.settings = sim.settings();
  out << "| R | Vsa | fault models |\n|---|---|---|\n";
  for (const analysis::FfmMapEntry& e :
       analysis::ffm_map(column.tech(), sim.conditions(), {d}, mopt)) {
    out << format("| %s | %.3f V | %s |\n", eng(e.r, "Ohm").c_str(),
                  e.vsa.threshold, e.report.str().c_str());
  }
}

void border_section(std::ostringstream& out, const BorderResult& border,
                    const defect::SweepRange& range) {
  if (!border.br.has_value()) {
    out << "No faulty behaviour anywhere in ["
        << eng(range.lo, "Ohm") << ", " << eng(range.hi, "Ohm") << "].\n";
    return;
  }
  out << format(
      "* border resistance: **%s** (faults for %s values)\n",
      eng(*border.br, "Ohm").c_str(),
      border.fault_at_high_r ? "larger" : "smaller");
  out << format("* detection condition: `%s`\n",
                border.condition.str().c_str());
  out << format("* failing range: %.2f decades of resistance\n",
                border.failing_decades(range));
}

}  // namespace

std::string characterization_report(dram::DramColumn& column,
                                    const Defect& defect,
                                    const dram::ColumnSimulator& sim,
                                    const BorderResult& border,
                                    const ReportOptions& opt) {
  std::ostringstream out;
  out << "# Defect characterization: " << defect.name() << "\n\n";
  out << "Corner: " << stress::describe(sim.conditions()) << "\n\n";
  out << "## Border resistance\n\n";
  border_section(out, border, defect::default_sweep_range(defect.kind));
  out << "\n## Sense threshold and fault classification vs. R\n\n";
  vsa_and_ffm_table(out, column, defect, sim, opt);
  return out.str();
}

std::string optimization_report(dram::DramColumn& column,
                                const stress::OptimizationResult& result,
                                const ReportOptions& opt) {
  std::ostringstream out;
  const Defect& d = result.defect;
  const auto range = defect::default_sweep_range(d.kind);

  out << "# Stress optimization: " << d.name() << "\n\n";
  out << "## Nominal corner\n\n" << stress::describe(result.nominal_sc)
      << "\n\n";
  border_section(out, result.nominal_border, range);

  out << "\n## Per-stress evidence (paper Section 4)\n\n";
  out << "| stress | candidates | critical-write residual [V] | Vsa [V] | "
         "decision |\n|---|---|---|---|---|\n";
  for (const stress::AxisDecision& dec : result.decisions) {
    std::vector<std::string> values;
    std::vector<std::string> residuals;
    std::vector<std::string> vsas;
    for (const auto& c : dec.probe.candidates) {
      values.push_back(eng(c.value, stress::axis_unit(dec.axis)));
      residuals.push_back(format("%.3f", c.write_residual));
      vsas.push_back(format("%.3f", c.vsa));
    }
    out << format("| %s | %s | %s | %s | %s (%s) |\n",
                  stress::to_string(dec.axis),
                  util::join(values, " / ").c_str(),
                  util::join(residuals, " / ").c_str(),
                  util::join(vsas, " / ").c_str(), dec.direction().c_str(),
                  stress::to_string(dec.method));
  }

  out << "\n## Stressed corner\n\n" << stress::describe(result.stressed_sc)
      << "\n\n";
  border_section(out, result.stressed_border, range);
  out << format("\ncoverage gain: **%.2f decades** of failing resistance\n",
                result.coverage_gain_decades());

  // Fault classification under both corners, at the nominal border.
  if (result.nominal_border.br.has_value()) {
    const double r_probe = *result.nominal_border.br *
                           (result.nominal_border.fault_at_high_r ? 1.3 : 0.77);
    out << "\n## Fault classification at " << eng(r_probe, "Ohm") << "\n\n";
    defect::Injection inj(column, d, r_probe);
    {
      dram::ColumnSimulator sim(column, result.nominal_sc);
      out << "* nominal: "
          << analysis::classify_ffm(sim, d.side, opt.ffm).str() << "\n";
    }
    {
      dram::ColumnSimulator sim(column, result.stressed_sc);
      out << "* stressed: "
          << analysis::classify_ffm(sim, d.side, opt.ffm).str() << "\n";
    }
  }
  return out.str();
}

}  // namespace dramstress::core
