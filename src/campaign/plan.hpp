// Campaign plan: the spec's {defect x point x analysis} matrix expanded
// into a DAG of work units with content-addressed cache keys.
//
// Units are independent except for one true data dependency: an optimize
// unit consumes the border verdict of its (defect, point) cell -- when the
// border analysis finds no detectable fault anywhere in the sweep range,
// the optimization is provably futile (optimize_stresses would throw), so
// the runner skips it with a recorded reason instead of burning retries.
//
// Cache keys hash every input the unit result depends on: the column
// netlist signature (device names, kinds and terminal nodes), the defect,
// the operating corner *values* (renaming a point does not invalidate),
// the SimSettings and analysis options, and the engine version from
// obs/version -- so `campaign run` is incremental across spec edits and
// conservative across engine changes.
#pragma once

#include <cstddef>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/spec.hpp"
#include "dram/column.hpp"

namespace dramstress::campaign {

struct WorkUnit {
  size_t index = 0;
  UnitKind kind = UnitKind::Border;
  size_t defect_index = 0;
  size_t point_index = 0;
  std::vector<size_t> deps;  // indices of units that must finish first
  std::string id;            // "border/o3@nominal"
  CacheKey key;
};

struct CampaignPlan {
  CampaignSpec spec;
  std::vector<WorkUnit> units;

  const defect::Defect& defect_of(const WorkUnit& u) const {
    return spec.defects[u.defect_index];
  }
  const StressPoint& point_of(const WorkUnit& u) const {
    return spec.points[u.point_index];
  }
};

/// Signature of the column netlist the campaign simulates: device names,
/// kinds and terminal node names in construction order.  Any topology
/// change (new device, moved terminal) changes every cache key.
std::string netlist_signature(const dram::DramColumn& column);

/// Expand `spec` into the ordered unit list (defect-major, point-minor,
/// border < planes < optimize within a cell).  Border units are added
/// implicitly for cells that request optimize without border.
CampaignPlan expand(const CampaignSpec& spec, const dram::DramColumn& column);

}  // namespace dramstress::campaign
