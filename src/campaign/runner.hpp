// Campaign executor: runs the plan's unit DAG on the parallel task pool
// with caching, journaling, bounded retries and quarantine.
//
// Execution is wave-based: every unit whose dependencies are resolved runs
// in the current wave (util::parallel_for over the ready set), then newly
// unblocked units form the next wave.  Per unit, in order:
//   1. a quarantine verdict replayed from the journal (--resume) is
//      restored as-is, without re-burning retries;
//   2. the content-addressed cache is consulted -- a hit short-circuits
//      the computation (this is what makes `campaign run` incremental);
//   3. otherwise the unit is computed with a bounded retry loop: each
//      retry perturbs the Newton damping (max_step *= damping_backoff)
//      and relaxes the iteration budget, the classic continuation trick
//      for a non-converging operating point.  A unit that exhausts its
//      attempts -- or exceeds the per-unit wall-clock timeout -- is
//      quarantined into the failure report instead of aborting the run.
//
// Determinism: report.json contains only inputs-determined content (unit
// ids, payloads, quarantine reasons) -- no timestamps, no attempt counts,
// no thread ids -- and every payload round-trips through the same JSON
// writer whether it was computed or cache-loaded.  A resumed run's report
// is therefore byte-identical to the uninterrupted one, and so is a
// 4-thread run to a 1-thread run (quarantine timing aside: the wall-clock
// timeout only fires on units that are already failing).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/unit_exec.hpp"
#include "dram/technology.hpp"
#include "util/error.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::campaign {

/// Thrown by the stop_after_units test hook to simulate a crash at a
/// clean journal boundary (real kills are exercised by the CI job).
struct CampaignInterrupted : Error {
  using Error::Error;
};

struct RunnerOptions {
  /// Worker threads for the unit waves; 0 = util::default_threads().
  /// Units run their inner sweeps serially, so this is the only
  /// parallelism level -- no oversubscription.
  int threads = 0;
  /// Replay an existing journal instead of refusing to reuse the run
  /// directory.
  bool resume = false;
  /// Test hook: invoked before each computation attempt; throwing
  /// simulates that attempt failing (non-convergence, hang, ...).
  std::function<void(const WorkUnit&, int attempt)> fault_injector;
  /// Test hook: after this many units have been computed and journaled,
  /// throw CampaignInterrupted (> 0 enables).
  int stop_after_units = 0;
};

struct CampaignResult {
  std::vector<UnitOutcome> outcomes;  // indexed like plan.units
  int done = 0;
  int cached = 0;
  int retried = 0;  // total extra attempts across all units
  int quarantined = 0;
  int skipped = 0;

  /// Diagnostics collected while reading cache/journal (E310 corruption
  /// warnings); spec diagnostics are reported at parse time.
  verify::VerifyReport diagnostics;

  std::string report_path;
  std::string failure_report_path;
};

class CampaignRunner {
public:
  /// `run_dir` holds the journal and the reports; `cache_dir` the shared
  /// result cache (several campaigns and runs may share one).
  CampaignRunner(CampaignPlan plan, const dram::TechnologyParams& tech,
                 std::string run_dir, std::string cache_dir,
                 RunnerOptions opt);

  /// Execute the campaign.  Throws ModelError when the run directory has
  /// a journal and resume is off; throws CampaignInterrupted from the
  /// stop_after_units hook.  Unit failures never throw -- they quarantine.
  CampaignResult run();

private:
  CampaignPlan plan_;
  dram::TechnologyParams tech_;
  std::string run_dir_;
  std::string cache_dir_;
  RunnerOptions opt_;
};

}  // namespace dramstress::campaign
