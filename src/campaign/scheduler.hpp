// Multi-campaign scheduler: many concurrent campaign sessions multiplexed
// over one shared worker pool, backed by the shared result cache.
//
// This is the execution core of `dramstress serve` (src/service).  Where
// CampaignRunner owns one plan and a private thread team, the Scheduler
// accepts campaign sessions from many clients and lets a fixed pool of
// workers *steal work across campaigns*: any idle worker takes the next
// ready unit of whichever session fairness points at, so one client's
// 3-unit campaign is not starved behind another's 300-unit matrix.
//
// Fairness.  Dispatch is round-robin over *clients* (first-seen order),
// then round-robin over a client's sessions, then lowest-index ready unit
// of that session.  Every client with runnable work therefore gets an
// equal share of the pool regardless of how many campaigns it submitted.
//
// Shared results.  Every unit consults the SharedCache first (memory tier
// then disk -- docs/SERVICE.md), and units *in flight* are deduplicated
// across sessions: when two campaigns need the same cache key, the second
// waits for the first worker's result instead of simulating it again,
// then takes the cache hit.  A quarantined computation is never shared --
// each waiting session retries it under its own retry policy.
//
// Determinism.  The per-unit pipeline (dependency gates, futile-optimize
// skips, quarantine restore from the journal, bounded retries) and the
// report serialization are exactly the runner's (campaign/unit_exec.hpp),
// so a session's report.json is byte-identical to the single-process
// `campaign run` of the same spec, at any worker count, across
// kill-and-resume.  A run directory that already holds a journal is
// always resumed -- the daemon owns its run directories, so resubmitting
// a spec after a crash (or while it is running: submits are idempotent
// per session id) continues instead of refusing.
//
// All session state is guarded by the scheduler's single mutex; sessions
// are internal to the implementation and queried through the status
// snapshots below.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/cache_index.hpp"
#include "campaign/plan.hpp"
#include "dram/technology.hpp"

namespace dramstress::campaign {

/// Point-in-time view of one campaign session.
struct SessionStatus {
  std::string id;        // stable session id (the service derives it from
                         // client + spec content, so resubmits land here)
  std::string client;    // submitting client name
  std::string campaign;  // spec name
  std::string run_dir;
  std::string state;  // "running" | "finished" | "failed"
  std::string error;  // session-level failure reason ("failed" only)
  std::string report_path;          // set once finished
  std::string failure_report_path;  // set once finished
  int total = 0;
  int done = 0;         // computed this run
  int cached = 0;       // served from the shared cache
  int quarantined = 0;
  int skipped = 0;
  int retried = 0;      // extra attempts across all units
  int pending = 0;      // not yet resolved (includes running/waiting)
  bool finished = false;  // terminal (finished or failed)
};

/// Point-in-time view of the whole scheduler.
struct SchedulerStatus {
  int workers = 0;
  bool accepting = true;
  long dispatched = 0;  // units handed to a worker since startup
  long deduplicated = 0;  // units that waited on another session's compute
  std::vector<SessionStatus> sessions;
};

struct SchedulerOptions {
  /// Worker threads of the shared pool; 0 = util::default_threads().
  int workers = 0;
  /// Test hook forwarded to compute_with_retries (see RunnerOptions).
  std::function<void(const WorkUnit&, int attempt)> fault_injector;
};

class Scheduler {
public:
  /// Workers start immediately.  `cache` is shared, not owned, and must
  /// outlive the scheduler.
  Scheduler(const dram::TechnologyParams& tech, SharedCache* cache,
            SchedulerOptions opt = {});
  /// Stops the pool without draining (pending sessions are abandoned --
  /// their journals make resubmission resume cleanly).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a session and make its ready units available to the pool.
  /// Idempotent per `id`: a live or successfully finished session is
  /// returned as-is; a failed one is replaced by a fresh session that
  /// resumes from its journal.  Throws ModelError once draining started.
  SessionStatus submit(const std::string& client, CampaignPlan plan,
                       const std::string& run_dir, const std::string& id);

  /// Status of one session / all sessions (submission order).
  std::optional<SessionStatus> session(const std::string& id) const;
  SchedulerStatus status() const;

  /// Block until session `id` reaches a terminal state; false on timeout
  /// or unknown id (timeout_s <= 0 waits forever).
  bool wait_finished(const std::string& id, double timeout_s) const;

  /// Graceful drain: refuse new submits, wait until every session is
  /// terminal, then stop and join the workers.  Idempotent.
  void drain();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dramstress::campaign
