#include "campaign/unit_exec.hpp"

#include <chrono>
#include <fstream>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "dram/column.hpp"
#include "dram/column_sim.hpp"
#include "obs/metrics.hpp"
#include "stress/optimizer.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace util = dramstress::util;

const char* to_string(UnitStatus status) {
  switch (status) {
    case UnitStatus::Done: return "done";
    case UnitStatus::Cached: return "cached";
    case UnitStatus::Quarantined: return "quarantined";
    case UnitStatus::Skipped: return "skipped";
  }
  return "?";
}

std::string defect_label(const defect::Defect& d) {
  std::string s = defect::to_string(d.kind);
  if (d.side == dram::Side::Comp) s += ".comp";
  return s;
}

std::string compute_unit_payload(const CampaignPlan& plan, const WorkUnit& u,
                                 const dram::TechnologyParams& tech,
                                 const dram::SimSettings& settings) {
  const defect::Defect& d = plan.defect_of(u);
  const StressPoint& p = plan.point_of(u);
  const defect::SweepRange range = defect::default_sweep_range(d.kind);
  dram::DramColumn column(tech);
  dram::ColumnSimulator sim(column, p.condition, settings);
  const long t0 = dram::thread_transients();
  util::json::Writer inner;
  switch (u.kind) {
    case UnitKind::Border: {
      analysis::BorderOptions bo;
      bo.surrogate.enabled = plan.spec.surrogate_enabled;
      bo.surrogate.tol = plan.spec.surrogate_tol;
      const analysis::BorderResult r =
          analysis::analyze_defect(column, d, sim, bo);
      analysis::append_json(inner, r, range);
      break;
    }
    case UnitKind::Planes: {
      analysis::PlaneOptions po;
      po.num_r_points = plan.spec.plane_r_points;
      po.ops_per_point = plan.spec.plane_ops_per_point;
      po.r_lo = range.lo;
      po.r_hi = range.hi;
      // The executor already parallelizes over units; a nested plane
      // sweep would oversubscribe the machine.
      po.threads = 1;
      const analysis::PlaneSet s =
          analysis::generate_plane_set(column, d, sim, po);
      analysis::append_json(inner, s);
      break;
    }
    case UnitKind::Optimize: {
      stress::OptimizerOptions oo;
      oo.settings = settings;
      oo.border.surrogate.enabled = plan.spec.surrogate_enabled;
      oo.border.surrogate.tol = plan.spec.surrogate_tol;
      const stress::OptimizationResult r =
          stress::optimize_stresses(column, d, p.condition, oo);
      stress::append_json(inner, r, range);
      break;
    }
  }
  // Units run one-per-thread, so the thread-local counter delta is the
  // unit's exact cost even when the executor is parallel.
  util::json::Writer w;
  w.begin_object();
  w.key("transients").value(dram::thread_transients() - t0);
  w.key("result");
  util::json::append(w, util::json::parse(inner.str()));
  w.end_object();
  return w.str();
}

const util::json::Value* payload_result(const util::json::Value& v) {
  const util::json::Value* r = v.find("result");
  return r != nullptr ? r : &v;
}

bool border_shows_fault(const std::string& payload) {
  const util::json::Value v = util::json::parse(payload);
  const util::json::Value* res = payload_result(v);
  const util::json::Value* br = res->find("br");
  const util::json::Value* fe = res->find("fails_everywhere");
  return (br != nullptr && br->is_number()) ||
         (fe != nullptr && fe->is_bool() && fe->boolean);
}

UnitOutcome compute_with_retries(
    const CampaignPlan& plan, const WorkUnit& u,
    const dram::TechnologyParams& tech,
    const std::function<void(const WorkUnit&, int attempt)>& fault_injector) {
  UnitOutcome out;
  dram::SimSettings settings = plan.spec.settings;
  const RetryPolicy& retry = plan.spec.retry;
  const auto start = std::chrono::steady_clock::now();
  std::string err;
  bool succeeded = false;  // UnitStatus::Done is the enum default, so the
                           // post-loop branch must not key off out.status
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      settings.newton.max_step *= retry.damping_backoff;
      settings.newton.max_iter += settings.newton.max_iter / 2;
      obs::count("campaign.unit_retried");
    }
    out.attempts = attempt;
    try {
      // Fault point (docs/SERVICE.md): the canonical "worker dies
      // mid-unit" spot -- after the unit is claimed, before its result
      // exists.  `throw` makes this attempt fail (retry / quarantine
      // path); `kill` dies right here (crash-resume path, CI job).
      util::fault::hit("campaign.unit.compute");
      if (fault_injector) fault_injector(u, attempt);
      out.payload = compute_unit_payload(plan, u, tech, settings);
      succeeded = true;
      break;
    } catch (const std::exception& e) {
      err = e.what();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (retry.timeout_s > 0 && elapsed > retry.timeout_s) {
      err = util::format(
          "exceeded the per-unit timeout of %g s after attempt %d (last "
          "error: %s)",
          retry.timeout_s, attempt, err.c_str());
      break;
    }
  }
  if (succeeded) {
    out.status = UnitStatus::Done;
  } else {
    out.status = UnitStatus::Quarantined;
    out.error = err;
  }
  return out;
}

std::string report_json(const CampaignPlan& plan,
                        const std::vector<UnitOutcome>& outcomes) {
  util::json::Writer w;
  w.begin_object();
  w.key("campaign").value(plan.spec.name);
  w.key("surrogate").begin_object();
  w.key("enabled").value(plan.spec.surrogate_enabled);
  w.key("tol").value(plan.spec.surrogate_tol);
  w.end_object();
  long transients_total = 0;
  w.key("units");
  w.begin_array();
  for (const WorkUnit& u : plan.units) {
    const UnitOutcome& out = outcomes[u.index];
    w.begin_object();
    w.key("id").value(u.id);
    w.key("key").value(u.key.hex());
    w.key("kind").value(to_string(u.kind));
    w.key("defect").value(defect_label(plan.defect_of(u)));
    w.key("point").value(plan.point_of(u).name);
    w.key("status").value(out.status == UnitStatus::Cached
                              ? "done"
                              : to_string(out.status));
    if (!out.payload.empty()) {
      const util::json::Value v = util::json::parse(out.payload);
      if (const util::json::Value* t = v.find("transients");
          t != nullptr && t->is_number()) {
        const long n = static_cast<long>(t->number);
        w.key("transients").value(n);
        transients_total += n;
      }
      w.key("result");
      util::json::append(w, *payload_result(v));
    }
    if (!out.error.empty()) w.key("error").value(out.error);
    w.end_object();
  }
  w.end_array();
  // Cost accounting across the whole matrix: cached units contribute
  // the count recorded when they were computed, so the total is stable
  // across resumes.
  w.key("transients_total").value(transients_total);
  w.end_object();
  return w.str();
}

std::string failures_json(const CampaignPlan& plan,
                          const std::vector<UnitOutcome>& outcomes) {
  util::json::Writer w;
  w.begin_object();
  w.key("campaign").value(plan.spec.name);
  w.key("failures");
  w.begin_array();
  for (const WorkUnit& u : plan.units) {
    const UnitOutcome& out = outcomes[u.index];
    if (out.status != UnitStatus::Quarantined) continue;
    w.begin_object();
    w.key("id").value(u.id);
    w.key("key").value(u.key.hex());
    w.key("attempts").value(out.attempts);
    w.key("error").value(out.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) throw ModelError("campaign: cannot write " + path);
  f << text << '\n';
  f.flush();
  if (!f.good()) throw ModelError("campaign: write to " + path + " failed");
}

}  // namespace dramstress::campaign
