#include "campaign/spec.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace util = dramstress::util;
using util::json::Value;
using verify::Code;
using verify::Diagnostic;
using verify::Severity;
using verify::VerifyReport;

const char* to_string(UnitKind kind) {
  switch (kind) {
    case UnitKind::Border: return "border";
    case UnitKind::Planes: return "planes";
    case UnitKind::Optimize: return "optimize";
  }
  return "?";
}

namespace {

/// Context shared by the schema walkers: the raw text (for line numbers)
/// and the diagnostic sink.
struct SpecCtx {
  const std::string& text;
  VerifyReport* report;
  bool failed = false;

  void diag(Code code, const std::string& message, size_t offset) {
    Diagnostic d;
    d.code = code;
    d.severity = verify::default_severity(code);
    d.message = message;
    d.spice_line = util::json::line_of(text, offset);
    report->add(d);
    if (d.severity == Severity::Error) failed = true;
  }
};

bool parse_defect_token(const std::string& token, defect::Defect* out) {
  std::string kind = token;
  out->side = dram::Side::True;
  const size_t slash = token.find('/');
  if (slash != std::string::npos) {
    kind = token.substr(0, slash);
    const std::string side = token.substr(slash + 1);
    if (side == "comp") out->side = dram::Side::Comp;
    else if (side != "true") return false;
  }
  static const std::pair<const char*, defect::DefectKind> kMap[] = {
      {"o1", defect::DefectKind::O1}, {"o2", defect::DefectKind::O2},
      {"o3", defect::DefectKind::O3}, {"sg", defect::DefectKind::Sg},
      {"sv", defect::DefectKind::Sv}, {"b1", defect::DefectKind::B1},
      {"b2", defect::DefectKind::B2}, {"b3", defect::DefectKind::B3}};
  for (const auto& [name, k] : kMap) {
    if (kind == name) {
      out->kind = k;
      return true;
    }
  }
  return false;
}

std::string defect_token(const defect::Defect& d) {
  std::string s = defect::to_string(d.kind);
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (d.side == dram::Side::Comp) s += "/comp";
  return s;
}

/// Reject keys outside `allowed` (W305, ignored) on an object value.
void check_keys(SpecCtx& ctx, const Value& obj,
                const std::set<std::string>& allowed,
                const std::string& where) {
  for (const auto& [key, val] : obj.object) {
    if (allowed.count(key) == 0)
      ctx.diag(Code::SpecUnknownKey,
               "unknown key \"" + key + "\" in " + where + " (ignored)",
               val.offset);
  }
}

/// Fetch a required/optional member, checking its JSON kind.  Returns
/// nullptr (after reporting) when absent or mistyped.
const Value* member(SpecCtx& ctx, const Value& obj, const std::string& key,
                    Value::Kind kind, const char* kind_name, bool required,
                    const std::string& where) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required)
      ctx.diag(Code::SpecMissingField,
               where + " is missing required field \"" + key + "\"",
               obj.offset);
    return nullptr;
  }
  if (v->kind != kind) {
    ctx.diag(Code::SpecBadType,
             where + " field \"" + key + "\" must be " + kind_name,
             v->offset);
    return nullptr;
  }
  return v;
}

/// Optional positive number member; writes through on success.
void number_in(SpecCtx& ctx, const Value& obj, const std::string& key,
               double lo, double hi, double* out, const std::string& where) {
  const Value* v = member(ctx, obj, key, Value::Kind::Number, "a number",
                          /*required=*/false, where);
  if (v == nullptr) return;
  if (!std::isfinite(v->number) || v->number < lo || v->number > hi) {
    ctx.diag(Code::SpecBadValue,
             util::format("%s field \"%s\" out of range (%g not in [%g, %g])",
                          where.c_str(), key.c_str(), v->number, lo, hi),
             v->offset);
    return;
  }
  *out = v->number;
}

void flag_in(SpecCtx& ctx, const Value& obj, const std::string& key,
             bool* out, const std::string& where) {
  const Value* v = member(ctx, obj, key, Value::Kind::Bool, "a boolean",
                          /*required=*/false, where);
  if (v != nullptr) *out = v->boolean;
}

void parse_defects(SpecCtx& ctx, const Value& root, CampaignSpec* spec) {
  const Value* arr = member(ctx, root, "defects", Value::Kind::Array,
                            "an array", /*required=*/true, "spec");
  if (arr == nullptr) return;
  if (arr->array.empty()) {
    ctx.diag(Code::SpecBadValue, "\"defects\" must not be empty",
             arr->offset);
    return;
  }
  std::set<std::string> seen;
  for (const Value& e : arr->array) {
    if (!e.is_string()) {
      ctx.diag(Code::SpecBadType,
               "\"defects\" entries must be strings like \"o3\" or "
               "\"sg/comp\"",
               e.offset);
      continue;
    }
    defect::Defect d;
    if (!parse_defect_token(e.string, &d)) {
      ctx.diag(Code::SpecBadValue,
               "unknown defect \"" + e.string +
                   "\" (expected o1|o2|o3|sg|sv|b1|b2|b3, optionally "
                   "\"/comp\")",
               e.offset);
      continue;
    }
    if (!seen.insert(e.string).second) {
      ctx.diag(Code::SpecBadValue, "duplicate defect \"" + e.string + "\"",
               e.offset);
      continue;
    }
    spec->defects.push_back(d);
  }
}

void parse_points(SpecCtx& ctx, const Value& root, CampaignSpec* spec) {
  const Value* arr = member(ctx, root, "points", Value::Kind::Array,
                            "an array", /*required=*/true, "spec");
  if (arr == nullptr) return;
  if (arr->array.empty()) {
    ctx.diag(Code::SpecBadValue, "\"points\" must not be empty", arr->offset);
    return;
  }
  std::set<std::string> names;
  for (const Value& e : arr->array) {
    if (!e.is_object()) {
      ctx.diag(Code::SpecBadType, "\"points\" entries must be objects",
               e.offset);
      continue;
    }
    check_keys(ctx, e, {"name", "vdd", "temp_c", "tcyc", "duty"}, "point");
    StressPoint p;
    p.condition = stress::nominal_condition();
    const Value* name = member(ctx, e, "name", Value::Kind::String,
                               "a string", /*required=*/true, "point");
    if (name == nullptr) continue;
    p.name = name->string;
    if (p.name.empty() || !names.insert(p.name).second) {
      ctx.diag(Code::SpecBadValue,
               "point name \"" + p.name + "\" must be non-empty and unique",
               name->offset);
      continue;
    }
    number_in(ctx, e, "vdd", 0.5, 10.0, &p.condition.vdd, "point");
    number_in(ctx, e, "temp_c", -60.0, 150.0, &p.condition.temp_c, "point");
    number_in(ctx, e, "tcyc", 1e-9, 1e-3, &p.condition.tcyc, "point");
    number_in(ctx, e, "duty", 0.05, 0.95, &p.condition.duty, "point");
    spec->points.push_back(std::move(p));
  }
}

void parse_analyses(SpecCtx& ctx, const Value& root, CampaignSpec* spec) {
  const Value* arr = member(ctx, root, "analyses", Value::Kind::Array,
                            "an array", /*required=*/false, "spec");
  if (arr == nullptr) {
    spec->analyses = {UnitKind::Border};
    return;
  }
  std::set<std::string> seen;
  for (const Value& e : arr->array) {
    if (!e.is_string()) {
      ctx.diag(Code::SpecBadType, "\"analyses\" entries must be strings",
               e.offset);
      continue;
    }
    UnitKind kind;
    if (e.string == "border") kind = UnitKind::Border;
    else if (e.string == "planes") kind = UnitKind::Planes;
    else if (e.string == "optimize") kind = UnitKind::Optimize;
    else {
      ctx.diag(Code::SpecBadValue,
               "unknown analysis \"" + e.string +
                   "\" (expected border|planes|optimize)",
               e.offset);
      continue;
    }
    if (!seen.insert(e.string).second) {
      ctx.diag(Code::SpecBadValue, "duplicate analysis \"" + e.string + "\"",
               e.offset);
      continue;
    }
    spec->analyses.push_back(kind);
  }
  if (spec->analyses.empty() && !ctx.failed)
    ctx.diag(Code::SpecBadValue, "\"analyses\" must not be empty",
             arr->offset);
}

}  // namespace

std::optional<CampaignSpec> parse_spec(const std::string& text,
                                       VerifyReport* report) {
  SpecCtx ctx{text, report};
  Value root;
  try {
    root = util::json::parse(text);
  } catch (const util::json::ParseError& e) {
    ctx.diag(Code::SpecParse, e.what(), e.offset());
    return std::nullopt;
  }
  if (!root.is_object()) {
    ctx.diag(Code::SpecBadType, "campaign spec must be a JSON object",
             root.offset);
    return std::nullopt;
  }
  check_keys(ctx, root,
             {"name", "defects", "points", "analyses", "planes", "settings",
              "surrogate", "retry"},
             "spec");

  CampaignSpec spec;
  const Value* name = member(ctx, root, "name", Value::Kind::String,
                             "a string", /*required=*/true, "spec");
  if (name != nullptr) {
    spec.name = name->string;
    if (spec.name.empty())
      ctx.diag(Code::SpecBadValue, "\"name\" must not be empty",
               name->offset);
  }
  parse_defects(ctx, root, &spec);
  parse_points(ctx, root, &spec);
  parse_analyses(ctx, root, &spec);

  if (const Value* planes = member(ctx, root, "planes", Value::Kind::Object,
                                   "an object", /*required=*/false, "spec")) {
    check_keys(ctx, *planes, {"r_points", "ops_per_point"}, "\"planes\"");
    double r_points = spec.plane_r_points;
    double ops = spec.plane_ops_per_point;
    number_in(ctx, *planes, "r_points", 2, 512, &r_points, "\"planes\"");
    number_in(ctx, *planes, "ops_per_point", 1, 16, &ops, "\"planes\"");
    spec.plane_r_points = static_cast<int>(r_points);
    spec.plane_ops_per_point = static_cast<int>(ops);
  }
  if (const Value* st = member(ctx, root, "settings", Value::Kind::Object,
                               "an object", /*required=*/false, "spec")) {
    check_keys(ctx, *st, {"adaptive", "lte_tol", "dt", "reuse_jacobian"},
               "\"settings\"");
    flag_in(ctx, *st, "adaptive", &spec.settings.adaptive, "\"settings\"");
    flag_in(ctx, *st, "reuse_jacobian", &spec.settings.reuse_jacobian,
            "\"settings\"");
    number_in(ctx, *st, "lte_tol", 1e-8, 1.0, &spec.settings.lte_tol,
              "\"settings\"");
    number_in(ctx, *st, "dt", 1e-13, 1e-6, &spec.settings.dt, "\"settings\"");
  }
  if (const Value* sg = member(ctx, root, "surrogate", Value::Kind::Object,
                               "an object", /*required=*/false, "spec")) {
    check_keys(ctx, *sg, {"enabled", "tol"}, "\"surrogate\"");
    flag_in(ctx, *sg, "enabled", &spec.surrogate_enabled, "\"surrogate\"");
    number_in(ctx, *sg, "tol", 1e-4, 1.0, &spec.surrogate_tol,
              "\"surrogate\"");
  }
  if (const Value* rt = member(ctx, root, "retry", Value::Kind::Object,
                               "an object", /*required=*/false, "spec")) {
    check_keys(ctx, *rt, {"max_attempts", "timeout_s", "damping_backoff"},
               "\"retry\"");
    double attempts = spec.retry.max_attempts;
    number_in(ctx, *rt, "max_attempts", 1, 16, &attempts, "\"retry\"");
    spec.retry.max_attempts = static_cast<int>(attempts);
    number_in(ctx, *rt, "timeout_s", 0.0, 86400.0, &spec.retry.timeout_s,
              "\"retry\"");
    number_in(ctx, *rt, "damping_backoff", 0.05, 1.0,
              &spec.retry.damping_backoff, "\"retry\"");
  }

  if (ctx.failed) return std::nullopt;
  return spec;
}

std::optional<CampaignSpec> load_spec(const std::string& path,
                                      VerifyReport* report) {
  std::ifstream f(path);
  if (!f.good()) {
    Diagnostic d;
    d.code = Code::SpecParse;
    d.severity = Severity::Error;
    d.message = "cannot read campaign spec " + path;
    report->add(d);
    return std::nullopt;
  }
  std::ostringstream text;
  text << f.rdbuf();
  return parse_spec(text.str(), report);
}

std::string spec_json(const CampaignSpec& spec) {
  util::json::Writer w;
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("defects").begin_array();
  for (const defect::Defect& d : spec.defects) w.value(defect_token(d));
  w.end_array();
  w.key("points").begin_array();
  for (const StressPoint& p : spec.points) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("vdd").value(p.condition.vdd);
    w.key("temp_c").value(p.condition.temp_c);
    w.key("tcyc").value(p.condition.tcyc);
    w.key("duty").value(p.condition.duty);
    w.end_object();
  }
  w.end_array();
  w.key("analyses").begin_array();
  for (const UnitKind k : spec.analyses) w.value(to_string(k));
  w.end_array();
  w.key("planes").begin_object();
  w.key("r_points").value(spec.plane_r_points);
  w.key("ops_per_point").value(spec.plane_ops_per_point);
  w.end_object();
  w.key("settings").begin_object();
  w.key("adaptive").value(spec.settings.adaptive);
  w.key("lte_tol").value(spec.settings.lte_tol);
  w.key("dt").value(spec.settings.dt);
  w.key("reuse_jacobian").value(spec.settings.reuse_jacobian);
  w.end_object();
  w.key("surrogate").begin_object();
  w.key("enabled").value(spec.surrogate_enabled);
  w.key("tol").value(spec.surrogate_tol);
  w.end_object();
  w.key("retry").begin_object();
  w.key("max_attempts").value(spec.retry.max_attempts);
  w.key("timeout_s").value(spec.retry.timeout_s);
  w.key("damping_backoff").value(spec.retry.damping_backoff);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace dramstress::campaign
