// Declarative campaign specification (JSON).
//
// A campaign is the production shape of the paper's method: a matrix of
// {defect, stress point, analysis kind} expanded into independent work
// units (plan.hpp) and executed fault-tolerantly with an on-disk result
// cache (runner.hpp).  The spec is plain JSON parsed with util/json and
// validated through the verify diagnostics engine: every schema violation
// becomes a line-numbered E3xx diagnostic (docs/LINT.md) instead of a
// crash, so malformed or truncated specs fail with an actionable message.
//
// Schema (docs/CAMPAIGN.md):
//   {
//     "name": "table1-small",
//     "defects": ["o3", "sg/comp"],
//     "points": [{"name": "nominal"},
//                {"name": "fast", "tcyc": 55e-9, "vdd": 2.1}],
//     "analyses": ["border", "planes", "optimize"],
//     "planes": {"r_points": 7, "ops_per_point": 3},
//     "settings": {"adaptive": true, "lte_tol": 5e-4},
//     "surrogate": {"enabled": true, "tol": 0.02},
//     "retry": {"max_attempts": 3, "timeout_s": 0, "damping_backoff": 0.5}
//   }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/surrogate_options.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"
#include "stress/stress.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::campaign {

/// Analysis kinds a campaign can request per (defect, point) cell.
enum class UnitKind { Border, Planes, Optimize };

const char* to_string(UnitKind kind);

/// One named operating corner of the campaign matrix.
struct StressPoint {
  std::string name;  // unique within the spec; part of every cache key
  stress::StressCondition condition;
};

/// Fault-tolerance policy of the runner (docs/CAMPAIGN.md).
struct RetryPolicy {
  /// Total attempts per unit (first try included).  On a retry the Newton
  /// damping is perturbed: max_step shrinks by damping_backoff per attempt
  /// and the iteration budget doubles, so marginally non-convergent units
  /// get progressively more conservative solves.
  int max_attempts = 3;
  /// Soft per-attempt wall-clock budget in seconds; an attempt that takes
  /// longer counts as a failure (0 = unlimited).  Cooperative: the attempt
  /// runs to completion, but its result is discarded and retried, so a
  /// truncated/aborted simulation never enters the cache.
  double timeout_s = 0.0;
  /// Multiplier applied to NewtonOptions::max_step per extra attempt.
  double damping_backoff = 0.5;
};

struct CampaignSpec {
  std::string name;
  std::vector<defect::Defect> defects;
  std::vector<StressPoint> points;
  std::vector<UnitKind> analyses;
  int plane_r_points = 9;
  int plane_ops_per_point = 3;
  dram::SimSettings settings;
  /// Surrogate-accelerated border searches (docs/ANALYSIS.md).  The
  /// defaults follow the session's process-wide choice (--surrogate /
  /// --no-surrogate / --surrogate-tol); an explicit "surrogate" block in
  /// the spec pins them so the run directory's spec.json is
  /// self-describing.  Both values feed every border/optimize cache key.
  bool surrogate_enabled = analysis::default_surrogate_enabled();
  double surrogate_tol = analysis::default_surrogate_tol();
  RetryPolicy retry;
};

/// Parse and validate a campaign spec.  All problems are reported into
/// `report` (never thrown): JSON syntax errors as E301, schema violations
/// as E302..E304, unknown keys as W305 -- each carrying the 1-based line
/// in `text`.  Returns the spec when report->ok(), nullopt otherwise.
std::optional<CampaignSpec> parse_spec(const std::string& text,
                                       verify::VerifyReport* report);

/// Read `path` and parse_spec its contents; an unreadable file is an E301.
std::optional<CampaignSpec> load_spec(const std::string& path,
                                      verify::VerifyReport* report);

/// Serialize a spec back to schema-shaped JSON (the runner stores a copy
/// in the run directory so `campaign status|gc` are self-contained).
std::string spec_json(const CampaignSpec& spec);

}  // namespace dramstress::campaign
