#include "campaign/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace fs = std::filesystem;
namespace util = dramstress::util;
using verify::Code;
using verify::Diagnostic;
using verify::Severity;

namespace {

/// E310 with Warning severity: cache/journal corruption is recoverable
/// (the unit is recomputed), so it must not fail a strict run.
void corrupt(verify::VerifyReport* report, const std::string& message) {
  if (report == nullptr) return;
  Diagnostic d;
  d.code = Code::CacheCorrupt;
  d.severity = Severity::Warning;
  d.message = message;
  report->add(d);
}

}  // namespace

std::string CacheKey::hex() const {
  return util::format("%016llx", static_cast<unsigned long long>(hash));
}

KeyHasher& KeyHasher::feed(const std::string& fragment) {
  for (const char c : fragment) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 1099511628211ull;  // FNV prime
  }
  // Separator byte so ("ab","c") and ("a","bc") hash differently.
  hash_ ^= 0xff;
  hash_ *= 1099511628211ull;
  return *this;
}

KeyHasher& KeyHasher::feed(double value) {
  return feed(util::format("%.17g", value));
}

KeyHasher& KeyHasher::feed(long value) {
  return feed(util::format("%ld", value));
}

KeyHasher& KeyHasher::feed(bool value) {
  return feed(std::string(value ? "1" : "0"));
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  if (ec)
    throw ModelError("campaign cache: cannot create " + dir_ + ": " +
                     ec.message());
}

std::string ResultCache::object_path(const CacheKey& key) const {
  return (fs::path(dir_) / "objects" / (key.hex() + ".json")).string();
}

bool ResultCache::contains(const CacheKey& key) const {
  std::error_code ec;
  return fs::exists(object_path(key), ec);
}

std::optional<std::string> ResultCache::load(
    const CacheKey& key, verify::VerifyReport* report) const {
  const std::string path = object_path(key);
  std::ifstream f(path);
  if (!f.good()) return std::nullopt;
  std::ostringstream text;
  text << f.rdbuf();
  util::json::Value root;
  try {
    root = util::json::parse(text.str());
  } catch (const Error& e) {
    corrupt(report, "cache object " + path + " is corrupt (" + e.what() +
                        "); recomputing");
    return std::nullopt;
  }
  const util::json::Value* version =
      root.find("dramstress_cache_version");
  const util::json::Value* stored_key = root.find("key");
  const util::json::Value* payload = root.find("payload");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->number) != kCacheVersion ||
      stored_key == nullptr || !stored_key->is_string() ||
      payload == nullptr) {
    corrupt(report, "cache object " + path +
                        " has an unexpected wrapper; recomputing");
    return std::nullopt;
  }
  if (stored_key->string != key.hex()) {
    corrupt(report, "cache object " + path + " claims key " +
                        stored_key->string + "; recomputing");
    return std::nullopt;
  }
  util::json::Writer w;
  util::json::append(w, *payload);
  return w.str();
}

void ResultCache::store(const CacheKey& key,
                        const std::string& payload_json) const {
  util::json::Writer w;
  w.begin_object();
  w.key("dramstress_cache_version").value(kCacheVersion);
  w.key("key").value(key.hex());
  w.key("payload");
  util::json::append(w, util::json::parse(payload_json));
  w.end_object();

  const std::string path = object_path(key);
  const std::string tmp = path + ".tmp";
  // Fault point (docs/SERVICE.md): a `corrupt` action damages the object
  // on its way to disk while this call still reports success -- the
  // silent-bit-rot scenario the E310 load-time check exists for.
  const bool corrupt_object =
      util::fault::hit("campaign.cache.store") == util::fault::Action::Corrupt;
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f.good())
      throw ModelError("campaign cache: cannot write " + tmp);
    if (corrupt_object)
      f << w.str().substr(0, w.str().size() / 2) << "<<corrupt";
    else
      f << w.str() << '\n';
    f.flush();
    if (!f.good())
      throw ModelError("campaign cache: write to " + tmp + " failed");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw ModelError("campaign cache: cannot rename " + tmp + ": " +
                     ec.message());
}

int ResultCache::sweep(const std::map<std::string, bool>& live) const {
  int removed = 0;
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
    const std::string stem = e.path().stem().string();
    if (e.path().extension() == ".json" && live.count(stem) == 0) {
      std::error_code rm;
      fs::remove(e.path(), rm);
      if (!rm) ++removed;
    }
  }
  return removed;
}

Journal::Journal(std::string path) : path_(std::move(path)) {}

void Journal::append(const JournalEntry& entry) {
  util::json::Writer w;
  w.begin_object();
  w.key("unit").value(entry.unit_id);
  w.key("key").value(entry.key_hex);
  w.key("status").value(entry.status);
  w.key("attempts").value(entry.attempts);
  if (!entry.error.empty()) w.key("error").value(entry.error);
  w.end_object();
  // One record per line: the pretty-printed object is collapsed so a torn
  // write can only damage the final record, never a framing boundary.
  std::string line;
  line.reserve(w.str().size());
  for (const char c : w.str())
    if (c != '\n') line += c;

  // Serialize the append+flush pair: O_APPEND makes single writes atomic,
  // but the stream buffer could otherwise interleave partial lines from
  // two workers finishing at once.
  util::MutexLock lock(mu_);
  std::ofstream f(path_, std::ios::app);
  if (!f.good()) throw ModelError("campaign journal: cannot append " + path_);
  // Fault point (docs/SERVICE.md): a `tear` action reproduces a crash
  // mid-write -- half a record lands on disk (no newline), then the
  // "process" dies (Injected propagates out of the run like a kill would).
  // Replay must shrug the torn line off as an E310 warning.
  if (util::fault::hit("campaign.journal.append") ==
      util::fault::Action::Tear) {
    f << line.substr(0, line.size() / 2);
    f.flush();
    throw util::fault::Injected(
        "fault injected at campaign.journal.append (journal line torn)");
  }
  f << line << '\n';
  f.flush();
  if (!f.good())
    throw ModelError("campaign journal: write to " + path_ + " failed");
}

std::map<std::string, JournalEntry> Journal::replay(
    const std::string& path, verify::VerifyReport* report) {
  std::map<std::string, JournalEntry> entries;
  std::ifstream f(path);
  if (!f.good()) return entries;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    util::json::Value v;
    try {
      v = util::json::parse(line);
    } catch (const Error& e) {
      corrupt(report, util::format("journal %s record %d is corrupt (%s); "
                                   "the unit will be recomputed",
                                   path.c_str(), lineno, e.what()));
      continue;
    }
    const util::json::Value* unit = v.find("unit");
    const util::json::Value* key = v.find("key");
    const util::json::Value* status = v.find("status");
    if (unit == nullptr || !unit->is_string() || key == nullptr ||
        !key->is_string() || status == nullptr || !status->is_string() ||
        (status->string != "done" && status->string != "quarantined")) {
      corrupt(report,
              util::format("journal %s record %d has an unexpected shape; "
                           "the unit will be recomputed",
                           path.c_str(), lineno));
      continue;
    }
    JournalEntry entry;
    entry.unit_id = unit->string;
    entry.key_hex = key->string;
    entry.status = status->string;
    if (const util::json::Value* a = v.find("attempts");
        a != nullptr && a->is_number())
      entry.attempts = static_cast<int>(a->number);
    if (const util::json::Value* e = v.find("error");
        e != nullptr && e->is_string())
      entry.error = e->string;
    entries[entry.key_hex] = std::move(entry);
  }
  return entries;
}

}  // namespace dramstress::campaign
