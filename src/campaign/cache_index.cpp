#include "campaign/cache_index.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace fs = std::filesystem;
namespace util = dramstress::util;

namespace {

/// Fixed per-entry bookkeeping charge against the memory budget (map node,
/// LRU node, string header); exactness does not matter, boundedness does.
constexpr size_t kEntryOverhead = 128;

}  // namespace

SharedCache::SharedCache(std::string dir, SharedCacheOptions opt)
    : disk_(std::move(dir)), opt_(opt) {
  // Resume the persisted use sequence so last-use order stays meaningful
  // across daemon restarts.  Corrupt lines (a torn tail after a kill) are
  // simply skipped -- the worst case is an object aging artificially.
  std::ifstream f(usage_path());
  std::string line;
  long max_seq = 0;
  while (f.good() && std::getline(f, line)) {
    if (line.empty()) continue;
    try {
      const util::json::Value v = util::json::parse(line);
      if (const util::json::Value* s = v.find("seq");
          s != nullptr && s->is_number())
        max_seq = std::max(max_seq, static_cast<long>(s->number));
    } catch (const Error&) {
      // tolerated: see above
    }
  }
  util::MutexLock lock(mu_);
  next_seq_ = max_seq + 1;
}

SharedCache::~SharedCache() {
  try {
    flush_usage();
  } catch (...) {
    // Destructor: losing buffered last-use records only perturbs future
    // eviction order, never correctness.
  }
}

std::string SharedCache::usage_path() const {
  return (fs::path(disk_.dir()) / "usage.jsonl").string();
}

void SharedCache::record_use(uint64_t hash) {
  pending_uses_.emplace_back(CacheKey{hash}.hex(), next_seq_++);
  if (static_cast<int>(pending_uses_.size()) >= opt_.usage_flush_every)
    flush_usage_locked();
}

void SharedCache::insert_memory(uint64_t hash, const std::string& payload) {
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(hash);
  entries_[hash] = Entry{payload, lru_.begin()};
  memory_bytes_ += payload.size() + kEntryOverhead;
  while (memory_bytes_ > opt_.max_memory_bytes && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    const auto vit = entries_.find(victim);
    memory_bytes_ -= vit->second.payload.size() + kEntryOverhead;
    entries_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("service.cache.evict");
  }
}

std::optional<std::string> SharedCache::lookup(const CacheKey& key,
                                               verify::VerifyReport* report) {
  {
    util::MutexLock lock(mu_);
    const auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      record_use(key.hash);
      ++stats_.mem_hits;
      obs::count("service.cache.hit_mem");
      return it->second.payload;
    }
  }
  // Disk load outside the lock: an object read must not stall concurrent
  // memory hits.  Two threads racing the same cold key both read the
  // object -- duplicated work, identical bytes, no harm.
  std::optional<std::string> payload = disk_.load(key, report);
  util::MutexLock lock(mu_);
  if (!payload.has_value()) {
    ++stats_.misses;
    obs::count("service.cache.miss");
    return std::nullopt;
  }
  insert_memory(key.hash, *payload);
  record_use(key.hash);
  ++stats_.disk_hits;
  obs::count("service.cache.hit_disk");
  return payload;
}

void SharedCache::store(const CacheKey& key,
                        const std::string& payload_json) {
  disk_.store(key, payload_json);
  util::MutexLock lock(mu_);
  insert_memory(key.hash, payload_json);
  record_use(key.hash);
  ++stats_.stores;
  obs::count("service.cache.store");
}

bool SharedCache::in_memory(const CacheKey& key) const {
  util::MutexLock lock(mu_);
  return entries_.count(key.hash) != 0;
}

SharedCacheStats SharedCache::stats() const {
  util::MutexLock lock(mu_);
  SharedCacheStats s = stats_;
  s.memory_bytes = memory_bytes_;
  s.memory_entries = entries_.size();
  return s;
}

void SharedCache::flush_usage_locked() {
  if (pending_uses_.empty()) return;
  std::ofstream f(usage_path(), std::ios::app);
  if (!f.good())
    throw ModelError("shared cache: cannot append " + usage_path());
  for (const auto& [hex, seq] : pending_uses_)
    f << "{\"key\": \"" << hex << "\", \"seq\": " << seq << "}\n";
  f.flush();
  if (!f.good())
    throw ModelError("shared cache: write to " + usage_path() + " failed");
  pending_uses_.clear();
}

void SharedCache::flush_usage() {
  util::MutexLock lock(mu_);
  flush_usage_locked();
}

int SharedCache::gc_lru(size_t max_disk_bytes,
                        verify::VerifyReport* report) {
  flush_usage();

  // Last-use sequence per key from the usage journal (later records win).
  std::map<std::string, long> last_use;
  {
    std::ifstream f(usage_path());
    std::string line;
    while (f.good() && std::getline(f, line)) {
      if (line.empty()) continue;
      try {
        const util::json::Value v = util::json::parse(line);
        const util::json::Value* k = v.find("key");
        const util::json::Value* s = v.find("seq");
        if (k != nullptr && k->is_string() && s != nullptr && s->is_number())
          last_use[k->string] =
              std::max(last_use[k->string], static_cast<long>(s->number));
      } catch (const Error&) {
        // a torn tail line is expected after a kill; skip it
      }
    }
  }

  // Inventory the objects directory: (last-use seq, key, bytes) --
  // never-used objects sort oldest, ties break on the key so the policy
  // is deterministic.
  struct Object {
    long seq = 0;
    std::string stem;
    fs::path path;
    size_t bytes = 0;
  };
  std::vector<Object> objects;
  size_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(fs::path(disk_.dir()) / "objects", ec)) {
    if (e.path().extension() != ".json") continue;
    Object o;
    o.stem = e.path().stem().string();
    o.path = e.path();
    std::error_code sz;
    o.bytes = static_cast<size_t>(fs::file_size(e.path(), sz));
    if (sz) o.bytes = 0;
    const auto it = last_use.find(o.stem);
    o.seq = it == last_use.end() ? 0 : it->second;
    total += o.bytes;
    objects.push_back(std::move(o));
  }
  std::sort(objects.begin(), objects.end(),
            [](const Object& a, const Object& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.stem < b.stem;
            });

  int removed = 0;
  std::map<std::string, bool> survivors;
  for (const Object& o : objects) survivors[o.stem] = true;
  for (const Object& o : objects) {
    if (total <= max_disk_bytes) break;
    std::error_code rm;
    fs::remove(o.path, rm);
    if (rm) {
      if (report != nullptr) {
        verify::Diagnostic d;
        d.code = verify::Code::CacheCorrupt;
        d.severity = verify::Severity::Warning;
        d.message = "gc: cannot remove " + o.path.string() + ": " +
                    rm.message();
        report->add(d);
      }
      continue;
    }
    total -= o.bytes;
    survivors.erase(o.stem);
    ++removed;
    obs::count("service.cache.gc_removed");
  }

  // Compact the usage journal to the survivors (one line each), so it
  // does not grow without bound across gc cycles.
  {
    const std::string tmp = usage_path() + ".tmp";
    std::ofstream f(tmp, std::ios::trunc);
    if (f.good()) {
      for (const auto& [stem, alive] : survivors) {
        (void)alive;
        const auto it = last_use.find(stem);
        if (it != last_use.end())
          f << "{\"key\": \"" << stem << "\", \"seq\": " << it->second
            << "}\n";
      }
      f.flush();
    }
    if (f.good()) {
      std::error_code mv;
      fs::rename(tmp, usage_path(), mv);
    }
  }
  return removed;
}

}  // namespace dramstress::campaign
