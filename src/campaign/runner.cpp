#include "campaign/runner.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "campaign/cache.hpp"
#include "dram/column.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/version.hpp"
#include "stress/optimizer.hpp"
#include "util/annotations.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace fs = std::filesystem;
namespace util = dramstress::util;

const char* to_string(UnitStatus status) {
  switch (status) {
    case UnitStatus::Done: return "done";
    case UnitStatus::Cached: return "cached";
    case UnitStatus::Quarantined: return "quarantined";
    case UnitStatus::Skipped: return "skipped";
  }
  return "?";
}

namespace {

std::string defect_label(const defect::Defect& d) {
  std::string s = defect::to_string(d.kind);
  if (d.side == dram::Side::Comp) s += ".comp";
  return s;
}

/// Compute one unit from scratch on a fresh column.  Returns the JSON
/// payload: {"transients": N, "result": {...analysis output...}} -- the
/// full-transient count is part of the cached record so a later resume
/// reports the same cost accounting as the run that computed it.  Throws
/// (ConvergenceError and friends) on failure -- the retry loop around
/// this is the fault-tolerance layer.
std::string compute_unit(const CampaignPlan& plan, const WorkUnit& u,
                         const dram::TechnologyParams& tech,
                         const dram::SimSettings& settings) {
  const defect::Defect& d = plan.defect_of(u);
  const StressPoint& p = plan.point_of(u);
  const defect::SweepRange range = defect::default_sweep_range(d.kind);
  dram::DramColumn column(tech);
  dram::ColumnSimulator sim(column, p.condition, settings);
  const long t0 = dram::thread_transients();
  util::json::Writer inner;
  switch (u.kind) {
    case UnitKind::Border: {
      analysis::BorderOptions bo;
      bo.surrogate.enabled = plan.spec.surrogate_enabled;
      bo.surrogate.tol = plan.spec.surrogate_tol;
      const analysis::BorderResult r =
          analysis::analyze_defect(column, d, sim, bo);
      analysis::append_json(inner, r, range);
      break;
    }
    case UnitKind::Planes: {
      analysis::PlaneOptions po;
      po.num_r_points = plan.spec.plane_r_points;
      po.ops_per_point = plan.spec.plane_ops_per_point;
      po.r_lo = range.lo;
      po.r_hi = range.hi;
      // The campaign already parallelizes over units; a nested plane
      // sweep would oversubscribe the machine.
      po.threads = 1;
      const analysis::PlaneSet s =
          analysis::generate_plane_set(column, d, sim, po);
      analysis::append_json(inner, s);
      break;
    }
    case UnitKind::Optimize: {
      stress::OptimizerOptions oo;
      oo.settings = settings;
      oo.border.surrogate.enabled = plan.spec.surrogate_enabled;
      oo.border.surrogate.tol = plan.spec.surrogate_tol;
      const stress::OptimizationResult r =
          stress::optimize_stresses(column, d, p.condition, oo);
      stress::append_json(inner, r, range);
      break;
    }
  }
  // Units run one-per-thread, so the thread-local counter delta is the
  // unit's exact cost even when the runner is parallel.
  util::json::Writer w;
  w.begin_object();
  w.key("transients").value(dram::thread_transients() - t0);
  w.key("result");
  util::json::append(w, util::json::parse(inner.str()));
  w.end_object();
  return w.str();
}

/// The analysis object inside a unit payload (payloads wrap it with the
/// transient count; tolerate the bare pre-wrapper shape too).
const util::json::Value* payload_result(const util::json::Value& v) {
  const util::json::Value* r = v.find("result");
  return r != nullptr ? r : &v;
}

/// Does a border payload show a detectable fault anywhere in the range?
/// (br present, or the test fails across the whole sweep.)
bool border_shows_fault(const std::string& payload) {
  const util::json::Value v = util::json::parse(payload);
  const util::json::Value* res = payload_result(v);
  const util::json::Value* br = res->find("br");
  const util::json::Value* fe = res->find("fails_everywhere");
  return (br != nullptr && br->is_number()) ||
         (fe != nullptr && fe->is_bool() && fe->boolean);
}

void write_text_file(const fs::path& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good())
    throw ModelError("campaign: cannot write " + path.string());
  f << text << '\n';
  f.flush();
  if (!f.good())
    throw ModelError("campaign: write to " + path.string() + " failed");
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignPlan plan,
                               const dram::TechnologyParams& tech,
                               std::string run_dir, std::string cache_dir,
                               RunnerOptions opt)
    : plan_(std::move(plan)),
      tech_(tech),
      run_dir_(std::move(run_dir)),
      cache_dir_(std::move(cache_dir)),
      opt_(std::move(opt)) {}

CampaignResult CampaignRunner::run() {
  OBS_SPAN("campaign.run");
  std::error_code ec;
  fs::create_directories(run_dir_, ec);
  if (ec)
    throw ModelError("campaign: cannot create " + run_dir_ + ": " +
                     ec.message());
  const std::string journal_path =
      (fs::path(run_dir_) / "journal.jsonl").string();

  CampaignResult result;
  std::map<std::string, JournalEntry> replayed;
  if (fs::exists(journal_path)) {
    if (!opt_.resume)
      throw ModelError(
          "campaign: " + run_dir_ +
          " already holds a journal; pass --resume to continue the "
          "interrupted run or pick a fresh --out directory");
    replayed = Journal::replay(journal_path, &result.diagnostics);
  }
  // Persist the spec next to the journal so `campaign status` (and a
  // human) can see what the run directory belongs to.
  write_text_file(fs::path(run_dir_) / "spec.json", spec_json(plan_.spec));

  ResultCache cache(cache_dir_);
  Journal journal(journal_path);

  const size_t n = plan_.units.size();
  result.outcomes.assign(n, UnitOutcome{});
  std::vector<char> resolved(n, 0);
  // Guards everything the workers mutate together: the result counters
  // and diagnostics, the outcome slots, and the computed-unit count.
  // (Journal::append is internally locked too; taking it under `mu` keeps
  // the journal order consistent with the counter updates.)
  util::Mutex mu;
  int computed = 0;   // units computed (not cached) this run

  const auto run_unit = [&](const WorkUnit& u) {
    OBS_SPAN("campaign.unit");
    UnitOutcome out;

    // 1. Dependency gate: a failed or skipped dependency poisons the
    //    unit; a border that proves there is no fault makes an optimize
    //    unit futile (optimize_stresses would throw by construction).
    for (const size_t dep : u.deps) {
      const UnitOutcome& d = result.outcomes[dep];
      if (d.status == UnitStatus::Quarantined ||
          d.status == UnitStatus::Skipped) {
        out.status = UnitStatus::Skipped;
        out.error = util::format("dependency %s was %s",
                                 plan_.units[dep].id.c_str(),
                                 d.status == UnitStatus::Quarantined
                                     ? "quarantined"
                                     : "skipped");
      }
    }
    if (out.status != UnitStatus::Skipped && u.kind == UnitKind::Optimize &&
        !u.deps.empty()) {
      const UnitOutcome& b = result.outcomes[u.deps.front()];
      if (!border_shows_fault(b.payload)) {
        out.status = UnitStatus::Skipped;
        out.error =
            "no detectable fault at this corner (border analysis found "
            "none), optimization is futile";
      }
    }
    if (out.status == UnitStatus::Skipped) {
      obs::count("campaign.unit_skipped");
      util::MutexLock lock(mu);
      ++result.skipped;
      result.outcomes[u.index] = std::move(out);
      return;
    }

    // 2. A quarantine verdict replayed from the journal is restored
    //    without re-burning the retry budget.
    const std::string key_hex = u.key.hex();
    const auto rep = replayed.find(key_hex);
    if (rep != replayed.end() && rep->second.status == "quarantined") {
      out.status = UnitStatus::Quarantined;
      out.attempts = rep->second.attempts;
      out.error = rep->second.error;
      util::MutexLock lock(mu);
      ++result.quarantined;
      result.outcomes[u.index] = std::move(out);
      return;
    }

    // 3. Content-addressed cache: a hit short-circuits the computation.
    {
      verify::VerifyReport local;
      std::optional<std::string> hit = cache.load(u.key, &local);
      if (hit.has_value()) {
        out.status = UnitStatus::Cached;
        out.payload = std::move(*hit);
        obs::count("campaign.unit_cached");
        util::MutexLock lock(mu);
        result.diagnostics.merge(local);
        ++result.cached;
        // Keep the journal a complete completion record without growing
        // it on every resume: append only if the key is new to it.
        if (rep == replayed.end())
          journal.append({u.id, key_hex, "done", 0, ""});
        result.outcomes[u.index] = std::move(out);
        return;
      }
      if (!local.diagnostics().empty()) {
        util::MutexLock lock(mu);
        result.diagnostics.merge(local);
      }
    }

    // 4. Compute, with bounded retries.  Each retry perturbs the Newton
    //    damping and relaxes the iteration budget -- a continuation
    //    strategy for operating points near non-convergence.
    dram::SimSettings settings = plan_.spec.settings;
    const RetryPolicy& retry = plan_.spec.retry;
    const auto start = std::chrono::steady_clock::now();
    std::string err;
    bool succeeded = false;  // UnitStatus::Done is the enum default, so the
                             // post-loop branch must not key off out.status
    for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      if (attempt > 1) {
        settings.newton.max_step *= retry.damping_backoff;
        settings.newton.max_iter += settings.newton.max_iter / 2;
        obs::count("campaign.unit_retried");
        util::MutexLock lock(mu);
        ++result.retried;
      }
      out.attempts = attempt;
      try {
        if (opt_.fault_injector) opt_.fault_injector(u, attempt);
        out.payload = compute_unit(plan_, u, tech_, settings);
        succeeded = true;
        break;
      } catch (const std::exception& e) {
        err = e.what();
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (retry.timeout_s > 0 && elapsed > retry.timeout_s) {
        err = util::format(
            "exceeded the per-unit timeout of %g s after attempt %d (last "
            "error: %s)",
            retry.timeout_s, attempt, err.c_str());
        break;
      }
    }

    util::MutexLock lock(mu);
    if (succeeded) {
      out.status = UnitStatus::Done;
      cache.store(u.key, out.payload);
      journal.append({u.id, key_hex, "done", out.attempts, ""});
      obs::count("campaign.unit_done");
      ++result.done;
    } else {
      out.status = UnitStatus::Quarantined;
      out.error = err;
      journal.append({u.id, key_hex, "quarantined", out.attempts, err});
      obs::count("campaign.unit_quarantined");
      ++result.quarantined;
    }
    result.outcomes[u.index] = std::move(out);
    ++computed;
    if (opt_.stop_after_units > 0 && computed >= opt_.stop_after_units)
      throw CampaignInterrupted(util::format(
          "campaign interrupted after %d computed units (test hook)",
          computed));
  };

  // Wave-based DAG execution: each wave runs every unit whose
  // dependencies are resolved; completing a wave unblocks the next.
  while (true) {
    std::vector<size_t> ready;
    for (size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      bool deps_ok = true;
      for (const size_t dep : plan_.units[i].deps)
        deps_ok = deps_ok && resolved[dep] != 0;
      if (deps_ok) ready.push_back(i);
    }
    if (ready.empty()) break;
    util::parallel_for(
        ready.size(), [&](size_t ri) { run_unit(plan_.units[ready[ri]]); },
        {.threads = opt_.threads});
    for (const size_t i : ready) resolved[i] = 1;
  }

  // 5. Reports.  report.json holds only inputs-determined content so a
  //    resumed or differently-threaded run reproduces it byte for byte.
  {
    util::json::Writer w;
    w.begin_object();
    w.key("campaign").value(plan_.spec.name);
    w.key("surrogate").begin_object();
    w.key("enabled").value(plan_.spec.surrogate_enabled);
    w.key("tol").value(plan_.spec.surrogate_tol);
    w.end_object();
    long transients_total = 0;
    w.key("units");
    w.begin_array();
    for (const WorkUnit& u : plan_.units) {
      const UnitOutcome& out = result.outcomes[u.index];
      w.begin_object();
      w.key("id").value(u.id);
      w.key("key").value(u.key.hex());
      w.key("kind").value(to_string(u.kind));
      w.key("defect").value(defect_label(plan_.defect_of(u)));
      w.key("point").value(plan_.point_of(u).name);
      w.key("status").value(out.status == UnitStatus::Cached
                                ? "done"
                                : to_string(out.status));
      if (!out.payload.empty()) {
        const util::json::Value v = util::json::parse(out.payload);
        if (const util::json::Value* t = v.find("transients");
            t != nullptr && t->is_number()) {
          const long n = static_cast<long>(t->number);
          w.key("transients").value(n);
          transients_total += n;
        }
        w.key("result");
        util::json::append(w, *payload_result(v));
      }
      if (!out.error.empty()) w.key("error").value(out.error);
      w.end_object();
    }
    w.end_array();
    // Cost accounting across the whole matrix: cached units contribute
    // the count recorded when they were computed, so the total is stable
    // across resumes.
    w.key("transients_total").value(transients_total);
    w.end_object();
    result.report_path = (fs::path(run_dir_) / "report.json").string();
    write_text_file(result.report_path, w.str());
  }
  {
    util::json::Writer w;
    w.begin_object();
    w.key("campaign").value(plan_.spec.name);
    w.key("failures");
    w.begin_array();
    for (const WorkUnit& u : plan_.units) {
      const UnitOutcome& out = result.outcomes[u.index];
      if (out.status != UnitStatus::Quarantined) continue;
      w.begin_object();
      w.key("id").value(u.id);
      w.key("key").value(u.key.hex());
      w.key("attempts").value(out.attempts);
      w.key("error").value(out.error);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    result.failure_report_path =
        (fs::path(run_dir_) / "failures.json").string();
    write_text_file(result.failure_report_path, w.str());
  }
  return result;
}

}  // namespace dramstress::campaign
