#include "campaign/runner.hpp"

#include <filesystem>

#include "campaign/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/annotations.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace fs = std::filesystem;
namespace util = dramstress::util;

CampaignRunner::CampaignRunner(CampaignPlan plan,
                               const dram::TechnologyParams& tech,
                               std::string run_dir, std::string cache_dir,
                               RunnerOptions opt)
    : plan_(std::move(plan)),
      tech_(tech),
      run_dir_(std::move(run_dir)),
      cache_dir_(std::move(cache_dir)),
      opt_(std::move(opt)) {}

CampaignResult CampaignRunner::run() {
  OBS_SPAN("campaign.run");
  std::error_code ec;
  fs::create_directories(run_dir_, ec);
  if (ec)
    throw ModelError("campaign: cannot create " + run_dir_ + ": " +
                     ec.message());
  const std::string journal_path =
      (fs::path(run_dir_) / "journal.jsonl").string();

  CampaignResult result;
  std::map<std::string, JournalEntry> replayed;
  if (fs::exists(journal_path)) {
    if (!opt_.resume)
      throw ModelError(
          "campaign: " + run_dir_ +
          " already holds a journal; pass --resume to continue the "
          "interrupted run or pick a fresh --out directory");
    replayed = Journal::replay(journal_path, &result.diagnostics);
  }
  // Persist the spec next to the journal so `campaign status` (and a
  // human) can see what the run directory belongs to.
  write_text_file((fs::path(run_dir_) / "spec.json").string(),
                  spec_json(plan_.spec));

  ResultCache cache(cache_dir_);
  Journal journal(journal_path);

  const size_t n = plan_.units.size();
  result.outcomes.assign(n, UnitOutcome{});
  std::vector<char> resolved(n, 0);
  // Guards everything the workers mutate together: the result counters
  // and diagnostics, the outcome slots, and the computed-unit count.
  // (Journal::append is internally locked too; taking it under `mu` keeps
  // the journal order consistent with the counter updates.)
  util::Mutex mu;
  int computed = 0;   // units computed (not cached) this run

  const auto run_unit = [&](const WorkUnit& u) {
    OBS_SPAN("campaign.unit");
    UnitOutcome out;

    // 1. Dependency gate: a failed or skipped dependency poisons the
    //    unit; a border that proves there is no fault makes an optimize
    //    unit futile (optimize_stresses would throw by construction).
    for (const size_t dep : u.deps) {
      const UnitOutcome& d = result.outcomes[dep];
      if (d.status == UnitStatus::Quarantined ||
          d.status == UnitStatus::Skipped) {
        out.status = UnitStatus::Skipped;
        out.error = util::format("dependency %s was %s",
                                 plan_.units[dep].id.c_str(),
                                 d.status == UnitStatus::Quarantined
                                     ? "quarantined"
                                     : "skipped");
      }
    }
    if (out.status != UnitStatus::Skipped && u.kind == UnitKind::Optimize &&
        !u.deps.empty()) {
      const UnitOutcome& b = result.outcomes[u.deps.front()];
      if (!border_shows_fault(b.payload)) {
        out.status = UnitStatus::Skipped;
        out.error =
            "no detectable fault at this corner (border analysis found "
            "none), optimization is futile";
      }
    }
    if (out.status == UnitStatus::Skipped) {
      obs::count("campaign.unit_skipped");
      util::MutexLock lock(mu);
      ++result.skipped;
      result.outcomes[u.index] = std::move(out);
      return;
    }

    // 2. A quarantine verdict replayed from the journal is restored
    //    without re-burning the retry budget.
    const std::string key_hex = u.key.hex();
    const auto rep = replayed.find(key_hex);
    if (rep != replayed.end() && rep->second.status == "quarantined") {
      out.status = UnitStatus::Quarantined;
      out.attempts = rep->second.attempts;
      out.error = rep->second.error;
      util::MutexLock lock(mu);
      ++result.quarantined;
      result.outcomes[u.index] = std::move(out);
      return;
    }

    // 3. Content-addressed cache: a hit short-circuits the computation.
    {
      verify::VerifyReport local;
      std::optional<std::string> hit = cache.load(u.key, &local);
      if (hit.has_value()) {
        out.status = UnitStatus::Cached;
        out.payload = std::move(*hit);
        obs::count("campaign.unit_cached");
        util::MutexLock lock(mu);
        result.diagnostics.merge(local);
        ++result.cached;
        // Keep the journal a complete completion record without growing
        // it on every resume: append only if the key is new to it.
        if (rep == replayed.end())
          journal.append({u.id, key_hex, "done", 0, ""});
        result.outcomes[u.index] = std::move(out);
        return;
      }
      if (!local.diagnostics().empty()) {
        util::MutexLock lock(mu);
        result.diagnostics.merge(local);
      }
    }

    // 4. Compute, with bounded retries (unit_exec.hpp: the retry /
    //    continuation loop is shared with the service scheduler).
    out = compute_with_retries(plan_, u, tech_, opt_.fault_injector);

    util::MutexLock lock(mu);
    result.retried += out.attempts - 1;
    if (out.status == UnitStatus::Done) {
      cache.store(u.key, out.payload);
      journal.append({u.id, key_hex, "done", out.attempts, ""});
      obs::count("campaign.unit_done");
      ++result.done;
    } else {
      journal.append(
          {u.id, key_hex, "quarantined", out.attempts, out.error});
      obs::count("campaign.unit_quarantined");
      ++result.quarantined;
    }
    result.outcomes[u.index] = std::move(out);
    ++computed;
    if (opt_.stop_after_units > 0 && computed >= opt_.stop_after_units)
      throw CampaignInterrupted(util::format(
          "campaign interrupted after %d computed units (test hook)",
          computed));
  };

  // Wave-based DAG execution: each wave runs every unit whose
  // dependencies are resolved; completing a wave unblocks the next.
  while (true) {
    std::vector<size_t> ready;
    for (size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      bool deps_ok = true;
      for (const size_t dep : plan_.units[i].deps)
        deps_ok = deps_ok && resolved[dep] != 0;
      if (deps_ok) ready.push_back(i);
    }
    if (ready.empty()) break;
    util::parallel_for(
        ready.size(), [&](size_t ri) { run_unit(plan_.units[ready[ri]]); },
        {.threads = opt_.threads});
    for (const size_t i : ready) resolved[i] = 1;
  }

  // 5. Reports (unit_exec.hpp: serialization shared with the service
  //    scheduler).  report.json holds only inputs-determined content so a
  //    resumed or differently-threaded run reproduces it byte for byte.
  result.report_path = (fs::path(run_dir_) / "report.json").string();
  write_text_file(result.report_path, report_json(plan_, result.outcomes));
  result.failure_report_path =
      (fs::path(run_dir_) / "failures.json").string();
  write_text_file(result.failure_report_path,
                  failures_json(plan_, result.outcomes));
  return result;
}

}  // namespace dramstress::campaign
