#include "campaign/plan.hpp"

#include <algorithm>

#include "analysis/border.hpp"
#include "obs/version.hpp"
#include "stress/optimizer.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace util = dramstress::util;

std::string netlist_signature(const dram::DramColumn& column) {
  const circuit::Netlist& net = column.netlist();
  std::string sig = util::format("nodes=%d;", net.num_nodes());
  for (const auto& dev : net.devices()) {
    sig += dev->name();
    sig += ':';
    sig += circuit::to_string(dev->kind());
    for (const circuit::NodeId n : dev->terminals()) {
      sig += ',';
      sig += n == circuit::kGround ? "0" : net.node_name(n);
    }
    sig += ';';
  }
  return sig;
}

namespace {

void feed_settings(KeyHasher& h, const dram::SimSettings& s) {
  h.feed(s.dt)
      .feed(static_cast<long>(s.integrator))
      .feed(static_cast<long>(s.record_stride))
      .feed(static_cast<long>(s.del_steps))
      .feed(s.adaptive)
      .feed(s.lte_tol)
      .feed(s.dt_min)
      .feed(s.dt_max)
      .feed(s.reuse_jacobian)
      .feed(static_cast<long>(s.backend));
  h.feed(s.newton.v_tol)
      .feed(s.newton.res_tol)
      .feed(static_cast<long>(s.newton.max_iter))
      .feed(s.newton.max_step)
      .feed(s.newton.gmin)
      .feed(s.newton.reuse_jacobian);
  h.feed(s.timing.ramp)
      .feed(s.timing.sense_delay)
      .feed(s.timing.write_delay)
      .feed(s.timing.csl_delay)
      .feed(static_cast<long>(s.timing.idle_cycles));
}

CacheKey unit_key(const CampaignSpec& spec, const std::string& netsig,
                  UnitKind kind, const defect::Defect& d,
                  const stress::StressCondition& sc) {
  KeyHasher h;
  h.feed(std::string("engine=") + obs::git_describe());
  h.feed(static_cast<long>(kCacheVersion));
  h.feed(netsig);
  h.feed(std::string(to_string(kind)));
  h.feed(std::string(defect::to_string(d.kind)));
  h.feed(d.side == dram::Side::Comp);
  h.feed(sc.vdd).feed(sc.temp_c).feed(sc.tcyc).feed(sc.duty);
  feed_settings(h, spec.settings);
  const defect::SweepRange range = defect::default_sweep_range(d.kind);
  h.feed(range.lo).feed(range.hi);
  if (kind == UnitKind::Planes) {
    h.feed(static_cast<long>(spec.plane_r_points))
        .feed(static_cast<long>(spec.plane_ops_per_point));
  } else {
    // Border extraction options (defaults; campaign uses BorderOptions{}
    // with only the spec's surrogate block applied on top).
    const analysis::BorderOptions b;
    h.feed(static_cast<long>(b.scan_points))
        .feed(b.log_tol)
        .feed(static_cast<long>(b.refine_iterations))
        .feed(static_cast<long>(b.detection.max_charge_ops))
        .feed(b.detection.saturation_epsilon)
        .feed(b.detection.include_coupling);
    for (const double t : b.detection.retention_times) h.feed(t);
    // The surrogate search takes a different probe path, so its switch
    // and every knob that shapes it are result inputs.
    const analysis::SurrogateOptions so;
    h.feed(spec.surrogate_enabled)
        .feed(spec.surrogate_tol)
        .feed(static_cast<long>(so.max_probes))
        .feed(so.prune_margin_decades)
        .feed(static_cast<long>(so.vsa_knots))
        .feed(so.vsa_tol);
  }
  if (kind == UnitKind::Optimize) {
    const stress::OptimizerOptions o;
    h.feed(o.write_tol).feed(o.read_tol);
    for (const stress::StressAxis axis : o.axes)
      h.feed(static_cast<long>(axis));
  }
  return h.key();
}

}  // namespace

CampaignPlan expand(const CampaignSpec& spec,
                    const dram::DramColumn& column) {
  CampaignPlan plan;
  plan.spec = spec;
  const std::string netsig = netlist_signature(column);

  const auto requested = [&](UnitKind k) {
    return std::find(spec.analyses.begin(), spec.analyses.end(), k) !=
           spec.analyses.end();
  };
  const bool want_border =
      requested(UnitKind::Border) || requested(UnitKind::Optimize);
  const bool want_planes = requested(UnitKind::Planes);
  const bool want_optimize = requested(UnitKind::Optimize);

  for (size_t di = 0; di < spec.defects.size(); ++di) {
    const defect::Defect& d = spec.defects[di];
    for (size_t pi = 0; pi < spec.points.size(); ++pi) {
      const StressPoint& p = spec.points[pi];
      size_t border_index = 0;
      const auto add = [&](UnitKind kind,
                           std::vector<size_t> deps) -> size_t {
        WorkUnit u;
        u.index = plan.units.size();
        u.kind = kind;
        u.defect_index = di;
        u.point_index = pi;
        u.deps = std::move(deps);
        u.id = util::format("%s/%s@%s", to_string(kind),
                            defect::to_string(d.kind), p.name.c_str());
        if (d.side == dram::Side::Comp)
          u.id = util::format("%s/%s.comp@%s", to_string(kind),
                              defect::to_string(d.kind), p.name.c_str());
        u.key = unit_key(spec, netsig, kind, d, p.condition);
        plan.units.push_back(std::move(u));
        return plan.units.back().index;
      };
      if (want_border) border_index = add(UnitKind::Border, {});
      if (want_planes) add(UnitKind::Planes, {});
      if (want_optimize) add(UnitKind::Optimize, {border_index});
    }
  }
  return plan;
}

}  // namespace dramstress::campaign
