// Shared per-unit execution and report layer of the campaign subsystem.
//
// Two executors drive campaign work-unit DAGs: the single-process
// CampaignRunner (runner.hpp, `dramstress campaign run`) and the service
// Scheduler (scheduler.hpp, `dramstress serve`) which multiplexes many
// campaigns over one worker pool.  Their headline contract is shared too:
// report.json must come out byte-identical whichever executor produced it,
// at any thread/worker count, across kill-and-resume.  The way to keep
// that true is to have exactly one implementation of everything the bytes
// depend on -- the unit computation, the retry/continuation loop, the
// payload wrapper and the report serialization -- and this header is it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "dram/technology.hpp"
#include "util/json.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::campaign {

enum class UnitStatus {
  Done,         // computed this run
  Cached,       // served from the result cache
  Quarantined,  // exhausted retries / timed out; in the failure report
  Skipped,      // a dependency failed or made the unit provably futile
};

const char* to_string(UnitStatus status);

struct UnitOutcome {
  UnitStatus status = UnitStatus::Done;
  int attempts = 0;     // computation attempts this run (0 when cached)
  std::string payload;  // JSON payload (empty when quarantined/skipped)
  std::string error;    // quarantine reason / skip reason
};

/// "o3" / "sg.comp": the defect label used by reports and status output.
std::string defect_label(const defect::Defect& d);

/// Compute one unit from scratch on a fresh column.  Returns the JSON
/// payload: {"transients": N, "result": {...analysis output...}} -- the
/// full-transient count is part of the cached record so a later resume
/// reports the same cost accounting as the run that computed it.  Throws
/// (ConvergenceError and friends) on failure -- compute_with_retries is
/// the fault-tolerance layer around this.
std::string compute_unit_payload(const CampaignPlan& plan, const WorkUnit& u,
                                 const dram::TechnologyParams& tech,
                                 const dram::SimSettings& settings);

/// The analysis object inside a unit payload (payloads wrap it with the
/// transient count; tolerate the bare pre-wrapper shape too).
const util::json::Value* payload_result(const util::json::Value& v);

/// Does a border payload show a detectable fault anywhere in the range?
/// (br present, or the test fails across the whole sweep.)
bool border_shows_fault(const std::string& payload);

/// Bounded-retry computation of one unit: each retry perturbs the Newton
/// damping (max_step *= damping_backoff) and relaxes the iteration budget,
/// the classic continuation trick for a non-converging operating point.
/// On success the outcome is Done with the payload; on exhausted attempts
/// or a blown per-unit timeout it is Quarantined with the last error.
/// `fault_injector` (may be empty) runs before every attempt; a throw
/// counts as that attempt failing.  util::fault::Injected from deeper
/// layers that must abort the whole run (journal tears, kills) is NOT
/// absorbed here -- it propagates only from hooks outside the attempt
/// body, so the retry loop stays a pure computation concern.
UnitOutcome compute_with_retries(
    const CampaignPlan& plan, const WorkUnit& u,
    const dram::TechnologyParams& tech,
    const std::function<void(const WorkUnit&, int attempt)>& fault_injector);

/// Serialize report.json: inputs-determined content only (unit ids,
/// payloads, quarantine reasons -- no timestamps, no attempt counts, no
/// thread ids), every payload round-tripped through the same JSON writer
/// whether computed or cache-loaded.  Byte-identical across executors,
/// resumes and thread counts.
std::string report_json(const CampaignPlan& plan,
                        const std::vector<UnitOutcome>& outcomes);

/// Serialize failures.json (quarantined units with attempts and reasons).
std::string failures_json(const CampaignPlan& plan,
                          const std::vector<UnitOutcome>& outcomes);

/// Write `text` plus a trailing newline to `path` (truncating); throws
/// ModelError when the file cannot be written.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace dramstress::campaign
