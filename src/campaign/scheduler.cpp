#include "campaign/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <map>
#include <thread>

#include "campaign/spec.hpp"
#include "campaign/unit_exec.hpp"
#include "obs/metrics.hpp"
#include "util/annotations.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dramstress::campaign {

namespace fs = std::filesystem;
namespace util = dramstress::util;

namespace {

enum class UnitState {
  Blocked,   // dependencies unresolved (or unscheduled after an abort)
  Ready,     // in its session's ready queue
  Waiting,   // parked on another session's in-flight computation
  Running,   // owned by a worker
  Resolved,  // outcome recorded
};

/// condition_variable_any over util::Mutex; the waits release/reacquire
/// the lock in ways Clang's thread-safety analysis cannot follow, so the
/// wrappers opt out locally (callers still hold the capability).
void cv_wait(std::condition_variable_any& cv,
             util::Mutex& mu) DS_NO_THREAD_SAFETY_ANALYSIS {
  cv.wait(mu);
}

bool cv_wait_until(std::condition_variable_any& cv, util::Mutex& mu,
                   std::chrono::steady_clock::time_point deadline)
    DS_NO_THREAD_SAFETY_ANALYSIS {
  return cv.wait_until(mu, deadline) == std::cv_status::no_timeout;
}

}  // namespace

/// One submitted campaign.  Every field is guarded by the scheduler's
/// mutex (documented convention: the struct is private to this file and
/// never escapes the Impl).
struct Session {
  std::string id;
  std::string client;
  std::string run_dir;
  CampaignPlan plan;
  std::map<std::string, JournalEntry> replayed;
  std::unique_ptr<Journal> journal;
  std::vector<UnitOutcome> outcomes;
  std::vector<UnitState> state;
  std::vector<std::vector<size_t>> dependents;  // reverse dependency edges
  std::deque<size_t> ready;
  verify::VerifyReport diagnostics;
  int resolved = 0;
  int running = 0;
  int retried = 0;
  bool failed = false;    // session-level abort (journal tear, disk full)
  bool finished = false;  // terminal
  std::string error;
  std::string report_path;
  std::string failure_report_path;
};

struct Scheduler::Impl {
  dram::TechnologyParams tech;
  SharedCache* cache;
  SchedulerOptions opt;
  int workers = 0;

  mutable util::Mutex mu;
  mutable std::condition_variable_any cv_work;  // workers idle here
  mutable std::condition_variable_any cv_done;  // completion watchers
  bool stop DS_GUARDED_BY(mu) = false;
  bool accepting DS_GUARDED_BY(mu) = true;
  long dispatched DS_GUARDED_BY(mu) = 0;
  long deduplicated DS_GUARDED_BY(mu) = 0;
  std::vector<std::shared_ptr<Session>> sessions DS_GUARDED_BY(mu);
  std::vector<std::string> clients DS_GUARDED_BY(mu);  // first-seen order
  std::map<std::string, std::vector<std::shared_ptr<Session>>> by_client
      DS_GUARDED_BY(mu);
  size_t client_cursor DS_GUARDED_BY(mu) = 0;
  std::map<std::string, size_t> session_cursor DS_GUARDED_BY(mu);
  /// In-flight computations by cache key; the value is the list of
  /// (session, unit) pairs waiting for the owner's result.
  std::map<std::string, std::vector<std::pair<std::shared_ptr<Session>,
                                              size_t>>>
      inflight DS_GUARDED_BY(mu);
  std::vector<std::thread> pool;

  Impl(const dram::TechnologyParams& t, SharedCache* c, SchedulerOptions o)
      : tech(t), cache(c), opt(std::move(o)) {
    workers = opt.workers > 0 ? opt.workers : util::default_threads();
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([this] { worker_loop(); });
  }

  ~Impl() {
    {
      util::MutexLock lock(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (std::thread& t : pool) t.join();
  }

  // --- fairness ---------------------------------------------------------

  struct Pick {
    std::shared_ptr<Session> session;
    size_t unit = 0;
  };

  /// Round-robin over clients, then over a client's sessions, then the
  /// oldest ready unit of the chosen session.
  std::optional<Pick> pick_locked() DS_REQUIRES(mu) {
    for (size_t a = 0; a < clients.size(); ++a) {
      const size_t ci = (client_cursor + 1 + a) % clients.size();
      const std::string& c = clients[ci];
      std::vector<std::shared_ptr<Session>>& list = by_client[c];
      for (size_t b = 0; b < list.size(); ++b) {
        size_t& cur = session_cursor[c];
        const size_t si = (cur + 1 + b) % list.size();
        const std::shared_ptr<Session>& s = list[si];
        if (s->ready.empty()) continue;
        client_cursor = ci;
        cur = si;
        Pick p;
        p.session = s;
        p.unit = s->ready.front();
        s->ready.pop_front();
        s->state[p.unit] = UnitState::Running;
        ++s->running;
        ++dispatched;
        obs::count("scheduler.dispatch");
        return p;
      }
    }
    return std::nullopt;
  }

  void worker_loop() {
    for (;;) {
      Pick p;
      {
        util::MutexLock lock(mu);
        for (;;) {
          if (stop) return;
          std::optional<Pick> got = pick_locked();
          if (got.has_value()) {
            p = std::move(*got);
            break;
          }
          cv_wait(cv_work, mu);
        }
      }
      execute(p.session, p.unit);
    }
  }

  // --- unit resolution --------------------------------------------------

  /// Record `out` for unit `i`, unblock dependents, and detect session
  /// completion.  Returns true when the caller must finalize the session
  /// (write its reports) -- done outside the lock.
  bool resolve_locked(const std::shared_ptr<Session>& s, size_t i,
                      UnitOutcome out) DS_REQUIRES(mu) {
    s->outcomes[i] = std::move(out);
    if (s->state[i] == UnitState::Running) --s->running;
    s->state[i] = UnitState::Resolved;
    ++s->resolved;
    if (!s->failed) {
      for (const size_t d : s->dependents[i]) {
        if (s->state[d] != UnitState::Blocked) continue;
        bool deps_ok = true;
        for (const size_t dep : s->plan.units[d].deps)
          deps_ok = deps_ok && s->state[dep] == UnitState::Resolved;
        if (deps_ok) {
          s->state[d] = UnitState::Ready;
          s->ready.push_back(d);
        }
      }
      if (!s->ready.empty()) cv_work.notify_all();
    }
    if (s->resolved == static_cast<int>(s->plan.units.size()) &&
        !s->finished) {
      if (s->failed) {
        s->finished = true;
        cv_done.notify_all();
        return false;
      }
      return true;  // caller writes the reports, then marks finished
    }
    maybe_finish_failed_locked(s);
    return false;
  }

  /// A failed session is terminal once no worker still runs its units.
  void maybe_finish_failed_locked(const std::shared_ptr<Session>& s)
      DS_REQUIRES(mu) {
    if (s->failed && !s->finished && s->running == 0) {
      s->finished = true;
      cv_done.notify_all();
    }
  }

  /// Hand the owner's result to every session parked on `key`: waiters
  /// re-enter the pipeline and take the cache hit (or recompute under
  /// their own retry policy if the owner quarantined).
  void release_inflight_locked(const std::string& key) DS_REQUIRES(mu) {
    const auto it = inflight.find(key);
    if (it == inflight.end()) return;
    bool woke = false;
    for (const auto& [ws, wi] : it->second) {
      if (ws->failed || ws->finished) continue;
      if (ws->state[wi] != UnitState::Waiting) continue;
      ws->state[wi] = UnitState::Ready;
      ws->ready.push_back(wi);
      woke = true;
    }
    inflight.erase(it);
    if (woke) cv_work.notify_all();
  }

  /// Session-level abort: journal tears, disk failures -- anything the
  /// per-unit retry loop does not own.  The session stops scheduling new
  /// units; its journal prefix makes a resubmit resume cleanly.
  void abort_session_locked(const std::shared_ptr<Session>& s, size_t i,
                            const std::string& why) DS_REQUIRES(mu) {
    if (!s->failed) {
      s->failed = true;
      s->error = why;
      obs::count("scheduler.session_failed");
    }
    // Park every queued unit; unresolved units stay unresolved.
    while (!s->ready.empty()) {
      s->state[s->ready.front()] = UnitState::Blocked;
      s->ready.pop_front();
    }
    if (s->state[i] == UnitState::Running) {
      --s->running;
      s->state[i] = UnitState::Blocked;
    }
    maybe_finish_failed_locked(s);
    cv_done.notify_all();
  }

  /// All units resolved: serialize the reports (shared with the runner,
  /// so the bytes match `campaign run` exactly) and mark the session
  /// finished.
  void finalize_session(const std::shared_ptr<Session>& s) {
    const std::string report = report_json(s->plan, s->outcomes);
    const std::string failures = failures_json(s->plan, s->outcomes);
    const std::string report_path =
        (fs::path(s->run_dir) / "report.json").string();
    const std::string failures_path =
        (fs::path(s->run_dir) / "failures.json").string();
    write_text_file(report_path, report);
    write_text_file(failures_path, failures);
    util::MutexLock lock(mu);
    s->report_path = report_path;
    s->failure_report_path = failures_path;
    s->finished = true;
    obs::count("scheduler.session_finished");
    cv_done.notify_all();
  }

  // --- the per-unit pipeline (mirrors CampaignRunner::run step 1..4) ----

  void execute(const std::shared_ptr<Session>& s, size_t i) {
    const WorkUnit& u = s->plan.units[i];
    const std::string key_hex = u.key.hex();
    bool owns_inflight = false;
    try {
      UnitOutcome out;
      std::string border_payload;
      bool check_futile = false;
      bool resolved_early = false;
      bool finalize = false;
      {
        util::MutexLock lock(mu);
        if (s->failed) {  // aborted while this unit sat in the queue
          --s->running;
          s->state[i] = UnitState::Blocked;
          maybe_finish_failed_locked(s);
          return;
        }
        // 1. Dependency gate: a failed or skipped dependency poisons the
        //    unit; a border that proves there is no fault makes an
        //    optimize unit futile (checked outside the lock below, since
        //    it parses the border payload).
        for (const size_t dep : u.deps) {
          const UnitOutcome& d = s->outcomes[dep];
          if (d.status == UnitStatus::Quarantined ||
              d.status == UnitStatus::Skipped) {
            out.status = UnitStatus::Skipped;
            out.error = util::format("dependency %s was %s",
                                     s->plan.units[dep].id.c_str(),
                                     d.status == UnitStatus::Quarantined
                                         ? "quarantined"
                                         : "skipped");
          }
        }
        if (out.status != UnitStatus::Skipped &&
            u.kind == UnitKind::Optimize && !u.deps.empty()) {
          border_payload = s->outcomes[u.deps.front()].payload;
          check_futile = true;
        }
        if (out.status == UnitStatus::Skipped) {
          obs::count("scheduler.unit_skipped");
          finalize = resolve_locked(s, i, std::move(out));
          resolved_early = true;
        } else {
          // 2. A quarantine verdict replayed from the journal is restored
          //    without re-burning the retry budget.
          const auto rep = s->replayed.find(key_hex);
          if (rep != s->replayed.end() &&
              rep->second.status == "quarantined") {
            out.status = UnitStatus::Quarantined;
            out.attempts = rep->second.attempts;
            out.error = rep->second.error;
            obs::count("scheduler.unit_quarantined");
            finalize = resolve_locked(s, i, std::move(out));
            resolved_early = true;
          }
        }
      }
      if (resolved_early) {
        if (finalize) finalize_session(s);
        return;
      }
      if (check_futile && !border_shows_fault(border_payload)) {
        out.status = UnitStatus::Skipped;
        out.error =
            "no detectable fault at this corner (border analysis found "
            "none), optimization is futile";
        {
          util::MutexLock lock(mu);
          obs::count("scheduler.unit_skipped");
          finalize = resolve_locked(s, i, std::move(out));
        }
        if (finalize) finalize_session(s);
        return;
      }

      // 3. Shared cache (memory tier, then disk): a hit short-circuits
      //    the computation without touching the simulator.
      {
        verify::VerifyReport local;
        std::optional<std::string> hit = cache->lookup(u.key, &local);
        if (hit.has_value()) {
          out.status = UnitStatus::Cached;
          out.payload = std::move(*hit);
          obs::count("scheduler.unit_cached");
          bool append = false;
          {
            util::MutexLock lock(mu);
            s->diagnostics.merge(local);
            append = s->replayed.find(key_hex) == s->replayed.end();
          }
          // Keep the journal a complete completion record without
          // growing it on every resume: append only if the key is new.
          if (append)
            s->journal->append({u.id, key_hex, "done", 0, ""});
          {
            util::MutexLock lock(mu);
            finalize = resolve_locked(s, i, std::move(out));
          }
          if (finalize) finalize_session(s);
          return;
        }
        if (!local.diagnostics().empty()) {
          util::MutexLock lock(mu);
          s->diagnostics.merge(local);
        }
      }

      // 4. In-flight dedup: if another session's worker is computing
      //    this key right now, park the unit instead of simulating the
      //    same work twice; the release re-enqueues it onto the cache
      //    hit.
      {
        util::MutexLock lock(mu);
        const auto it = inflight.find(key_hex);
        if (it != inflight.end()) {
          it->second.emplace_back(s, i);
          s->state[i] = UnitState::Waiting;
          --s->running;
          ++deduplicated;
          obs::count("scheduler.unit_deduped");
          return;
        }
        inflight[key_hex];
        owns_inflight = true;
      }

      // 5. Compute, with bounded retries (campaign/unit_exec.hpp: shared
      //    with the single-process runner).
      out = compute_with_retries(s->plan, u, tech, opt.fault_injector);
      if (out.status == UnitStatus::Done) {
        cache->store(u.key, out.payload);
        obs::count("scheduler.unit_done");
      } else {
        obs::count("scheduler.unit_quarantined");
      }
      s->journal->append({u.id, key_hex,
                          out.status == UnitStatus::Done ? "done"
                                                         : "quarantined",
                          out.attempts, out.error});
      const int attempts = out.attempts;
      {
        util::MutexLock lock(mu);
        release_inflight_locked(key_hex);
        owns_inflight = false;
        s->retried += attempts - 1;
        finalize = resolve_locked(s, i, std::move(out));
      }
      if (finalize) finalize_session(s);
    } catch (const std::exception& e) {
      util::MutexLock lock(mu);
      if (owns_inflight) release_inflight_locked(key_hex);
      abort_session_locked(s, i, e.what());
    }
  }

  // --- queries ----------------------------------------------------------

  std::shared_ptr<Session> find_locked(const std::string& id) const
      DS_REQUIRES(mu) {
    for (const std::shared_ptr<Session>& s : sessions)
      if (s->id == id) return s;
    return nullptr;
  }

  SessionStatus status_locked(const std::shared_ptr<Session>& s) const
      DS_REQUIRES(mu) {
    SessionStatus st;
    st.id = s->id;
    st.client = s->client;
    st.campaign = s->plan.spec.name;
    st.run_dir = s->run_dir;
    st.error = s->error;
    st.report_path = s->report_path;
    st.failure_report_path = s->failure_report_path;
    st.total = static_cast<int>(s->plan.units.size());
    st.retried = s->retried;
    st.finished = s->finished;
    st.state = s->finished ? (s->failed ? "failed" : "finished")
                           : "running";
    for (size_t i = 0; i < s->plan.units.size(); ++i) {
      if (s->state[i] != UnitState::Resolved) {
        ++st.pending;
        continue;
      }
      switch (s->outcomes[i].status) {
        case UnitStatus::Done: ++st.done; break;
        case UnitStatus::Cached: ++st.cached; break;
        case UnitStatus::Quarantined: ++st.quarantined; break;
        case UnitStatus::Skipped: ++st.skipped; break;
      }
    }
    return st;
  }
};

Scheduler::Scheduler(const dram::TechnologyParams& tech, SharedCache* cache,
                     SchedulerOptions opt)
    : impl_(std::make_unique<Impl>(tech, cache, std::move(opt))) {}

Scheduler::~Scheduler() = default;

SessionStatus Scheduler::submit(const std::string& client,
                                CampaignPlan plan,
                                const std::string& run_dir,
                                const std::string& id) {
  // Build the session outside the lock: directory creation, journal
  // replay and the spec copy are all I/O.  A racing duplicate submit
  // builds a throwaway twin; registration below is what decides.
  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec)
    throw ModelError("campaign: cannot create " + run_dir + ": " +
                     ec.message());
  auto s = std::make_shared<Session>();
  s->id = id;
  s->client = client;
  s->run_dir = run_dir;
  s->plan = std::move(plan);
  const std::string journal_path =
      (fs::path(run_dir) / "journal.jsonl").string();
  // The daemon owns its run directories: an existing journal is always
  // resumed (the single-process runner's --resume gate exists to protect
  // *user-picked* directories from accidental reuse).
  if (fs::exists(journal_path))
    s->replayed = Journal::replay(journal_path, &s->diagnostics);
  s->journal = std::make_unique<Journal>(journal_path);
  write_text_file((fs::path(run_dir) / "spec.json").string(),
                  spec_json(s->plan.spec));
  const size_t n = s->plan.units.size();
  s->outcomes.assign(n, UnitOutcome{});
  s->state.assign(n, UnitState::Blocked);
  s->dependents.assign(n, {});
  for (const WorkUnit& u : s->plan.units)
    for (const size_t dep : u.deps) s->dependents[dep].push_back(u.index);

  util::MutexLock lock(impl_->mu);
  if (!impl_->accepting)
    throw ModelError("service is draining; no new campaigns are accepted");
  if (const std::shared_ptr<Session> existing = impl_->find_locked(id)) {
    // Idempotent resubmit.  A live or successfully finished session is
    // authoritative; a failed one is replaced by the fresh session, which
    // resumes from the journal the failed one left behind.
    if (!(existing->finished && existing->failed))
      return impl_->status_locked(existing);
    for (std::shared_ptr<Session>& slot : impl_->sessions)
      if (slot->id == id) slot = s;
    for (std::shared_ptr<Session>& slot : impl_->by_client[client])
      if (slot->id == id) slot = s;
  } else {
    impl_->sessions.push_back(s);
    if (impl_->by_client.find(client) == impl_->by_client.end())
      impl_->clients.push_back(client);
    impl_->by_client[client].push_back(s);
  }
  for (const WorkUnit& u : s->plan.units) {
    if (u.deps.empty()) {
      s->state[u.index] = UnitState::Ready;
      s->ready.push_back(u.index);
    }
  }
  obs::count("scheduler.session_submitted");
  // An empty plan is finished on arrival (expand() never produces one,
  // but the invariant "finished sessions have reports" must hold).
  if (n == 0) {
    s->finished = true;
    impl_->cv_done.notify_all();
  }
  impl_->cv_work.notify_all();
  return impl_->status_locked(s);
}

std::optional<SessionStatus> Scheduler::session(const std::string& id) const {
  util::MutexLock lock(impl_->mu);
  const std::shared_ptr<Session> s = impl_->find_locked(id);
  if (s == nullptr) return std::nullopt;
  return impl_->status_locked(s);
}

SchedulerStatus Scheduler::status() const {
  util::MutexLock lock(impl_->mu);
  SchedulerStatus st;
  st.workers = impl_->workers;
  st.accepting = impl_->accepting;
  st.dispatched = impl_->dispatched;
  st.deduplicated = impl_->deduplicated;
  st.sessions.reserve(impl_->sessions.size());
  for (const std::shared_ptr<Session>& s : impl_->sessions)
    st.sessions.push_back(impl_->status_locked(s));
  return st;
}

bool Scheduler::wait_finished(const std::string& id,
                              double timeout_s) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s > 0 ? timeout_s : 0));
  util::MutexLock lock(impl_->mu);
  for (;;) {
    const std::shared_ptr<Session> s = impl_->find_locked(id);
    if (s == nullptr) return false;
    if (s->finished) return true;
    if (timeout_s > 0) {
      if (!cv_wait_until(impl_->cv_done, impl_->mu, deadline)) {
        const std::shared_ptr<Session> again = impl_->find_locked(id);
        return again != nullptr && again->finished;
      }
    } else {
      cv_wait(impl_->cv_done, impl_->mu);
    }
  }
}

void Scheduler::drain() {
  {
    util::MutexLock lock(impl_->mu);
    impl_->accepting = false;
    for (;;) {
      bool all_done = true;
      for (const std::shared_ptr<Session>& s : impl_->sessions)
        all_done = all_done && s->finished;
      if (all_done) break;
      cv_wait(impl_->cv_done, impl_->mu);
    }
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->pool) t.join();
  impl_->pool.clear();
}

}  // namespace dramstress::campaign
