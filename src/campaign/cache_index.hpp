// Shared cross-campaign result cache: an in-memory index over the on-disk
// content-addressed store (cache.hpp).
//
// The service's contract is that a repeated work unit is answered in
// microseconds without touching the simulator.  The disk tier alone cannot
// give that -- a hit costs open+read+parse -- so SharedCache keeps hot
// payloads in a byte-budgeted memory tier:
//
//   lookup:  memory map hit -> LRU-promote, return (the microsecond path,
//            measured by bench/engine_perf as `cache_hit_us`);
//            memory miss -> disk load (E310-checked), promote into memory.
//   store:   write-through -- the disk object lands first (atomic
//            tmp+rename, so a kill mid-store never leaves a half object),
//            then the memory tier is primed.
//
// Eviction.  The memory tier evicts least-recently-used entries past its
// byte budget.  The disk tier is reclaimed two ways: the mark-and-sweep
// `campaign gc` verb (ResultCache::sweep, spec-driven liveness) is
// preserved unchanged, and gc_lru() adds the service policy -- last-use
// order is tracked in an append-only usage journal (<cache>/usage.jsonl,
// buffered on the hit path and flushed on drain), and objects are removed
// oldest-first until the tier fits the requested byte budget.
//
// Thread-safe throughout: one instance is shared by every worker and
// connection thread of the service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/cache.hpp"
#include "util/annotations.hpp"

namespace dramstress::campaign {

struct SharedCacheOptions {
  /// Byte budget of the in-memory tier (payload bytes + per-entry
  /// overhead); least-recently-used entries are evicted past it.
  size_t max_memory_bytes = 64ull << 20;
  /// Buffered last-use records are flushed to usage.jsonl every this many
  /// records (and on flush_usage/destruction), so the hit path almost
  /// never pays a file append.
  int usage_flush_every = 256;
};

struct SharedCacheStats {
  long mem_hits = 0;    // answered from the memory tier
  long disk_hits = 0;   // answered from disk, promoted into memory
  long misses = 0;      // absent from both tiers
  long stores = 0;      // write-through stores
  long evictions = 0;   // memory-tier LRU evictions
  size_t memory_bytes = 0;
  size_t memory_entries = 0;
};

class SharedCache {
public:
  explicit SharedCache(std::string dir, SharedCacheOptions opt = {});
  ~SharedCache();  // flushes buffered usage records (best-effort)

  SharedCache(const SharedCache&) = delete;
  SharedCache& operator=(const SharedCache&) = delete;

  /// Payload of `key`, or nullopt on miss in both tiers.  Disk corruption
  /// is reported into `report` (E310) and treated as a miss, exactly like
  /// the bare disk tier.
  std::optional<std::string> lookup(const CacheKey& key,
                                    verify::VerifyReport* report)
      DS_EXCLUDES(mu_);

  /// Write-through store: disk object first, then the memory tier.
  void store(const CacheKey& key, const std::string& payload_json)
      DS_EXCLUDES(mu_);

  /// True when `key` currently lives in the memory tier (tests).
  bool in_memory(const CacheKey& key) const DS_EXCLUDES(mu_);

  SharedCacheStats stats() const DS_EXCLUDES(mu_);

  /// Append the buffered last-use records to usage.jsonl.  Called on
  /// service drain; safe to call at any time.
  void flush_usage() DS_EXCLUDES(mu_);

  /// Disk-tier LRU eviction: remove objects, least recently used first
  /// (per the usage journal; objects never recorded count as oldest, tie
  /// broken by key for determinism), until the objects directory fits
  /// `max_disk_bytes`.  Compacts usage.jsonl to the survivors.  Returns
  /// the number of objects removed.
  int gc_lru(size_t max_disk_bytes, verify::VerifyReport* report)
      DS_EXCLUDES(mu_);

  /// The backing content-addressed disk tier (the `campaign gc`
  /// mark-and-sweep verb operates on this directly).
  const ResultCache& disk() const { return disk_; }

private:
  struct Entry {
    std::string payload;
    std::list<uint64_t>::iterator lru_pos;  // position in lru_
  };

  void record_use(uint64_t hash) DS_REQUIRES(mu_);
  void insert_memory(uint64_t hash, const std::string& payload)
      DS_REQUIRES(mu_);
  void flush_usage_locked() DS_REQUIRES(mu_);
  std::string usage_path() const;

  ResultCache disk_;
  SharedCacheOptions opt_;

  mutable util::Mutex mu_;
  std::map<uint64_t, Entry> entries_ DS_GUARDED_BY(mu_);
  std::list<uint64_t> lru_ DS_GUARDED_BY(mu_);  // front = most recent
  size_t memory_bytes_ DS_GUARDED_BY(mu_) = 0;
  long next_seq_ DS_GUARDED_BY(mu_) = 1;  // persisted use sequence
  /// Buffered (key hex, seq) last-use records awaiting a flush.
  std::vector<std::pair<std::string, long>> pending_uses_
      DS_GUARDED_BY(mu_);
  SharedCacheStats stats_ DS_GUARDED_BY(mu_);
};

}  // namespace dramstress::campaign
