// On-disk content-addressed result cache and append-only run journal.
//
// Every completed work unit is stored twice over:
//   * the cache maps a 64-bit FNV-1a content hash -- computed over the
//     netlist signature, the defect, the SimSettings, the stress point,
//     the unit parameters and the engine version (obs/version) -- to a
//     JSON payload under <cache>/objects/<16-hex>.json.  Any input change
//     changes the key, so stale results can never be served; unreferenced
//     objects are garbage, reclaimed by `dramstress campaign gc`.
//   * the journal (<run>/journal.jsonl) appends one line per finished
//     unit (done or quarantined).  A killed campaign leaves a valid
//     journal prefix plus at most one torn trailing line; --resume replays
//     it, restores quarantine verdicts without re-burning retries, and
//     refetches done payloads from the cache.
//
// Both readers are fault-tolerant: a corrupt object or journal record is
// reported as an E310 diagnostic (docs/LINT.md) and treated as a miss --
// the unit is recomputed, the campaign never crashes on bad bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/annotations.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress::campaign {

/// 64-bit FNV-1a over the canonical key material of one work unit.
struct CacheKey {
  uint64_t hash = 0;

  std::string hex() const;  // 16 lowercase hex digits
  bool operator==(const CacheKey& o) const { return hash == o.hash; }
};

/// Incremental FNV-1a hasher fed with the canonical key fragments.
class KeyHasher {
public:
  KeyHasher& feed(const std::string& fragment);
  KeyHasher& feed(double value);  // canonical %.17g text
  KeyHasher& feed(long value);
  KeyHasher& feed(bool value);
  CacheKey key() const { return CacheKey{hash_}; }

private:
  uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// Schema version of cache objects and journal records; part of every
/// object wrapper so a format change invalidates cleanly.  v2: unit
/// payloads wrap the analysis object as {"transients": N, "result": ...}.
inline constexpr int kCacheVersion = 2;

class ResultCache {
public:
  /// Opens (and creates) the cache directory layout under `dir`.
  explicit ResultCache(std::string dir);

  /// Payload JSON of `key`, or nullopt on miss.  A present-but-corrupt
  /// object (unparseable, wrong wrapper, key mismatch) is a miss plus an
  /// E310 warning in `report`.
  std::optional<std::string> load(const CacheKey& key,
                                  verify::VerifyReport* report) const;

  /// Store `payload_json` under `key` atomically (temp file + rename), so
  /// a kill mid-write can never leave a half object at the final path.
  void store(const CacheKey& key, const std::string& payload_json) const;

  bool contains(const CacheKey& key) const;
  std::string object_path(const CacheKey& key) const;
  const std::string& dir() const { return dir_; }

  /// Delete every object whose key is not in `live` (hex strings).
  /// Returns the number of objects removed.
  int sweep(const std::map<std::string, bool>& live) const;

private:
  std::string dir_;
};

/// One replayed journal record.
struct JournalEntry {
  std::string unit_id;
  std::string key_hex;
  std::string status;  // "done" | "quarantined"
  int attempts = 0;
  std::string error;  // quarantine reason, empty for done
};

/// Append-only journal of one campaign run directory.  Thread-safe:
/// workers of one campaign run share the instance, and the internal mutex
/// keeps records line-atomic (one record per line is what makes a torn
/// final line after SIGKILL the only possible corruption).
class Journal {
public:
  explicit Journal(std::string path);

  /// Append one record and flush it to the OS, so a SIGKILL immediately
  /// after loses at most the record being written.
  void append(const JournalEntry& entry) DS_EXCLUDES(mu_);

  /// Replay the journal into a key->entry map.  Corrupt records are
  /// skipped with an E310 warning (a torn final line is expected after a
  /// kill); a missing file replays empty.
  static std::map<std::string, JournalEntry> replay(
      const std::string& path, verify::VerifyReport* report);

  const std::string& path() const { return path_; }

private:
  mutable util::Mutex mu_;
  std::string path_;  // immutable after construction; reads need no lock
};

}  // namespace dramstress::campaign
