// Concurrency soak of the campaign service (ISSUE 10 satellite 3).
//
// Many concurrent clients hammer one scheduler / one live daemon with
// overlapping campaign specs.  Two properties must hold at any worker and
// client count:
//   * every session's report.json is byte-identical to a serial
//     single-process `campaign run` of the same spec;
//   * a spec the shared cache has already answered is served without
//     touching the simulator (the obs `sim.transients` counter does not
//     move -- the microsecond path of docs/SERVICE.md).
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/cache_index.hpp"
#include "campaign/runner.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "dram/column.hpp"
#include "dram/technology.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignPlan;
using campaign::CampaignSpec;
using campaign::Scheduler;
using campaign::SchedulerOptions;
using campaign::SessionStatus;
using campaign::SharedCache;

CampaignSpec spec_of(const std::string& text) {
  verify::VerifyReport report;
  std::optional<CampaignSpec> spec = campaign::parse_spec(text, &report);
  EXPECT_TRUE(spec.has_value()) << report.str();
  return spec.value();
}

CampaignPlan plan_of(const CampaignSpec& spec) {
  dram::DramColumn column(dram::default_technology());
  return campaign::expand(spec, column);
}

std::string fresh_dir(const std::string& hint) {
  static int counter = 0;
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("soak_" + hint + "_" + std::to_string(counter++));
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream text;
  text << f.rdbuf();
  return text.str();
}

/// A small pool of distinct specs; clients overlap on them so the shared
/// cache and the in-flight dedup actually get exercised.
std::vector<std::string> spec_pool() {
  const char* vdd[] = {"2.3", "2.4", "2.5"};
  std::vector<std::string> specs;
  for (int i = 0; i < 3; ++i) {
    std::ostringstream s;
    s << "{\n"
      << "  \"name\": \"soak" << i << "\",\n"
      << "  \"defects\": [\"o3\"],\n"
      << "  \"points\": [{\"name\": \"p\", \"vdd\": " << vdd[i]
      << ", \"temp_c\": 27.0,\n"
      << "              \"tcyc\": 60e-9, \"duty\": 0.5}]\n"
      << "}";
    specs.push_back(s.str());
  }
  return specs;
}

/// Serial single-process baseline report bytes, one per pool spec.
std::vector<std::string> baselines(const std::vector<std::string>& specs) {
  std::vector<std::string> out;
  for (const std::string& text : specs) {
    campaign::CampaignRunner runner(plan_of(spec_of(text)),
                                    dram::default_technology(),
                                    fresh_dir("baseline"),
                                    fresh_dir("baseline_cache"), {});
    out.push_back(read_file(runner.run().report_path));
  }
  return out;
}

long transients_now() {
  return obs::metrics_snapshot().counter("sim.transients");
}

TEST(ServiceSoakTest, ConcurrentClientsMatchSerialRunsByte4Byte) {
  const std::vector<std::string> specs = spec_pool();
  const std::vector<std::string> expected = baselines(specs);

  SharedCache cache(fresh_dir("cache"));
  SchedulerOptions opt;
  opt.workers = 4;
  Scheduler sched(dram::default_technology(), &cache, opt);

  // Phase 1: 6 clients x 3 overlapping specs, submitted concurrently.
  constexpr int kClients = 6;
  std::vector<std::string> ids;
  for (int c = 0; c < kClients; ++c)
    for (size_t s = 0; s < specs.size(); ++s) {
      std::string id = "c";
      id += std::to_string(c);
      id += "_s";
      id += std::to_string(s);
      ids.push_back(id);
    }
  const long transients_before = transients_now();
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t s = 0; s < specs.size(); ++s)
          sched.submit("client" + std::to_string(c),
                       plan_of(spec_of(specs[s])), fresh_dir("run"),
                       ids[static_cast<size_t>(c) * specs.size() + s]);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (const std::string& id : ids)
    ASSERT_TRUE(sched.wait_finished(id, 600.0)) << id;
  for (size_t i = 0; i < ids.size(); ++i) {
    const SessionStatus st = sched.session(ids[i]).value();
    ASSERT_EQ(st.state, "finished") << ids[i] << ": " << st.error;
    EXPECT_EQ(read_file(st.report_path), expected[i % specs.size()])
        << ids[i];
  }
  // 18 sessions, 3 distinct units: the shared cache + in-flight dedup must
  // have collapsed the work (at most one compute per distinct unit).
  const campaign::SharedCacheStats after1 = cache.stats();
  EXPECT_LE(after1.stores, static_cast<long>(specs.size()));

  // Phase 2: every spec again, fresh sessions.  All answers must come from
  // the shared cache without touching the simulator: the global transient
  // counter must not move (trivially 0 == 0 when obs is compiled out).
  const long phase1_delta = transients_now() - transients_before;
  const long before2 = transients_now();
  const long stores2 = cache.stats().stores;
  for (size_t s = 0; s < specs.size(); ++s) {
    sched.submit("revisit", plan_of(spec_of(specs[s])), fresh_dir("run"),
                 "again" + std::to_string(s));
    ASSERT_TRUE(sched.wait_finished("again" + std::to_string(s), 600.0));
    const SessionStatus st =
        sched.session("again" + std::to_string(s)).value();
    EXPECT_EQ(st.cached, st.total);
    EXPECT_EQ(st.done, 0);
    EXPECT_EQ(read_file(st.report_path), expected[s]);
  }
  EXPECT_EQ(transients_now() - before2, 0)
      << "cache hits must not reach the simulator (phase 1 burned "
      << phase1_delta << " transients)";
  EXPECT_EQ(cache.stats().stores, stores2);

  sched.drain();
}

// --- the same properties over the wire ----------------------------------

std::string submit_body(const std::string& client,
                        const std::string& spec_text) {
  return "{\"client\": \"" + client + "\", \"spec\": " + spec_text + "}";
}

service::Request post(const std::string& target, const std::string& body) {
  service::Request r;
  r.method = "POST";
  r.target = target;
  r.body = body;
  return r;
}

service::Request get(const std::string& target) {
  service::Request r;
  r.method = "GET";
  r.target = target;
  return r;
}

std::string json_field(const std::string& body, const std::string& key) {
  const util::json::Value v = util::json::parse(body);
  const util::json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << key << " missing in " << body;
  return f != nullptr ? f->string : std::string();
}

TEST(ServiceSoakTest, LiveDaemonServesConcurrentSocketClients) {
  const std::vector<std::string> specs = spec_pool();
  const std::vector<std::string> expected = baselines(specs);

  service::ServerOptions opt;
  opt.socket_path =
      (fs::path(fresh_dir("sock")) / "dramstress.sock").string();
  opt.runs_dir = fresh_dir("runs");
  opt.cache_dir = fresh_dir("cache");
  opt.workers = 2;
  opt.io_threads = 3;
  service::Server server(dram::default_technology(), opt);
  std::thread daemon([&server] { server.serve(); });

  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t s = 0; s < specs.size(); ++s) {
        const std::string name = "wire" + std::to_string(c);
        const service::Response sub = service::request(
            opt.socket_path, post("/submit", submit_body(name, specs[s])));
        ASSERT_EQ(sub.status, 202) << sub.body;
        const std::string id = json_field(sub.body, "id");
        for (int tries = 0; tries < 3000; ++tries) {
          const service::Response st =
              service::request(opt.socket_path, get("/status/" + id));
          ASSERT_EQ(st.status, 200) << st.body;
          const util::json::Value v = util::json::parse(st.body);
          const util::json::Value* fin = v.find("finished");
          if (fin != nullptr && fin->boolean) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        const service::Response rep =
            service::request(opt.socket_path, get("/report/" + id));
        ASSERT_EQ(rep.status, 200) << rep.body;
        got[static_cast<size_t>(c)].push_back(rep.body);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // /metrics answers while sessions exist, and the daemon drains cleanly.
  const service::Response metrics =
      service::request(opt.socket_path, get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("dramstress_manifest_version"),
            std::string::npos);
  const service::Response down =
      service::request(opt.socket_path, post("/shutdown", "{}"));
  EXPECT_EQ(down.status, 202);
  daemon.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[static_cast<size_t>(c)].size(), specs.size());
    for (size_t s = 0; s < specs.size(); ++s)
      EXPECT_EQ(got[static_cast<size_t>(c)][s], expected[s])
          << "client " << c << " spec " << s;
  }
}

}  // namespace
}  // namespace dramstress
