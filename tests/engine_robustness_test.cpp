// Robustness paths of the electrical engine: gmin stepping on stiff DC
// problems, local step halving on sharp transients, Newton failure
// reporting, and trace/probe bookkeeping under dt changes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "circuit/dcop.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

namespace {

MosfetParams inv_mos() {
  MosfetParams p;
  p.w = 2e-6;
  p.l = 0.25e-6;
  p.vth0 = 0.7;
  return p;
}

// Append-style concatenation: GCC 12 -O3 flags the inlined
// operator+(const char*, string&&) with a spurious -Wrestrict.
std::string seq_name(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

}  // namespace

TEST(DcOpRobust, RingOfInvertersConverges) {
  // A 3-inverter ring has no stable logic solution; the DC operating point
  // must still converge (to the metastable midpoint) thanks to gmin
  // stepping.
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add_voltage_source("Vdd", vdd, kGround, Waveform::dc(2.4));
  NodeId prev = nl.node("n2");  // feedback from the last stage
  for (int i = 0; i < 3; ++i) {
    const NodeId out = nl.node(seq_name("n", i));
    nl.add_mosfet(seq_name("MP", i), MosType::Pmos, out, prev, vdd,
                  vdd, inv_mos());
    nl.add_mosfet(seq_name("MN", i), MosType::Nmos, out, prev, kGround,
                  kGround, inv_mos());
    prev = out;
  }
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  // All stages sit near the switching threshold.
  for (int i = 0; i < 3; ++i) {
    const double v = MnaSystem::voltage(x, nl.find_node(seq_name("n", i)));
    EXPECT_GT(v, 0.4);
    EXPECT_LT(v, 2.0);
  }
}

TEST(DcOpRobust, BistableLatchPicksARail) {
  // A cross-coupled inverter pair: gmin stepping must land on *a* valid
  // solution with complementary outputs.
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add_voltage_source("Vdd", vdd, kGround, Waveform::dc(2.4));
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_mosfet("MPa", MosType::Pmos, a, b, vdd, vdd, inv_mos());
  nl.add_mosfet("MNa", MosType::Nmos, a, b, kGround, kGround, inv_mos());
  nl.add_mosfet("MPb", MosType::Pmos, b, a, vdd, vdd, inv_mos());
  nl.add_mosfet("MNb", MosType::Nmos, b, a, kGround, kGround, inv_mos());
  // A slight pull breaks the symmetry deterministically.
  nl.add_resistor("Rpull", a, vdd, 1e6);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  const double va = MnaSystem::voltage(x, a);
  const double vb = MnaSystem::voltage(x, b);
  // Some valid operating point: either split to the rails or metastable;
  // the KCL residual is what the solver guarantees.
  EXPECT_GE(va, -0.1);
  EXPECT_LE(va, 2.5);
  EXPECT_GE(vb, -0.1);
  EXPECT_LE(vb, 2.5);
}

TEST(TransientRobust, SharpEdgeTriggersStepHalvingNotFailure) {
  // A near-vertical source edge into a strongly nonlinear load: the fixed
  // step must locally halve rather than throw.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  Waveform w = Waveform::pwl();
  w.add_point(0.0, 0.0);
  w.add_point(5e-9, 0.0);
  w.add_point(5.0001e-9, 2.4);  // 0.1 ps edge << dt
  nl.add_voltage_source("V1", in, kGround, w);
  nl.add_resistor("R1", in, out, 100.0);
  nl.add_diode("D1", out, kGround, DiodeParams{});
  nl.add_capacitor("C1", out, kGround, 1e-12);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.5e-9;
  TransientSim sim(sys, opt);
  EXPECT_NO_THROW(sim.run(10e-9));
  // Diode clamps the output near its forward drop.
  EXPECT_GT(sim.voltage(out), 0.4);
  EXPECT_LT(sim.voltage(out), 1.0);
}

TEST(TransientRobust, DtChangeBetweenRunsKeepsContinuity) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);  // tau = 1 us
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 2e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 1.0);
  sim.run(0.5e-6);
  sim.set_dt(20e-9);  // 10x coarser for the tail
  sim.run(1e-6);
  EXPECT_NEAR(sim.voltage(a), std::exp(-1.0), 6e-3);
}

TEST(TransientRobust, RecordStrideDecimatesTrace) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 1e-9;
  opt.record_stride = 10;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 1.0);
  sim.add_probe("a", a);
  sim.run(1e-6);  // 1000 steps
  EXPECT_LE(sim.trace().time.size(), 110u);
  EXPECT_GE(sim.trace().time.size(), 90u);
}

TEST(TransientRobust, GmindKeepsDanglingDeviceChainSolvable) {
  // Two capacitors in series with no DC path anywhere.
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_capacitor("C1", a, b, 1e-12);
  nl.add_capacitor("C2", b, kGround, 1e-12);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 1e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 2.0);
  sim.set_initial_condition(b, 1.0);
  EXPECT_NO_THROW(sim.run(100e-9));
  EXPECT_NEAR(sim.voltage(a), 2.0, 1e-2);
}

TEST(TransientRobust, ZeroRampEdgeAtStartIsHandled) {
  // A source whose first breakpoint sits exactly at t=0 with a step.
  Netlist nl;
  const NodeId a = nl.node("a");
  Waveform w = Waveform::pwl();
  w.add_point(0.0, 1.0);  // starts high immediately
  nl.add_voltage_source("V1", a, kGround, w);
  nl.add_resistor("R1", a, kGround, 1e3);
  MnaSystem sys(nl);
  TransientSim sim(sys, TransientOptions{});
  EXPECT_NO_THROW(sim.run(1e-9));
  EXPECT_NEAR(sim.voltage(a), 1.0, 1e-9);
}
