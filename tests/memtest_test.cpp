#include <gtest/gtest.h>

#include "memtest/coverage.hpp"
#include "memtest/march.hpp"
#include "memtest/memory.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::memtest;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

// ------------------------------------------------------------------ march

TEST(March, OpRendering) {
  EXPECT_EQ(MarchOp::w0().str(), "w0");
  EXPECT_EQ(MarchOp::r1().str(), "r1");
  EXPECT_EQ(MarchOp::del(100e-6).str(), "del(100 us)");
  EXPECT_EQ(MarchOp::r1().value(), 1);
  EXPECT_THROW(MarchOp::del(1e-6).value(), ModelError);
}

TEST(March, MatsPlusStructure) {
  const MarchTest t = mats_plus();
  EXPECT_EQ(t.name, "MATS+");
  ASSERT_EQ(t.elements.size(), 3u);
  EXPECT_EQ(t.str(), "{ any(w0); up(r0,w1); down(r1,w0) }");
  EXPECT_EQ(t.ops_per_cell(), 5u);  // 5N test
}

TEST(March, MarchCminusIs10N) {
  EXPECT_EQ(march_cminus().ops_per_cell(), 10u);
}

TEST(March, RetentionTestCarriesPause) {
  const MarchTest t = retention_test(50e-6);
  EXPECT_NE(t.str().find("del(50.0 us)"), std::string::npos);
}

TEST(March, FromDetectionCondition) {
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w0(), dram::Operation::r()};
  cond.expected = 0;
  cond.init_logical = 0;
  const MarchTest t = march_from_detection(cond, "derived");
  ASSERT_EQ(t.elements.size(), 2u);
  EXPECT_EQ(t.elements[0].str(), "any(w0)");
  EXPECT_EQ(t.elements[1].str(), "up(w1,w1,w0,r0)");
}

TEST(March, StandardSuite) {
  const auto suite = standard_test_suite();
  ASSERT_GE(suite.size(), 4u);
}

// ----------------------------------------------------------------- memory

namespace {

/// A fast model with hand-set constants (no SPICE calibration needed).
analysis::FastCellModel make_model(DefectKind kind, double r) {
  analysis::FastModelParams p;
  p.vdd = 2.4;
  p.vbl = 1.2;
  p.cs = 150e-15;
  p.r_series = 30e3;
  p.t_write = 28e-9;
  p.v1_target = 2.3;
  p.leak_current = 0.5e-9;
  p.vsa_const = 1.15;
  p.vsa_varies = false;
  analysis::FastCellModel m({kind, Side::True}, p);
  m.set_defect_resistance(r);
  return m;
}

}  // namespace

TEST(Memory, HealthyPassesAllStandardTests) {
  for (const MarchTest& t : standard_test_suite()) {
    BehavioralMemory mem(16, 7, make_model(DefectKind::O3, 1.0), 60e-9);
    EXPECT_FALSE(mem.run(t).has_value()) << t.name;
  }
}

TEST(Memory, StrongOpenIsCaughtByMarch) {
  BehavioralMemory mem(16, 7, make_model(DefectKind::O3, 10e6), 60e-9);
  const auto fault = mem.run(march_cminus());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->address, 7u);
}

TEST(Memory, ShortToGroundCaughtByRetentionNotMats) {
  // A weak short needs hold time: tau = 100 MOhm * 150 fF = 15 us, far
  // beyond the ~2 us a MATS+ march over 16 cells leaves the cell idle,
  // but tiny against a 300 us pause.
  BehavioralMemory mem_a(16, 7, make_model(DefectKind::Sg, 100e6), 60e-9);
  EXPECT_TRUE(mem_a.run(retention_test(300e-6)).has_value());
  BehavioralMemory mem_b(16, 7, make_model(DefectKind::Sg, 100e6), 60e-9);
  EXPECT_FALSE(mem_b.run(mats_plus()).has_value());
}

TEST(Memory, MarchGapActsAsRetentionTime) {
  // In a larger memory, the time spent marching over other cells gives a
  // shunt defect time to act: same defect, larger array => detected.
  const double r = 50e6;  // tau = 7.5 us
  BehavioralMemory small(4, 1, make_model(DefectKind::Sg, r), 60e-9);
  BehavioralMemory large(16384, 8192, make_model(DefectKind::Sg, r), 60e-9);
  const MarchTest t = march_cminus();
  const bool small_detects = small.run(t).has_value();
  const bool large_detects = large.run(t).has_value();
  EXPECT_FALSE(small_detects);
  EXPECT_TRUE(large_detects);
}

TEST(Memory, ValidatesConstruction) {
  EXPECT_THROW(BehavioralMemory(0, 0, make_model(DefectKind::O3, 1.0), 60e-9),
               ModelError);
  EXPECT_THROW(BehavioralMemory(4, 9, make_model(DefectKind::O3, 1.0), 60e-9),
               ModelError);
}

TEST(Memory, FaultObservationDetailsAreFilled) {
  BehavioralMemory mem(8, 3, make_model(DefectKind::O3, 10e6), 60e-9);
  const auto fault = mem.run(march_y());
  ASSERT_TRUE(fault.has_value());
  EXPECT_LT(fault->element_index, march_y().elements.size());
  EXPECT_NE(fault->expected, fault->observed);
}

// --------------------------------------------------------------- coverage

TEST(Coverage, UniverseCoversAllDefects) {
  const auto universe = default_defect_universe(4);
  EXPECT_EQ(universe.size(), 14u * 4u);
}

TEST(Coverage, DetectsMoreWithDedicatedTest) {
  // Compare MATS+ against a retention test over shunt defects only: the
  // retention test must dominate on them.
  dram::DramColumn col;
  std::vector<DefectInstance> shunts;
  for (double r : {1e5, 1e6, 1e7, 1e8})
    shunts.push_back({Defect{DefectKind::Sg, Side::True}, r});

  CoverageOptions opt;
  opt.memory_cells = 8;
  const auto base = evaluate_coverage(col, shunts, mats_plus(),
                                      stress::nominal_condition(), opt);
  const auto ret = evaluate_coverage(col, shunts, retention_test(200e-6),
                                     stress::nominal_condition(), opt);
  EXPECT_GE(ret.detected, base.detected);
  EXPECT_GT(ret.fraction(), 0.5);
  EXPECT_EQ(ret.total, shunts.size());
}

TEST(March, MarchSsIs22N) { EXPECT_EQ(march_ss().ops_per_cell(), 22u); }

TEST(March, PmoviIs13N) { EXPECT_EQ(pmovi().ops_per_cell(), 13u); }

TEST(Memory, HealthyPassesMarchSsAndPmovi) {
  for (const MarchTest& t : {march_ss(), pmovi()}) {
    BehavioralMemory mem(16, 5, make_model(DefectKind::O3, 1.0), 60e-9);
    EXPECT_FALSE(mem.run(t).has_value()) << t.name;
  }
}

TEST(Memory, MarchSsCatchesWhatMatsPlusCatches) {
  // March SS dominates MATS+ on the single-cell fault space.
  for (double r : {2e6, 10e6}) {
    BehavioralMemory mats(16, 5, make_model(DefectKind::O3, r), 60e-9);
    BehavioralMemory ss(16, 5, make_model(DefectKind::O3, r), 60e-9);
    const bool mats_found = mats.run(mats_plus()).has_value();
    const bool ss_found = ss.run(march_ss()).has_value();
    if (mats_found) {
      EXPECT_TRUE(ss_found) << r;
    }
  }
}
