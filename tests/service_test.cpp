// Fault-injection harness + shared-cache + scheduler tests of the
// campaign service (ISSUE 10 satellite 1).
//
// The service's resilience claims are exercised by *causing* each failure
// through util/fault (docs/SERVICE.md): a computation that throws mid-
// unit, a journal line torn mid-write, a cache object corrupted on disk.
// After every injected fault the daemon-side machinery must quarantine or
// resume and byte-reproduce report.json against an uninjured run.
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/cache_index.hpp"
#include "campaign/runner.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "dram/column.hpp"
#include "dram/technology.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress {
namespace {

namespace fs = std::filesystem;
using campaign::CacheKey;
using campaign::CampaignPlan;
using campaign::CampaignSpec;
using campaign::Scheduler;
using campaign::SchedulerOptions;
using campaign::SessionStatus;
using campaign::SharedCache;
using campaign::SharedCacheOptions;
using verify::VerifyReport;

CampaignSpec spec_of(const std::string& text) {
  VerifyReport report;
  std::optional<CampaignSpec> spec = campaign::parse_spec(text, &report);
  EXPECT_TRUE(spec.has_value()) << report.str();
  return spec.value();
}

CampaignPlan plan_of(const CampaignSpec& spec) {
  dram::DramColumn column(dram::default_technology());
  return campaign::expand(spec, column);
}

std::string fresh_dir(const std::string& hint) {
  static int counter = 0;
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("service_" + hint + "_" + std::to_string(counter++));
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream text;
  text << f.rdbuf();
  return text.str();
}

/// One cheap border unit (the smallest real campaign).
const char* kOneUnitSpec = R"({
  "name": "one",
  "defects": ["o3"],
  "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
              "tcyc": 60e-9, "duty": 0.5}]
})";

/// Two independent border units.
const char* kTwoUnitSpec = R"({
  "name": "two",
  "defects": ["o3", "sg"],
  "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
              "tcyc": 60e-9, "duty": 0.5}]
})";

/// Serial single-process baseline: the bytes every service run must hit.
std::string baseline_report(const char* spec_text) {
  const std::string out = fresh_dir("baseline");
  campaign::CampaignRunner runner(plan_of(spec_of(spec_text)),
                                  dram::default_technology(), out,
                                  fresh_dir("baseline_cache"), {});
  return read_file(runner.run().report_path);
}

/// RAII disarm so a failing test never leaks an armed fault into the next.
struct ArmedFault {
  explicit ArmedFault(const std::string& spec) { util::fault::arm(spec); }
  ~ArmedFault() { util::fault::disarm(); }
};

// --- util/fault itself -------------------------------------------------

TEST(FaultTest, DisarmedPointsAreInert) {
  EXPECT_EQ(util::fault::hit("campaign.unit.compute"),
            util::fault::Action::None);
}

TEST(FaultTest, FiresOnceAtTheRequestedHit) {
  ArmedFault armed("p=corrupt@2");
  EXPECT_EQ(util::fault::hit("p"), util::fault::Action::None);
  EXPECT_EQ(util::fault::hit("p"), util::fault::Action::Corrupt);
  EXPECT_EQ(util::fault::hit("p"), util::fault::Action::None);
}

TEST(FaultTest, ThrowActionThrowsInjected) {
  ArmedFault armed("p=throw");
  EXPECT_THROW(util::fault::hit("p"), util::fault::Injected);
}

TEST(FaultTest, MultipleEntriesAreIndependent) {
  ArmedFault armed("a=tear,b=corrupt@1");
  EXPECT_EQ(util::fault::hit("b"), util::fault::Action::Corrupt);
  EXPECT_EQ(util::fault::hit("a"), util::fault::Action::Tear);
  EXPECT_EQ(util::fault::hit("a"), util::fault::Action::None);
}

TEST(FaultTest, MalformedSpecsThrowModelError) {
  for (const char* bad : {"noequals", "p=explode", "p=throw@0", "p=throw@x",
                          "=throw", "p="}) {
    EXPECT_THROW(util::fault::arm(bad), ModelError) << bad;
    util::fault::disarm();
  }
}

// --- SharedCache: the two-tier index -----------------------------------

CacheKey key_of(const std::string& text) {
  campaign::KeyHasher h;
  h.feed(text);
  return h.key();
}

/// Valid-JSON payload of a controlled size (the disk tier re-emits the
/// payload through the JSON writer, so raw byte blobs are not storable).
std::string payload(char fill, size_t n) {
  return "{\"pad\": \"" + std::string(n, fill) + "\"}";
}

TEST(SharedCacheTest, StoreThenLookupHitsTheMemoryTier) {
  SharedCache cache(fresh_dir("shared"));
  const CacheKey k = key_of("unit-a");
  cache.store(k, "{\"payload\": 1}");
  VerifyReport report;
  const std::optional<std::string> hit = cache.lookup(k, &report);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"payload\": 1}");
  EXPECT_TRUE(cache.in_memory(k));
  EXPECT_EQ(cache.stats().mem_hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(SharedCacheTest, DiskTierSurvivesAndPromotesIntoMemory) {
  const std::string dir = fresh_dir("shared");
  const CacheKey k = key_of("unit-b");
  {
    SharedCache first(dir);
    first.store(k, "{\"payload\": 2}");
  }
  SharedCache second(dir);  // cold memory tier, warm disk tier
  EXPECT_FALSE(second.in_memory(k));
  VerifyReport report;
  const std::optional<std::string> hit = second.lookup(k, &report);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(second.stats().disk_hits, 1);
  EXPECT_TRUE(second.in_memory(k));  // promoted
  second.lookup(k, &report);
  EXPECT_EQ(second.stats().mem_hits, 1);
}

TEST(SharedCacheTest, MemoryTierEvictsLeastRecentlyUsed) {
  SharedCacheOptions opt;
  // Each 64-char payload costs 75 bytes + the 128-byte entry overhead:
  // two entries fit the budget, a third forces one eviction.
  opt.max_memory_bytes = 450;
  SharedCache cache(fresh_dir("shared"), opt);
  const CacheKey a = key_of("a"), b = key_of("b"), c = key_of("c");
  cache.store(a, payload('a', 64));
  cache.store(b, payload('b', 64));
  VerifyReport report;
  cache.lookup(a, &report);  // a is now more recent than b
  cache.store(c, payload('c', 64));
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_FALSE(cache.in_memory(b));  // b was the LRU entry
  EXPECT_TRUE(cache.in_memory(c));
  // The evicted entry is still a disk hit, not a recompute.
  EXPECT_TRUE(cache.lookup(b, &report).has_value());
}

TEST(SharedCacheTest, GcLruRemovesOldestFirstAndKeepsHotObjects) {
  const std::string dir = fresh_dir("shared");
  SharedCache cache(dir);
  const CacheKey cold = key_of("cold"), hot = key_of("hot");
  cache.store(cold, payload('x', 256));
  cache.store(hot, payload('y', 256));
  VerifyReport report;
  cache.lookup(hot, &report);  // hot is used after cold
  // Budget for exactly one on-disk object: the least recently used must go.
  const size_t one = fs::file_size(cache.disk().object_path(hot));
  const int removed = cache.gc_lru(one + 8, &report);
  EXPECT_EQ(removed, 1);
  EXPECT_TRUE(cache.disk().contains(hot));
  EXPECT_FALSE(cache.disk().contains(cold));
}

TEST(SharedCacheTest, InjectedDiskCorruptionIsAnE310Miss) {
  const std::string dir = fresh_dir("shared");
  const CacheKey k = key_of("unit-c");
  {
    ArmedFault armed("campaign.cache.store=corrupt");
    SharedCache writer(dir);
    writer.store(k, "{\"payload\": 3}");
    // The write-through memory tier still answers -- the corruption is on
    // disk, which is exactly what makes it dangerous.
    VerifyReport report;
    EXPECT_TRUE(writer.lookup(k, &report).has_value());
  }
  SharedCache reader(dir);  // cold memory: must go to the damaged disk
  VerifyReport report;
  EXPECT_FALSE(reader.lookup(k, &report).has_value());
  ASSERT_FALSE(report.diagnostics().empty());
  EXPECT_STREQ(verify::code_id(report.diagnostics().front().code), "E310");
  EXPECT_EQ(reader.stats().misses, 1);
}

// --- scheduler under injected faults -----------------------------------

SessionStatus run_session(Scheduler* sched, const char* spec_text,
                          const std::string& run_dir,
                          const std::string& client = "tester",
                          const std::string& id = "s1") {
  sched->submit(client, plan_of(spec_of(spec_text)), run_dir, id);
  EXPECT_TRUE(sched->wait_finished(id, 300.0));
  return sched->session(id).value();
}

TEST(SchedulerFaultTest, ThrowingUnitIsRetriedThenDone) {
  SharedCache cache(fresh_dir("cache"));
  SchedulerOptions opt;
  opt.workers = 2;
  int attempts_seen = 0;
  opt.fault_injector = [&attempts_seen](const campaign::WorkUnit&,
                                        int attempt) {
    ++attempts_seen;
    if (attempt == 1) throw ModelError("injected first-attempt failure");
  };
  Scheduler sched(dram::default_technology(), &cache, opt);
  const SessionStatus st =
      run_session(&sched, kOneUnitSpec, fresh_dir("run"));
  EXPECT_EQ(st.state, "finished");
  EXPECT_EQ(st.done, 1);
  EXPECT_EQ(st.retried, 1);
  EXPECT_EQ(attempts_seen, 2);
  EXPECT_EQ(read_file(st.report_path), baseline_report(kOneUnitSpec));
}

TEST(SchedulerFaultTest, ExhaustedRetriesQuarantineWithoutSinkingTheRun) {
  SharedCache cache(fresh_dir("cache"));
  SchedulerOptions opt;
  opt.workers = 2;
  opt.fault_injector = [](const campaign::WorkUnit& u, int) {
    if (u.id.find("O3") != std::string::npos)
      throw ModelError("injected permanent failure");
  };
  Scheduler sched(dram::default_technology(), &cache, opt);
  const SessionStatus st =
      run_session(&sched, kTwoUnitSpec, fresh_dir("run"));
  EXPECT_EQ(st.state, "finished");
  EXPECT_EQ(st.quarantined, 1);
  EXPECT_EQ(st.done, 1);  // the healthy unit still completed
  EXPECT_NE(read_file(st.failure_report_path).find("injected permanent"),
            std::string::npos);
}

TEST(SchedulerFaultTest, TornJournalFailsSessionThenResumesByteIdentical) {
  SharedCache cache(fresh_dir("cache"));
  const std::string run_dir = fresh_dir("run");
  Scheduler sched(dram::default_technology(), &cache, {});
  {
    // Tear the journal on the first completed unit: the write throws
    // after half a record, the session aborts as "failed".
    ArmedFault armed("campaign.journal.append=tear");
    sched.submit("tester", plan_of(spec_of(kOneUnitSpec)), run_dir, "s1");
    ASSERT_TRUE(sched.wait_finished("s1", 300.0));
    const SessionStatus st = sched.session("s1").value();
    EXPECT_EQ(st.state, "failed");
    EXPECT_NE(st.error.find("journal"), std::string::npos);
  }
  // Resubmit under the same id: the failed session is replaced by a fresh
  // one that replays the torn journal (E310-tolerant) and recomputes
  // whatever the torn line lost.
  const SessionStatus st =
      run_session(&sched, kOneUnitSpec, run_dir, "tester", "s1");
  EXPECT_EQ(st.state, "finished");
  EXPECT_EQ(read_file(st.report_path), baseline_report(kOneUnitSpec));
}

TEST(SchedulerFaultTest, CorruptCacheObjectIsRecomputedNotServed) {
  const std::string cache_dir = fresh_dir("cache");
  const std::string baseline = baseline_report(kOneUnitSpec);
  {
    ArmedFault armed("campaign.cache.store=corrupt");
    SharedCache cache(cache_dir);
    Scheduler sched(dram::default_technology(), &cache, {});
    const SessionStatus st =
        run_session(&sched, kOneUnitSpec, fresh_dir("run"));
    // The run itself is healthy -- the corruption is silent, on disk.
    EXPECT_EQ(st.state, "finished");
    EXPECT_EQ(read_file(st.report_path), baseline);
  }
  // A fresh daemon (cold memory tier) must detect the damaged object,
  // treat it as a miss, recompute, and still reproduce the bytes.
  SharedCache cache(cache_dir);
  Scheduler sched(dram::default_technology(), &cache, {});
  const SessionStatus st =
      run_session(&sched, kOneUnitSpec, fresh_dir("run"));
  EXPECT_EQ(st.state, "finished");
  EXPECT_EQ(st.done, 1);    // recomputed
  EXPECT_EQ(st.cached, 0);  // the corrupt object was not served
  EXPECT_EQ(read_file(st.report_path), baseline);
}

// --- scheduler semantics ------------------------------------------------

TEST(SchedulerTest, ReportsAreByteIdenticalToTheSingleProcessRunner) {
  SharedCache cache(fresh_dir("cache"));
  SchedulerOptions opt;
  opt.workers = 4;
  Scheduler sched(dram::default_technology(), &cache, opt);
  const SessionStatus st =
      run_session(&sched, kTwoUnitSpec, fresh_dir("run"));
  EXPECT_EQ(read_file(st.report_path), baseline_report(kTwoUnitSpec));
}

TEST(SchedulerTest, SecondSessionWithSameSpecIsAllCacheHits) {
  SharedCache cache(fresh_dir("cache"));
  Scheduler sched(dram::default_technology(), &cache, {});
  run_session(&sched, kOneUnitSpec, fresh_dir("run"), "alice", "a");
  const long stores = cache.stats().stores;
  const SessionStatus st =
      run_session(&sched, kOneUnitSpec, fresh_dir("run"), "bob", "b");
  EXPECT_EQ(st.cached, st.total);
  EXPECT_EQ(st.done, 0);
  EXPECT_EQ(cache.stats().stores, stores);  // nothing recomputed
}

TEST(SchedulerTest, SubmitIsIdempotentPerSessionId) {
  SharedCache cache(fresh_dir("cache"));
  Scheduler sched(dram::default_technology(), &cache, {});
  const std::string run_dir = fresh_dir("run");
  sched.submit("a", plan_of(spec_of(kOneUnitSpec)), run_dir, "same");
  const SessionStatus again =
      sched.submit("a", plan_of(spec_of(kOneUnitSpec)), run_dir, "same");
  EXPECT_EQ(again.id, "same");
  EXPECT_TRUE(sched.wait_finished("same", 300.0));
  EXPECT_EQ(sched.status().sessions.size(), 1u);
}

TEST(SchedulerTest, DrainRefusesNewSubmitsAndFinishesTheRest) {
  SharedCache cache(fresh_dir("cache"));
  Scheduler sched(dram::default_technology(), &cache, {});
  sched.submit("a", plan_of(spec_of(kOneUnitSpec)), fresh_dir("run"), "s");
  sched.drain();
  EXPECT_TRUE(sched.session("s").value().finished);
  EXPECT_THROW(sched.submit("a", plan_of(spec_of(kOneUnitSpec)),
                            fresh_dir("run"), "late"),
               ModelError);
}

TEST(SchedulerTest, WaitFinishedTimesOutOnUnknownSessions) {
  SharedCache cache(fresh_dir("cache"));
  Scheduler sched(dram::default_technology(), &cache, {});
  EXPECT_FALSE(sched.wait_finished("nope", 0.05));
}

}  // namespace
}  // namespace dramstress
