#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dcop.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "circuit/waveform.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

using namespace dramstress;
using namespace dramstress::circuit;
namespace units = dramstress::units;

// ---------------------------------------------------------------- Waveform

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(2.4);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.4);
  EXPECT_DOUBLE_EQ(w.value(1.0), 2.4);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  Waveform w = Waveform::pwl();
  w.add_point(1e-9, 0.0);
  w.add_point(2e-9, 1.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);    // clamp before
  EXPECT_DOUBLE_EQ(w.value(1.5e-9), 0.5); // interpolate
  EXPECT_DOUBLE_EQ(w.value(3e-9), 1.0);   // clamp after
}

TEST(Waveform, HoldThenRamp) {
  Waveform w = Waveform::pwl();
  w.add_point(0.0, 0.0);
  w.hold_then_ramp(5e-9, 2.4, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(4e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.0);
  EXPECT_NEAR(w.value(5.5e-9), 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(7e-9), 2.4);
}

TEST(Waveform, NonIncreasingTimeThrows) {
  Waveform w = Waveform::pwl();
  w.add_point(1e-9, 0.0);
  EXPECT_THROW(w.add_point(1e-9, 1.0), ModelError);
}

// ----------------------------------------------------------------- Netlist

TEST(Netlist, NodeRegistry) {
  Netlist nl;
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node("0"), kGround);
  const NodeId a = nl.node("a");
  EXPECT_EQ(nl.node("a"), a);  // idempotent
  EXPECT_NE(nl.node("b"), a);
  EXPECT_EQ(nl.num_nodes(), 2);
  EXPECT_EQ(nl.node_name(a), "a");
  EXPECT_THROW(nl.find_node("missing"), ModelError);
}

TEST(Netlist, DuplicateDeviceNameThrows) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(nl.add_resistor("R1", a, kGround, 2e3), ModelError);
}

TEST(Netlist, FindDevice) {
  Netlist nl;
  const NodeId a = nl.node("a");
  Resistor* r = nl.add_resistor("R1", a, kGround, 1e3);
  EXPECT_EQ(nl.find_device("R1"), r);
  EXPECT_EQ(nl.find_device("nope"), nullptr);
}

TEST(Netlist, ResistorRejectsNonPositive) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_THROW(nl.add_resistor("R1", a, kGround, 0.0), ModelError);
  EXPECT_THROW(nl.add_capacitor("C1", a, kGround, -1e-15), ModelError);
}

// ------------------------------------------------------------------- DC OP

TEST(DcOp, VoltageDivider) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add_voltage_source("V1", vin, kGround, Waveform::dc(3.0));
  nl.add_resistor("R1", vin, mid, 1e3);
  nl.add_resistor("R2", mid, kGround, 2e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, mid), 2.0, 1e-6);
  EXPECT_NEAR(MnaSystem::voltage(x, vin), 3.0, 1e-9);
}

TEST(DcOp, SourceBranchCurrent) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  nl.add_voltage_source("V1", vin, kGround, Waveform::dc(1.0));
  nl.add_resistor("R1", vin, kGround, 1e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  // Branch current is plus -> minus *through* the source; a source
  // delivering 1 mA into the load therefore carries -1 mA.
  EXPECT_NEAR(x[static_cast<size_t>(sys.num_nodes())], -1e-3, 1e-9);
}

TEST(DcOp, DiodeForwardDrop) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_voltage_source("V1", a, kGround, Waveform::dc(5.0));
  const NodeId k = nl.node("k");
  nl.add_resistor("R1", a, k, 1e3);
  nl.add_diode("D1", k, kGround, DiodeParams{});
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  const double vd = MnaSystem::voltage(x, k);
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId a = nl.node("a");
  // 1 mA pulled from ground into node a (source drives gnd -> a).
  nl.add_current_source("I1", kGround, a, Waveform::dc(1e-3));
  nl.add_resistor("R1", a, kGround, 2e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, a), 2.0, 1e-6);
}

// ------------------------------------------------------------------- Diode

TEST(Diode, SaturationCurrentGrowsSteeplyWithT) {
  Netlist nl;
  Diode* d = nl.add_diode("D1", nl.node("a"), kGround, DiodeParams{});
  const double is27 = d->saturation_current(units::celsius_to_kelvin(27.0));
  const double is87 = d->saturation_current(units::celsius_to_kelvin(87.0));
  const double ism33 = d->saturation_current(units::celsius_to_kelvin(-33.0));
  // The junction-leakage mechanism of the paper: decades per ~60 C.
  EXPECT_GT(is87 / is27, 30.0);
  EXPECT_LT(ism33 / is27, 1e-2);
}

TEST(Diode, CurrentAndConductanceConsistent) {
  Netlist nl;
  Diode* d = nl.add_diode("D1", nl.node("a"), kGround, DiodeParams{});
  const double t = 300.15;
  const double v = 0.6;
  double g = 0.0;
  const double i = d->current(v, t, &g);
  const double h = 1e-6;
  const double di = (d->current(v + h, t) - d->current(v - h, t)) / (2 * h);
  EXPECT_NEAR(g, di, std::fabs(di) * 1e-4);
  EXPECT_GT(i, 0.0);
}

// ------------------------------------------------------------------ MOSFET

namespace {
MosfetParams test_nmos() {
  MosfetParams p;
  p.w = 2e-6;
  p.l = 0.25e-6;
  p.kp_tnom = 120e-6;
  p.vth0 = 0.7;
  return p;
}
}  // namespace

TEST(Mosfet, CutoffAndStrongInversion) {
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  const double t = 300.15;
  const double i_off = m->evaluate(1.0, 0.0, 0.0, 0.0, t).ids;
  const double i_on = m->evaluate(1.0, 2.4, 0.0, 0.0, t).ids;
  EXPECT_LT(i_off, 1e-9);
  EXPECT_GT(i_on, 1e-4);
  EXPECT_GT(i_on / std::max(i_off, 1e-30), 1e5);
}

TEST(Mosfet, SourceDrainSymmetry) {
  // Swapping drain and source must negate the current (no CLM asymmetry
  // thanks to the |Vds| formulation).
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  const double t = 300.15;
  const double i_fwd = m->evaluate(1.2, 2.0, 0.3, 0.0, t).ids;
  const double i_rev = m->evaluate(0.3, 2.0, 1.2, 0.0, t).ids;
  EXPECT_NEAR(i_fwd, -i_rev, std::fabs(i_fwd) * 1e-9);
}

TEST(Mosfet, AnalyticDerivativesMatchFiniteDifference) {
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  const double t = 310.0;
  const double vd = 0.9;
  const double vg = 1.4;
  const double vs = 0.2;
  const double vb = 0.0;
  const auto op = m->evaluate(vd, vg, vs, vb, t);
  const double h = 1e-6;
  const double gm_fd =
      (m->evaluate(vd, vg + h, vs, vb, t).ids - m->evaluate(vd, vg - h, vs, vb, t).ids) / (2 * h);
  const double gds_fd =
      (m->evaluate(vd + h, vg, vs, vb, t).ids - m->evaluate(vd - h, vg, vs, vb, t).ids) / (2 * h);
  const double gs_fd =
      (m->evaluate(vd, vg, vs + h, vb, t).ids - m->evaluate(vd, vg, vs - h, vb, t).ids) / (2 * h);
  const double gb_fd =
      (m->evaluate(vd, vg, vs, vb + h, t).ids - m->evaluate(vd, vg, vs, vb - h, t).ids) / (2 * h);
  EXPECT_NEAR(op.gm, gm_fd, std::fabs(gm_fd) * 1e-3 + 1e-12);
  EXPECT_NEAR(op.gds, gds_fd, std::fabs(gds_fd) * 1e-3 + 1e-12);
  EXPECT_NEAR(op.gs, gs_fd, std::fabs(gs_fd) * 1e-3 + 1e-12);
  EXPECT_NEAR(op.gb, gb_fd, std::fabs(gb_fd) * 1e-3 + 1e-12);
}

TEST(Mosfet, DriveCurrentDropsWithTemperature) {
  // Mobility mechanism (paper Section 4.2): hotter => weaker write driver.
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  const double i_cold = m->evaluate(1.2, 2.4, 0.0, 0.0, units::celsius_to_kelvin(-33)).ids;
  const double i_room = m->evaluate(1.2, 2.4, 0.0, 0.0, units::celsius_to_kelvin(27)).ids;
  const double i_hot = m->evaluate(1.2, 2.4, 0.0, 0.0, units::celsius_to_kelvin(87)).ids;
  EXPECT_GT(i_cold, i_room);
  EXPECT_GT(i_room, i_hot);
}

TEST(Mosfet, ThresholdRisesWhenCold) {
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  EXPECT_GT(m->vth(units::celsius_to_kelvin(-33)),
            m->vth(units::celsius_to_kelvin(27)));
  EXPECT_GT(m->vth(units::celsius_to_kelvin(27)),
            m->vth(units::celsius_to_kelvin(87)));
}

TEST(Mosfet, PmosMirrorsNmos) {
  Netlist nl;
  Mosfet* p = nl.add_mosfet("MP", MosType::Pmos, nl.node("d"), nl.node("g"),
                            nl.node("s"), nl.node("b"), test_nmos());
  const double t = 300.15;
  // PMOS with source at 2.4 V, gate at 0, drain at 1.2 V: strongly on,
  // current flows source -> drain externally, i.e. ids (drain->source) < 0.
  const double i = p->evaluate(1.2, 0.0, 2.4, 2.4, t).ids;
  EXPECT_LT(i, -1e-4);
  // Gate at the rail: off.
  const double i_off = p->evaluate(1.2, 2.4, 2.4, 2.4, t).ids;
  EXPECT_GT(i_off, -1e-9);
}

TEST(Mosfet, WidthScalingIsProportional) {
  Netlist nl;
  Mosfet* m = nl.add_mosfet("M1", MosType::Nmos, nl.node("d"), nl.node("g"),
                            kGround, kGround, test_nmos());
  const double i1 = m->evaluate(1.2, 2.4, 0.0, 0.0, 300.15).ids;
  m->scale_width(1.10);
  const double i2 = m->evaluate(1.2, 2.4, 0.0, 0.0, 300.15).ids;
  EXPECT_NEAR(i2 / i1, 1.10, 1e-9);
}

// --------------------------------------------------------------- Transient

TEST(Transient, RcDischargeMatchesAnalytic) {
  // 1 kOhm discharging 1 nF from 1 V: tau = 1 us.
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 5e-9;  // tau/200
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 1.0);
  sim.run(1e-6);
  EXPECT_NEAR(sim.voltage(a), std::exp(-1.0), 5e-3);
}

TEST(Transient, TrapezoidalIsMoreAccurateThanBeOnRc) {
  auto run = [](Integrator integ) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_resistor("R1", a, kGround, 1e3);
    nl.add_capacitor("C1", a, kGround, 1e-9);
    MnaSystem sys(nl);
    TransientOptions opt;
    opt.dt = 2e-8;  // deliberately coarse: tau/50
    opt.integrator = integ;
    TransientSim sim(sys, opt);
    sim.set_initial_condition(a, 1.0);
    sim.run(1e-6);
    return std::fabs(sim.voltage(a) - std::exp(-1.0));
  };
  const double err_be = run(Integrator::BackwardEuler);
  const double err_trap = run(Integrator::Trapezoidal);
  EXPECT_LT(err_trap, err_be);
}

TEST(Transient, RcChargeThroughSourceStep) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId out = nl.node("out");
  Waveform w = Waveform::pwl();
  w.add_point(0.0, 0.0);
  w.add_point(1e-9, 2.4);  // fast ramp to 2.4 V
  nl.add_voltage_source("V1", vin, kGround, w);
  nl.add_resistor("R1", vin, out, 10e3);
  nl.add_capacitor("C1", out, kGround, 100e-15);  // tau = 1 ns
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.02e-9;
  TransientSim sim(sys, opt);
  sim.run(10e-9);  // ~9 tau after the ramp
  EXPECT_NEAR(sim.voltage(out), 2.4, 0.01);
}

TEST(Transient, ProbesRecordTrace) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 1e-8;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 1.0);
  sim.add_probe("va", a);
  sim.run(1e-7);
  const Trace& tr = sim.trace();
  ASSERT_GE(tr.time.size(), 10u);
  EXPECT_DOUBLE_EQ(tr.samples[0].front(), 1.0);
  EXPECT_LT(tr.back("va"), 1.0);
  EXPECT_NEAR(tr.at("va", 0.0), 1.0, 1e-12);
  EXPECT_THROW(tr.probe_index("zz"), ModelError);
}

TEST(Transient, FloatingNodeHoldsChargeViaGmin) {
  // A capacitor with no DC path: gmin keeps the matrix solvable and the
  // node must hold its IC over a short interval (storage-cell behaviour).
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_capacitor("C1", a, kGround, 30e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.1e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(a, 2.4);
  sim.run(100e-9);
  EXPECT_NEAR(sim.voltage(a), 2.4, 1e-3);
}

TEST(Transient, NmosPassGateDischargesCell) {
  // Storage cap discharged through an NMOS pass gate: the core DRAM write-0
  // situation.  With the gate boosted well above Vth the cap must approach
  // ground within a few ns.
  Netlist nl;
  const NodeId bl = nl.node("bl");
  const NodeId sn = nl.node("sn");
  const NodeId wl = nl.node("wl");
  nl.add_voltage_source("Vbl", bl, kGround, Waveform::dc(0.0));
  nl.add_voltage_source("Vwl", wl, kGround, Waveform::dc(3.6));
  nl.add_mosfet("Ma", MosType::Nmos, bl, wl, sn, kGround, test_nmos());
  nl.add_capacitor("Cs", sn, kGround, 30e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.05e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(sn, 2.4);
  sim.run(5e-9);
  EXPECT_LT(sim.voltage(sn), 0.05);
}

TEST(Transient, NmosPassGateWriteOneStopsNearVgMinusVth) {
  // Writing a 1 through an un-boosted NMOS gate must stall near Vg - Vth:
  // the classic threshold-drop effect, evidence the access device conducts
  // with correct asymmetry at low overdrive.
  Netlist nl;
  const NodeId bl = nl.node("bl");
  const NodeId sn = nl.node("sn");
  const NodeId wl = nl.node("wl");
  nl.add_voltage_source("Vbl", bl, kGround, Waveform::dc(2.4));
  nl.add_voltage_source("Vwl", wl, kGround, Waveform::dc(2.4));  // no boost
  nl.add_mosfet("Ma", MosType::Nmos, bl, wl, sn, kGround, test_nmos());
  nl.add_capacitor("Cs", sn, kGround, 30e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.05e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(sn, 0.0);
  sim.run(60e-9);
  const double v = sim.voltage(sn);
  EXPECT_GT(v, 1.2);
  EXPECT_LT(v, 2.1);  // clearly below the full 2.4 V
}

TEST(Transient, CmosInverterSwitches) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_voltage_source("Vdd", vdd, kGround, Waveform::dc(2.4));
  Waveform win = Waveform::pwl();
  win.add_point(0.0, 0.0);
  win.add_point(5e-9, 0.0);
  win.add_point(6e-9, 2.4);
  nl.add_voltage_source("Vin", in, kGround, win);
  nl.add_mosfet("MP", MosType::Pmos, out, in, vdd, vdd, test_nmos());
  nl.add_mosfet("MN", MosType::Nmos, out, in, kGround, kGround, test_nmos());
  nl.add_capacitor("CL", out, kGround, 20e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.05e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(vdd, 2.4);
  sim.set_initial_condition(out, 2.4);
  sim.run(4e-9);
  EXPECT_NEAR(sim.voltage(out), 2.4, 0.05);  // input low -> output high
  sim.run(12e-9);
  EXPECT_NEAR(sim.voltage(out), 0.0, 0.05);  // input high -> output low
}

TEST(Transient, CrossCoupledLatchRegenerates) {
  // The sense-amplifier core: an N latch with a small initial differential
  // must regenerate it to a full swing once enabled.
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  const NodeId tail = nl.node("tail");
  nl.add_voltage_source("Vdd", vdd, kGround, Waveform::dc(2.4));
  // P latch to vdd, N latch to the tail node pulled low at t = 2 ns.
  nl.add_mosfet("MP1", MosType::Pmos, a, b, vdd, vdd, test_nmos());
  nl.add_mosfet("MP2", MosType::Pmos, b, a, vdd, vdd, test_nmos());
  nl.add_mosfet("MN1", MosType::Nmos, a, b, tail, kGround, test_nmos());
  nl.add_mosfet("MN2", MosType::Nmos, b, a, tail, kGround, test_nmos());
  Waveform wt = Waveform::pwl();
  wt.add_point(0.0, 1.2);
  wt.add_point(2e-9, 1.2);
  wt.add_point(3e-9, 0.0);
  nl.add_voltage_source("Vtail", tail, kGround, wt);
  nl.add_capacitor("Ca", a, kGround, 100e-15);
  nl.add_capacitor("Cb", b, kGround, 100e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.05e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(vdd, 2.4);
  sim.set_initial_condition(a, 1.25);  // +50 mV differential
  sim.set_initial_condition(b, 1.20);
  sim.set_initial_condition(tail, 1.2);
  sim.run(20e-9);
  EXPECT_GT(sim.voltage(a), 2.0);
  EXPECT_LT(sim.voltage(b), 0.4);
}

TEST(Transient, RunBackwardsThrows) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);
  MnaSystem sys(nl);
  TransientSim sim(sys, TransientOptions{});
  sim.run(1e-9);
  EXPECT_THROW(sim.run(0.5e-9), ModelError);
}

TEST(Transient, IcAfterRunThrows) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, 1e3);
  nl.add_capacitor("C1", a, kGround, 1e-9);
  MnaSystem sys(nl);
  TransientSim sim(sys, TransientOptions{});
  sim.run(1e-9);
  EXPECT_THROW(sim.set_initial_condition(a, 1.0), ModelError);
}

TEST(Transient, TraceAtInterpolatesBetweenSamples) {
  Trace tr;
  tr.names = {"v"};
  tr.time = {0.0, 1.0, 2.0, 3.0};
  tr.samples = {{10.0, 11.0, 12.0, 13.0}};
  // Exact sample times.
  EXPECT_DOUBLE_EQ(tr.at("v", 0.0), 10.0);
  EXPECT_DOUBLE_EQ(tr.at("v", 2.0), 12.0);
  EXPECT_DOUBLE_EQ(tr.at("v", 3.0), 13.0);
  // Between samples: linear interpolation of the two neighbours.
  EXPECT_DOUBLE_EQ(tr.at("v", 1.4), 11.4);
  EXPECT_DOUBLE_EQ(tr.at("v", 1.6), 11.6);
  EXPECT_DOUBLE_EQ(tr.at("v", 1.5), 11.5);
  // Out of range clamps to the first/last sample.
  EXPECT_DOUBLE_EQ(tr.at("v", -5.0), 10.0);
  EXPECT_DOUBLE_EQ(tr.at("v", 99.0), 13.0);
  // Index-based access skips the name lookup.
  const size_t p = tr.probe_index("v");
  EXPECT_EQ(p, 0u);
  EXPECT_DOUBLE_EQ(tr.at(p, 1.25), 11.25);
  EXPECT_DOUBLE_EQ(tr.back(p), 13.0);
  // Unknown probe still throws.
  EXPECT_THROW(tr.at("nope", 1.0), ModelError);
  EXPECT_THROW(tr.probe_index("nope"), ModelError);
}

TEST(Transient, TraceAtBoundaryConditions) {
  // Empty trace: interpolation has nothing to clamp to.
  Trace empty;
  empty.names = {"v"};
  empty.samples = {{}};
  EXPECT_THROW(empty.at("v", 0.0), ModelError);
  EXPECT_THROW(empty.back(0), ModelError);

  // Single-sample trace (a campaign retry timeout can truncate a run to
  // its first accepted step): constant for every query time.
  Trace single;
  single.names = {"v"};
  single.time = {1e-9};
  single.samples = {{0.7}};
  EXPECT_DOUBLE_EQ(single.at("v", 0.0), 0.7);
  EXPECT_DOUBLE_EQ(single.at("v", 1e-9), 0.7);
  EXPECT_DOUBLE_EQ(single.at("v", 1.0), 0.7);
  EXPECT_DOUBLE_EQ(single.back("v"), 0.7);

  // A probe with fewer samples than time points (torn recording) must
  // throw instead of reading out of bounds.
  Trace torn;
  torn.names = {"v"};
  torn.time = {0.0, 1.0, 2.0};
  torn.samples = {{10.0, 11.0}};
  EXPECT_THROW(torn.at("v", 1.5), ModelError);
  EXPECT_THROW(torn.at(0, 0.0), ModelError);  // even at a clamped endpoint

  // Repeated time points (a rejected-then-retaken adaptive step recorded
  // twice) must not divide by zero.
  Trace dup;
  dup.names = {"v"};
  dup.time = {0.0, 1.0, 1.0, 2.0};
  dup.samples = {{10.0, 11.0, 11.5, 12.0}};
  const double v = dup.at("v", 1.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 11.0);
  EXPECT_LE(v, 11.5);
}
