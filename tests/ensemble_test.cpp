// Contract of the batched ensemble engine (docs/ENGINE.md):
//  * every plane is bit-identical for every batch size >= 1 and every
//    thread count -- each lane's trajectory is a pure function of its own
//    inputs, never of its batch neighbours;
//  * the ensemble engine tracks the scalar adaptive engine within the
//    solver tolerances (they share semantics but not roundoff: the
//    ensemble adds chord factorization reuse and a fused MOSFET path);
//  * lanes retire independently: an active-mask subset returns exactly
//    what the full batch returned for those lanes;
//  * LTE control is per lane: lanes with different dynamics accept a
//    different number of steps under one shared schedule;
//  * the Fig. 2 golden samples hold under the ensemble engine;
//  * the warm-started border search returns the same BR as the full scan.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "circuit/ensemble_mna.hpp"
#include "circuit/ensemble_transient.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "dram/column.hpp"
#include "dram/column_sim.hpp"
#include "dram/ensemble_column.hpp"
#include "stress/stress.hpp"

namespace dramstress {
namespace {

using defect::Defect;
using defect::DefectKind;
using dram::Side;

analysis::PlaneOptions small_plane_options() {
  analysis::PlaneOptions opt;
  opt.num_r_points = 4;
  opt.ops_per_point = 2;
  opt.r_lo = 30e3;
  opt.r_hi = 1e6;
  return opt;
}

analysis::PlaneSet plane_set_with(const analysis::PlaneOptions& opt) {
  dram::DramColumn col;
  dram::ColumnSimulator sim(col, stress::nominal_condition());
  const Defect d{DefectKind::O3, Side::True};
  return analysis::generate_plane_set(col, d, sim, opt);
}

void expect_identical(const analysis::ResultPlane& a,
                      const analysis::ResultPlane& b) {
  ASSERT_EQ(a.r_values, b.r_values);
  ASSERT_EQ(a.vsa, b.vsa);  // exact double equality: bit-identical
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (size_t c = 0; c < a.curves.size(); ++c) {
    EXPECT_EQ(a.curves[c].op_number, b.curves[c].op_number);
    EXPECT_EQ(a.curves[c].from_above, b.curves[c].from_above);
    EXPECT_EQ(a.curves[c].vc, b.curves[c].vc) << "curve " << c;
  }
}

void expect_identical(const analysis::PlaneSet& a,
                      const analysis::PlaneSet& b) {
  expect_identical(a.w0, b.w0);
  expect_identical(a.w1, b.w1);
  expect_identical(a.r, b.r);
}

TEST(Ensemble, PlaneSetIdenticalAcrossBatchSizes) {
  analysis::PlaneOptions opt = small_plane_options();
  opt.threads = 1;
  opt.batch = 1;
  const analysis::PlaneSet one = plane_set_with(opt);
  opt.batch = 4;
  const analysis::PlaneSet four = plane_set_with(opt);
  opt.batch = 16;  // more lanes than R points: a single partial batch
  const analysis::PlaneSet sixteen = plane_set_with(opt);
  expect_identical(one, four);
  expect_identical(one, sixteen);
}

TEST(Ensemble, PlaneSetIdenticalAcrossThreadCounts) {
  analysis::PlaneOptions opt = small_plane_options();
  opt.batch = 2;
  opt.threads = 1;
  const analysis::PlaneSet one = plane_set_with(opt);
  opt.threads = 4;
  const analysis::PlaneSet four = plane_set_with(opt);
  expect_identical(one, four);
}

TEST(Ensemble, MatchesScalarEngineWithinTolerance) {
  analysis::PlaneOptions opt = small_plane_options();
  opt.threads = 1;
  opt.batch = 0;  // scalar engine (assuming DRAMSTRESS_BATCH is unset)
  const analysis::PlaneSet scalar = plane_set_with(opt);
  opt.batch = 4;
  const analysis::PlaneSet batched = plane_set_with(opt);

  // Sense thresholds: the batched extraction resolves the flip on a dyadic
  // grid of pitch <= tolerance, the scalar one bisects to the same
  // tolerance, so they agree within two tolerance widths.
  ASSERT_EQ(scalar.w1.vsa.size(), batched.w1.vsa.size());
  for (size_t i = 0; i < scalar.w1.vsa.size(); ++i)
    EXPECT_NEAR(scalar.w1.vsa[i], batched.w1.vsa[i],
                2.0 * opt.vsa.tolerance + 1e-12)
        << "vsa at R index " << i;

  // Write planes: same initial conditions, same LTE semantics -- the
  // engines differ only in roundoff-level solver details.
  const analysis::ResultPlane* pairs[][2] = {{&scalar.w0, &batched.w0},
                                             {&scalar.w1, &batched.w1}};
  for (const auto& pr : pairs) {
    const analysis::ResultPlane& s = *pr[0];
    const analysis::ResultPlane& b = *pr[1];
    ASSERT_EQ(s.curves.size(), b.curves.size());
    for (size_t c = 0; c < s.curves.size(); ++c)
      for (size_t i = 0; i < s.curves[c].vc.size(); ++i)
        EXPECT_NEAR(s.curves[c].vc[i], b.curves[c].vc[i], 0.02)
            << "curve " << c << " R index " << i;
  }
}

TEST(Ensemble, LaneRetirementAndActiveMask) {
  // Four lanes of the same column at different defect resistances, read
  // from decisive initial levels: each lane's bit must match the scalar
  // simulator's, and deactivating lanes must not change the others.
  const Defect d{DefectKind::O3, Side::True};
  const double r_values[] = {50e3, 200e3, 1e6, 5e6};
  const double vc_values[] = {0.2, 1.8, 0.2, 1.8};

  std::vector<std::unique_ptr<dram::DramColumn>> cols;
  std::vector<std::unique_ptr<defect::Injection>> injs;
  std::vector<std::unique_ptr<dram::ColumnSimulator>> sims;
  std::vector<dram::ColumnSimulator*> lanes;
  for (double r : r_values) {
    cols.push_back(std::make_unique<dram::DramColumn>());
    injs.push_back(std::make_unique<defect::Injection>(*cols.back(), d, r));
    sims.push_back(std::make_unique<dram::ColumnSimulator>(
        *cols.back(), stress::nominal_condition()));
    lanes.push_back(sims.back().get());
  }
  dram::EnsembleColumnSim ens(lanes);
  const std::vector<double> vc(vc_values, vc_values + 4);
  const std::vector<int> full = ens.read_of_initial_batch(vc, d.side);
  ASSERT_EQ(full.size(), 4u);
  for (size_t l = 0; l < 4; ++l) {
    dram::DramColumn col;
    defect::Injection inj(col, d, r_values[l]);
    dram::ColumnSimulator scalar(col, stress::nominal_condition());
    EXPECT_EQ(full[l], scalar.read_of_initial(vc_values[l], d.side))
        << "lane " << l;
  }

  const std::vector<char> mask = {1, 0, 1, 0};
  const std::vector<int> sub = ens.read_of_initial_batch(vc, d.side, mask);
  ASSERT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub[0], full[0]);
  EXPECT_EQ(sub[1], -1);
  EXPECT_EQ(sub[2], full[2]);
  EXPECT_EQ(sub[3], -1);
}

TEST(Ensemble, PerLaneLteControl) {
  // Two RC lanes with time constants 40x apart under one shared schedule:
  // the per-lane LTE controllers must pick different step sequences, and
  // both lanes must still land on the analytic RC decay.
  auto build = [](circuit::Netlist& nl, double r) {
    const circuit::NodeId a = nl.node("a");
    nl.add_resistor("R1", a, circuit::kGround, r);
    nl.add_capacitor("C1", a, circuit::kGround, 1e-9);
    return a;
  };
  circuit::Netlist fast, slow;
  const circuit::NodeId node = build(fast, 25.0);   // tau = 25 ns
  const circuit::NodeId node2 = build(slow, 1e3);   // tau = 1 us
  ASSERT_EQ(node, node2);

  std::vector<circuit::Netlist*> nets = {&fast, &slow};
  circuit::EnsembleMna sys(nets);
  circuit::TransientOptions opt;
  opt.dt = 0.5e-9;
  opt.adaptive = true;
  circuit::EnsembleTransient sim(sys, opt);
  sim.set_initial_condition(0, node, 1.0);
  sim.set_initial_condition(1, node, 1.0);
  sim.run(100e-9);

  EXPECT_NEAR(sim.voltage(0, node), std::exp(-100.0 / 25.0), 5e-3);
  EXPECT_NEAR(sim.voltage(1, node), std::exp(-100.0 / 1000.0), 5e-3);
  // The fast lane needs more resolution over the same interval.
  EXPECT_GT(sim.accepted_steps(0), sim.accepted_steps(1));
}

TEST(Ensemble, GoldenFig2SamplesHoldUnderEnsemble) {
  // The PR 5 golden gates of the Fig. 2 plane, re-run through the batched
  // engine (same grid, batch 4): published samples and trends must hold
  // within the golden tolerances.
  analysis::PlaneOptions opt;
  opt.num_r_points = 13;
  opt.ops_per_point = 3;
  opt.r_lo = 10e3;
  opt.r_hi = 10e6;
  opt.threads = 1;
  opt.batch = 4;
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  const dram::OperatingConditions nominal{2.4, 27.0, 60e-9, 0.5};
  dram::ColumnSimulator sim(column, nominal);
  const analysis::PlaneSet planes =
      analysis::generate_plane_set(column, d, sim, opt);

  constexpr double kVcTol = 0.03;
  constexpr double kVsaTol = 0.02;
  const size_t last = planes.w1.r_values.size() - 1;
  EXPECT_NEAR(planes.w1.curves[0].vc[0], 2.0601, kVcTol);
  EXPECT_NEAR(planes.w1.curves[0].vc[last], 0.0700, kVcTol);
  EXPECT_NEAR(planes.w0.curves[0].vc[0], 0.0110, kVcTol);
  EXPECT_NEAR(planes.r.curves[0].vc[0], 0.0205, kVcTol);
  EXPECT_NEAR(planes.r.curves[1].vc[0], 2.0771, kVcTol);
  EXPECT_NEAR(planes.w1.vsa[0], 1.1660, kVsaTol);
  EXPECT_NEAR(planes.w1.vsa[last], 0.3926, kVsaTol);
  for (size_t i = 1; i < planes.w1.vsa.size(); ++i)
    EXPECT_LE(planes.w1.vsa[i], planes.w1.vsa[i - 1] + 1e-9);
  for (size_t i = 1; i <= last; ++i)
    EXPECT_LT(planes.w1.curves[0].vc[i], planes.w1.curves[0].vc[i - 1]);
}

TEST(Ensemble, BorderWarmStartMatchesFullScan) {
  // The warm-started search must land on the same border as the full
  // coarse scan (both bisect to log_tol), in fewer probes.
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  analysis::BorderResult nominal;
  {
    analysis::BorderOptions opt;
    nominal = analysis::analyze_defect(column, d, sim, opt);
  }
  ASSERT_TRUE(nominal.br.has_value());
  const defect::SweepRange range = defect::default_sweep_range(d.kind);

  analysis::BorderOptions cold_opt;
  const analysis::BorderResult cold = analysis::find_border_resistance(
      column, d, sim, nominal.condition, range, cold_opt);
  analysis::BorderOptions warm_opt;
  warm_opt.bracket_hint = *nominal.br * 1.3;  // deliberately offset hint
  const analysis::BorderResult warm = analysis::find_border_resistance(
      column, d, sim, nominal.condition, range, warm_opt);

  ASSERT_TRUE(cold.br.has_value());
  ASSERT_TRUE(warm.br.has_value());
  EXPECT_NEAR(*warm.br, *cold.br, 0.05 * *cold.br);
  EXPECT_EQ(warm.fails_everywhere, cold.fails_everywhere);

  // A hint outside the range falls back to the full scan unchanged.
  analysis::BorderOptions out_opt;
  out_opt.bracket_hint = range.hi * 10.0;
  const analysis::BorderResult fallback = analysis::find_border_resistance(
      column, d, sim, nominal.condition, range, out_opt);
  ASSERT_TRUE(fallback.br.has_value());
  EXPECT_DOUBLE_EQ(*fallback.br, *cold.br);
}

}  // namespace
}  // namespace dramstress
